(* Load generator for the aved serve daemon.

   Runs the server in-process on a temp Unix-domain socket, replays a
   deterministic mixed workload (design over a fig6-style grid of loads
   and downtime requirements, frontier, explain, check, health, stats)
   over one connection, and reports per-verb latency percentiles plus
   end-to-end throughput. The server's own stats verb supplies the memo
   readout, which the bench asserts stays within its configured bound —
   the long-lived-process memory contract.

   Run with:             dune exec bench/serve.exe
   Machine-readable:     dune exec bench/serve.exe -- json   (BENCH_serve.json)
   Request count:        dune exec bench/serve.exe -- -n 2000 *)

module Server = Aved_server.Server
module Protocol = Aved_server.Protocol
module Json = Aved_explain.Json

(* ------------------------------------------------------------------ *)
(* Client *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let rpc ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let result_of_response line =
  match Protocol.response_of_line line with
  | Ok { outcome = Ok result; _ } -> result
  | Ok { outcome = Error (_, message); _ } ->
      failwith (Printf.sprintf "server error: %s" message)
  | Error message ->
      failwith (Printf.sprintf "unparsable response: %s" message)

let obj_field json name =
  match json with
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> failwith (Printf.sprintf "response lacks %S" name))
  | _ -> failwith "expected a JSON object"

let int_field json name =
  match obj_field json name with
  | Json.Int i -> i
  | _ -> failwith (Printf.sprintf "field %S is not an integer" name)

let float_field json name =
  match obj_field json name with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> failwith (Printf.sprintf "field %S is not a number" name)

(* ------------------------------------------------------------------ *)
(* Workload *)

type spec_files = { infra : string; service : string }

let write_specs dir =
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  {
    infra = write "infrastructure.spec" Aved.Experiments.infrastructure_spec;
    service = write "ecommerce.spec" Aved.Experiments.ecommerce_spec;
  }

let design_loads = [| 250.; 500.; 1000.; 1500.; 2000.; 2500.; 3000.; 4000. |]
let design_downtimes = [| 5.; 50.; 500. |]

let spec_params specs =
  [
    ("infra_file", Json.String specs.infra);
    ("service_file", Json.String specs.service);
  ]

(* Request [i] of the workload: mostly design over the grid, with
   frontier/explain/check/stats sprinkled deterministically and health
   as the cheap heartbeat. *)
let request_line specs i =
  let design k =
    let load = design_loads.(k mod Array.length design_loads) in
    let downtime =
      design_downtimes.(k / Array.length design_loads
                        mod Array.length design_downtimes)
    in
    Protocol.request_line ~id:(Json.Int i) Protocol.Design
      (spec_params specs
      @ [ ("load", Json.Float load); ("downtime_minutes", Json.Float downtime) ])
  in
  match i mod 20 with
  | 0 -> Protocol.request_line ~id:(Json.Int i) Protocol.Health []
  | 5 ->
      Protocol.request_line ~id:(Json.Int i) Protocol.Check
        [ ("files", Json.List [ Json.String specs.infra; Json.String specs.service ]) ]
  | 10 ->
      Protocol.request_line ~id:(Json.Int i) Protocol.Frontier
        (spec_params specs
        @ [
            ( "load",
              Json.Float (design_loads.(i / 20 mod Array.length design_loads))
            );
          ])
  | 15 when i mod 100 = 15 ->
      Protocol.request_line ~id:(Json.Int i) Protocol.Explain
        (spec_params specs
        @ [
            ("load", Json.Float 1000.);
            ("downtime_minutes", Json.Float 100.);
            ("top", Json.Int 3);
          ])
  | 19 when i mod 100 = 99 ->
      Protocol.request_line ~id:(Json.Int i) Protocol.Stats []
  | _ -> design i

let verb_of_line line =
  (* The workload built the line, so the verb is always present. *)
  match Protocol.request_of_line line with
  | Ok request -> Protocol.verb_to_string request.Protocol.verb
  | Error message -> failwith message

(* ------------------------------------------------------------------ *)
(* Percentiles *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Int.min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

type verb_summary = {
  verb : string;
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let summarize verb samples =
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  let count = Array.length sorted in
  let sum = Array.fold_left ( +. ) 0. sorted in
  {
    verb;
    count;
    mean_ms = 1000. *. sum /. float_of_int (Int.max 1 count);
    p50_ms = 1000. *. percentile sorted 0.50;
    p95_ms = 1000. *. percentile sorted 0.95;
    p99_ms = 1000. *. percentile sorted 0.99;
  }

(* ------------------------------------------------------------------ *)
(* The run *)

type outcome = {
  jobs : int;
  requests : int;
  wall_seconds : float;
  throughput_rps : float;
  verbs : verb_summary list;
  memo_entries : int;
  memo_capacity : int;
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;
  heap_words_before : int;
  heap_words_after : int;
  (* Schema v2: burst-phase backpressure and the daemon's own SLO. *)
  burst_connections : int;
  burst_requests : int;
  burst_errors : int;
  queue_high_water : int;
  shed : int;
  deadline_exceeded : int;
  slo_requests : int;
  slo_bad : int;
  slo_success_rate : float;
  slo_budget_remaining : float;
}

(* Burst phase: [conns] concurrent connections each pipelining [per_conn]
   requests before reading any response, so the admission queue actually
   fills — the sequential phase keeps depth at 1 and would leave the
   high-water mark and shed counters untouched. Error responses
   (overloaded under a small queue) are counted, not fatal. *)
let run_burst specs socket ~conns ~per_conn =
  let errors = Atomic.make 0 in
  let worker c =
    let fd, ic, oc = connect socket in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    for i = 0 to per_conn - 1 do
      output_string oc (request_line specs ((c * per_conn) + i));
      output_char oc '\n'
    done;
    flush oc;
    for _ = 0 to per_conn - 1 do
      match Protocol.response_of_line (input_line ic) with
      | Ok { outcome = Ok _; _ } -> ()
      | Ok { outcome = Error _; _ } -> Atomic.incr errors
      | Error message -> failwith (Printf.sprintf "burst: %s" message)
    done
  in
  let threads = List.init conns (fun c -> Thread.create worker c) in
  List.iter Thread.join threads;
  Atomic.get errors

let run_bench ~requests () =
  let dir = Filename.temp_file "aved_serve_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let specs = write_specs dir in
  let socket = Filename.concat dir "aved.sock" in
  let jobs = Domain.recommended_domain_count () in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.jobs;
      memo_capacity = 1 lsl 16;
    }
  in
  let server = Server.create config in
  let runner = Thread.create Server.run server in
  let fd, ic, oc = connect socket in
  let finally () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Server.stop server;
    Thread.join runner;
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  (* Warm up each verb once so the measured window reflects the steady
     state the daemon exists for, then pin the heap baseline. *)
  List.iter
    (fun i -> ignore (result_of_response (rpc ic oc (request_line specs i))))
    [ 0; 5; 10; 15; 99; 1 ];
  Gc.compact ();
  let heap_words_before = (Gc.stat ()).Gc.heap_words in
  let latencies = Hashtbl.create 8 in
  let record verb dt =
    Hashtbl.replace latencies verb
      (dt :: Option.value (Hashtbl.find_opt latencies verb) ~default:[])
  in
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let line = request_line specs i in
    let start = Unix.gettimeofday () in
    let response = rpc ic oc line in
    record (verb_of_line line) (Unix.gettimeofday () -. start);
    ignore (result_of_response response)
  done;
  let wall_seconds = Unix.gettimeofday () -. t0 in
  Gc.compact ();
  let heap_words_after = (Gc.stat ()).Gc.heap_words in
  let burst_connections = 8 in
  let burst_per_conn = Int.max 4 (requests / 50) in
  let burst_errors =
    run_burst specs socket ~conns:burst_connections ~per_conn:burst_per_conn
  in
  let stats =
    result_of_response
      (rpc ic oc (Protocol.request_line Protocol.Stats []))
  in
  let queue = obj_field stats "queue" in
  let slo = obj_field stats "slo" in
  let memo = obj_field stats "memo" in
  let memo_entries = int_field memo "entries" in
  let memo_capacity = int_field memo "capacity" in
  if memo_entries > memo_capacity then
    failwith
      (Printf.sprintf "memo bound violated: %d entries > capacity %d"
         memo_entries memo_capacity);
  {
    jobs;
    requests;
    wall_seconds;
    throughput_rps = float_of_int requests /. Float.max 1e-9 wall_seconds;
    verbs =
      Hashtbl.fold (fun verb samples acc -> summarize verb samples :: acc)
        latencies []
      |> List.sort (fun a b -> compare b.count a.count);
    memo_entries;
    memo_capacity;
    memo_hits = int_field memo "hits";
    memo_misses = int_field memo "misses";
    memo_evictions = int_field memo "evictions";
    heap_words_before;
    heap_words_after;
    burst_connections;
    burst_requests = burst_connections * burst_per_conn;
    burst_errors;
    queue_high_water = int_field queue "high_water";
    shed = int_field queue "shed";
    deadline_exceeded = int_field queue "deadline_exceeded";
    slo_requests = int_field slo "requests";
    slo_bad = int_field slo "bad";
    slo_success_rate = float_field slo "success_rate";
    slo_budget_remaining = float_field slo "budget_remaining";
  }

(* ------------------------------------------------------------------ *)
(* Reporting *)

let print_human o =
  Printf.printf
    "aved serve bench: %d requests over 1 connection, jobs=%d\n\
     wall %.3f s, throughput %.1f req/s\n\n"
    o.requests o.jobs o.wall_seconds o.throughput_rps;
  Printf.printf "%-10s %8s %10s %10s %10s %10s\n" "verb" "count" "mean ms"
    "p50 ms" "p95 ms" "p99 ms";
  List.iter
    (fun v ->
      Printf.printf "%-10s %8d %10.2f %10.2f %10.2f %10.2f\n" v.verb v.count
        v.mean_ms v.p50_ms v.p95_ms v.p99_ms)
    o.verbs;
  Printf.printf
    "\nmemo: %d/%d entries, %d hits, %d misses, %d evictions (bound held)\n"
    o.memo_entries o.memo_capacity o.memo_hits o.memo_misses o.memo_evictions;
  Printf.printf "heap: %d -> %d words after compaction (%+d)\n"
    o.heap_words_before o.heap_words_after
    (o.heap_words_after - o.heap_words_before);
  Printf.printf
    "burst: %d conns x %d pipelined, %d error responses\n"
    o.burst_connections
    (o.burst_requests / Int.max 1 o.burst_connections)
    o.burst_errors;
  Printf.printf
    "queue: high water %d, shed %d, deadline-exceeded %d\n" o.queue_high_water
    o.shed o.deadline_exceeded;
  Printf.printf
    "slo: %d requests in window, %d bad, success %.4f, budget remaining %.3f\n"
    o.slo_requests o.slo_bad o.slo_success_rate o.slo_budget_remaining

let print_json o =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 2,\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" o.jobs);
  Buffer.add_string buf (Printf.sprintf "  \"requests\": %d,\n" o.requests);
  Buffer.add_string buf
    (Printf.sprintf "  \"wall_seconds\": %.6f,\n" o.wall_seconds);
  Buffer.add_string buf
    (Printf.sprintf "  \"throughput_rps\": %.2f,\n" o.throughput_rps);
  Buffer.add_string buf "  \"verbs\": [\n";
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"verb\": %S, \"count\": %d, \"mean_ms\": %.3f, \
            \"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f}%s\n"
           v.verb v.count v.mean_ms v.p50_ms v.p95_ms v.p99_ms
           (if i = List.length o.verbs - 1 then "" else ",")))
    o.verbs;
  Buffer.add_string buf "  ],\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"memo\": {\"entries\": %d, \"capacity\": %d, \"hits\": %d, \
        \"misses\": %d, \"evictions\": %d},\n"
       o.memo_entries o.memo_capacity o.memo_hits o.memo_misses
       o.memo_evictions);
  Buffer.add_string buf
    (Printf.sprintf "  \"heap_words_before\": %d,\n" o.heap_words_before);
  Buffer.add_string buf
    (Printf.sprintf "  \"heap_words_after\": %d,\n" o.heap_words_after);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"burst\": {\"connections\": %d, \"requests\": %d, \"errors\": %d},\n"
       o.burst_connections o.burst_requests o.burst_errors);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"queue\": {\"high_water\": %d, \"shed\": %d, \
        \"deadline_exceeded\": %d},\n"
       o.queue_high_water o.shed o.deadline_exceeded);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"slo\": {\"requests\": %d, \"bad\": %d, \"success_rate\": %.6f, \
        \"budget_remaining\": %.6f}\n"
       o.slo_requests o.slo_bad o.slo_success_rate o.slo_budget_remaining);
  Buffer.add_string buf "}\n";
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec requests = function
    | "-n" :: n :: _ -> (
        match int_of_string_opt n with
        | Some n when n > 0 -> n
        | _ -> failwith "-n expects a positive integer")
    | _ :: rest -> requests rest
    | [] -> 1000
  in
  let outcome = run_bench ~requests:(requests args) () in
  if List.mem "json" args then print_json outcome else print_human outcome
