(* Closed-loop load harness for the aved serve daemon (BENCH_serve.json
   schema v3).

   Runs the server in-process on a temp Unix-domain socket and drives
   three phases through the event-driven core:

   - cold: one connection walks the full design/frontier grid against a
     fresh server — first-request latency before any spec cache or
     availability memo is warm. Reported separately so cache warmup is
     never laundered into the steady-state numbers.
   - warm: the headline — [--conns] connections (default 100) in a
     sustained closed loop for [--duration] seconds, cycling a small
     distinct design set so concurrent duplicates exercise request
     coalescing the way a dashboard fleet would. Reports throughput,
     design-latency percentiles, and the coalesced fraction, and
     asserts design p99 within the daemon's default SLO latency budget
     (nonzero exit on violation, so CI fails loudly).
   - herd: every connection fires the same never-before-seen design
     request at once while the dispatchers are parked on blockers;
     asserts >= 90% of the responses are coalesced broadcasts and
     counts the underlying searches via the server's own counters.

   Schema v3 carries the previous run's headline figure forward as
   "baseline" (read from an existing BENCH_serve.json — its own
   baseline if it has one, else its throughput), so speedups survive
   regeneration without archaeology.

   Run with:         dune exec bench/serve.exe
   Machine-readable: dune exec bench/serve.exe -- json
   Knobs:            --conns N --duration S *)

module Server = Aved_server.Server
module Protocol = Aved_server.Protocol
module Json = Aved_explain.Json
module Json_parse = Aved_api.Json_parse

(* ------------------------------------------------------------------ *)
(* Client *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX path);
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let close_client (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> ()

let send_line oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

let rpc ic oc line =
  send_line oc line;
  input_line ic

let result_of_response line =
  match Protocol.response_of_line line with
  | Ok { outcome = Ok result; _ } -> result
  | Ok { outcome = Error (_, message); _ } ->
      failwith (Printf.sprintf "server error: %s" message)
  | Error message ->
      failwith (Printf.sprintf "unparsable response: %s" message)

let obj_field json name =
  match json with
  | Json.Obj fields -> (
      match List.assoc_opt name fields with
      | Some v -> v
      | None -> failwith (Printf.sprintf "response lacks %S" name))
  | _ -> failwith "expected a JSON object"

let int_field json name =
  match obj_field json name with
  | Json.Int i -> i
  | _ -> failwith (Printf.sprintf "field %S is not an integer" name)

let float_field json name =
  match obj_field json name with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> failwith (Printf.sprintf "field %S is not a number" name)

(* The warm loop is itself on the measured core, so it checks response
   envelopes with substring probes instead of a JSON parse per line —
   the encoder is compact and deterministic, making ["ok":true] and
   ["coalesced":true] exact byte sequences. *)
let has_substring line sub =
  let n = String.length line and m = String.length sub in
  let rec matches_at i j = j = m || (line.[i + j] = sub.[j] && matches_at i (j + 1)) in
  let rec at i = i + m <= n && (matches_at i 0 || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* Workload *)

type spec_files = { infra : string; service : string }

let write_specs dir =
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  {
    infra = write "infrastructure.spec" Aved.Experiments.infrastructure_spec;
    service = write "ecommerce.spec" Aved.Experiments.ecommerce_spec;
  }

let design_loads = [| 250.; 500.; 1000.; 1500.; 2000.; 2500.; 3000.; 4000. |]
let design_downtimes = [| 5.; 50.; 500. |]

let spec_params specs =
  [
    ("infra_file", Json.String specs.infra);
    ("service_file", Json.String specs.service);
  ]

let design_line specs ~id ~load ~downtime =
  Protocol.request_line ~id:(Json.Int id) Protocol.Design
    (spec_params specs
    @ [ ("load", Json.Float load); ("downtime_minutes", Json.Float downtime) ])

(* The warm set: the dashboard-fleet shape — many clients polling a
   handful of live designs. Few enough distinct points that 100
   closed-loop connections keep landing on computations already in
   flight, the coalescing case the daemon is built for; with the whole
   core shared by searches and serving, each extra distinct point
   costs a full search per cycle. *)
let warm_loads = [| 500.; 1000.; 2000. |]
let warm_downtime = 50.

let warm_line specs i =
  if i mod 20 = 0 then
    (Protocol.request_line ~id:(Json.Int i) Protocol.Health [], `Other)
  else if i mod 400 = 37 then
    (Protocol.request_line ~id:(Json.Int i) Protocol.Stats [], `Other)
  else
    let load = warm_loads.(i mod Array.length warm_loads) in
    (design_line specs ~id:i ~load ~downtime:warm_downtime, `Design)

(* ------------------------------------------------------------------ *)
(* Percentiles *)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Int.min (n - 1) (int_of_float (ceil (q *. float_of_int n)) - 1))

type latency_summary = {
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let summarize samples =
  let sorted = Array.of_list samples in
  Array.sort compare sorted;
  let count = Array.length sorted in
  let sum = Array.fold_left ( +. ) 0. sorted in
  {
    count;
    mean_ms = 1000. *. sum /. float_of_int (Int.max 1 count);
    p50_ms = 1000. *. percentile sorted 0.50;
    p95_ms = 1000. *. percentile sorted 0.95;
    p99_ms = 1000. *. percentile sorted 0.99;
  }

(* ------------------------------------------------------------------ *)
(* Phases *)

(* Cold: the very first touch of every grid point over one connection,
   straight after the server starts. 1 check + full design grid +
   frontier per load + one explain. *)
let run_cold specs ic oc =
  let design = ref [] in
  let t0 = Unix.gettimeofday () in
  let timed bucket line =
    let start = Unix.gettimeofday () in
    let response = rpc ic oc line in
    let dt = Unix.gettimeofday () -. start in
    (match bucket with Some b -> b := dt :: !b | None -> ());
    ignore (result_of_response response)
  in
  timed None
    (Protocol.request_line Protocol.Check
       [
         ( "files",
           Json.List [ Json.String specs.infra; Json.String specs.service ] );
       ]);
  let requests = ref 1 in
  Array.iter
    (fun downtime ->
      Array.iter
        (fun load ->
          incr requests;
          timed (Some design) (design_line specs ~id:!requests ~load ~downtime))
        design_loads)
    design_downtimes;
  Array.iter
    (fun load ->
      incr requests;
      timed None
        (Protocol.request_line ~id:(Json.Int !requests) Protocol.Frontier
           (spec_params specs @ [ ("load", Json.Float load) ])))
    design_loads;
  incr requests;
  timed None
    (Protocol.request_line ~id:(Json.Int !requests) Protocol.Explain
       (spec_params specs
       @ [
           ("load", Json.Float 1000.);
           ("downtime_minutes", Json.Float 100.);
           ("top", Json.Int 3);
         ]));
  (!requests, Unix.gettimeofday () -. t0, summarize !design)

type warm_acc = {
  mutable design : float list;
  mutable other : float list;
  mutable coalesced : int;
}

(* Warm: the sustained closed loop. Each connection repeats
   request->response until the deadline; a global index spreads the mix
   so concurrent connections keep colliding on the same design
   points. *)
let run_warm specs socket ~conns ~duration =
  let counter = Atomic.make 0 in
  let accs =
    Array.init conns (fun _ -> { design = []; other = []; coalesced = 0 })
  in
  let t0 = Unix.gettimeofday () in
  let t_end = t0 +. duration in
  let worker w =
    let ((_, ic, oc) as client) = connect socket in
    Fun.protect ~finally:(fun () -> close_client client) @@ fun () ->
    let acc = accs.(w) in
    while Unix.gettimeofday () < t_end do
      let i = Atomic.fetch_and_add counter 1 in
      let line, kind = warm_line specs i in
      let start = Unix.gettimeofday () in
      let response = rpc ic oc line in
      let dt = Unix.gettimeofday () -. start in
      if not (has_substring response "\"ok\":true") then
        failwith (Printf.sprintf "warm: error response: %s" response);
      match kind with
      | `Design ->
          acc.design <- dt :: acc.design;
          if has_substring response "\"coalesced\":true" then
            acc.coalesced <- acc.coalesced + 1
      | `Other -> acc.other <- dt :: acc.other
    done
  in
  let threads = Array.init conns (fun w -> Thread.create worker w) in
  Array.iter Thread.join threads;
  let wall = Unix.gettimeofday () -. t0 in
  let design =
    summarize (Array.fold_left (fun l a -> a.design @ l) [] accs)
  in
  let other_count =
    Array.fold_left (fun n a -> n + List.length a.other) 0 accs
  in
  let coalesced = Array.fold_left (fun n a -> n + a.coalesced) 0 accs in
  let requests = design.count + other_count in
  ( requests,
    wall,
    float_of_int requests /. Float.max 1e-9 wall,
    design,
    coalesced )

(* Herd: [conns] connections fire one identical never-seen design
   request while every dispatcher is parked on a distinct blocker, so
   the herd's leader is still queued when its twins arrive — the
   thundering-herd case coalescing exists for. The server's own
   [server.requests.design] counter says how many searches actually
   ran underneath. *)
let run_herd specs socket ~conns ~dispatchers ~control_ic ~control_oc =
  let design_count () =
    let stats =
      result_of_response
        (rpc control_ic control_oc (Protocol.request_line Protocol.Stats []))
    in
    int_field (obj_field stats "counters") "server.requests.design"
  in
  let before = design_count () in
  let herd = Array.init conns (fun _ -> connect socket) in
  (* Two distinct blockers per dispatcher: the herd leader sits queued
     for about two search-lengths, a comfortable window for the event
     loop to admit and attach every twin even under scheduler noise. *)
  let blockers = Array.init (2 * dispatchers) (fun _ -> connect socket) in
  Fun.protect
    ~finally:(fun () ->
      Array.iter close_client herd;
      Array.iter close_client blockers)
  @@ fun () ->
  Array.iteri
    (fun j (_, _, oc) ->
      send_line oc
        (design_line specs ~id:(-1 - j) ~load:(3300. +. float_of_int j)
           ~downtime:77.))
    blockers;
  Array.iteri
    (fun k (_, _, oc) ->
      send_line oc (design_line specs ~id:k ~load:3210. ~downtime:77.))
    herd;
  let coalesced = ref 0 in
  Array.iteri
    (fun k (_, ic, _) ->
      match Protocol.response_of_line (input_line ic) with
      | Ok { outcome = Ok _; response_coalesced; response_id; _ } ->
          if response_id <> Json.Int k then
            failwith "herd: response carries someone else's id";
          if response_coalesced = Some true then incr coalesced
      | Ok { outcome = Error (_, message); _ } ->
          failwith (Printf.sprintf "herd: server error: %s" message)
      | Error message -> failwith (Printf.sprintf "herd: %s" message))
    herd;
  Array.iter
    (fun (_, ic, _) -> ignore (result_of_response (input_line ic)))
    blockers;
  let underlying = design_count () - before - Array.length blockers in
  (!coalesced, underlying)

(* ------------------------------------------------------------------ *)
(* Baseline carry-forward *)

let bench_path = "BENCH_serve.json"

(* The previous run's headline, preserved across regeneration: reuse
   its own "baseline" object if it already carries one, else adopt its
   headline throughput as the new baseline. *)
let read_baseline path =
  if not (Sys.file_exists path) then Json.Null
  else
    let text = In_channel.with_open_text path In_channel.input_all in
    match Json_parse.of_string text with
    | Error _ -> Json.Null
    | Ok (Json.Obj fields) -> (
        match List.assoc_opt "baseline" fields with
        | Some (Json.Obj _ as b) -> b
        | _ -> (
            let rps =
              match List.assoc_opt "throughput_rps" fields with
              | Some (Json.Float r) -> Some r
              | Some (Json.Int r) -> Some (float_of_int r)
              | _ -> None
            in
            match rps with
            | Some r ->
                Json.Obj
                  [
                    ( "schema_version",
                      Option.value
                        (List.assoc_opt "schema_version" fields)
                        ~default:(Json.Int 2) );
                    ("throughput_rps", Json.Float r);
                  ]
            | None -> Json.Null))
    | Ok _ -> Json.Null

let baseline_rps = function
  | Json.Obj fields -> (
      match List.assoc_opt "throughput_rps" fields with
      | Some (Json.Float r) -> Some r
      | Some (Json.Int r) -> Some (float_of_int r)
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* The run *)

type outcome = {
  jobs : int;
  dispatchers : int;
  conns : int;
  duration : float;
  cold_requests : int;
  cold_wall : float;
  cold_design : latency_summary;
  warm_requests : int;
  warm_wall : float;
  warm_rps : float;
  warm_design : latency_summary;
  warm_coalesced : int;
  herd_conns : int;
  herd_coalesced : int;
  herd_underlying : int;
  slo_budget_ms : float;
  memo_entries : int;
  memo_capacity : int;
  memo_hits : int;
  memo_misses : int;
  memo_evictions : int;
  queue_high_water : int;
  shed : int;
  deadline_exceeded : int;
  slo_requests : int;
  slo_bad : int;
  slo_success_rate : float;
  slo_budget_remaining : float;
  heap_words_before : int;
  heap_words_after : int;
  baseline : Json.t;
}

let run_bench ~conns ~duration () =
  let dir = Filename.temp_file "aved_serve_bench" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let specs = write_specs dir in
  let socket = Filename.concat dir "aved.sock" in
  let jobs = Domain.recommended_domain_count () in
  let config =
    {
      (Server.default_config (Server.Unix_socket socket)) with
      Server.jobs;
      memo_capacity = 1 lsl 16;
    }
  in
  if conns + config.Server.dispatchers + 1 > config.Server.max_conns then
    failwith "--conns exceeds the server's connection bound";
  let server = Server.create config in
  let runner = Thread.create Server.run server in
  let ((_, ic, oc) as control) = connect socket in
  let finally () =
    close_client control;
    Server.stop server;
    Thread.join runner;
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally @@ fun () ->
  let cold_requests, cold_wall, cold_design = run_cold specs ic oc in
  Gc.compact ();
  let heap_words_before = (Gc.stat ()).Gc.heap_words in
  let warm_requests, warm_wall, warm_rps, warm_design, warm_coalesced =
    run_warm specs socket ~conns ~duration
  in
  let herd_coalesced, herd_underlying =
    run_herd specs socket ~conns ~dispatchers:config.Server.dispatchers
      ~control_ic:ic ~control_oc:oc
  in
  Gc.compact ();
  let heap_words_after = (Gc.stat ()).Gc.heap_words in
  let stats =
    result_of_response (rpc ic oc (Protocol.request_line Protocol.Stats []))
  in
  let queue = obj_field stats "queue" in
  let slo = obj_field stats "slo" in
  let memo = obj_field stats "memo" in
  let memo_entries = int_field memo "entries" in
  let memo_capacity = int_field memo "capacity" in
  if memo_entries > memo_capacity then
    failwith
      (Printf.sprintf "memo bound violated: %d entries > capacity %d"
         memo_entries memo_capacity);
  {
    jobs;
    dispatchers = config.Server.dispatchers;
    conns;
    duration;
    cold_requests;
    cold_wall;
    cold_design;
    warm_requests;
    warm_wall;
    warm_rps;
    warm_design;
    warm_coalesced;
    herd_conns = conns;
    herd_coalesced;
    herd_underlying;
    slo_budget_ms = 1000. *. Aved_obs.Slo.(default_config.latency_budget_s);
    memo_entries;
    memo_capacity;
    memo_hits = int_field memo "hits";
    memo_misses = int_field memo "misses";
    memo_evictions = int_field memo "evictions";
    queue_high_water = int_field queue "high_water";
    shed = int_field queue "shed";
    deadline_exceeded = int_field queue "deadline_exceeded";
    slo_requests = int_field slo "requests";
    slo_bad = int_field slo "bad";
    slo_success_rate = float_field slo "success_rate";
    slo_budget_remaining = float_field slo "budget_remaining";
    heap_words_before;
    heap_words_after;
    baseline = read_baseline bench_path;
  }

(* The acceptance gates, evaluated after reporting so a failing run
   still leaves its artifact behind for debugging. *)
let failures o =
  let fails = ref [] in
  if o.warm_design.p99_ms > o.slo_budget_ms then
    fails :=
      Printf.sprintf "warm design p99 %.2f ms exceeds the %.0f ms SLO budget"
        o.warm_design.p99_ms o.slo_budget_ms
      :: !fails;
  let herd_fraction =
    float_of_int o.herd_coalesced /. float_of_int (Int.max 1 o.herd_conns)
  in
  if herd_fraction < 0.9 then
    fails :=
      Printf.sprintf "herd: only %d/%d responses coalesced (< 90%%)"
        o.herd_coalesced o.herd_conns
      :: !fails;
  List.rev !fails

(* ------------------------------------------------------------------ *)
(* Reporting *)

let print_summary indent s =
  Printf.printf "%scount %d, mean %.2f ms, p50 %.2f, p95 %.2f, p99 %.2f\n"
    indent s.count s.mean_ms s.p50_ms s.p95_ms s.p99_ms

let print_human o =
  Printf.printf
    "aved serve bench: jobs=%d dispatchers=%d conns=%d duration=%.0fs\n\n"
    o.jobs o.dispatchers o.conns o.duration;
  Printf.printf "cold (first touch, 1 conn): %d requests in %.3f s\n"
    o.cold_requests o.cold_wall;
  print_summary "  design: " o.cold_design;
  Printf.printf
    "\nwarm (closed loop, %d conns): %d requests in %.3f s = %.1f req/s\n"
    o.conns o.warm_requests o.warm_wall o.warm_rps;
  print_summary "  design: " o.warm_design;
  Printf.printf "  coalesced: %d/%d design responses\n" o.warm_coalesced
    o.warm_design.count;
  (match baseline_rps o.baseline with
  | Some b when b > 0. ->
      Printf.printf "  speedup vs baseline %.1f rps: %.1fx\n" b (o.warm_rps /. b)
  | _ -> ());
  Printf.printf
    "\nherd (%d conns, one identical request): %d coalesced, %d underlying \
     searches\n"
    o.herd_conns o.herd_coalesced o.herd_underlying;
  Printf.printf "\nslo: design p99 %.2f ms vs %.0f ms budget; server window: \
                 %d requests, %d bad, success %.4f, budget remaining %.3f\n"
    o.warm_design.p99_ms o.slo_budget_ms o.slo_requests o.slo_bad
    o.slo_success_rate o.slo_budget_remaining;
  Printf.printf
    "memo: %d/%d entries, %d hits, %d misses, %d evictions (bound held)\n"
    o.memo_entries o.memo_capacity o.memo_hits o.memo_misses o.memo_evictions;
  Printf.printf "queue: high water %d, shed %d, deadline-exceeded %d\n"
    o.queue_high_water o.shed o.deadline_exceeded;
  Printf.printf "heap: %d -> %d words after compaction (%+d)\n"
    o.heap_words_before o.heap_words_after
    (o.heap_words_after - o.heap_words_before)

let summary_json s =
  Printf.sprintf
    "{\"count\": %d, \"mean_ms\": %.3f, \"p50_ms\": %.3f, \"p95_ms\": %.3f, \
     \"p99_ms\": %.3f}"
    s.count s.mean_ms s.p50_ms s.p95_ms s.p99_ms

let print_json o =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema_version\": 3,\n";
  add "  \"jobs\": %d,\n" o.jobs;
  add "  \"dispatchers\": %d,\n" o.dispatchers;
  add "  \"conns\": %d,\n" o.conns;
  add "  \"duration_seconds\": %.1f,\n" o.duration;
  add "  \"cold\": {\"requests\": %d, \"wall_seconds\": %.6f, \"design\": %s},\n"
    o.cold_requests o.cold_wall (summary_json o.cold_design);
  add
    "  \"warm\": {\"requests\": %d, \"wall_seconds\": %.6f, \
     \"throughput_rps\": %.2f, \"coalesced\": %d, \"design\": %s},\n"
    o.warm_requests o.warm_wall o.warm_rps o.warm_coalesced
    (summary_json o.warm_design);
  add "  \"throughput_rps\": %.2f,\n" o.warm_rps;
  add
    "  \"herd\": {\"connections\": %d, \"coalesced\": %d, \
     \"underlying_searches\": %d},\n"
    o.herd_conns o.herd_coalesced o.herd_underlying;
  add
    "  \"slo\": {\"p99_budget_ms\": %.1f, \"design_p99_ms\": %.3f, \"met\": \
     %b, \"requests\": %d, \"bad\": %d, \"success_rate\": %.6f, \
     \"budget_remaining\": %.6f},\n"
    o.slo_budget_ms o.warm_design.p99_ms
    (o.warm_design.p99_ms <= o.slo_budget_ms)
    o.slo_requests o.slo_bad o.slo_success_rate o.slo_budget_remaining;
  add
    "  \"memo\": {\"entries\": %d, \"capacity\": %d, \"hits\": %d, \
     \"misses\": %d, \"evictions\": %d},\n"
    o.memo_entries o.memo_capacity o.memo_hits o.memo_misses o.memo_evictions;
  add "  \"queue\": {\"high_water\": %d, \"shed\": %d, \"deadline_exceeded\": %d},\n"
    o.queue_high_water o.shed o.deadline_exceeded;
  add "  \"heap_words_before\": %d,\n" o.heap_words_before;
  add "  \"heap_words_after\": %d,\n" o.heap_words_after;
  (match baseline_rps o.baseline with
  | Some b when b > 0. ->
      add "  \"baseline\": %s,\n" (Json.to_string o.baseline);
      add "  \"speedup_vs_baseline\": %.2f\n" (o.warm_rps /. b)
  | _ -> add "  \"baseline\": null\n");
  add "}\n";
  let oc = open_out bench_path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" bench_path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec find_flag name parse default = function
    | f :: v :: _ when String.equal f name -> (
        match parse v with
        | Some v -> v
        | None -> failwith (Printf.sprintf "%s expects a number" name))
    | _ :: rest -> find_flag name parse default rest
    | [] -> default
  in
  let conns =
    find_flag "--conns"
      (fun v ->
        match int_of_string_opt v with
        | Some n when n > 0 -> Some n
        | _ -> None)
      100 args
  in
  let duration =
    find_flag "--duration"
      (fun v ->
        match float_of_string_opt v with
        | Some s when s > 0. && Float.is_finite s -> Some s
        | _ -> None)
      10. args
  in
  let outcome = run_bench ~conns ~duration () in
  if List.mem "json" args then print_json outcome else print_human outcome;
  match failures outcome with
  | [] -> ()
  | fails ->
      List.iter (Printf.eprintf "FAIL: %s\n") fails;
      exit 1
