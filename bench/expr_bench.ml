(* Micro-benchmark of the expression-evaluator hot path.

   The design search calls Perf_function.eval once per candidate
   resource count; before the compiled forms every call walked the AST
   through an association-list lookup, allocating a binding list and a
   closure each time. This benchmark times the three evaluation paths
   and reports minor-heap words allocated per call, so allocation
   regressions show up as numbers, not vibes.

   Run with: dune exec bench/expr_bench.exe *)

module Expr = Aved_expr.Expr
module Perf = Aved_perf.Perf_function

let paper_general = Expr.of_string "(10*n)/(1+0.004*n)"
let paper_affine = Expr.of_string "200*n"

let minor_words_per_call ~calls f =
  (* Relative readout: allocation attributable to one call, averaged
     over enough calls to drown the measurement's own boxing. *)
  let before = Gc.minor_words () in
  for i = 1 to calls do
    ignore (Sys.opaque_identity (f i))
  done;
  (Gc.minor_words () -. before) /. float_of_int calls

let allocation_table () =
  let general = Perf.of_expr paper_general in
  let affine = Perf.of_expr paper_affine in
  let calls = 100_000 in
  let rows =
    [
      ( "Expr.eval_alist (binding list per call)",
        fun i -> Expr.eval_alist paper_general [ ("n", float_of_int i) ] );
      ( "Expr.eval1 (no binding structure)",
        fun i -> Expr.eval1 paper_general ~var:"n" ~value:(float_of_int i) );
      ( "Perf_function.eval, general expression",
        fun i -> Perf.eval general ~n:(1 + (i land 63)) );
      ( "Perf_function.eval, compiled affine",
        fun i -> Perf.eval affine ~n:(1 + (i land 63)) );
    ]
  in
  Printf.printf "minor words allocated per call (avg over %d calls):\n" calls;
  List.iter
    (fun (name, f) ->
      Printf.printf "  %-44s %8.2f\n" name (minor_words_per_call ~calls f))
    rows

let timing () =
  let open Bechamel in
  let general = Perf.of_expr paper_general in
  let affine = Perf.of_expr paper_affine in
  let tests =
    [
      Test.make ~name:"eval_alist: (10*n)/(1+0.004*n)"
        (Staged.stage (fun () ->
             ignore (Expr.eval_alist paper_general [ ("n", 12.) ])));
      Test.make ~name:"eval1: (10*n)/(1+0.004*n)"
        (Staged.stage (fun () ->
             ignore (Expr.eval1 paper_general ~var:"n" ~value:12.)));
      Test.make ~name:"perf eval: general expression"
        (Staged.stage (fun () -> ignore (Perf.eval general ~n:12)));
      Test.make ~name:"perf eval: compiled affine"
        (Staged.stage (fun () -> ignore (Perf.eval affine ~n:12)));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw =
        Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ])
      in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ estimate ] ->
              Printf.printf "%-44s %8.1f ns/run\n%!" name estimate
          | Some _ | None -> Printf.printf "%-44s (no estimate)\n%!" name)
        results)
    tests

let () =
  allocation_table ();
  if not (Array.mem "--no-timing" Sys.argv) then begin
    print_newline ();
    timing ()
  end
