(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (the series are printed first), then times the
   computational kernel behind each artifact with Bechamel.

   Run with: dune exec bench/main.exe
   Skip the timing pass with: dune exec bench/main.exe -- --no-timing
   Print only one artifact:
     dune exec bench/main.exe -- table1|fig6|fig7|fig8|ablations|speedup
   Write the machine-readable search benchmark (BENCH_search.json):
     dune exec bench/main.exe -- json *)

module Duration = Aved_units.Duration
module Search = Aved_search
module Telemetry = Aved_telemetry.Telemetry

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

(* ------------------------------------------------------------------ *)
(* Machine-readable search benchmark (dune exec bench/main.exe -- json)

   One telemetry-instrumented run per figure kernel, written to
   BENCH_search.json (schema_version 2) for CI artifact upload and
   regression tracking. The first recorded run's per-figure wall times
   are carried forward verbatim as the "baseline" object on every
   subsequent run — a v1 file's "figures" array is adopted as the
   baseline — so the reported speedup is always against the pre-change
   code, not against the previous rerun. *)

module Json = Aved_explain.Json

type bench_baseline = { figures : (string * float) list }

let read_baseline path =
  if not (Sys.file_exists path) then None
  else
    let ic = open_in_bin path in
    let contents =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match Aved_api.Json_parse.of_string contents with
    | Error _ -> None
    | Ok json -> (
        let wall_of = function
          | Json.Obj fields -> (
              match
                (List.assoc_opt "name" fields, List.assoc_opt "wall_seconds" fields)
              with
              | Some (Json.String name), Some (Json.Float w) -> Some (name, w)
              | Some (Json.String name), Some (Json.Int w) ->
                  Some (name, float_of_int w)
              | _ -> None)
          | _ -> None
        in
        let figures_of = function
          | Some (Json.List rows) ->
              let parsed = List.filter_map wall_of rows in
              if parsed = [] then None else Some { figures = parsed }
          | _ -> None
        in
        match json with
        | Json.Obj fields -> (
            (* Prefer an existing baseline; else a v1 file's own figures
               become the baseline. *)
            match List.assoc_opt "baseline" fields with
            | Some (Json.Obj baseline_fields) ->
                figures_of (List.assoc_opt "figures" baseline_fields)
            | _ -> figures_of (List.assoc_opt "figures" fields))
        | _ -> None)

let json_search_benchmark () =
  let jobs = Domain.recommended_domain_count () in
  let config =
    Search.Search_config.default
    |> Search.Search_config.with_jobs jobs
    |> Search.Search_config.with_memo
  in
  let measure name f =
    Search.Eval_cache.reset_downtime_counters ();
    let t = Telemetry.create () in
    Telemetry.install t;
    let t0 = Unix.gettimeofday () in
    let () = Fun.protect ~finally:Telemetry.uninstall f in
    let wall = Unix.gettimeofday () -. t0 in
    let counter n = Telemetry.Counter.read_by_name t n in
    (name, wall, counter)
  in
  let rows =
    [
      measure "fig6" (fun () -> ignore (Aved.Figures.fig6 ~config ()));
      measure "fig7" (fun () ->
          ignore
            (Aved.Figures.fig7
               ~config:
                 (Search.Search_config.with_memo
                    (Search.Search_config.with_jobs jobs
                       Aved.Experiments.fig7_config))
               ()));
      measure "fig8" (fun () -> ignore (Aved.Figures.fig8 ~config ()));
    ]
  in
  let path = "BENCH_search.json" in
  let baseline = read_baseline path in
  let total = List.fold_left (fun acc (_, w, _) -> acc +. w) 0. rows in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"schema_version\": 2,\n";
  Buffer.add_string buf (Printf.sprintf "  \"jobs\": %d,\n" jobs);
  (match baseline with
  | Some { figures } ->
      let baseline_total = List.fold_left (fun acc (_, w) -> acc +. w) 0. figures in
      Buffer.add_string buf "  \"baseline\": {\"figures\": [\n";
      List.iteri
        (fun i (name, wall) ->
          Buffer.add_string buf
            (Printf.sprintf "    {\"name\": %S, \"wall_seconds\": %.6f}%s\n"
               name wall
               (if i = List.length figures - 1 then "" else ",")))
        figures;
      Buffer.add_string buf
        (Printf.sprintf "  ], \"total_wall_seconds\": %.6f},\n" baseline_total);
      Buffer.add_string buf
        (Printf.sprintf "  \"speedup_vs_baseline\": %.2f,\n"
           (baseline_total /. Float.max 1e-9 total))
  | None ->
      Buffer.add_string buf "  \"baseline\": null,\n";
      Buffer.add_string buf "  \"speedup_vs_baseline\": null,\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"total_wall_seconds\": %.6f,\n" total);
  Buffer.add_string buf "  \"figures\": [\n";
  List.iteri
    (fun i (name, wall, counter) ->
      let generated = counter "search.candidates.generated" in
      let evaluated = counter "search.candidates.evaluated" in
      let pruned = counter "search.candidates.pruned_by_incumbent" in
      let hits = counter "avail.memo.hits" in
      let misses = counter "avail.memo.misses" in
      let lookups = hits + misses in
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"wall_seconds\": %.6f, \
            \"candidates_generated\": %d, \"candidates_evaluated\": %d, \
            \"candidates_pruned\": %d, \"candidates_per_second\": %.1f, \
            \"memo_hits\": %d, \"memo_misses\": %d, \
            \"memo_hit_rate\": %.4f, \
            \"downtime_fresh\": %d, \"downtime_reused\": %d, \
            \"solver_fresh\": %d, \"solver_incremental\": %d, \
            \"solver_fallback\": %d, \"solver_cached\": %d, \
            \"exact_fresh\": %d, \"exact_incremental\": %d}%s\n"
           name wall generated evaluated pruned
           (float_of_int evaluated /. Float.max 1e-9 wall)
           hits misses
           (float_of_int hits /. Float.max 1. (float_of_int lookups))
           (counter "search.eval.downtime.fresh")
           (counter "search.eval.downtime.reused")
           (counter "markov.solver.fresh")
           (counter "markov.solver.incremental")
           (counter "markov.solver.fallback")
           (counter "markov.solver.cached")
           (counter "avail.exact.solve.fresh")
           (counter "avail.exact.solve.incremental")
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out path in
  Buffer.output_buffer oc buf;
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Reproduction series *)

let print_table1 () =
  section "Table 1 (performance functions)";
  Aved.Figures.print_table1 Format.std_formatter;
  Format.print_newline ()

let print_fig6 () =
  section "Figure 6 (optimal family vs load and downtime requirement)";
  Aved.Figures.print_fig6 Format.std_formatter (Aved.Figures.fig6 ());
  Format.print_newline ()

let print_fig7 () =
  section "Figure 7 (scientific design vs execution-time requirement)";
  Aved.Figures.print_fig7 Format.std_formatter (Aved.Figures.fig7 ());
  Format.print_newline ()

let print_fig8 () =
  section "Figure 8 (extra annual cost of availability)";
  Aved.Figures.print_fig8 Format.std_formatter (Aved.Figures.fig8 ());
  Format.print_newline ()

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* Engine agreement and relative cost on a representative tier design
   (the paper's headline point). *)
let ablation_engines () =
  section "Ablation: availability engines (A analytic / B exact / C simulated)";
  let infra = Aved.Experiments.infrastructure () in
  let tier = Aved.Experiments.application_tier () in
  match
    Search.Tier_search.optimal Search.Search_config.default infra ~tier
      ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  with
  | None -> print_endline "headline point unexpectedly infeasible"
  | Some c ->
      let m = c.Search.Candidate.model in
      let time f =
        let t0 = Unix.gettimeofday () in
        let v = f () in
        (v, Unix.gettimeofday () -. t0)
      in
      let a, ta = time (fun () -> Aved_avail.Analytic.downtime_fraction m) in
      let b, tb = time (fun () -> Aved_avail.Exact.downtime_fraction m) in
      let c_, tc =
        time (fun () ->
            Aved_avail.Monte_carlo.downtime_fraction
              ~config:
                {
                  Aved_avail.Monte_carlo.replications = 16;
                  horizon = Duration.of_years 30.;
                  seed = 42;
                }
              m)
      in
      let minutes f = Duration.minutes (Duration.of_years f) in
      Printf.printf "%-12s %16s %12s\n" "engine" "downtime min/yr" "seconds";
      Printf.printf "%-12s %16.3f %12.6f\n" "analytic" (minutes a) ta;
      Printf.printf "%-12s %16.3f %12.6f\n" "exact" (minutes b) tb;
      Printf.printf "%-12s %16.3f %12.6f\n" "simulated" (minutes c_) tc

(* Cost-first pruning: the paper evaluates cost before availability and
   rejects costlier designs; compare the pruned single-design search
   against the exhaustive frontier sweep of the same space. *)
let ablation_pruning () =
  section "Ablation: cost-first pruning (search vs exhaustive sweep)";
  let infra = Aved.Experiments.infrastructure () in
  let tier = Aved.Experiments.application_tier () in
  let time f =
    let t0 = Unix.gettimeofday () in
    ignore (f ());
    Unix.gettimeofday () -. t0
  in
  List.iter
    (fun load ->
      let pruned =
        time (fun () ->
            Search.Tier_search.optimal Search.Search_config.default infra
              ~tier ~demand:load
              ~max_downtime:(Duration.of_minutes 100.))
      in
      let exhaustive =
        time (fun () ->
            Search.Tier_search.frontier Search.Search_config.default infra
              ~tier ~demand:load)
      in
      Printf.printf
        "load %5.0f: pruned search %.4fs, exhaustive sweep %.4fs (%.1fx)\n"
        load pruned exhaustive
        (exhaustive /. Float.max 1e-9 pruned))
    [ 400.; 1600.; 4000. ]

(* Hot spares: allowing active components in spares shortens failover
   and lowers the reachable downtime floor of the static database
   tier. *)
let ablation_spare_modes () =
  section "Ablation: spare operational modes (database tier floor)";
  let infra = Aved.Experiments.infrastructure () in
  let service = Aved.Experiments.ecommerce () in
  let tier =
    match Aved_model.Service.find_tier service "database" with
    | Some t -> t
    | None -> failwith "database tier missing"
  in
  List.iter
    (fun (label, explore) ->
      let config =
        { Search.Search_config.default with explore_spare_modes = explore }
      in
      let frontier =
        Search.Tier_search.frontier config infra ~tier ~demand:5000.
      in
      match List.rev frontier with
      | best :: _ ->
          Printf.printf
            "%-18s floor %8.2f min/yr at cost %s/yr (%d frontier points)\n"
            label
            (Duration.minutes (Search.Candidate.downtime best))
            (Aved_units.Money.to_string best.Search.Candidate.cost)
            (List.length frontier)
      | [] -> Printf.printf "%-18s no designs\n" label)
    [ ("cold spares only", false); ("all spare modes", true) ]

(* Distribution shapes: mean-preserving burstiness moves finite-job
   completion times even though steady-state availability is
   insensitive to it. *)
let ablation_shapes () =
  section "Ablation: failure-distribution shape vs job completion time";
  let infra = Aved.Experiments.infrastructure_bronze () in
  let tier = Aved.Experiments.computation_tier () in
  match
    Search.Job_search.optimal Aved.Experiments.fig7_config infra ~tier
      ~job_size:Aved.Experiments.scientific_job_size
      ~max_time:(Duration.of_hours 100.)
  with
  | None -> print_endline "100 h design unexpectedly infeasible"
  | Some c ->
      let config =
        {
          Aved_avail.Monte_carlo.replications = 32;
          horizon = Duration.of_years 1.;
          seed = 7;
        }
      in
      Printf.printf "design: %s\n"
        (Format.asprintf "%a" Search.Job_search.pp_candidate c);
      List.iter
        (fun (label, shapes) ->
          let summary =
            Aved_avail.Monte_carlo.job_completion_times ~config ~shapes
              c.Search.Job_search.model
              ~job_size:Aved.Experiments.scientific_job_size
          in
          Printf.printf "%-24s mean %7.2f h (min %.2f, max %.2f)\n" label
            summary.Aved_stats.Stats.mean summary.min summary.max)
        [
          ("exponential", Aved_avail.Monte_carlo.exponential_shapes);
          ( "weibull k=0.6 (bursty)",
            {
              Aved_avail.Monte_carlo.failure =
                Aved_avail.Monte_carlo.Weibull_shape 0.6;
              repair = Aved_avail.Monte_carlo.Exponential;
            } );
          ( "weibull k=2.0 (regular)",
            {
              Aved_avail.Monte_carlo.failure =
                Aved_avail.Monte_carlo.Weibull_shape 2.0;
              repair = Aved_avail.Monte_carlo.Exponential;
            } );
          ( "lognormal repairs",
            {
              Aved_avail.Monte_carlo.failure =
                Aved_avail.Monte_carlo.Exponential;
              repair = Aved_avail.Monte_carlo.Lognormal_sigma 1.2;
            } );
        ]

(* Checkpoint interval: the T_job(interval) curve behind the Fig. 7
   discussion — overhead below the slowdown threshold, loss-window
   growth above it. *)
let ablation_checkpoint_interval () =
  section "Ablation: job time vs checkpoint interval (rH, n=40, central)";
  let infra = Aved.Experiments.infrastructure_bronze () in
  let tier = Aved.Experiments.computation_tier () in
  let option = List.hd tier.Aved_model.Service.options in
  List.iter
    (fun minutes ->
      let settings =
        [
          ( "maintenanceA",
            [ ("level", Aved_model.Mechanism.Enum_value "bronze") ] );
          ( "checkpoint",
            [
              ( "storage_location",
                Aved_model.Mechanism.Enum_value "central" );
              ( "checkpoint_interval",
                Aved_model.Mechanism.Duration_value
                  (Duration.of_minutes minutes) );
            ] );
        ]
      in
      let design =
        Aved_model.Design.tier_design ~tier_name:"computation" ~resource:"rH"
          ~n_active:40 ~n_spare:1 ~mechanism_settings:settings ()
      in
      let candidate =
        Search.Job_search.evaluate Aved.Experiments.fig7_config infra ~option
          ~job_size:Aved.Experiments.scientific_job_size design
      in
      Printf.printf "interval %8.1f min -> job %8.2f h\n" minutes
        (Duration.hours candidate.Search.Job_search.execution_time))
    [ 1.; 3.; 8.; 13.3; 20.; 40.; 120.; 480.; 1440. ]

let run_ablations () =
  ablation_engines ();
  ablation_pruning ();
  ablation_spare_modes ();
  ablation_shapes ();
  ablation_checkpoint_interval ()

(* ------------------------------------------------------------------ *)
(* Timing *)

let bench_tests () =
  let open Bechamel in
  let infra = Aved.Experiments.infrastructure () in
  let app_tier = Aved.Experiments.application_tier () in
  let bronze_infra = Aved.Experiments.infrastructure_bronze () in
  let sci_tier = Aved.Experiments.computation_tier () in
  let config = Search.Search_config.default in
  (* Table 1: one evaluation sweep of every performance function. *)
  let table1 =
    Test.make ~name:"table1: evaluate performance functions"
      (Staged.stage (fun () ->
           List.iter
             (fun (o : Aved_model.Service.resource_option) ->
               for n = 1 to 64 do
                 ignore (Aved_perf.Perf_function.eval o.performance ~n)
               done)
             (app_tier.options @ sci_tier.options)))
  in
  (* Fig. 6 kernel: one application-tier frontier at load 1000. *)
  let fig6 =
    Test.make ~name:"fig6: application-tier frontier (load 1000)"
      (Staged.stage (fun () ->
           ignore
             (Search.Tier_search.frontier config infra ~tier:app_tier
                ~demand:1000.)))
  in
  (* Fig. 7 kernel: one scientific-design search at 100 h. *)
  let fig7 =
    Test.make ~name:"fig7: scientific design search (100 h)"
      (Staged.stage (fun () ->
           ignore
             (Search.Job_search.optimal Aved.Experiments.fig7_config
                bronze_infra ~tier:sci_tier
                ~job_size:Aved.Experiments.scientific_job_size
                ~max_time:(Duration.of_hours 100.))))
  in
  (* Fig. 8 kernel: frontier + tradeoff readout at load 800. *)
  let fig8 =
    Test.make ~name:"fig8: cost/availability tradeoff (load 800)"
      (Staged.stage (fun () ->
           ignore
             (Aved.Figures.fig8 ~loads:[ 800. ]
                ~downtimes_minutes:[ 0.5; 5.; 50. ] ())))
  in
  (* Substrate kernels. *)
  let gth =
    let chain = Aved_markov.Ctmc.create 120 in
    for k = 0 to 118 do
      Aved_markov.Ctmc.add_transition chain ~src:k ~dst:(k + 1)
        ~rate:(1. +. float_of_int k);
      Aved_markov.Ctmc.add_transition chain ~src:(k + 1) ~dst:k ~rate:7.
    done;
    Test.make ~name:"markov: GTH stationary (120 states)"
      (Staged.stage (fun () -> ignore (Aved_markov.Ctmc.stationary_gth chain)))
  in
  let spec_parse =
    Test.make ~name:"spec: parse Fig. 3 infrastructure"
      (Staged.stage (fun () ->
           ignore
             (Aved_spec.Spec.infrastructure_of_string
                Aved.Experiments.infrastructure_spec)))
  in
  let monte_carlo =
    let model =
      {
        Aved_avail.Tier_model.tier_name = "bench";
        n_active = 5;
        n_min = 5;
        n_spare = 1;
        failure_scope = Aved_model.Service.Resource_scope;
        classes =
          [
            {
              Aved_avail.Tier_model.label = "hw/hard";
              rate = 1. /. Duration.seconds (Duration.of_days 400.);
              mttr = Duration.of_hours 24.;
              failover_time = Duration.of_minutes 5.;
              failover_considered = true;
              repair_mechanism = None;
            };
          ];
        loss_window = None;
        effective_performance = 1000.;
      }
    in
    Test.make ~name:"sim: 10 simulated years of a 5+1 tier"
      (Staged.stage (fun () ->
           ignore
             (Aved_avail.Monte_carlo.downtime_fraction
                ~config:
                  {
                    Aved_avail.Monte_carlo.replications = 1;
                    horizon = Duration.of_years 10.;
                    seed = 1;
                  }
                model)))
  in
  (* Parallel search: the same four-load Fig. 6 sweep at one domain and
     at four. Speedup tracks the host's physical core count; on a
     single-core machine the jobs=4 run measures pool overhead and
     contention instead of speedup. *)
  let sweep_loads = [ 400.; 1000.; 1600.; 2200. ] in
  let parallel jobs =
    Test.make
      ~name:(Printf.sprintf "parallel: fig6 sweep of 4 loads, jobs=%d" jobs)
      (Staged.stage (fun () ->
           ignore
             (Aved.Figures.fig6
                ~config:(Search.Search_config.with_jobs jobs config)
                ~loads:sweep_loads ())))
  in
  (* Evaluation memo: the Fig. 7 settings grid revisits the same
     resolved tier model across checkpoint intervals; the cache turns
     repeat evaluations into hash lookups. A fresh cache per run keeps
     the measurement cold-start honest. *)
  let memo engine_of_config =
    Test.make
      ~name:
        (Printf.sprintf "memo: fig7 search (100 h), %s engine"
           (match engine_of_config with `Plain -> "plain" | `Memo -> "memoized"))
      (Staged.stage (fun () ->
           let config =
             match engine_of_config with
             | `Plain -> Aved.Experiments.fig7_config
             | `Memo -> Search.Search_config.with_memo Aved.Experiments.fig7_config
           in
           ignore
             (Search.Job_search.optimal config bronze_infra ~tier:sci_tier
                ~job_size:Aved.Experiments.scientific_job_size
                ~max_time:(Duration.of_hours 100.))))
  in
  [
    table1; fig6; fig7; fig8; gth; spec_parse; monte_carlo;
    parallel 1; parallel 4; memo `Plain; memo `Memo;
  ]

(* One wall-clock readout of the parallel search, so logs carry the
   measured ratio next to the core count it was measured on. *)
let run_parallel_speedup () =
  section "Parallel search speedup (fig6 sweep of 4 loads)";
  Printf.printf "recommended domains on this host: %d\n"
    (Domain.recommended_domain_count ());
  let time jobs =
    let config =
      Search.Search_config.with_jobs jobs Search.Search_config.default
    in
    let t0 = Unix.gettimeofday () in
    ignore (Aved.Figures.fig6 ~config ~loads:[ 400.; 1000.; 1600.; 2200. ] ());
    Unix.gettimeofday () -. t0
  in
  let t1 = time 1 in
  let t4 = time 4 in
  Printf.printf "jobs=1: %.3fs   jobs=4: %.3fs   speedup %.2fx\n" t1 t4
    (t1 /. Float.max 1e-9 t4);
  if Domain.recommended_domain_count () < 2 then
    print_endline
      "(single-core host: jobs=4 measures pool overhead, not speedup)"

let run_timing () =
  let open Bechamel in
  section "Timing (Bechamel, monotonic clock)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ estimate ] ->
              let pretty =
                if estimate > 1e9 then Printf.sprintf "%8.3f s " (estimate /. 1e9)
                else if estimate > 1e6 then
                  Printf.sprintf "%8.3f ms" (estimate /. 1e6)
                else if estimate > 1e3 then
                  Printf.sprintf "%8.3f us" (estimate /. 1e3)
                else Printf.sprintf "%8.0f ns" estimate
              in
              Printf.printf "%-52s %s/run\n%!" name pretty
          | Some _ | None -> Printf.printf "%-52s (no estimate)\n%!" name)
        results)
    (bench_tests ())

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let timing = not (List.mem "--no-timing" args) in
  let only = List.filter (fun a -> a <> "--no-timing") args in
  let want name = only = [] || List.mem name only in
  if List.mem "json" only then json_search_benchmark ()
  else begin
  if want "table1" then print_table1 ();
  if want "fig6" then print_fig6 ();
  if want "fig7" then print_fig7 ();
  if want "fig8" then print_fig8 ();
  if want "ablations" then run_ablations ();
  if want "speedup" && only <> [] then run_parallel_speedup ();
  if timing && only = [] then (
    run_parallel_speedup ();
    run_timing ())
  end
