(* aved trace: fetch one completed request's span tree from a running
   serve daemon (the [trace] verb over a head-sampled trace id) and
   render it as a waterfall — tree-indented span names, a time bar
   scaled to the request's total latency, and per-span resource
   attribution (CPU ms, allocated words, owning domain). [--chrome]
   re-exports the same spans through the telemetry trace_event writer
   for chrome://tracing / ui.perfetto.dev; [--json] prints the wire
   document verbatim. *)

module Json = Aved_explain.Json
module Protocol = Aved_server.Protocol
module Telemetry = Aved_telemetry.Telemetry

type span = {
  id : int;
  parent : int;
  name : string;
  start_ms : float;
  dur_ms : float;
  tid : int;
  cpu_ms : float;
  minor_words : float;
  major_words : float;
}

type trace = {
  trace_id : string;
  verb : string;
  outcome : string;
  started_s : float;
  total_ms : float;
  spans_dropped : int;
  counters : (string * int) list;
  spans : span list;
}

(* ------------------------------------------------------------------ *)
(* Wire *)

let rpc ic oc verb params =
  output_string oc (Protocol.request_line verb params);
  output_char oc '\n';
  flush oc;
  match input_line ic with
  | exception End_of_file -> failwith "server closed the connection"
  | line -> (
      match Protocol.response_of_line line with
      | Ok { Protocol.outcome = Ok result; _ } -> result
      | Ok { Protocol.outcome = Error (_, message); _ } ->
          failwith (Printf.sprintf "server error: %s" message)
      | Error message ->
          failwith (Printf.sprintf "unparsable response: %s" message))

let fetch ~endpoint ~trace_id =
  let fd = Top_ui.connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let result =
    rpc ic oc Protocol.Trace [ ("trace_id", Json.String trace_id) ]
  in
  match List.assoc_opt "trace" (Top_ui.obj_fields result) with
  | Some doc -> doc
  | None -> failwith "malformed trace result: no \"trace\" field"

(* ------------------------------------------------------------------ *)
(* Decoding *)

let str json name =
  match Top_ui.field json name with Some (Json.String s) -> s | _ -> ""

let int_field json name =
  match Top_ui.field json name with Some (Json.Int i) -> i | _ -> 0

let decode_span json =
  {
    id = int_field json "id";
    parent = int_field json "parent";
    name = str json "name";
    start_ms = Top_ui.num json "start_ms";
    dur_ms = Top_ui.num json "dur_ms";
    tid = int_field json "tid";
    cpu_ms = Top_ui.num json "cpu_ms";
    minor_words = Top_ui.num json "minor_words";
    major_words = Top_ui.num json "major_words";
  }

let decode doc =
  let counters =
    match Top_ui.field doc "counters" with
    | Some (Json.Obj fields) ->
        List.filter_map
          (fun (k, v) -> match v with Json.Int n -> Some (k, n) | _ -> None)
          fields
    | _ -> []
  in
  let spans =
    match Top_ui.field doc "spans" with
    | Some (Json.List items) -> List.map decode_span items
    | _ -> []
  in
  {
    trace_id = str doc "trace_id";
    verb = str doc "verb";
    outcome = str doc "outcome";
    started_s = Top_ui.num doc "started_s";
    total_ms = Top_ui.num doc "total_ms";
    spans_dropped = int_field doc "spans_dropped";
    counters;
    spans;
  }

(* ------------------------------------------------------------------ *)
(* Waterfall rendering *)

let bar_width = 32

let bar ~total_ms s =
  let b = Bytes.make bar_width '.' in
  if total_ms > 0. then begin
    let pos ms =
      let p = int_of_float (ms /. total_ms *. float_of_int bar_width) in
      Stdlib.min (bar_width - 1) (Stdlib.max 0 p)
    in
    let first = pos s.start_ms in
    let last = Stdlib.max first (pos (s.start_ms +. s.dur_ms) - 1) in
    for i = first to last do
      Bytes.set b i '='
    done
  end;
  Bytes.to_string b

let words w =
  if w >= 1e9 then Printf.sprintf "%.1fGw" (w /. 1e9)
  else if w >= 1e6 then Printf.sprintf "%.1fMw" (w /. 1e6)
  else if w >= 1e3 then Printf.sprintf "%.1fkw" (w /. 1e3)
  else Printf.sprintf "%.0fw" w

(* Depth-first over the parent links: children ordered by start time
   then id, which is also how the collector reports them. A span whose
   parent is missing (possible only if the daemon's span cap was hit)
   is shown at the root with a [?] marker rather than hidden. *)
let render buf t =
  let children = Hashtbl.create 64 in
  let ids = Hashtbl.create 64 in
  List.iter (fun s -> Hashtbl.replace ids s.id s) t.spans;
  let orphan s = s.parent <> 0 && not (Hashtbl.mem ids s.parent) in
  List.iter
    (fun s ->
      let key = if orphan s then 0 else s.parent in
      Hashtbl.replace children key
        (s :: (Option.value (Hashtbl.find_opt children key) ~default:[])))
    t.spans;
  let sorted key =
    List.sort
      (fun a b ->
        match Float.compare a.start_ms b.start_ms with
        | 0 -> Int.compare a.id b.id
        | c -> c)
      (Option.value (Hashtbl.find_opt children key) ~default:[])
  in
  Buffer.add_string buf
    (Printf.sprintf "trace %s  verb=%s outcome=%s  total %.2f ms%s\n"
       t.trace_id t.verb t.outcome t.total_ms
       (if t.spans_dropped > 0 then
          Printf.sprintf "  (%d spans dropped)" t.spans_dropped
        else ""));
  Buffer.add_string buf
    (Printf.sprintf "  %-*s %-36s %9s %9s %8s %9s %4s\n" bar_width ""
       "span" "start ms" "dur ms" "cpu ms" "alloc" "dom");
  let rec walk depth s =
    let label =
      Printf.sprintf "%s%s%s"
        (String.concat "" (List.init depth (fun _ -> "  ")))
        (if orphan s then "? " else "")
        s.name
    in
    Buffer.add_string buf
      (Printf.sprintf "  %s %-36s %9.3f %9.3f %8.3f %9s %4d\n"
         (bar ~total_ms:t.total_ms s)
         label s.start_ms s.dur_ms s.cpu_ms
         (words (s.minor_words +. s.major_words))
         s.tid);
    List.iter (walk (depth + 1)) (sorted s.id)
  in
  List.iter (walk 0) (sorted 0);
  if t.counters <> [] then begin
    Buffer.add_string buf "\nrequest-scoped counter deltas:\n";
    List.iter
      (fun (name, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-40s %d\n" name v))
      (List.sort compare t.counters)
  end

(* ------------------------------------------------------------------ *)
(* Chrome export: rebase the spans onto the request's absolute clock
   and reuse the registry's trace_event writer. Chrome nests by time
   containment per tid, which matches the parent links here because a
   child span always runs within its parent on the same domain. *)

let write_chrome t path =
  let spans =
    List.map
      (fun s ->
        {
          Telemetry.span_name = s.name;
          start_s = t.started_s +. (s.start_ms /. 1e3);
          dur_s = s.dur_ms /. 1e3;
          tid = s.tid;
        })
      t.spans
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Telemetry.write_chrome_spans spans oc)

(* ------------------------------------------------------------------ *)
(* Entry point *)

let show ~endpoint ~trace_id ~json ~chrome =
  let doc = fetch ~endpoint ~trace_id in
  if json then print_endline (Json.to_string doc)
  else begin
    let t = decode doc in
    let buf = Buffer.create 4096 in
    render buf t;
    print_string (Buffer.contents buf)
  end;
  match chrome with
  | None -> ()
  | Some path ->
      write_chrome (decode doc) path;
      Printf.eprintf "wrote %s\n%!" path
