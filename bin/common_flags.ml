(* Shared command-line plumbing of the aved subcommands: the flags
   every search-running command repeats (--jobs/--stats/--trace/
   --no-check and the spec-file pair), the requirements triple, the
   implicit static-check gate, telemetry installation, and one error
   handler giving every command the same exit-code contract:

     0  success
     1  user error (bad flag values, malformed or rejected specs) —
        one line on stderr
     2  internal error (a bug) — one "internal error:" line on stderr

   (cmdliner itself exits 124 on command-line parse errors.) *)

open Cmdliner
module Duration = Aved_units.Duration
module Telemetry = Aved_telemetry.Telemetry

let ok_exit = 0
let user_error_exit = 1
let internal_error_exit = 2

(* Run a command body, mapping user-facing errors (bad arguments, bad
   specification files) to [user_error_exit] with a one-line message on
   stderr and anything unexpected to [internal_error_exit]. The body
   returns its own exit status so commands can signal failure without
   exceptions too. *)
let handle_errors f =
  match f () with
  | code -> code
  | exception Failure message ->
      prerr_endline message;
      user_error_exit
  | exception exn -> (
      match Aved_spec.Spec.error_to_string exn with
      | Some message ->
          prerr_endline message;
          user_error_exit
      | None ->
          Printf.eprintf "internal error: %s\n%!" (Printexc.to_string exn);
          internal_error_exit)

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let infra_file =
  let doc = "Infrastructure specification file (paper Fig. 3 format)." in
  Arg.(required & opt (some file) None & info [ "infra"; "i" ] ~doc ~docv:"FILE")

let service_file =
  let doc = "Service specification file (paper Figs. 4/5 format)." in
  Arg.(
    required & opt (some file) None & info [ "service"; "s" ] ~doc ~docv:"FILE")

let load_arg =
  let doc = "Throughput requirement in service-specific units of load." in
  Arg.(value & opt (some float) None & info [ "load" ] ~doc ~docv:"UNITS")

let downtime_arg =
  let doc = "Maximum annual downtime, in minutes." in
  Arg.(value & opt (some float) None & info [ "downtime" ] ~doc ~docv:"MIN")

let job_hours_arg =
  let doc = "Maximum expected job completion time, in hours." in
  Arg.(value & opt (some float) None & info [ "job-hours" ] ~doc ~docv:"H")

let tier_arg =
  let doc = "Tier to analyze (defaults to the first tier)." in
  Arg.(value & opt (some string) None & info [ "tier" ] ~doc ~docv:"NAME")

let jobs_arg =
  let doc =
    "Number of domains the search may use (defaults to the runtime's \
     recommended domain count). The result is identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~doc ~docv:"N")

let stats_arg =
  let doc =
    "Print a telemetry summary (search counters, engine latency histograms, \
     span totals) to stderr after the command finishes."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let no_check_arg =
  let doc =
    "Skip the implicit static check ($(b,aved check)) of the specification \
     files. Without this flag, commands refuse to run on specs with \
     Error-severity diagnostics."
  in
  Arg.(value & flag & info [ "no-check" ] ~doc)

let prune_bounds_arg =
  let doc =
    "Let the search skip candidates the interval bounds analysis proves \
     cannot beat the incumbent or meet the requirement. The chosen design \
     and frontier are identical to an unpruned run; pruned candidates \
     appear in provenance ($(b,aved explain)) with a machine-checkable \
     certificate. Ignored when spare-active modes are explored."
  in
  Arg.(value & flag & info [ "prune-bounds" ] ~doc)

let trace_file_arg =
  let doc =
    "Record span timings and write them to $(docv) as Chrome trace-event \
     JSON (load in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

let json_arg =
  let doc =
    Printf.sprintf
      "Emit the result as a single JSON object on stdout (Aved wire API, \
       schema_version %d — the same encoding $(b,aved serve) returns)."
      Aved_api.Api.schema_version
  in
  Arg.(value & flag & info [ "json" ] ~doc)

(* ------------------------------------------------------------------ *)
(* Shared command bodies *)

(* The requirements triple shared by design/explain/report: enterprise
   mode wants --load and --downtime together, finite-job mode --job-hours
   alone. *)
let requirements ~load ~downtime ~job_hours =
  match (load, downtime, job_hours) with
  | Some load, Some minutes, None ->
      Aved_model.Requirements.enterprise ~throughput:load
        ~max_annual_downtime:(Duration.of_minutes minutes)
  | None, None, Some hours ->
      Aved_model.Requirements.finite_job
        ~max_execution_time:(Duration.of_hours hours)
  | _ -> failwith "specify either --load and --downtime, or --job-hours alone"

(* Load the two spec files and run the static checker over them, unless
   --no-check. Errors refuse the run; clean specs print nothing, so
   stdout stays byte-identical to an unchecked run. Spec.load runs
   first so syntactically broken files keep their original one-line
   "spec error" report. *)
let load_checked ~no_check ~infra_file ~service_file =
  let infra, service = Aved_spec.Spec.load ~infra_file ~service_file in
  if not no_check then begin
    let diags = Aved_check.Check.check_files [ infra_file; service_file ] in
    let errors =
      List.filter
        (fun (d : Aved_check.Diagnostic.t) ->
          d.severity = Aved_check.Diagnostic.Error)
        diags
    in
    if errors <> [] then begin
      prerr_endline (Aved_check.Check.render_human errors);
      failwith
        (Printf.sprintf
           "static check failed with %d error(s); use --no-check to override"
           (List.length errors))
    end
  end;
  (infra, service)

(* Install a recording registry around a command body when --stats or
   --trace asks for one. With both flags absent no registry exists, so
   every instrumentation point in the libraries stays on its disabled
   one-branch path and output is byte-identical to an uninstrumented
   build. *)
let with_telemetry ?(stats = false) ?trace f =
  if (not stats) && trace = None then f ()
  else begin
    let t = Telemetry.create () in
    Telemetry.install t;
    let code = Fun.protect ~finally:(fun () -> Telemetry.uninstall ()) f in
    if stats then Telemetry.pp_summary Format.err_formatter t;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Telemetry.write_chrome_trace t oc;
        close_out oc;
        Printf.eprintf "wrote trace to %s\n%!" path)
      trace;
    code
  end

(* Search configuration of every command: the requested parallelism plus
   the memoized analytic engine. Validated here rather than in the
   cmdliner converter so every command reports bad values the same way
   (exit 1, one line on stderr). *)
let search_config ?(base = Aved_search.Search_config.default)
    ?(prune_bounds = false) jobs =
  let jobs =
    match jobs with
    | Some j when j < 1 ->
        failwith (Printf.sprintf "--jobs must be a positive integer (got %d)" j)
    | Some j -> j
    | None -> Domain.recommended_domain_count ()
  in
  base
  |> Aved_search.Search_config.with_jobs jobs
  |> Aved_search.Search_config.with_prune_bounds prune_bounds
  |> Aved_search.Search_config.with_memo
