(* The aved command-line tool: design services from specification files
   and regenerate the paper's evaluation artifacts. *)

open Cmdliner
module Duration = Aved_units.Duration
module Model = Aved_model
module Telemetry = Aved_telemetry.Telemetry

(* Run a command body, mapping user-facing errors (bad arguments, bad
   specification files) to exit status 1 with a one-line message on
   stderr. The body returns its own exit status so commands can signal
   failure without exceptions too. *)
let handle_spec_errors f =
  match f () with
  | code -> code
  | exception Failure message ->
      prerr_endline message;
      1
  | exception exn -> (
      match Aved_spec.Spec.error_to_string exn with
      | Some message ->
          prerr_endline message;
          1
      | None -> raise exn)

(* ------------------------------------------------------------------ *)
(* Common arguments *)

let infra_file =
  let doc = "Infrastructure specification file (paper Fig. 3 format)." in
  Arg.(required & opt (some file) None & info [ "infra"; "i" ] ~doc ~docv:"FILE")

let service_file =
  let doc = "Service specification file (paper Figs. 4/5 format)." in
  Arg.(
    required & opt (some file) None & info [ "service"; "s" ] ~doc ~docv:"FILE")

let load_arg =
  let doc = "Throughput requirement in service-specific units of load." in
  Arg.(value & opt (some float) None & info [ "load" ] ~doc ~docv:"UNITS")

let downtime_arg =
  let doc = "Maximum annual downtime, in minutes." in
  Arg.(value & opt (some float) None & info [ "downtime" ] ~doc ~docv:"MIN")

let job_hours_arg =
  let doc = "Maximum expected job completion time, in hours." in
  Arg.(value & opt (some float) None & info [ "job-hours" ] ~doc ~docv:"H")

let tier_arg =
  let doc = "Tier to analyze (defaults to the first tier)." in
  Arg.(value & opt (some string) None & info [ "tier" ] ~doc ~docv:"NAME")

let jobs_arg =
  let doc =
    "Number of domains the search may use (defaults to the runtime's \
     recommended domain count). The result is identical for every value."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~doc ~docv:"N")

let stats_arg =
  let doc =
    "Print a telemetry summary (search counters, engine latency histograms, \
     span totals) to stderr after the command finishes."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let no_check_arg =
  let doc =
    "Skip the implicit static check ($(b,aved check)) of the specification \
     files. Without this flag, commands refuse to run on specs with \
     Error-severity diagnostics."
  in
  Arg.(value & flag & info [ "no-check" ] ~doc)

(* Load the two spec files and run the static checker over them, unless
   --no-check. Errors refuse the run; clean specs print nothing, so
   stdout stays byte-identical to an unchecked run. Spec.load runs
   first so syntactically broken files keep their original one-line
   "spec error" report. *)
let load_checked ~no_check ~infra_file ~service_file =
  let infra, service = Aved_spec.Spec.load ~infra_file ~service_file in
  if not no_check then begin
    let diags = Aved_check.Check.check_files [ infra_file; service_file ] in
    let errors =
      List.filter
        (fun (d : Aved_check.Diagnostic.t) ->
          d.severity = Aved_check.Diagnostic.Error)
        diags
    in
    if errors <> [] then begin
      prerr_endline (Aved_check.Check.render_human errors);
      failwith
        (Printf.sprintf
           "static check failed with %d error(s); use --no-check to override"
           (List.length errors))
    end
  end;
  (infra, service)

let trace_file_arg =
  let doc =
    "Record span timings and write them to $(docv) as Chrome trace-event \
     JSON (load in chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~doc ~docv:"FILE")

(* Install a recording registry around a command body when --stats or
   --trace asks for one. With both flags absent no registry exists, so
   every instrumentation point in the libraries stays on its disabled
   one-branch path and output is byte-identical to an uninstrumented
   build. *)
let with_telemetry ?(stats = false) ?trace f =
  if (not stats) && trace = None then f ()
  else begin
    let t = Telemetry.create () in
    Telemetry.install t;
    let code = Fun.protect ~finally:(fun () -> Telemetry.uninstall ()) f in
    if stats then Telemetry.pp_summary Format.err_formatter t;
    Option.iter
      (fun path ->
        let oc = open_out path in
        Telemetry.write_chrome_trace t oc;
        close_out oc;
        Printf.eprintf "wrote trace to %s\n%!" path)
      trace;
    code
  end

(* Search configuration of every command: the requested parallelism plus
   the memoized analytic engine. Validated here rather than in the
   cmdliner converter so every command reports bad values the same way
   (exit 1, one line on stderr). *)
let search_config ?(base = Aved_search.Search_config.default) jobs =
  let jobs =
    match jobs with
    | Some j when j < 1 ->
        failwith (Printf.sprintf "--jobs must be a positive integer (got %d)" j)
    | Some j -> j
    | None -> Domain.recommended_domain_count ()
  in
  base
  |> Aved_search.Search_config.with_jobs jobs
  |> Aved_search.Search_config.with_memo

(* ------------------------------------------------------------------ *)
(* aved design *)

let design_cmd =
  let run infra_file service_file load downtime job_hours jobs stats trace
      no_check =
    handle_spec_errors (fun () ->
        let requirements =
          match (load, downtime, job_hours) with
          | Some load, Some minutes, None ->
              Model.Requirements.enterprise ~throughput:load
                ~max_annual_downtime:(Duration.of_minutes minutes)
          | None, None, Some hours ->
              Model.Requirements.finite_job
                ~max_execution_time:(Duration.of_hours hours)
          | _ ->
              failwith
                "specify either --load and --downtime, or --job-hours alone"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        match Aved.Engine.design ~config infra service requirements with
        | Some report ->
            Format.printf "%a@." Aved.Engine.pp_report report;
            0
        | None ->
            Format.printf
              "no feasible design: the design space holds no configuration \
               meeting %a@."
              Model.Requirements.pp requirements;
            0)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ jobs_arg $ stats_arg $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:
         "Search the design space for the minimum-cost design meeting the \
          requirements.")
    term

(* ------------------------------------------------------------------ *)
(* aved frontier *)

let frontier_cmd =
  let explain_flag =
    let doc =
      "Annotate each frontier step with what changed against the previous \
       design and what the extra spend buys (annotation lines start with \
       '    ^'; the plain frontier lines are unchanged)."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run infra_file service_file tier_name load explain jobs stats trace
      no_check =
    handle_spec_errors (fun () ->
        let load =
          match load with Some l -> l | None -> failwith "--load is required"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let tier =
          match tier_name with
          | Some name -> (
              match Model.Service.find_tier service name with
              | Some t -> t
              | None -> failwith (Printf.sprintf "no tier %S" name))
          | None -> List.hd service.Model.Service.tiers
        in
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        let frontier =
          Aved_search.Tier_search.frontier config infra ~tier ~demand:load
        in
        Format.printf
          "cost-availability frontier of tier %s at load %g (%d designs):@."
          tier.Model.Service.tier_name load (List.length frontier);
        let prev = ref None in
        List.iter
          (fun (c : Aved_search.Candidate.t) ->
            Format.printf "  %-44s downtime %10.3f min/yr   cost %s/yr@."
              (Aved_search.Candidate.family c
                 ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min)
              (Duration.minutes (Aved_search.Candidate.downtime c))
              (Aved_units.Money.to_string c.cost);
            if explain then begin
              Option.iter
                (fun p ->
                  Format.printf "    ^ %s@."
                    (Aved_explain.Explain.annotate_step ~prev:p ~next:c))
                !prev;
              prev := Some c
            end)
          frontier;
        0)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ tier_arg $ load_arg
      $ explain_flag $ jobs_arg $ stats_arg $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Print the cost-availability Pareto frontier of one tier.")
    term

(* ------------------------------------------------------------------ *)
(* Figure commands (built-in paper scenarios) *)

let fig6_cmd =
  let run jobs stats trace =
    handle_spec_errors (fun () ->
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig6 Format.std_formatter
          (Aved.Figures.fig6 ~config ());
        0)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "Regenerate paper Fig. 6: optimal application-tier design families \
          over load and downtime requirements.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let fig7_cmd =
  let run jobs stats trace =
    handle_spec_errors (fun () ->
        let config = search_config ~base:Aved.Experiments.fig7_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig7 Format.std_formatter
          (Aved.Figures.fig7 ~config ());
        0)
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Regenerate paper Fig. 7: optimal scientific-application design vs \
          execution-time requirement.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let fig8_cmd =
  let run jobs stats trace =
    handle_spec_errors (fun () ->
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig8 Format.std_formatter
          (Aved.Figures.fig8 ~config ());
        0)
  in
  Cmd.v
    (Cmd.info "fig8"
       ~doc:
         "Regenerate paper Fig. 8: extra annual cost of availability vs \
          downtime requirement.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let table1_cmd =
  let run () =
    Aved.Figures.print_table1 Format.std_formatter;
    0
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print paper Table 1: the performance functions.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* aved validate: cross-engine agreement on the built-in scenario *)

let validate_cmd =
  let run jobs stats trace =
    handle_spec_errors @@ fun () ->
    let config = search_config jobs in
    with_telemetry ~stats ?trace @@ fun () ->
    let infra = Aved.Experiments.infrastructure () in
    let service = Aved.Experiments.ecommerce () in
    let requirements =
      Model.Requirements.enterprise ~throughput:1000.
        ~max_annual_downtime:(Duration.of_minutes 100.)
    in
    match Aved.Engine.design ~config infra service requirements with
    | None ->
        prerr_endline "validation scenario unexpectedly infeasible";
        1
    | Some report ->
        Format.printf "%a@.@." Aved.Engine.pp_report report;
        let models =
          Aved.Engine.evaluate_design infra service report.design
            ~demand:(Some 1000.)
        in
        Format.printf
          "engine cross-check (per tier, annual downtime in minutes):@.";
        Format.printf "%-14s %12s %12s %12s@." "tier" "analytic" "exact"
          "simulation";
        List.iter
          (fun (m : Aved_avail.Tier_model.t) ->
            let minutes f = Duration.minutes (Duration.of_years f) in
            let analytic = Aved_avail.Analytic.downtime_fraction m in
            let exact =
              match Aved_avail.Exact.downtime_fraction ~max_states:50000 m with
              | v -> Printf.sprintf "%12.3f" (minutes v)
              | exception Invalid_argument _ -> "  (too large)"
            in
            let simulated =
              Aved_avail.Monte_carlo.downtime_fraction
                ~config:
                  {
                    Aved_avail.Monte_carlo.replications = 16;
                    horizon = Duration.of_years 30.;
                    seed = 42;
                  }
                m
            in
            Format.printf "%-14s %12.3f %s %12.3f@." m.tier_name
              (minutes analytic) exact (minutes simulated))
          models;
        0
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Design the built-in e-commerce scenario and cross-check the three \
          availability engines on the result.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* aved explain: decision provenance for a design run *)

let explain_cmd =
  let top_arg =
    let doc = "Runner-up candidates to show per tier." in
    Arg.(value & opt int 5 & info [ "top" ] ~doc ~docv:"K")
  in
  let json_arg =
    let doc = "Emit the explanation as a single JSON object on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run infra_file service_file load downtime job_hours top json jobs stats
      trace no_check =
    handle_spec_errors (fun () ->
        let requirements =
          match (load, downtime, job_hours) with
          | Some load, Some minutes, None ->
              Model.Requirements.enterprise ~throughput:load
                ~max_annual_downtime:(Duration.of_minutes minutes)
          | None, None, Some hours ->
              Model.Requirements.finite_job
                ~max_execution_time:(Duration.of_hours hours)
          | _ ->
              failwith
                "specify either --load and --downtime, or --job-hours alone"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        let trail = Aved_search.Provenance.create () in
        let result =
          Aved_search.Provenance.with_trail trail @@ fun () ->
          Aved.Engine.design ~config infra service requirements
        in
        match result with
        | None ->
            if json then
              print_endline
                (Aved_explain.Json.to_string
                   (Aved_explain.Json.Obj
                      [ ("feasible", Aved_explain.Json.Bool false) ]))
            else print_endline "no feasible design";
            0
        | Some report ->
            let demand =
              match requirements with
              | Model.Requirements.Enterprise { throughput; _ } ->
                  Some throughput
              | Model.Requirements.Finite_job _ -> None
            in
            let models =
              Aved.Engine.evaluate_design infra service report.design ~demand
            in
            let engine = config.Aved_search.Search_config.engine in
            let explanation =
              {
                Aved_explain.Explain.service_name =
                  service.Model.Service.service_name;
                engine = Aved_explain.Explain.engine_label engine;
                cost = report.cost;
                downtime = report.downtime;
                execution_time = report.execution_time;
                tiers =
                  List.map2
                    (fun (td : Model.Design.tier_design) model ->
                      Aved_explain.Explain.explain_tier ~top ~trail ~engine
                        ~design:td
                        ~cost:(Model.Design.tier_cost infra td)
                        ~model ())
                    report.design.Model.Design.tiers models;
                noted = Aved_search.Provenance.noted trail;
                dropped = Aved_search.Provenance.dropped trail;
              }
            in
            if json then
              print_endline
                (Aved_explain.Json.to_string
                   (Aved_explain.Explain.to_json explanation))
            else Format.printf "%a@." Aved_explain.Explain.pp explanation;
            0)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ top_arg $ json_arg $ jobs_arg $ stats_arg
      $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Design a service, then explain the decision: per-failure-class \
          downtime attribution of the winner and the top runner-up \
          candidates with the reason each one lost.")
    term

(* ------------------------------------------------------------------ *)
(* aved report: the full design document *)

let report_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to a file.")
  in
  let run infra_file service_file load downtime job_hours jobs out stats trace
      no_check =
    handle_spec_errors (fun () ->
        let requirements =
          match (load, downtime, job_hours) with
          | Some load, Some minutes, None ->
              Model.Requirements.enterprise ~throughput:load
                ~max_annual_downtime:(Duration.of_minutes minutes)
          | None, None, Some hours ->
              Model.Requirements.finite_job
                ~max_execution_time:(Duration.of_hours hours)
          | _ ->
              failwith
                "specify either --load and --downtime, or --job-hours alone"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        match Aved.Report.generate ~config infra service requirements with
        | None ->
            print_endline "no feasible design";
            0
        | Some text ->
            (match out with
            | None -> print_string text
            | Some path ->
                let oc = open_out path in
                output_string oc text;
                close_out oc;
                Printf.printf "wrote %s\n" path);
            0)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ jobs_arg $ out_arg $ stats_arg $ trace_file_arg
      $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Design a service and emit the full report: configuration, cost, \
          per-tier downtime attribution, first-month transient, engine \
          cross-check and sensitivity analysis.")
    term

(* ------------------------------------------------------------------ *)
(* aved ablate: distribution-shape sensitivity via simulation *)

let ablate_cmd =
  let run stats trace =
    handle_spec_errors @@ fun () ->
    with_telemetry ~stats ?trace @@ fun () ->
    let infra = Aved.Experiments.infrastructure () in
    let service = Aved.Experiments.ecommerce () in
    match
      Aved.Engine.design infra service
        (Model.Requirements.enterprise ~throughput:1000.
           ~max_annual_downtime:(Duration.of_minutes 100.))
    with
    | None ->
        prerr_endline "scenario unexpectedly infeasible";
        1
    | Some report ->
        Format.printf "%a@.@." Aved.Engine.pp_report report;
        Format.printf
          "distribution-shape ablation (simulated annual downtime, \
           min/yr; means preserved):@.";
        Format.printf "%-14s %12s %12s %12s %12s@." "tier" "exponential"
          "weibull .7" "weibull 1.5" "lognorm rep";
        let shapes =
          let open Aved_avail.Monte_carlo in
          [
            exponential_shapes;
            { exponential_shapes with failure = Weibull_shape 0.7 };
            { exponential_shapes with failure = Weibull_shape 1.5 };
            { exponential_shapes with repair = Lognormal_sigma 1.2 };
          ]
        in
        let config =
          {
            Aved_avail.Monte_carlo.replications = 16;
            horizon = Duration.of_years 30.;
            seed = 2004;
          }
        in
        List.iter
          (fun (m : Aved_avail.Tier_model.t) ->
            let cells =
              List.map
                (fun s ->
                  Printf.sprintf "%12.2f"
                    (Duration.minutes
                       (Aved_avail.Monte_carlo.annual_downtime ~config ~shapes:s
                          m)))
                shapes
            in
            Format.printf "%-14s %s@." m.tier_name (String.concat " " cells))
          (Aved.Engine.evaluate_design infra service report.design
             ~demand:(Some 1000.));
        0
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:
         "Simulate the designed e-commerce scenario under non-exponential \
          failure and repair distributions (mean-preserving) and compare \
          downtime.")
    Term.(const run $ stats_arg $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* aved adapt: replay a load trace through the adaptive controller *)

let adapt_cmd =
  let trace_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"CSV"
          ~doc:
            "Load trace as hours,load CSV rows. Without it, a synthetic \
             3-day diurnal trace spanning half to full of --load is used.")
  in
  let headroom_arg =
    Arg.(
      value & opt float 0.3
      & info [ "headroom" ] ~docv:"FRACTION"
          ~doc:"Over-provisioning tolerated before scaling down.")
  in
  (* [--trace] already names the load-trace CSV here, so adapt exposes
     only [--stats]; use another command for span traces. *)
  let run infra_file service_file tier_name load downtime trace headroom jobs
      stats no_check =
    handle_spec_errors (fun () ->
        let downtime =
          match downtime with
          | Some d -> d
          | None -> failwith "--downtime is required"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let tier =
          match tier_name with
          | Some name -> (
              match Model.Service.find_tier service name with
              | Some t -> t
              | None -> failwith (Printf.sprintf "no tier %S" name))
          | None -> List.hd service.Model.Service.tiers
        in
        let trace =
          match trace with
          | Some path -> Aved_search.Load_trace.of_csv_file path
          | None ->
              let peak = Option.value load ~default:2000. in
              Aved_search.Load_trace.diurnal ~days:3 ~samples_per_day:12
                ~base:(peak /. 2.) ~peak ()
        in
        let config = search_config jobs in
        with_telemetry ~stats @@ fun () ->
        let replay =
          Aved_search.Adaptive.replay config infra ~tier
            ~max_downtime:(Duration.of_minutes downtime)
            ~policy:{ Aved_search.Adaptive.headroom }
            ~trace ()
        in
        Format.printf "%-10s %10s  %-44s %s@." "hour" "load" "design" "";
        List.iter
          (fun (s : Aved_search.Adaptive.step) ->
            Format.printf "%-10.1f %10.0f  %-44s %s@."
              (Duration.hours s.time) s.load
              (Aved_search.Candidate.family s.candidate
                 ~n_min_nominal:
                   s.candidate.model.Aved_avail.Tier_model.n_min)
              (if s.redesigned then "<- redesign" else ""))
          replay.steps;
        Format.printf
          "@.%d redesigns after the initial one; time-weighted cost %s/yr@."
          replay.redesigns
          (Aved_units.Money.to_string replay.average_cost);
        0)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ tier_arg $ load_arg
      $ downtime_arg $ trace_arg $ headroom_arg $ jobs_arg $ stats_arg
      $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Replay a load trace through the adaptive redesign controller \
          (utility-computing mode).")
    term

(* ------------------------------------------------------------------ *)
(* aved check: the static analyzer *)

let check_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Specification files to check together. Files are classified \
             by content: a file with an $(b,application) line is a service \
             spec, anything else an infrastructure spec. Service specs are \
             resolved against the infrastructure specs in the same \
             invocation.")
  in
  let strict_arg =
    let doc = "Exit with status 1 on any diagnostic, warnings included." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let json_arg =
    let doc = "Emit the diagnostics as a JSON array on stdout." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let run files strict json =
    let diags = Aved_check.Check.check_files files in
    if json then print_endline (Aved_check.Check.render_json diags)
    else if diags <> [] then begin
      print_endline (Aved_check.Check.render_human diags);
      print_endline (Aved_check.Diagnostic.summary diags)
    end;
    Aved_check.Check.exit_status ~strict diags
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check specification files: dimension/unit inference \
          over expressions, cross-reference and liveness analysis, \
          expression lints (unreachable branches, division by zero, \
          discontinuous piecewise splits, non-monotone performance), and \
          CTMC well-formedness of the induced availability models. Exits 0 \
          when clean, 1 on errors (or on any diagnostic with --strict).")
    Term.(const run $ files_arg $ strict_arg $ json_arg)

(* ------------------------------------------------------------------ *)
(* aved dump-specs *)

let dump_specs_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Directory to write the .spec files into.")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name content =
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write "infrastructure.spec" Aved.Experiments.infrastructure_spec;
    write "ecommerce.spec" Aved.Experiments.ecommerce_spec;
    write "scientific.spec" Aved.Experiments.scientific_spec;
    0
  in
  Cmd.v
    (Cmd.info "dump-specs"
       ~doc:
         "Write the built-in paper scenarios (Figs. 3-5) as specification \
          files.")
    Term.(const run $ dir_arg)

let () =
  let info =
    Cmd.info "aved" ~version:"1.0.0"
      ~doc:
        "Automated system design for availability (reproduction of \
         Janakiraman, Santos & Turner, DSN 2004)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd;
            design_cmd;
            frontier_cmd;
            fig6_cmd;
            fig7_cmd;
            fig8_cmd;
            table1_cmd;
            validate_cmd;
            explain_cmd;
            report_cmd;
            ablate_cmd;
            adapt_cmd;
            dump_specs_cmd;
          ]))
