(* The aved command-line tool: design services from specification files
   and regenerate the paper's evaluation artifacts. The flags shared by
   every command, the static-check gate and the exit-code contract live
   in Common_flags; machine-readable output renders through Aved_api,
   the same encoders the serve daemon answers with. *)

open Cmdliner
open Common_flags
module Duration = Aved_units.Duration
module Model = Aved_model
module Api = Aved_api.Api
module Json = Aved_explain.Json

(* ------------------------------------------------------------------ *)
(* aved design *)

let design_cmd =
  let run infra_file service_file load downtime job_hours json jobs
      prune_bounds stats trace no_check =
    handle_errors (fun () ->
        let requirements = requirements ~load ~downtime ~job_hours in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config ~prune_bounds jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        let report = Aved.Engine.design ~config infra service requirements in
        (if json then
           print_endline
             (Json.to_string
                (Api.design_result_to_json (Api.design_result_of_report report)))
         else
           match report with
           | Some report -> Format.printf "%a@." Aved.Engine.pp_report report
           | None ->
               Format.printf
                 "no feasible design: the design space holds no configuration \
                  meeting %a@."
                 Model.Requirements.pp requirements);
        ok_exit)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ json_arg $ jobs_arg $ prune_bounds_arg $ stats_arg
      $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "design"
       ~doc:
         "Search the design space for the minimum-cost design meeting the \
          requirements.")
    term

(* ------------------------------------------------------------------ *)
(* aved frontier *)

let frontier_cmd =
  let explain_flag =
    let doc =
      "Annotate each frontier step with what changed against the previous \
       design and what the extra spend buys (annotation lines start with \
       '    ^'; the plain frontier lines are unchanged)."
    in
    Arg.(value & flag & info [ "explain" ] ~doc)
  in
  let run infra_file service_file tier_name load explain json jobs
      prune_bounds stats trace no_check =
    handle_errors (fun () ->
        let load =
          match load with Some l -> l | None -> failwith "--load is required"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let tier =
          match tier_name with
          | Some name -> (
              match Model.Service.find_tier service name with
              | Some t -> t
              | None -> failwith (Printf.sprintf "no tier %S" name))
          | None -> List.hd service.Model.Service.tiers
        in
        let config = search_config ~prune_bounds jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        let frontier =
          Aved_search.Tier_search.frontier config infra ~tier ~demand:load
        in
        if json then
          print_endline
            (Json.to_string
               (Api.frontier_result_to_json
                  (Api.frontier_result_of_candidates
                     ~tier:tier.Model.Service.tier_name ~demand:load frontier)))
        else begin
          Format.printf
            "cost-availability frontier of tier %s at load %g (%d designs):@."
            tier.Model.Service.tier_name load (List.length frontier);
          let prev = ref None in
          List.iter
            (fun (c : Aved_search.Candidate.t) ->
              Format.printf "  %-44s downtime %10.3f min/yr   cost %s/yr@."
                (Aved_search.Candidate.family c
                   ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min)
                (Duration.minutes (Aved_search.Candidate.downtime c))
                (Aved_units.Money.to_string c.cost);
              if explain then begin
                Option.iter
                  (fun p ->
                    Format.printf "    ^ %s@."
                      (Aved_explain.Explain.annotate_step ~prev:p ~next:c))
                  !prev;
                prev := Some c
              end)
            frontier
        end;
        ok_exit)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ tier_arg $ load_arg
      $ explain_flag $ json_arg $ jobs_arg $ prune_bounds_arg $ stats_arg
      $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "frontier"
       ~doc:"Print the cost-availability Pareto frontier of one tier.")
    term

(* ------------------------------------------------------------------ *)
(* Figure commands (built-in paper scenarios) *)

let fig6_cmd =
  let run jobs stats trace =
    handle_errors (fun () ->
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig6 Format.std_formatter
          (Aved.Figures.fig6 ~config ());
        ok_exit)
  in
  Cmd.v
    (Cmd.info "fig6"
       ~doc:
         "Regenerate paper Fig. 6: optimal application-tier design families \
          over load and downtime requirements.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let fig7_cmd =
  let run jobs stats trace =
    handle_errors (fun () ->
        let config = search_config ~base:Aved.Experiments.fig7_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig7 Format.std_formatter
          (Aved.Figures.fig7 ~config ());
        ok_exit)
  in
  Cmd.v
    (Cmd.info "fig7"
       ~doc:
         "Regenerate paper Fig. 7: optimal scientific-application design vs \
          execution-time requirement.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let fig8_cmd =
  let run jobs stats trace =
    handle_errors (fun () ->
        let config = search_config jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        Aved.Figures.print_fig8 Format.std_formatter
          (Aved.Figures.fig8 ~config ());
        ok_exit)
  in
  Cmd.v
    (Cmd.info "fig8"
       ~doc:
         "Regenerate paper Fig. 8: extra annual cost of availability vs \
          downtime requirement.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

let table1_cmd =
  let run () =
    Aved.Figures.print_table1 Format.std_formatter;
    ok_exit
  in
  Cmd.v
    (Cmd.info "table1" ~doc:"Print paper Table 1: the performance functions.")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* aved validate: cross-engine agreement on the built-in scenario *)

let validate_cmd =
  let run jobs stats trace =
    handle_errors @@ fun () ->
    let config = search_config jobs in
    with_telemetry ~stats ?trace @@ fun () ->
    let infra = Aved.Experiments.infrastructure () in
    let service = Aved.Experiments.ecommerce () in
    let requirements =
      Model.Requirements.enterprise ~throughput:1000.
        ~max_annual_downtime:(Duration.of_minutes 100.)
    in
    match Aved.Engine.design ~config infra service requirements with
    | None ->
        prerr_endline "validation scenario unexpectedly infeasible";
        user_error_exit
    | Some report ->
        Format.printf "%a@.@." Aved.Engine.pp_report report;
        let models =
          Aved.Engine.evaluate_design infra service report.design
            ~demand:(Some 1000.)
        in
        Format.printf
          "engine cross-check (per tier, annual downtime in minutes):@.";
        Format.printf "%-14s %12s %12s %12s@." "tier" "analytic" "exact"
          "simulation";
        List.iter
          (fun (m : Aved_avail.Tier_model.t) ->
            let minutes f = Duration.minutes (Duration.of_years f) in
            let analytic = Aved_avail.Analytic.downtime_fraction m in
            let exact =
              match Aved_avail.Exact.downtime_fraction ~max_states:50000 m with
              | v -> Printf.sprintf "%12.3f" (minutes v)
              | exception Invalid_argument _ -> "  (too large)"
            in
            let simulated =
              Aved_avail.Monte_carlo.downtime_fraction
                ~config:
                  {
                    Aved_avail.Monte_carlo.replications = 16;
                    horizon = Duration.of_years 30.;
                    seed = 42;
                  }
                m
            in
            Format.printf "%-14s %12.3f %s %12.3f@." m.tier_name
              (minutes analytic) exact (minutes simulated))
          models;
        ok_exit
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:
         "Design the built-in e-commerce scenario and cross-check the three \
          availability engines on the result.")
    Term.(const run $ jobs_arg $ stats_arg $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* aved explain: decision provenance for a design run *)

let explain_cmd =
  let top_arg =
    let doc = "Runner-up candidates to show per tier." in
    Arg.(value & opt int 5 & info [ "top" ] ~doc ~docv:"K")
  in
  let run infra_file service_file load downtime job_hours top json jobs
      prune_bounds stats trace no_check =
    handle_errors (fun () ->
        let requirements = requirements ~load ~downtime ~job_hours in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config ~prune_bounds jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        let trail = Aved_search.Provenance.create () in
        let result =
          Aved_search.Provenance.with_trail trail @@ fun () ->
          Aved.Engine.design ~config infra service requirements
        in
        let explanation =
          Option.map
            (fun report ->
              Aved.Engine.explain ~top ~trail ~config infra service
                requirements report)
            result
        in
        (if json then
           print_endline
             (Json.to_string
                (Api.explain_result_to_json
                   (Api.explain_result_of_explanation explanation)))
         else
           match explanation with
           | None -> print_endline "no feasible design"
           | Some explanation ->
               Format.printf "%a@." Aved_explain.Explain.pp explanation);
        ok_exit)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ top_arg $ json_arg $ jobs_arg $ prune_bounds_arg
      $ stats_arg $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Design a service, then explain the decision: per-failure-class \
          downtime attribution of the winner and the top runner-up \
          candidates with the reason each one lost.")
    term

(* ------------------------------------------------------------------ *)
(* aved report: the full design document *)

let report_cmd =
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE" ~doc:"Write the report to a file.")
  in
  let run infra_file service_file load downtime job_hours jobs prune_bounds
      out stats trace no_check =
    handle_errors (fun () ->
        let requirements = requirements ~load ~downtime ~job_hours in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let config = search_config ~prune_bounds jobs in
        with_telemetry ~stats ?trace @@ fun () ->
        match Aved.Report.generate ~config infra service requirements with
        | None ->
            print_endline "no feasible design";
            ok_exit
        | Some text ->
            (match out with
            | None -> print_string text
            | Some path ->
                let oc = open_out path in
                output_string oc text;
                close_out oc;
                Printf.printf "wrote %s\n" path);
            ok_exit)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ load_arg $ downtime_arg
      $ job_hours_arg $ jobs_arg $ prune_bounds_arg $ out_arg $ stats_arg
      $ trace_file_arg $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Design a service and emit the full report: configuration, cost, \
          per-tier downtime attribution, first-month transient, engine \
          cross-check and sensitivity analysis.")
    term

(* ------------------------------------------------------------------ *)
(* aved ablate: distribution-shape sensitivity via simulation *)

let ablate_cmd =
  let run stats trace =
    handle_errors @@ fun () ->
    with_telemetry ~stats ?trace @@ fun () ->
    let infra = Aved.Experiments.infrastructure () in
    let service = Aved.Experiments.ecommerce () in
    match
      Aved.Engine.design infra service
        (Model.Requirements.enterprise ~throughput:1000.
           ~max_annual_downtime:(Duration.of_minutes 100.))
    with
    | None ->
        prerr_endline "scenario unexpectedly infeasible";
        user_error_exit
    | Some report ->
        Format.printf "%a@.@." Aved.Engine.pp_report report;
        Format.printf
          "distribution-shape ablation (simulated annual downtime, \
           min/yr; means preserved):@.";
        Format.printf "%-14s %12s %12s %12s %12s@." "tier" "exponential"
          "weibull .7" "weibull 1.5" "lognorm rep";
        let shapes =
          let open Aved_avail.Monte_carlo in
          [
            exponential_shapes;
            { exponential_shapes with failure = Weibull_shape 0.7 };
            { exponential_shapes with failure = Weibull_shape 1.5 };
            { exponential_shapes with repair = Lognormal_sigma 1.2 };
          ]
        in
        let config =
          {
            Aved_avail.Monte_carlo.replications = 16;
            horizon = Duration.of_years 30.;
            seed = 2004;
          }
        in
        List.iter
          (fun (m : Aved_avail.Tier_model.t) ->
            let cells =
              List.map
                (fun s ->
                  Printf.sprintf "%12.2f"
                    (Duration.minutes
                       (Aved_avail.Monte_carlo.annual_downtime ~config ~shapes:s
                          m)))
                shapes
            in
            Format.printf "%-14s %s@." m.tier_name (String.concat " " cells))
          (Aved.Engine.evaluate_design infra service report.design
             ~demand:(Some 1000.));
        ok_exit
  in
  Cmd.v
    (Cmd.info "ablate"
       ~doc:
         "Simulate the designed e-commerce scenario under non-exponential \
          failure and repair distributions (mean-preserving) and compare \
          downtime.")
    Term.(const run $ stats_arg $ trace_file_arg)

(* ------------------------------------------------------------------ *)
(* aved adapt: replay a load trace through the adaptive controller *)

let adapt_cmd =
  let trace_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "trace" ] ~docv:"CSV"
          ~doc:
            "Load trace as hours,load CSV rows. Without it, a synthetic \
             3-day diurnal trace spanning half to full of --load is used.")
  in
  let headroom_arg =
    Arg.(
      value & opt float 0.3
      & info [ "headroom" ] ~docv:"FRACTION"
          ~doc:"Over-provisioning tolerated before scaling down.")
  in
  (* [--trace] already names the load-trace CSV here, so adapt exposes
     only [--stats]; use another command for span traces. *)
  let run infra_file service_file tier_name load downtime trace headroom jobs
      stats no_check =
    handle_errors (fun () ->
        let downtime =
          match downtime with
          | Some d -> d
          | None -> failwith "--downtime is required"
        in
        let infra, service = load_checked ~no_check ~infra_file ~service_file in
        let tier =
          match tier_name with
          | Some name -> (
              match Model.Service.find_tier service name with
              | Some t -> t
              | None -> failwith (Printf.sprintf "no tier %S" name))
          | None -> List.hd service.Model.Service.tiers
        in
        let trace =
          match trace with
          | Some path -> Aved_search.Load_trace.of_csv_file path
          | None ->
              let peak = Option.value load ~default:2000. in
              Aved_search.Load_trace.diurnal ~days:3 ~samples_per_day:12
                ~base:(peak /. 2.) ~peak ()
        in
        let config = search_config jobs in
        with_telemetry ~stats @@ fun () ->
        let replay =
          Aved_search.Adaptive.replay config infra ~tier
            ~max_downtime:(Duration.of_minutes downtime)
            ~policy:{ Aved_search.Adaptive.headroom }
            ~trace ()
        in
        Format.printf "%-10s %10s  %-44s %s@." "hour" "load" "design" "";
        List.iter
          (fun (s : Aved_search.Adaptive.step) ->
            Format.printf "%-10.1f %10.0f  %-44s %s@."
              (Duration.hours s.time) s.load
              (Aved_search.Candidate.family s.candidate
                 ~n_min_nominal:
                   s.candidate.model.Aved_avail.Tier_model.n_min)
              (if s.redesigned then "<- redesign" else ""))
          replay.steps;
        Format.printf
          "@.%d redesigns after the initial one; time-weighted cost %s/yr@."
          replay.redesigns
          (Aved_units.Money.to_string replay.average_cost);
        ok_exit)
  in
  let term =
    Term.(
      const run $ infra_file $ service_file $ tier_arg $ load_arg
      $ downtime_arg $ trace_arg $ headroom_arg $ jobs_arg $ stats_arg
      $ no_check_arg)
  in
  Cmd.v
    (Cmd.info "adapt"
       ~doc:
         "Replay a load trace through the adaptive redesign controller \
          (utility-computing mode).")
    term

(* ------------------------------------------------------------------ *)
(* aved check: the static analyzer *)

let check_cmd =
  let files_arg =
    Arg.(
      non_empty & pos_all file []
      & info [] ~docv:"FILE"
          ~doc:
            "Specification files to check together. Files are classified \
             by content: a file with an $(b,application) line is a service \
             spec, anything else an infrastructure spec. Service specs are \
             resolved against the infrastructure specs in the same \
             invocation.")
  in
  let strict_arg =
    let doc = "Exit with status 1 on any diagnostic, warnings included." in
    Arg.(value & flag & info [ "strict" ] ~doc)
  in
  let bounds_arg =
    let doc =
      "Run the whole-domain bounds analysis: per (tier, option), bracket \
       the downtime fraction of every design the search could evaluate in \
       outward-rounded interval arithmetic, audit CTMC well-formedness at \
       the extreme mttr corners of the mechanism-settings grid, and — when \
       --downtime gives a budget — certify it infeasible or trivially \
       satisfiable before any search runs."
    in
    Arg.(value & flag & info [ "bounds" ] ~doc)
  in
  let certificates_arg =
    let doc =
      "Write the feasibility certificates produced by --bounds to $(docv) \
       as a JSON array (machine-checkable proof objects)."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "certificates" ] ~doc ~docv:"FILE")
  in
  let run files strict json bounds load downtime certificates =
    handle_errors (fun () ->
        let diags = Aved_check.Check.check_files files in
        let bounds_outcome =
          if bounds then
            let budget_fraction =
              Option.map
                (fun minutes ->
                  Duration.years (Duration.of_minutes minutes))
                downtime
            in
            Some
              (Aved_check.Check.bounds_for_files files ~demand:load
                 ~budget_fraction)
          else None
        in
        let diags =
          match bounds_outcome with
          | None -> diags
          | Some o ->
              List.sort_uniq Aved_check.Diagnostic.compare
                (diags @ o.Aved_check.Check.bo_diags)
        in
        if json then
          print_endline
            (Json.to_string
               (Api.check_result_to_json
                  (Api.check_result_of_diagnostics diags)))
        else begin
          if diags <> [] then begin
            print_endline (Aved_check.Check.render_human diags);
            print_endline (Aved_check.Diagnostic.summary diags)
          end;
          Option.iter
            (fun (o : Aved_check.Check.bounds_outcome) ->
              if o.bo_reports <> [] then begin
                print_endline "downtime bounds (over all settings):";
                print_endline (Aved_check.Check.render_bounds o.bo_reports)
              end)
            bounds_outcome
        end;
        Option.iter
          (fun (o : Aved_check.Check.bounds_outcome) ->
            Option.iter
              (fun path ->
                let oc = open_out path in
                output_string oc
                  (Aved_check.Check.render_certificates o.bo_certificates);
                output_char oc '\n';
                close_out oc;
                Printf.eprintf "wrote %d certificate(s) to %s\n%!"
                  (List.length o.bo_certificates)
                  path)
              certificates)
          bounds_outcome;
        Aved_check.Check.exit_status ~strict diags)
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Statically check specification files: dimension/unit inference \
          over expressions, cross-reference and liveness analysis, \
          expression lints (unreachable branches, division by zero, \
          discontinuous piecewise splits, non-monotone performance), and \
          CTMC well-formedness of the induced availability models. With \
          --bounds, additionally bracket every option's downtime by \
          abstract interpretation and certify a --downtime budget \
          infeasible or trivially satisfiable. Exits 0 when clean, 1 on \
          errors (or on any diagnostic with --strict).")
    Term.(
      const run $ files_arg $ strict_arg $ json_arg $ bounds_arg $ load_arg
      $ downtime_arg $ certificates_arg)

(* ------------------------------------------------------------------ *)
(* aved serve: the long-running design daemon *)

let serve_cmd =
  let module Server = Aved_server.Server in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at $(docv).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT"
          ~doc:"Listen on TCP $(docv) (port 0 lets the kernel pick).")
  in
  let dispatchers_arg =
    Arg.(
      value & opt int 2
      & info [ "dispatchers" ] ~docv:"N"
          ~doc:"Worker threads answering requests.")
  in
  let queue_arg =
    Arg.(
      value & opt int 128
      & info [ "queue" ] ~docv:"N"
          ~doc:
            "Admission queue capacity; requests beyond it are shed with an \
             $(i,overloaded) response.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 900
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Concurrent connection bound (at most 1000 — the event loop \
             multiplexes with select). Connections over the limit get one \
             $(i,overloaded) response and are closed.")
  in
  let coalesce_arg =
    Arg.(
      value & opt bool true
      & info [ "coalesce" ] ~docv:"BOOL"
          ~doc:
            "Attach identical in-flight work requests to one computation: a \
             thundering herd on one spec runs the search once and every \
             waiter receives the shared result under its own id. Set false \
             to force every request through its own search.")
  in
  let send_timeout_arg =
    Arg.(
      value & opt float 10.
      & info [ "send-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Write-stall bound: a connection whose response backlog makes no \
             progress for this long is dropped instead of buffering without \
             bound for a client that stopped reading.")
  in
  let memo_capacity_arg =
    Arg.(
      value
      & opt int Aved_avail.Memo.default_capacity
      & info [ "memo-capacity" ] ~docv:"N"
          ~doc:
            "Entry bound of the shared availability memo (LRU eviction past \
             it).")
  in
  let deadline_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Default queueing deadline for requests that do not carry their \
             own deadline_ms.")
  in
  let log_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log" ] ~docv:"FILE"
          ~doc:
            "Append a structured JSON log to $(docv): one object per \
             request (trace id, per-stage timings, outcome), plus \
             start/stop/snapshot events.")
  in
  let slo_target_arg =
    Arg.(
      value
      & opt float 0.999
      & info [ "slo-target" ] ~docv:"FRACTION"
          ~doc:
            "Availability target in (0, 1]: the fraction of work requests \
             that must be served within the latency budget.")
  in
  let slo_latency_arg =
    Arg.(
      value & opt float 50.
      & info [ "slo-latency-ms" ] ~docv:"MS"
          ~doc:
            "Per-request latency budget: a served answer slower than this \
             spends error budget and is flagged slow in the log.")
  in
  let slo_window_arg =
    Arg.(
      value & opt float 300.
      & info [ "slo-window" ] ~docv:"SECONDS"
          ~doc:"Rolling window over which the SLO is evaluated.")
  in
  let trace_sample_arg =
    Arg.(
      value & opt float 0.
      & info [ "trace-sample" ] ~docv:"FRACTION"
          ~doc:
            "Head-sampling rate in [0, 1]: the fraction of requests traced \
             with a full span tree (search, engine and solver spans with \
             per-span CPU and allocation attribution), fetchable by trace \
             id with $(b,aved trace). 0 (the default) disables tracing.")
  in
  let trace_ring_arg =
    Arg.(
      value & opt int 256
      & info [ "trace-ring" ] ~docv:"N"
          ~doc:
            "How many completed sampled traces the daemon retains for the \
             $(i,trace) verb before evicting the oldest.")
  in
  let run socket tcp jobs dispatchers queue max_conns coalesce send_timeout
      memo_capacity deadline log_path slo_target slo_latency_ms slo_window
      trace_sample trace_ring =
    handle_errors (fun () ->
        let transport =
          match (socket, tcp) with
          | Some path, None -> Server.Unix_socket path
          | None, Some hostport -> (
              match String.rindex_opt hostport ':' with
              | None -> failwith "--tcp expects HOST:PORT"
              | Some i -> (
                  let host =
                    match String.sub hostport 0 i with
                    | "" -> "127.0.0.1"
                    | host -> host
                  in
                  let port_text =
                    String.sub hostport (i + 1)
                      (String.length hostport - i - 1)
                  in
                  match int_of_string_opt port_text with
                  | Some port when port >= 0 && port < 65536 ->
                      Server.Tcp { host; port }
                  | Some _ | None ->
                      failwith
                        (Printf.sprintf "invalid --tcp port %S" port_text)))
          | Some _, Some _ ->
              failwith "--socket and --tcp are mutually exclusive"
          | None, None -> failwith "specify --socket PATH or --tcp HOST:PORT"
        in
        let jobs =
          match jobs with
          | Some j when j < 1 ->
              failwith
                (Printf.sprintf "--jobs must be a positive integer (got %d)" j)
          | Some j -> j
          | None -> Domain.recommended_domain_count ()
        in
        List.iter
          (fun (flag, v) ->
            if v < 1 then
              failwith
                (Printf.sprintf "%s must be a positive integer (got %d)" flag v))
          [
            ("--dispatchers", dispatchers);
            ("--queue", queue);
            ("--max-conns", max_conns);
            ("--memo-capacity", memo_capacity);
          ];
        if max_conns > 1000 then
          failwith
            (Printf.sprintf "--max-conns must be at most 1000 (got %d)"
               max_conns);
        if (not (Float.is_finite send_timeout)) || send_timeout <= 0. then
          failwith "--send-timeout must be a positive number of seconds";
        let slo =
          match
            Aved_obs.Slo.validate_config
              {
                Aved_obs.Slo.target = slo_target;
                latency_budget_s = slo_latency_ms /. 1000.;
                window_s = slo_window;
              }
          with
          | Ok slo -> slo
          | Error msg -> failwith msg
        in
        let config =
          {
            (Server.default_config transport) with
            Server.jobs;
            dispatchers;
            queue_capacity = queue;
            max_conns;
            coalesce;
            send_timeout_s = send_timeout;
            memo_capacity;
            default_deadline_ms = deadline;
            log_path;
            slo;
            trace_sample;
            trace_ring;
          }
        in
        let server =
          try Server.create config
          with Unix.Unix_error (err, _, _) ->
            failwith
              (Printf.sprintf "cannot listen: %s" (Unix.error_message err))
        in
        Server.install_signal_handlers server;
        (match transport with
        | Server.Unix_socket path ->
            Printf.eprintf "aved serve: listening on %s\n%!" path
        | Server.Tcp { host; _ } ->
            Printf.eprintf "aved serve: listening on %s:%d\n%!" host
              (Option.value (Server.bound_port server) ~default:0));
        Server.run server;
        ok_exit)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the long-lived design daemon: newline-delimited JSON requests \
          (design, frontier, explain, check, health, stats, metrics) over a \
          Unix-domain or TCP socket, answered from warm state — a shared \
          search pool, a bounded availability memo and a content-hash spec \
          cache. One event loop multiplexes up to --max-conns connections \
          (see PROTOCOL.md for the wire format, schema versions 1 and 2); \
          identical concurrent work requests coalesce onto one search \
          (--coalesce). Results are byte-identical to the corresponding \
          --json command. The daemon tracks its own availability SLO (--slo-target, \
          --slo-latency-ms, --slo-window), logs every request with a trace \
          id and per-stage timings (--log), answers Prometheus-format \
          scrapes on the metrics verb, head-samples full request traces \
          (--trace-sample) served back over the trace verb, and dumps a \
          full metrics/GC snapshot on SIGUSR1. SIGTERM drains gracefully.")
    Term.(
      const run $ socket_arg $ tcp_arg $ jobs_arg $ dispatchers_arg
      $ queue_arg $ max_conns_arg $ coalesce_arg $ send_timeout_arg
      $ memo_capacity_arg $ deadline_arg $ log_arg
      $ slo_target_arg $ slo_latency_arg $ slo_window_arg
      $ trace_sample_arg $ trace_ring_arg)

(* ------------------------------------------------------------------ *)
(* Client-side endpoint parsing shared by the daemon clients
   (aved top, aved trace). *)

let client_endpoint socket tcp =
  match (socket, tcp) with
  | Some path, None -> Top_ui.Unix_socket path
  | None, Some hostport -> (
      match String.rindex_opt hostport ':' with
      | None -> failwith "--tcp expects HOST:PORT"
      | Some i -> (
          let host =
            match String.sub hostport 0 i with
            | "" -> "127.0.0.1"
            | host -> host
          in
          let port_text =
            String.sub hostport (i + 1) (String.length hostport - i - 1)
          in
          match int_of_string_opt port_text with
          | Some port when port > 0 && port < 65536 -> Top_ui.Tcp { host; port }
          | Some _ | None ->
              failwith (Printf.sprintf "invalid --tcp port %S" port_text)))
  | Some _, Some _ -> failwith "--socket and --tcp are mutually exclusive"
  | None, None -> failwith "specify --socket PATH or --tcp HOST:PORT"

(* ------------------------------------------------------------------ *)
(* aved top: live dashboard over a running daemon *)

let top_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Connect to the daemon's Unix-domain socket at $(docv).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect to TCP $(docv).")
  in
  let interval_arg =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between refreshes.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Render $(docv) frames then exit; 0 runs until interrupted.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Scrape the metrics verb once, print the Prometheus text body \
             and exit (no dashboard).")
  in
  let run socket tcp interval iterations metrics =
    handle_errors (fun () ->
        let endpoint = client_endpoint socket tcp in
        if iterations < 0 then failwith "--iterations must be >= 0";
        if metrics then Top_ui.print_metrics_once endpoint
        else Top_ui.run ~endpoint ~interval_s:interval ~iterations;
        ok_exit)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard over a running aved serve daemon: per-verb latency \
          percentiles from the server's own histograms, request rate, \
          queue/dispatcher occupancy, and the SLO error-budget readout. \
          With $(b,--metrics), scrape the Prometheus text exposition once \
          and print it.")
    Term.(
      const run $ socket_arg $ tcp_arg $ interval_arg $ iterations_arg
      $ metrics_arg)

(* ------------------------------------------------------------------ *)
(* aved trace: fetch and render one sampled request trace *)

let trace_cmd =
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Connect to the daemon's Unix-domain socket at $(docv).")
  in
  let tcp_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "tcp" ] ~docv:"HOST:PORT" ~doc:"Connect to TCP $(docv).")
  in
  let id_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"TRACE_ID"
          ~doc:
            "The trace id to fetch — echoed in every response envelope's \
             $(i,trace_id) field, in the --log record, and in metrics \
             exemplars.")
  in
  let chrome_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "chrome" ] ~docv:"FILE"
          ~doc:
            "Also write the spans as Chrome trace_event JSON to $(docv) \
             (loadable by chrome://tracing and ui.perfetto.dev).")
  in
  let run socket tcp trace_id json chrome =
    handle_errors (fun () ->
        let endpoint = client_endpoint socket tcp in
        Trace_view.show ~endpoint ~trace_id ~json ~chrome;
        ok_exit)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Fetch one completed request's span tree from a running aved \
          serve daemon (started with --trace-sample > 0) and render it as \
          a waterfall: tree-indented spans from the request lifecycle down \
          through search, engine and solver layers, each with wall/CPU \
          time, allocation attribution and the owning domain, plus the \
          request-scoped engine counter deltas. With $(b,--json), print \
          the wire document instead; $(b,--chrome) exports the spans for \
          chrome://tracing.")
    Term.(
      const run $ socket_arg $ tcp_arg $ id_arg $ json_arg $ chrome_arg)

(* ------------------------------------------------------------------ *)
(* aved dump-specs *)

let dump_specs_cmd =
  let dir_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Directory to write the .spec files into.")
  in
  let run dir =
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let write name content =
      let path = Filename.concat dir name in
      let oc = open_out path in
      output_string oc content;
      close_out oc;
      Printf.printf "wrote %s\n" path
    in
    write "infrastructure.spec" Aved.Experiments.infrastructure_spec;
    write "ecommerce.spec" Aved.Experiments.ecommerce_spec;
    write "scientific.spec" Aved.Experiments.scientific_spec;
    ok_exit
  in
  Cmd.v
    (Cmd.info "dump-specs"
       ~doc:
         "Write the built-in paper scenarios (Figs. 3-5) as specification \
          files.")
    Term.(const run $ dir_arg)

let () =
  let info =
    Cmd.info "aved" ~version:"1.0.0"
      ~doc:
        "Automated system design for availability (reproduction of \
         Janakiraman, Santos & Turner, DSN 2004)."
  in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            check_cmd;
            design_cmd;
            frontier_cmd;
            fig6_cmd;
            fig7_cmd;
            fig8_cmd;
            table1_cmd;
            validate_cmd;
            explain_cmd;
            report_cmd;
            ablate_cmd;
            adapt_cmd;
            serve_cmd;
            top_cmd;
            trace_cmd;
            dump_specs_cmd;
          ]))
