(* aved top: a live terminal dashboard over a running serve daemon.

   Polls the daemon's [stats] verb on an interval and renders per-verb
   latency percentiles (from the server's own log-bucketed histograms),
   interval request rate, queue/dispatcher occupancy and the SLO
   error-budget readout. With [--metrics] it instead scrapes the
   [metrics] verb once and prints the Prometheus text body verbatim —
   the same scrape a monitoring agent would do, usable from CI. *)

module Json = Aved_explain.Json
module Api = Aved_api.Api
module Protocol = Aved_server.Protocol

type endpoint = Unix_socket of string | Tcp of { host : string; port : int }

let endpoint_to_string = function
  | Unix_socket path -> path
  | Tcp { host; port } -> Printf.sprintf "%s:%d" host port

let connect = function
  | Unix_socket path ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with Unix.Unix_error (err, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Printf.sprintf "cannot connect to %s: %s" path
              (Unix.error_message err)));
      fd
  | Tcp { host; port } ->
      let inet =
        match Unix.inet_addr_of_string host with
        | addr -> addr
        | exception Failure _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found ->
              failwith (Printf.sprintf "cannot resolve host %S" host))
      in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (inet, port))
       with Unix.Unix_error (err, _, _) ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         failwith
           (Printf.sprintf "cannot connect to %s:%d: %s" host port
              (Unix.error_message err)));
      fd

let rpc ic oc verb =
  output_string oc (Protocol.request_line verb []);
  output_char oc '\n';
  flush oc;
  match input_line ic with
  | exception End_of_file -> failwith "server closed the connection"
  | line -> (
      match Protocol.response_of_line line with
      | Ok { Protocol.outcome = Ok result; _ } -> result
      | Ok { Protocol.outcome = Error (_, message); _ } ->
          failwith (Printf.sprintf "server error: %s" message)
      | Error message ->
          failwith (Printf.sprintf "unparsable response: %s" message))

(* ------------------------------------------------------------------ *)
(* Stats document accessors — all total (missing fields render as 0 /
   blank) so top keeps working against daemons a schema step away. *)

let obj_fields = function Json.Obj fields -> fields | _ -> []
let field json name = List.assoc_opt name (obj_fields json)
let sub json name = Option.value (field json name) ~default:Json.Null

let num json name =
  match field json name with
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Float f) -> f
  | _ -> 0.

let flag json name =
  match field json name with Some (Json.Bool b) -> b | _ -> false

(* ------------------------------------------------------------------ *)
(* Rendering *)

let work_verbs = [ "design"; "frontier"; "explain"; "check" ]
let other_verbs = [ "health"; "stats"; "metrics" ]

let ms v = 1000. *. v

let verb_row buf stats verb =
  let counters = sub stats "counters" in
  let histograms = sub stats "histograms" in
  let count = num counters ("server.requests." ^ verb) in
  let h = sub histograms ("server.verb." ^ verb ^ ".seconds") in
  if count > 0. || field histograms ("server.verb." ^ verb ^ ".seconds") <> None
  then
    Buffer.add_string buf
      (Printf.sprintf "  %-10s %8.0f %9.2f %9.2f %9.2f %9.2f\n" verb count
         (ms (num h "mean")) (ms (num h "p50")) (ms (num h "p95"))
         (ms (num h "p99")))

(* [prev] is the previous tick's (wall clock, responses total), for the
   interval request rate; the first tick falls back to the lifetime
   average so the line is never blank. *)
let render ~endpoint ~prev stats =
  let buf = Buffer.create 1024 in
  let counters = sub stats "counters" in
  let gauges = sub stats "gauges" in
  let queue = sub stats "queue" in
  let conns = sub stats "connections" in
  let slo = sub stats "slo" in
  let uptime = num stats "uptime_seconds" in
  let responses =
    num counters "server.responses.ok" +. num counters "server.responses.error"
  in
  let now = Unix.gettimeofday () in
  let rps =
    match prev with
    | Some (t0, r0) when now > t0 -> (responses -. r0) /. (now -. t0)
    | _ -> responses /. Float.max 1e-9 uptime
  in
  Buffer.add_string buf
    (Printf.sprintf "aved top — %s   uptime %.1fs\n" endpoint uptime);
  Buffer.add_string buf
    (Printf.sprintf
       "requests  %8.0f total   %7.1f req/s   errors %.0f   shed %.0f   \
        deadline %.0f\n"
       responses rps
       (num counters "server.responses.error")
       (num queue "shed")
       (num queue "deadline_exceeded"));
  Buffer.add_string buf
    (Printf.sprintf
       "queue     %.0f/%.0f (high water %.0f)   dispatchers %.0f/%.0f busy   \
        conns %.0f   memo %.0f   heap %.1f MW\n"
       (num queue "depth") (num queue "capacity") (num queue "high_water")
       (num gauges "server.dispatchers.busy")
       (num gauges "server.dispatchers.total")
       (num conns "live")
       (num gauges "server.memo.entries")
       (num gauges "server.gc.heap_words" /. 1e6));
  Buffer.add_string buf
    (Printf.sprintf
       "process   cpu %.1fs   open fds %.0f   threads %.0f   traces %.0f \
        sampled (%.0f spans dropped)\n"
       (num gauges "process.cpu.seconds.total")
       (num gauges "process.open.fds")
       (num gauges "process.threads.live")
       (num counters "server.traces.sampled")
       (num counters "server.trace.spans.dropped"));
  Buffer.add_string buf
    (Printf.sprintf
       "slo       target %.3f%%   success %.3f%%   burn %.2f   budget left \
        %5.1f%%   window %.0fs (%.0f reqs)   %s\n"
       (100. *. num slo "target")
       (100. *. num slo "success_rate")
       (num slo "burn_rate")
       (100. *. Float.max 0. (num slo "budget_remaining"))
       (num slo "window_seconds") (num slo "requests")
       (if flag slo "met" then "[OK]" else "[BURNING]"));
  Buffer.add_string buf
    (Printf.sprintf "\n  %-10s %8s %9s %9s %9s %9s\n" "verb" "count" "mean ms"
       "p50 ms" "p95 ms" "p99 ms");
  List.iter (verb_row buf stats) work_verbs;
  List.iter (verb_row buf stats) other_verbs;
  (Buffer.contents buf, (now, responses))

(* ------------------------------------------------------------------ *)
(* Entry points *)

let print_metrics_once endpoint =
  let fd = connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let result = rpc ic oc Protocol.Metrics in
  match Api.metrics_result_of_json result with
  | Error message -> failwith (Printf.sprintf "bad metrics result: %s" message)
  | Ok { Api.body; _ } ->
      print_string body;
      if String.length body = 0 || body.[String.length body - 1] <> '\n' then
        print_newline ()

let run ~endpoint ~interval_s ~iterations =
  let fd = connect endpoint in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let clear = Unix.isatty Unix.stdout in
  let name = endpoint_to_string endpoint in
  let rec loop i prev =
    if iterations = 0 || i < iterations then begin
      let stats = rpc ic oc Protocol.Stats in
      let screen, sample = render ~endpoint:name ~prev stats in
      if clear then print_string "\027[H\027[2J"
      else if i > 0 then print_string "---\n";
      print_string screen;
      flush stdout;
      if iterations = 0 || i + 1 < iterations then
        Unix.sleepf (Float.max 0.05 interval_s);
      loop (i + 1) (Some sample)
    end
  in
  loop 0 None
