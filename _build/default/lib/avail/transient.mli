(** Time-dependent availability of a tier.

    The stationary engines answer "what fraction of a year is the tier
    down in the long run"; this module answers "what is the probability
    of being down [t] after deployment" and "how much downtime should be
    expected over the first [T]" — the view a freshly provisioned
    utility-computing service cares about. Built on uniformization over
    the same birth–death chain as Engine A, starting from the all-up
    state; failover transients are added as the instantaneous
    interruption rate under the time-[t] distribution. *)

val down_probability_at : Tier_model.t -> Aved_units.Duration.t -> float
(** Probability that fewer than m resources are operational at the
    given time after an all-up start (chain down-states only). *)

val interruption_rate_at : Tier_model.t -> Aved_units.Duration.t -> float
(** Expected fraction of time lost to failover/restart interruptions
    per unit time, at the given time (the transient analogue of Engine
    A's rate × outage term). *)

val expected_downtime_over :
  ?steps:int -> Tier_model.t -> horizon:Aved_units.Duration.t ->
  Aved_units.Duration.t
(** Expected total downtime accumulated over [0, horizon] from an
    all-up start: trapezoidal integration of the down probability plus
    the interruption rate over [steps] intervals (default 64). As the
    horizon grows, the per-year average converges to Engine A's annual
    downtime from above 0 — a fresh system is better than its steady
    state. *)
