lib/avail/transient.ml: Analytic Array Aved_markov Aved_model Aved_units List Stdlib Tier_model
