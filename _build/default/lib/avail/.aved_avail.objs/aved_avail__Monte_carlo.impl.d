lib/avail/monte_carlo.ml: Array Aved_sim Aved_stats Aved_units Float List Option Tier_model
