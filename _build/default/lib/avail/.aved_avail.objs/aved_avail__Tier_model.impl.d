lib/avail/tier_model.ml: Aved_model Aved_perf Aved_units Format List Printf String
