lib/avail/exact.mli: Aved_reliability Aved_units Tier_model
