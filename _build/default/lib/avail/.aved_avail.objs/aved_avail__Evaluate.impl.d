lib/avail/evaluate.ml: Analytic Aved_reliability Aved_stats Aved_units Exact List Monte_carlo Tier_model
