lib/avail/tier_model.mli: Aved_model Aved_units Format
