lib/avail/analytic.ml: Array Aved_markov Aved_model Aved_reliability Aved_units Float List Stdlib Tier_model
