lib/avail/transient.mli: Aved_units Tier_model
