lib/avail/monte_carlo.mli: Aved_stats Aved_units Tier_model
