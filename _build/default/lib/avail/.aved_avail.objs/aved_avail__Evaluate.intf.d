lib/avail/evaluate.mli: Aved_reliability Aved_units Monte_carlo Tier_model
