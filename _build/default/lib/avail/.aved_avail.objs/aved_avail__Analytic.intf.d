lib/avail/analytic.mli: Aved_markov Aved_reliability Aved_units Tier_model
