lib/avail/exact.ml: Array Aved_markov Aved_model Aved_reliability Aved_units Float Hashtbl List Printf Stdlib Tier_model
