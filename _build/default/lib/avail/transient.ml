module Duration = Aved_units.Duration
module Birth_death = Aved_markov.Birth_death
module Ctmc = Aved_markov.Ctmc
module Service = Aved_model.Service

let distribution_at (model : Tier_model.t) time =
  let n_total = model.n_active + model.n_spare in
  match Analytic.chain model with
  | None ->
      let pi = Array.make (n_total + 1) 0. in
      pi.(0) <- 1.;
      pi
  | Some bd ->
      let chain = Birth_death.to_ctmc bd in
      let initial = Array.make (Ctmc.num_states chain) 0. in
      initial.(0) <- 1.;
      Ctmc.transient chain ~initial ~time:(Duration.seconds time)
        ~epsilon:1e-10

let down_probability_at (model : Tier_model.t) time =
  let n_total = model.n_active + model.n_spare in
  let pi = distribution_at model time in
  let acc = ref 0. in
  Array.iteri
    (fun k p -> if n_total - k < model.n_min then acc := !acc +. p)
    pi;
  !acc

let transient_outage (c : Tier_model.failure_class) =
  Duration.seconds
    (if c.failover_considered then c.failover_time else c.mttr)

let interruption_rate_with pi (model : Tier_model.t) =
  let n_total = model.n_active + model.n_spare in
  let outage_rate_sum =
    List.fold_left
      (fun acc (c : Tier_model.failure_class) ->
        acc +. (c.rate *. transient_outage c))
      0. model.classes
  in
  let acc = ref 0. in
  Array.iteri
    (fun k p ->
      if k < n_total then begin
        let a = Stdlib.min model.n_active (n_total - k) in
        let next_up = n_total - k - 1 >= model.n_min in
        let interrupts =
          match model.failure_scope with
          | Service.Tier_scope -> true
          | Service.Resource_scope -> a = model.n_min
        in
        if a > 0 && next_up && interrupts then
          acc := !acc +. (p *. float_of_int a *. outage_rate_sum)
      end)
    pi;
  !acc

let interruption_rate_at model time =
  interruption_rate_with (distribution_at model time) model

let expected_downtime_over ?(steps = 64) (model : Tier_model.t) ~horizon =
  if steps <= 0 then invalid_arg "Transient.expected_downtime_over: steps";
  let total = Duration.seconds horizon in
  if total = 0. then Duration.zero
  else begin
    let dt = total /. float_of_int steps in
    let integrand i =
      let time = Duration.of_seconds (dt *. float_of_int i) in
      let pi = distribution_at model time in
      let n_total = model.n_active + model.n_spare in
      let down = ref 0. in
      Array.iteri
        (fun k p -> if n_total - k < model.n_min then down := !down +. p)
        pi;
      !down +. interruption_rate_with pi model
    in
    (* Trapezoid rule over steps+1 samples. *)
    let acc = ref ((integrand 0 +. integrand steps) /. 2.) in
    for i = 1 to steps - 1 do
      acc := !acc +. integrand i
    done;
    Duration.of_seconds (!acc *. dt)
  end
