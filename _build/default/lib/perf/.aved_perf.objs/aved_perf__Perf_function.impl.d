lib/perf/perf_function.ml: Array Aved_expr Float Format Int List Printf String
