lib/perf/slowdown.mli: Aved_expr Format
