lib/perf/slowdown.ml: Aved_expr Float Format Printf
