lib/perf/perf_function.mli: Aved_expr Format
