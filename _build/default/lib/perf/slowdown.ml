module Expr = Aved_expr.Expr

type t = Identity | Expression of Expr.t

let none = Identity
let of_expr expr = Expression expr

let of_string text =
  match Expr.of_string text with
  | expr -> of_expr expr
  | exception Expr.Parse_error { message; position } ->
      invalid_arg
        (Printf.sprintf "Slowdown.of_string: %s at offset %d in %S" message
           position text)

let eval t bindings =
  match t with
  | Identity -> 1.
  | Expression expr -> Float.max 1. (Expr.eval_alist expr bindings)

let variables = function
  | Identity -> []
  | Expression expr -> Expr.variables expr

let to_string = function
  | Identity -> "1"
  | Expression expr -> Expr.to_string expr

let pp ppf t = Format.pp_print_string ppf (to_string t)
