(** Components and their failure modes (paper §3.1.1).

    A component is the basic unit of fault management: a hardware element
    (a machine), an operating system, or an application software. Each
    has one or more failure modes with an MTBF, a detection time and a
    repair time; the repair time may instead be delegated to an
    availability mechanism (e.g. a maintenance contract). *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

(** How a failed component of this mode gets repaired. *)
type repair =
  | Fixed_repair of Duration.t
      (** In-place repair taking the given time (0 = simple restart). *)
  | Repair_by_mechanism of string
      (** The named mechanism's [mttr] attribute gives the repair time
          (paper notation [mttr=<maintenanceA>]). *)

type failure_mode = {
  mode_name : string;  (** e.g. "hard", "soft". *)
  mtbf : Duration.t;
  repair : repair;
  detect_time : Duration.t;
}

(** Where the component's loss window comes from (application software
    components only). *)
type loss_window_spec =
  | No_loss_window
  | Fixed_loss_window of Duration.t
  | Loss_window_by_mechanism of string
      (** Paper notation [loss_window=<checkpoint>]. *)

type op_mode = Inactive | Active

type t = {
  name : string;
  cost_inactive : Money.t;  (** Annual cost when powered off / unlicensed. *)
  cost_active : Money.t;
  max_instances : int option;
  failure_modes : failure_mode list;
  loss_window : loss_window_spec;
}

val make :
  name:string ->
  ?cost_inactive:Money.t ->
  cost_active:Money.t ->
  ?max_instances:int ->
  ?failure_modes:failure_mode list ->
  ?loss_window:loss_window_spec ->
  unit ->
  t
(** [cost_inactive] defaults to [cost_active] (the paper's plain
    [cost=...] form, a mode-independent cost). Failure-mode names must
    be distinct and MTBFs positive. *)

val failure_mode :
  name:string ->
  mtbf:Duration.t ->
  ?repair:repair ->
  ?detect_time:Duration.t ->
  unit ->
  failure_mode
(** [repair] defaults to [Fixed_repair Duration.zero] and [detect_time]
    to zero — the paper's software-glitch pattern. *)

val cost : t -> op_mode -> Money.t

val mechanism_references : t -> string list
(** Names of mechanisms referenced by repair or loss-window attributes,
    without duplicates. *)

val pp : Format.formatter -> t -> unit
