(** Ranges of admissible resource counts.

    The service model's [nActive] attribute constrains the number of
    active resources: e.g. [[1-1000,+1]] (any count), [[1]] (exactly
    one), or [[1-1024,*2]] (powers of two — the paper's example of a
    scientific code that requires 2^k nodes). *)

type t =
  | Singleton of int
  | Arithmetic of { lo : int; hi : int; step : int }
  | Geometric of { lo : int; hi : int; factor : int }
  | Explicit of int list

val singleton : int -> t
val arithmetic : lo:int -> hi:int -> step:int -> t
(** Raises [Invalid_argument] unless [0 <= lo <= hi] and [step > 0]. *)

val geometric : lo:int -> hi:int -> factor:int -> t
(** Raises [Invalid_argument] unless [1 <= lo <= hi] and [factor > 1]. *)

val explicit : int list -> t
(** Raises [Invalid_argument] on an empty list or negative members. *)

val to_list : t -> int list
(** All members in increasing order, without duplicates. *)

val mem : t -> int -> bool
val min_value : t -> int
val max_value : t -> int

val next_above : t -> int -> int option
(** [next_above t n] is the smallest member [>= n], if any — the search
    uses this to round a performance-derived minimum up to an admissible
    count. *)

val of_string : string -> t
(** Parses [[1]], [[1-1000,+1]], [[2-1024,*2]], or [[1,2,5]].
    Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
