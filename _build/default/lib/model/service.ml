module Duration = Aved_units.Duration

type sizing = Static | Dynamic
type failure_scope = Resource_scope | Tier_scope

type resource_option = {
  resource : string;
  sizing : sizing;
  failure_scope : failure_scope;
  n_active : Int_range.t;
  performance : Aved_perf.Perf_function.t;
  mech_performance : (string * Mech_impact.t) list;
}

type tier = { tier_name : string; options : resource_option list }

type t = {
  service_name : string;
  job_size : float option;
  tiers : tier list;
}

let resource_option ~resource ?(sizing = Dynamic)
    ?(failure_scope = Resource_scope) ~n_active ~performance
    ?(mech_performance = []) () =
  { resource; sizing; failure_scope; n_active; performance; mech_performance }

let tier ~name ~options =
  if options = [] then
    invalid_arg (Printf.sprintf "tier %s: no resource options" name);
  let resources = List.map (fun o -> o.resource) options in
  if
    List.length (List.sort_uniq String.compare resources)
    <> List.length resources
  then invalid_arg (Printf.sprintf "tier %s: duplicate resource option" name);
  { tier_name = name; options }

let make ~name ?job_size ~tiers () =
  if tiers = [] then invalid_arg (Printf.sprintf "service %s: no tiers" name);
  let names = List.map (fun t -> t.tier_name) tiers in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg (Printf.sprintf "service %s: duplicate tier" name);
  (match job_size with
  | Some size when size <= 0. || not (Float.is_finite size) ->
      invalid_arg (Printf.sprintf "service %s: job_size=%g" name size)
  | Some _ | None -> ());
  { service_name = name; job_size; tiers }

let validate_against t infra =
  List.iter
    (fun tier ->
      List.iter
        (fun opt ->
          match Infrastructure.find_resource infra opt.resource with
          | None ->
              invalid_arg
                (Printf.sprintf "service %s tier %s: unknown resource %S"
                   t.service_name tier.tier_name opt.resource)
          | Some resource ->
              let referenced =
                List.map
                  (fun (m : Mechanism.t) -> m.name)
                  (Infrastructure.resource_mechanisms infra resource)
              in
              List.iter
                (fun (mech, _) ->
                  if not (List.mem mech referenced) then
                    invalid_arg
                      (Printf.sprintf
                         "service %s tier %s: mech_performance for %S, which \
                          resource %s does not use"
                         t.service_name tier.tier_name mech opt.resource))
                opt.mech_performance)
        tier.options)
    t.tiers

let find_tier t name =
  List.find_opt (fun tier -> String.equal tier.tier_name name) t.tiers

let is_finite_job t = t.job_size <> None

let pp ppf t =
  Format.fprintf ppf "@[<v 2>service %s%s" t.service_name
    (match t.job_size with
    | Some size -> Printf.sprintf " jobsize=%g" size
    | None -> "");
  List.iter
    (fun tier ->
      Format.fprintf ppf "@,tier %s: %s" tier.tier_name
        (String.concat ", " (List.map (fun o -> o.resource) tier.options)))
    t.tiers;
  Format.fprintf ppf "@]"
