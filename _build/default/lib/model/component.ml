module Duration = Aved_units.Duration
module Money = Aved_units.Money

type repair =
  | Fixed_repair of Duration.t
  | Repair_by_mechanism of string

type failure_mode = {
  mode_name : string;
  mtbf : Duration.t;
  repair : repair;
  detect_time : Duration.t;
}

type loss_window_spec =
  | No_loss_window
  | Fixed_loss_window of Duration.t
  | Loss_window_by_mechanism of string

type op_mode = Inactive | Active

type t = {
  name : string;
  cost_inactive : Money.t;
  cost_active : Money.t;
  max_instances : int option;
  failure_modes : failure_mode list;
  loss_window : loss_window_spec;
}

let failure_mode ~name ~mtbf ?(repair = Fixed_repair Duration.zero)
    ?(detect_time = Duration.zero) () =
  if Duration.is_zero mtbf then
    invalid_arg (Printf.sprintf "failure mode %s: MTBF must be positive" name);
  { mode_name = name; mtbf; repair; detect_time }

let make ~name ?cost_inactive ~cost_active ?max_instances
    ?(failure_modes = []) ?(loss_window = No_loss_window) () =
  let cost_inactive = Option.value cost_inactive ~default:cost_active in
  let mode_names = List.map (fun m -> m.mode_name) failure_modes in
  if
    List.length (List.sort_uniq String.compare mode_names)
    <> List.length mode_names
  then invalid_arg (Printf.sprintf "component %s: duplicate failure mode" name);
  (match max_instances with
  | Some m when m <= 0 ->
      invalid_arg (Printf.sprintf "component %s: max_instances=%d" name m)
  | Some _ | None -> ());
  { name; cost_inactive; cost_active; max_instances; failure_modes; loss_window }

let cost t = function
  | Inactive -> t.cost_inactive
  | Active -> t.cost_active

let mechanism_references t =
  let from_repair =
    List.filter_map
      (fun m ->
        match m.repair with
        | Repair_by_mechanism mech -> Some mech
        | Fixed_repair _ -> None)
      t.failure_modes
  in
  let from_loss_window =
    match t.loss_window with
    | Loss_window_by_mechanism mech -> [ mech ]
    | No_loss_window | Fixed_loss_window _ -> []
  in
  List.sort_uniq String.compare (from_repair @ from_loss_window)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>component %s (inactive %a / active %a)" t.name
    Money.pp t.cost_inactive Money.pp t.cost_active;
  List.iter
    (fun m ->
      let repair =
        match m.repair with
        | Fixed_repair d -> Duration.to_string d
        | Repair_by_mechanism mech -> "<" ^ mech ^ ">"
      in
      Format.fprintf ppf "@,failure=%s mtbf=%a mttr=%s detect=%a" m.mode_name
        Duration.pp m.mtbf repair Duration.pp m.detect_time)
    t.failure_modes;
  Format.fprintf ppf "@]"
