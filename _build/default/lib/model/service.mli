(** The service model (paper §3.2): tiers, their resource options, and
    per-option parallelism and performance characteristics. *)

module Duration = Aved_units.Duration

type sizing = Static | Dynamic

type failure_scope =
  | Resource_scope
      (** A failure affects only the failed resource instance. *)
  | Tier_scope
      (** A single failure takes the whole tier down (e.g. a tightly
          coupled MPI job). *)

type resource_option = {
  resource : string;  (** Resource type name in the infrastructure. *)
  sizing : sizing;
  failure_scope : failure_scope;
  n_active : Int_range.t;
  performance : Aved_perf.Perf_function.t;
  mech_performance : (string * Mech_impact.t) list;
      (** Per referenced mechanism: its performance impact. *)
}

type tier = { tier_name : string; options : resource_option list }

type t = {
  service_name : string;
  job_size : float option;
      (** Application units of work, for finite jobs only. *)
  tiers : tier list;
}

val resource_option :
  resource:string ->
  ?sizing:sizing ->
  ?failure_scope:failure_scope ->
  n_active:Int_range.t ->
  performance:Aved_perf.Perf_function.t ->
  ?mech_performance:(string * Mech_impact.t) list ->
  unit ->
  resource_option
(** [sizing] defaults to [Dynamic], [failure_scope] to
    [Resource_scope]. *)

val tier : name:string -> options:resource_option list -> tier
(** Raises [Invalid_argument] when [options] is empty or a resource is
    listed twice. *)

val make : name:string -> ?job_size:float -> tiers:tier list -> unit -> t
(** Raises [Invalid_argument] when there are no tiers, tier names clash,
    or [job_size] is non-positive. *)

val validate_against : t -> Infrastructure.t -> unit
(** Checks that every resource option references an existing resource
    type and that every [mech_performance] entry references a mechanism
    used by that resource. Raises [Invalid_argument] otherwise. *)

val find_tier : t -> string -> tier option
val is_finite_job : t -> bool
val pp : Format.formatter -> t -> unit
