(** The infrastructure model: the catalog of building blocks (paper
    §3.1) — component types, availability mechanisms and resource types.
    Maintained in a repository and shared by all services. *)

type t = {
  components : Component.t list;
  mechanisms : Mechanism.t list;
  resources : Resource.t list;
}

val make :
  components:Component.t list ->
  mechanisms:Mechanism.t list ->
  resources:Resource.t list ->
  t
(** Validates global consistency: unique names per kind; every component
    referenced by a resource exists; every mechanism referenced by a
    component exists and provides the referenced attribute (a repair
    reference needs [mttr], a loss-window reference needs
    [loss_window]). Raises [Invalid_argument] with a descriptive message
    otherwise. *)

val find_component : t -> string -> Component.t option
val find_mechanism : t -> string -> Mechanism.t option
val find_resource : t -> string -> Resource.t option

val component_exn : t -> string -> Component.t
val mechanism_exn : t -> string -> Mechanism.t
val resource_exn : t -> string -> Resource.t

val resource_components : t -> Resource.t -> Component.t list
(** The component records of a resource's elements, in declaration
    order. *)

val resource_mechanisms : t -> Resource.t -> Mechanism.t list
(** The mechanisms referenced by any component of the resource, each
    once, in first-reference order. These are the mechanisms whose
    settings the design search must choose for a tier using this
    resource. *)

val pp : Format.formatter -> t -> unit
