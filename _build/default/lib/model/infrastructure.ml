type t = {
  components : Component.t list;
  mechanisms : Mechanism.t list;
  resources : Resource.t list;
}

let find_component t name =
  List.find_opt (fun (c : Component.t) -> String.equal c.name name) t.components

let find_mechanism t name =
  List.find_opt (fun (m : Mechanism.t) -> String.equal m.name name) t.mechanisms

let find_resource t name =
  List.find_opt (fun (r : Resource.t) -> String.equal r.name name) t.resources

let not_found kind name =
  invalid_arg (Printf.sprintf "infrastructure: unknown %s %S" kind name)

let component_exn t name =
  match find_component t name with
  | Some c -> c
  | None -> not_found "component" name

let mechanism_exn t name =
  match find_mechanism t name with
  | Some m -> m
  | None -> not_found "mechanism" name

let resource_exn t name =
  match find_resource t name with
  | Some r -> r
  | None -> not_found "resource" name

let check_unique kind names =
  let sorted = List.sort String.compare names in
  let rec scan = function
    | a :: (b :: _ as rest) ->
        if String.equal a b then
          invalid_arg (Printf.sprintf "infrastructure: duplicate %s %S" kind a);
        scan rest
    | [ _ ] | [] -> ()
  in
  scan sorted

let make ~components ~mechanisms ~resources =
  check_unique "component"
    (List.map (fun (c : Component.t) -> c.name) components);
  check_unique "mechanism"
    (List.map (fun (m : Mechanism.t) -> m.name) mechanisms);
  check_unique "resource" (List.map (fun (r : Resource.t) -> r.name) resources);
  let t = { components; mechanisms; resources } in
  List.iter
    (fun (r : Resource.t) ->
      List.iter
        (fun (e : Resource.element) ->
          if find_component t e.component = None then
            invalid_arg
              (Printf.sprintf
                 "infrastructure: resource %s uses unknown component %S" r.name
                 e.component))
        r.elements)
    resources;
  List.iter
    (fun (c : Component.t) ->
      List.iter
        (fun (fm : Component.failure_mode) ->
          match fm.repair with
          | Component.Fixed_repair _ -> ()
          | Component.Repair_by_mechanism mech -> (
              match find_mechanism t mech with
              | None ->
                  invalid_arg
                    (Printf.sprintf
                       "infrastructure: component %s repairs via unknown \
                        mechanism %S"
                       c.name mech)
              | Some m ->
                  if m.mttr = None then
                    invalid_arg
                      (Printf.sprintf
                         "infrastructure: mechanism %s provides no mttr \
                          (referenced by component %s)"
                         mech c.name)))
        c.failure_modes;
      match c.loss_window with
      | Component.No_loss_window | Component.Fixed_loss_window _ -> ()
      | Component.Loss_window_by_mechanism mech -> (
          match find_mechanism t mech with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "infrastructure: component %s loss window via unknown \
                    mechanism %S"
                   c.name mech)
          | Some m ->
              if m.loss_window = None then
                invalid_arg
                  (Printf.sprintf
                     "infrastructure: mechanism %s provides no loss_window \
                      (referenced by component %s)"
                     mech c.name)))
    components;
  t

let resource_components t (r : Resource.t) =
  List.map (fun (e : Resource.element) -> component_exn t e.component) r.elements

let resource_mechanisms t (r : Resource.t) =
  let refs =
    List.concat_map
      (fun c -> Component.mechanism_references c)
      (resource_components t r)
  in
  let rec dedup seen = function
    | [] -> List.rev seen
    | m :: rest ->
        if List.mem m seen then dedup seen rest else dedup (m :: seen) rest
  in
  List.map (mechanism_exn t) (dedup [] refs)

let pp ppf t =
  Format.fprintf ppf "@[<v>infrastructure: %d components, %d mechanisms, %d resources@]"
    (List.length t.components) (List.length t.mechanisms)
    (List.length t.resources)
