module Duration = Aved_units.Duration
module Slowdown = Aved_perf.Slowdown

type case = {
  guards : (string * string) list;
  slowdown : Slowdown.t;
}

type t = case list

let unguarded slowdown = [ { guards = []; slowdown } ]
let case ~guards slowdown = { guards; slowdown }

let guard_matches setting (param, expected) =
  match List.assoc_opt param setting with
  | Some (Mechanism.Enum_value v) -> String.equal v expected
  | Some (Mechanism.Duration_value _) ->
      invalid_arg
        (Printf.sprintf "Mech_impact: guard on duration parameter %s" param)
  | None ->
      invalid_arg
        (Printf.sprintf "Mech_impact: guard on absent parameter %s" param)

let eval t ~setting ~n =
  match
    List.find_opt
      (fun case -> List.for_all (guard_matches setting) case.guards)
      t
  with
  | None -> invalid_arg "Mech_impact.eval: no case matches the setting"
  | Some case ->
      let bindings =
        ("n", float_of_int n)
        :: List.filter_map
             (fun (name, value) ->
               match value with
               | Mechanism.Duration_value d -> Some (name, Duration.minutes d)
               | Mechanism.Enum_value _ -> None)
             setting
      in
      Slowdown.eval case.slowdown bindings

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i case ->
      if i > 0 then Format.pp_print_cut ppf ();
      let guard_text =
        match case.guards with
        | [] -> "*"
        | guards ->
            String.concat ","
              (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) guards)
      in
      Format.fprintf ppf "[%s] -> %a" guard_text Slowdown.pp case.slowdown)
    t;
  Format.fprintf ppf "@]"
