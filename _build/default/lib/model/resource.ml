module Duration = Aved_units.Duration

type element = {
  component : string;
  depends_on : string option;
  startup : Duration.t;
}

type t = {
  name : string;
  reconfig_time : Duration.t;
  elements : element list;
}

let element ~component ?depends_on ?(startup = Duration.zero) () =
  { component; depends_on; startup }

let find_element t name =
  List.find_opt (fun e -> String.equal e.component name) t.elements

let make ~name ?(reconfig_time = Duration.zero) ~elements () =
  if elements = [] then
    invalid_arg (Printf.sprintf "resource %s: no components" name);
  let names = List.map (fun e -> e.component) elements in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg (Printf.sprintf "resource %s: duplicate component" name);
  let t = { name; reconfig_time; elements } in
  List.iter
    (fun e ->
      match e.depends_on with
      | None -> ()
      | Some dep ->
          if String.equal dep e.component then
            invalid_arg
              (Printf.sprintf "resource %s: %s depends on itself" name
                 e.component);
          if find_element t dep = None then
            invalid_arg
              (Printf.sprintf "resource %s: %s depends on unknown %s" name
                 e.component dep))
    elements;
  (* Cycle check: walk each dependency chain; chains are per-element
     single-parent so a cycle manifests as a walk longer than the
     element count. *)
  let limit = List.length elements in
  List.iter
    (fun e ->
      let rec walk current steps =
        if steps > limit then
          invalid_arg (Printf.sprintf "resource %s: dependency cycle" name)
        else
          match find_element t current with
          | Some { depends_on = Some dep; _ } -> walk dep (steps + 1)
          | Some { depends_on = None; _ } | None -> ()
      in
      walk e.component 0)
    elements;
  t

let component_names t = List.map (fun e -> e.component) t.elements

let depends_transitively t name ancestor =
  let rec walk current =
    match find_element t current with
    | Some { depends_on = Some dep; _ } ->
        String.equal dep ancestor || walk dep
    | Some { depends_on = None; _ } | None -> false
  in
  walk name

let dependents t name =
  List.filter
    (fun c -> depends_transitively t c name)
    (component_names t)

let affected_by_failure t name = name :: dependents t name

let startup_time_of t names =
  List.fold_left
    (fun acc n ->
      match find_element t n with
      | Some e -> Duration.add acc e.startup
      | None ->
          invalid_arg
            (Printf.sprintf "resource %s: unknown component %s" t.name n))
    Duration.zero names

let restart_time t name = startup_time_of t (affected_by_failure t name)

let startup_order t =
  (* Kahn's algorithm over the single-parent dependency forest; ties are
     broken by declaration order for determinism. *)
  let remaining = ref (component_names t) in
  let placed = ref [] in
  let is_placed c = List.mem c !placed in
  let ready c =
    match find_element t c with
    | Some { depends_on = None; _ } -> true
    | Some { depends_on = Some dep; _ } -> is_placed dep
    | None -> false
  in
  while !remaining <> [] do
    match List.find_opt ready !remaining with
    | Some c ->
        placed := !placed @ [ c ];
        remaining := List.filter (fun x -> not (String.equal x c)) !remaining
    | None -> assert false (* acyclic by construction *)
  done;
  !placed

let total_startup_time t = startup_time_of t (component_names t)

let downward_closed_subsets t =
  let components = component_names t in
  let closed subset =
    List.for_all
      (fun c ->
        match find_element t c with
        | Some { depends_on = Some dep; _ } -> List.mem dep subset
        | Some { depends_on = None; _ } -> true
        | None -> false)
      subset
  in
  let rec subsets = function
    | [] -> [ [] ]
    | c :: rest ->
        let tails = subsets rest in
        tails @ List.map (fun tail -> c :: tail) tails
  in
  subsets components
  |> List.filter closed
  |> List.map (fun s ->
         (* Keep declaration order within each subset. *)
         List.filter (fun c -> List.mem c s) components)
  |> List.sort (fun a b ->
         match Int.compare (List.length a) (List.length b) with
         | 0 -> Stdlib.compare a b
         | c -> c)

let pp ppf t =
  Format.fprintf ppf "@[<v 2>resource %s reconfig=%a" t.name Duration.pp
    t.reconfig_time;
  List.iter
    (fun e ->
      Format.fprintf ppf "@,component=%s depend=%s startup=%a" e.component
        (Option.value e.depends_on ~default:"null")
        Duration.pp e.startup)
    t.elements;
  Format.fprintf ppf "@]"
