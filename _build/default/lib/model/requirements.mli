(** Service requirements (paper §2).

    Enterprise services specify a throughput floor and an annual
    downtime ceiling; finite jobs specify only a bound on expected
    completion time. *)

module Duration = Aved_units.Duration

type t =
  | Enterprise of {
      throughput : float;  (** Service-specific units of load. *)
      max_annual_downtime : Duration.t;
    }
  | Finite_job of { max_execution_time : Duration.t }

val enterprise : throughput:float -> max_annual_downtime:Duration.t -> t
(** Raises [Invalid_argument] on a non-positive throughput. *)

val finite_job : max_execution_time:Duration.t -> t
(** Raises [Invalid_argument] on a zero bound. *)

val pp : Format.formatter -> t -> unit
