lib/model/design.ml: Aved_units Component Format Infrastructure List Mechanism Printf Resource String
