lib/model/requirements.mli: Aved_units Format
