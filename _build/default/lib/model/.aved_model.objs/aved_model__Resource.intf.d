lib/model/resource.mli: Aved_units Format
