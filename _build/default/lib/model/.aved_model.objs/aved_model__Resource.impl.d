lib/model/resource.ml: Aved_units Format Int List Option Printf Stdlib String
