lib/model/service.mli: Aved_perf Aved_units Format Infrastructure Int_range Mech_impact
