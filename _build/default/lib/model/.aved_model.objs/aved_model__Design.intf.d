lib/model/design.mli: Aved_units Format Infrastructure Mechanism
