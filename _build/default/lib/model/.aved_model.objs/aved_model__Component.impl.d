lib/model/component.ml: Aved_units Format List Option Printf String
