lib/model/infrastructure.mli: Component Format Mechanism Resource
