lib/model/infrastructure.ml: Component Format List Mechanism Printf Resource String
