lib/model/int_range.mli: Format
