lib/model/int_range.ml: Format Int List Printf String
