lib/model/mech_impact.ml: Aved_perf Aved_units Format List Mechanism Printf String
