lib/model/service.ml: Aved_perf Aved_units Float Format Infrastructure Int_range List Mech_impact Mechanism Printf String
