lib/model/mechanism.mli: Aved_units Format
