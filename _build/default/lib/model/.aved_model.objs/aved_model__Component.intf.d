lib/model/component.mli: Aved_units Format
