lib/model/mechanism.ml: Aved_units Format List Option Printf String
