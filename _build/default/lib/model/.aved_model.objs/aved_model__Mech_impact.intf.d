lib/model/mech_impact.mli: Aved_perf Format Mechanism
