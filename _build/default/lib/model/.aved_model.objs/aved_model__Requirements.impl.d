lib/model/requirements.ml: Aved_units Float Format Printf
