module Duration = Aved_units.Duration

type t =
  | Enterprise of {
      throughput : float;
      max_annual_downtime : Duration.t;
    }
  | Finite_job of { max_execution_time : Duration.t }

let enterprise ~throughput ~max_annual_downtime =
  if not (Float.is_finite throughput) || throughput <= 0. then
    invalid_arg (Printf.sprintf "Requirements.enterprise: throughput %g" throughput);
  Enterprise { throughput; max_annual_downtime }

let finite_job ~max_execution_time =
  if Duration.is_zero max_execution_time then
    invalid_arg "Requirements.finite_job: zero execution time bound";
  Finite_job { max_execution_time }

let pp ppf = function
  | Enterprise { throughput; max_annual_downtime } ->
      Format.fprintf ppf "throughput >= %g, annual downtime <= %a" throughput
        Duration.pp max_annual_downtime
  | Finite_job { max_execution_time } ->
      Format.fprintf ppf "job completion time <= %a" Duration.pp
        max_execution_time
