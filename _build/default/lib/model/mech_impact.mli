(** Performance impact of an availability mechanism on a tier.

    Paper §3.2: the service model attaches an [mperformance] function to
    each (tier, resource) option affected by a mechanism. Table 1 keys
    these functions on enum parameters (storage location) and evaluates
    an expression over the remaining variables (checkpoint interval,
    number of active resources). Values are multiplicative slowdowns
    (>= 1, the paper's >= 100%).

    Variable binding convention: the expression may use [n] (number of
    active resources) and any duration-valued mechanism parameter by its
    parameter name, bound in {e minutes} (Table 1's [cpi] convention). *)

type case = {
  guards : (string * string) list;
      (** Enum parameter values this case applies to, e.g.
          [["storage_location", "central"]]. An empty list matches any
          setting. *)
  slowdown : Aved_perf.Slowdown.t;
}

type t = case list
(** Cases are tried in order; the first whose guards all match is used. *)

val unguarded : Aved_perf.Slowdown.t -> t
val case : guards:(string * string) list -> Aved_perf.Slowdown.t -> case

val eval : t -> setting:Mechanism.setting -> n:int -> float
(** The slowdown factor (>= 1). Raises [Invalid_argument] when no case
    matches or a guard names a parameter absent from the setting;
    raises [Aved_expr.Expr.Unbound_variable] when the expression needs a
    variable the setting does not provide. *)

val pp : Format.formatter -> t -> unit
