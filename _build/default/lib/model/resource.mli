(** Resource types (paper §3.1.3).

    A resource is a combination of components allocated to a service as a
    unit — e.g. machineA + linux + webserver. Dependencies fix both the
    startup order and failure propagation: a component's failure also
    brings down every component that (transitively) depends on it. *)

module Duration = Aved_units.Duration

type element = {
  component : string;  (** Component type name. *)
  depends_on : string option;
      (** The component within this resource it runs on ([None] = the
          paper's [depend=null]). *)
  startup : Duration.t;
}

type t = {
  name : string;
  reconfig_time : Duration.t;
      (** Extra time on failover to a spare of this type (load-balancer
          reconfiguration, data transfer, ...). *)
  elements : element list;  (** In declaration order. *)
}

val make :
  name:string -> ?reconfig_time:Duration.t -> elements:element list -> unit -> t
(** Validates: at least one element, distinct component names, every
    dependency names another element, and the dependency graph is
    acyclic. Raises [Invalid_argument] otherwise. *)

val element :
  component:string -> ?depends_on:string -> ?startup:Duration.t -> unit ->
  element

val component_names : t -> string list
(** In declaration order. *)

val dependents : t -> string -> string list
(** [dependents t c] — the components that transitively depend on [c]
    (excluding [c]), i.e. those also brought down by a failure of [c]. *)

val affected_by_failure : t -> string -> string list
(** [c] plus its transitive dependents — everything that must restart
    after [c] fails. *)

val restart_time : t -> string -> Duration.t
(** Total startup time incurred after a failure of the given component:
    the sum of startup times of {!affected_by_failure}. (Startups along
    a dependency chain are sequential.) *)

val startup_order : t -> string list
(** A topological order of the components (dependencies first). *)

val total_startup_time : t -> Duration.t
(** Time to start the whole resource from cold, following the
    dependency chains (sum over all elements — the paper's chains are
    linear so sequential startup is the faithful reading). *)

val startup_time_of : t -> string list -> Duration.t
(** Sum of the startup times of the given components. *)

val downward_closed_subsets : t -> string list list
(** All subsets S of components such that every dependency of a member
    is also a member — the legal sets of components that can be kept
    [Active] in a spare resource (software cannot run on powered-off
    hardware). Ordered by increasing size; always contains [[]] and the
    full set. *)

val pp : Format.formatter -> t -> unit
