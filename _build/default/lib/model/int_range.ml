type t =
  | Singleton of int
  | Arithmetic of { lo : int; hi : int; step : int }
  | Geometric of { lo : int; hi : int; factor : int }
  | Explicit of int list

let singleton n =
  if n < 0 then invalid_arg (Printf.sprintf "Int_range.singleton: %d" n);
  Singleton n

let arithmetic ~lo ~hi ~step =
  if lo < 0 || hi < lo || step <= 0 then
    invalid_arg
      (Printf.sprintf "Int_range.arithmetic: [%d-%d,+%d]" lo hi step);
  Arithmetic { lo; hi; step }

let geometric ~lo ~hi ~factor =
  if lo < 1 || hi < lo || factor <= 1 then
    invalid_arg
      (Printf.sprintf "Int_range.geometric: [%d-%d,*%d]" lo hi factor);
  Geometric { lo; hi; factor }

let explicit = function
  | [] -> invalid_arg "Int_range.explicit: empty"
  | values ->
      if List.exists (fun v -> v < 0) values then
        invalid_arg "Int_range.explicit: negative member";
      Explicit (List.sort_uniq Int.compare values)

let to_list = function
  | Singleton n -> [ n ]
  | Arithmetic { lo; hi; step } ->
      let rec loop n acc = if n > hi then List.rev acc else loop (n + step) (n :: acc) in
      loop lo []
  | Geometric { lo; hi; factor } ->
      let rec loop n acc = if n > hi then List.rev acc else loop (n * factor) (n :: acc) in
      loop lo []
  | Explicit values -> values

let mem t n =
  match t with
  | Singleton v -> v = n
  | Arithmetic { lo; hi; step } -> n >= lo && n <= hi && (n - lo) mod step = 0
  | Geometric _ | Explicit _ -> List.mem n (to_list t)

let min_value t = match to_list t with [] -> assert false | n :: _ -> n

let max_value t =
  match List.rev (to_list t) with [] -> assert false | n :: _ -> n

let next_above t n = List.find_opt (fun v -> v >= n) (to_list t)

let of_string text =
  let text = String.trim text in
  let n = String.length text in
  if n < 2 || text.[0] <> '[' || text.[n - 1] <> ']' then
    invalid_arg (Printf.sprintf "Int_range.of_string: %S" text);
  let body = String.trim (String.sub text 1 (n - 2)) in
  let int_of s =
    match int_of_string_opt (String.trim s) with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Int_range.of_string: bad int %S" s)
  in
  match String.split_on_char ',' body with
  | [ single ] when not (String.contains single '-') ->
      singleton (int_of single)
  | [ range; step ] when String.contains range '-' -> (
      let lo, hi =
        match String.index_opt range '-' with
        | Some i ->
            ( int_of (String.sub range 0 i),
              int_of (String.sub range (i + 1) (String.length range - i - 1)) )
        | None -> assert false
      in
      let step = String.trim step in
      match step.[0] with
      | '+' ->
          arithmetic ~lo ~hi
            ~step:(int_of (String.sub step 1 (String.length step - 1)))
      | '*' ->
          geometric ~lo ~hi
            ~factor:(int_of (String.sub step 1 (String.length step - 1)))
      | _ -> invalid_arg (Printf.sprintf "Int_range.of_string: bad step %S" step)
      | exception Invalid_argument _ ->
          invalid_arg (Printf.sprintf "Int_range.of_string: %S" text))
  | parts when List.length parts > 1 && not (String.contains body '-') ->
      explicit (List.map int_of parts)
  | _ -> invalid_arg (Printf.sprintf "Int_range.of_string: %S" text)

let to_string = function
  | Singleton n -> Printf.sprintf "[%d]" n
  | Arithmetic { lo; hi; step } -> Printf.sprintf "[%d-%d,+%d]" lo hi step
  | Geometric { lo; hi; factor } -> Printf.sprintf "[%d-%d,*%d]" lo hi factor
  | Explicit values ->
      "[" ^ String.concat "," (List.map string_of_int values) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
