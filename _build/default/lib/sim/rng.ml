type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 output mixer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = next_int64 t in
  { state = mix seed }

(* Top 53 bits scaled to [0, 1). *)
let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. 0x1.0p-53

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. (float t *. (hi -. lo))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: bounds are tiny relative to 2^53. *)
  int_of_float (float t *. float_of_int bound)

let exponential t ~rate =
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg (Printf.sprintf "Rng.exponential: rate %g" rate);
  let u = float t in
  -.Float.log1p (-.u) /. rate

let weibull t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.weibull: bad parameters";
  let u = float t in
  scale *. Float.pow (-.Float.log1p (-.u)) (1. /. shape)

let gaussian t ~mean ~stddev =
  if stddev < 0. then invalid_arg "Rng.gaussian: negative stddev";
  (* Box-Muller; u1 must be nonzero for the log. *)
  let rec nonzero () =
    let u = float t in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () in
  let u2 = float t in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (gaussian t ~mean:mu ~stddev:sigma)
