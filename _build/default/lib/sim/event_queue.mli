(** A binary min-heap of timestamped events.

    The discrete-event simulator processes events in time order; ties are
    broken by insertion order so simulations are fully deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] for a non-finite time. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the earliest event. *)

val peek_time : 'a t -> float option
val clear : 'a t -> unit
