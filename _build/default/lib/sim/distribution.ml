type t =
  | Deterministic of float
  | Exponential of float
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }

let exponential_of_mean m =
  if not (Float.is_finite m) || m <= 0. then
    invalid_arg (Printf.sprintf "Distribution.exponential_of_mean: %g" m);
  Exponential m

(* Gamma function via the Lanczos approximation — accurate to ~1e-13 for
   the arguments used here (1 + 1/shape with shape in a sane range). *)
let gamma x =
  let coefficients =
    [|
      676.5203681218851; -1259.1392167224028; 771.32342877765313;
      -176.61502916214059; 12.507343278686905; -0.13857109526572012;
      9.9843695780195716e-6; 1.5056327351493116e-7;
    |]
  in
  let rec compute x =
    if x < 0.5 then Float.pi /. (sin (Float.pi *. x) *. compute (1. -. x))
    else begin
      let x = x -. 1. in
      let a = ref 0.99999999999980993 in
      Array.iteri
        (fun i c -> a := !a +. (c /. (x +. float_of_int i +. 1.)))
        coefficients;
      let t = x +. 7.5 in
      sqrt (2. *. Float.pi)
      *. Float.pow t (x +. 0.5)
      *. exp (-.t) *. !a
    end
  in
  compute x

let weibull_of_mean ~shape ~mean =
  if shape <= 0. || mean <= 0. then
    invalid_arg "Distribution.weibull_of_mean: bad parameters";
  let scale = mean /. gamma (1. +. (1. /. shape)) in
  Weibull { shape; scale }

let lognormal_of_mean ~sigma ~mean =
  if sigma < 0. || mean <= 0. then
    invalid_arg "Distribution.lognormal_of_mean: bad parameters";
  (* E = exp(mu + sigma^2/2)  =>  mu = log mean - sigma^2/2. *)
  Lognormal { mu = log mean -. (sigma *. sigma /. 2.); sigma }

let mean = function
  | Deterministic v -> v
  | Exponential m -> m
  | Weibull { shape; scale } -> scale *. gamma (1. +. (1. /. shape))
  | Lognormal { mu; sigma } -> exp (mu +. (sigma *. sigma /. 2.))

let sample t rng =
  match t with
  | Deterministic v -> v
  | Exponential m -> Rng.exponential rng ~rate:(1. /. m)
  | Weibull { shape; scale } -> Rng.weibull rng ~shape ~scale
  | Lognormal { mu; sigma } -> Rng.lognormal rng ~mu ~sigma

let pp ppf = function
  | Deterministic v -> Format.fprintf ppf "deterministic(%g)" v
  | Exponential m -> Format.fprintf ppf "exponential(mean=%g)" m
  | Weibull { shape; scale } ->
      Format.fprintf ppf "weibull(shape=%g, scale=%g)" shape scale
  | Lognormal { mu; sigma } ->
      Format.fprintf ppf "lognormal(mu=%g, sigma=%g)" mu sigma
