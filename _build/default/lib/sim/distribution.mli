(** Sampling distributions for failure and repair processes.

    The analytic engines assume exponential interarrivals (as the paper
    does); the simulator also supports Weibull and lognormal shapes for
    sensitivity ablations. *)

type t =
  | Deterministic of float  (** Always the given value (seconds). *)
  | Exponential of float  (** Mean (seconds); rate is its inverse. *)
  | Weibull of { shape : float; scale : float }
  | Lognormal of { mu : float; sigma : float }

val exponential_of_mean : float -> t
(** Raises [Invalid_argument] for a non-positive mean. *)

val weibull_of_mean : shape:float -> mean:float -> t
(** The Weibull with the given shape whose mean equals [mean]. *)

val lognormal_of_mean : sigma:float -> mean:float -> t
(** The lognormal with the given [sigma] whose mean equals [mean]. *)

val mean : t -> float
val sample : t -> Rng.t -> float
val pp : Format.formatter -> t -> unit
