lib/sim/rng.mli:
