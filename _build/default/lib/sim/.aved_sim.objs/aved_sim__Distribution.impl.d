lib/sim/distribution.ml: Array Float Format Printf Rng
