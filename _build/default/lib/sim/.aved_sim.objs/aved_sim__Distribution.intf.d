lib/sim/distribution.mli: Format Rng
