(** Deterministic, seedable pseudo-random numbers (SplitMix64).

    The Monte-Carlo availability engine must be reproducible across runs
    and platforms, so it does not use [Stdlib.Random]. SplitMix64 passes
    BigCrush, is trivially splittable, and needs one 64-bit word of
    state. *)

type t

val create : int -> t
(** [create seed] — equal seeds yield equal streams. *)

val split : t -> t
(** A statistically independent generator derived from (and advancing)
    the given one; used to give each simulation replication its own
    stream. *)

val copy : t -> t
val next_int64 : t -> int64

val float : t -> float
(** Uniform in [0, 1). *)

val uniform : t -> lo:float -> hi:float -> float
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). [bound] must be positive. *)

val exponential : t -> rate:float -> float
(** Exponential variate with the given rate (mean [1/rate]). [rate] must
    be positive. *)

val weibull : t -> shape:float -> scale:float -> float
(** Weibull variate; [shape = 1] degenerates to exponential with mean
    [scale]. Used by the non-exponential failure ablation. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** Lognormal variate: exp of a Gaussian with parameters [mu], [sigma];
    used to model repair times with heavy right tails. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box–Muller transform. *)
