lib/expr/expr.mli: Format
