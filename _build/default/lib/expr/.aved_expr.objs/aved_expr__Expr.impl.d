lib/expr/expr.ml: Float Format List Printf String
