module Duration = Aved_units.Duration

type node = int

type t = { n : int; edges : (int * int * float) list }

let create n =
  if n <= 0 then invalid_arg (Printf.sprintf "Topology.create: %d nodes" n);
  { n; edges = [] }

let num_nodes t = t.n
let num_links t = List.length t.edges

let add_link t u v ~availability =
  if u = v then invalid_arg "Topology.add_link: self-loop";
  if u < 0 || u >= t.n || v < 0 || v >= t.n then
    invalid_arg "Topology.add_link: node out of range";
  if not (Float.is_finite availability) || availability < 0. || availability > 1.
  then invalid_arg (Printf.sprintf "Topology.add_link: availability %g" availability);
  { t with edges = (u, v, availability) :: t.edges }

let add_link_mtbf t u v ~mtbf ~mttr =
  let a =
    Aved_reliability.Availability.to_fraction
      (Aved_reliability.Availability.of_mtbf_mttr ~mtbf ~mttr)
  in
  add_link t u v ~availability:a

(* Union-find over node labels, used for leaf connectivity checks. *)
module Uf = struct
  let create n = Array.init n Fun.id

  let rec find parents x =
    if parents.(x) = x then x
    else begin
      parents.(x) <- find parents parents.(x);
      parents.(x)
    end

  let union parents x y =
    let rx = find parents x and ry = find parents y in
    if rx <> ry then parents.(rx) <- ry
end

(* Contraction/deletion factoring for 2-terminal reliability. Nodes are
   tracked through contractions with a relabeling function applied
   lazily via association. *)
let two_terminal t ~src ~dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topology.two_terminal: node out of range";
  (* Quick reachability with every edge assumed up: prunes dead branches. *)
  let reachable edges s d =
    let parents = Uf.create t.n in
    List.iter (fun (u, v, _) -> Uf.union parents u v) edges;
    Uf.find parents s = Uf.find parents d
  in
  let contract edges keep gone =
    List.filter_map
      (fun (u, v, p) ->
        let u = if u = gone then keep else u in
        let v = if v = gone then keep else v in
        if u = v then None else Some (u, v, p))
      edges
  in
  let rename x keep gone = if x = gone then keep else x in
  let rec solve edges s d =
    if s = d then 1.
    else if not (reachable edges s d) then 0.
    else
      match edges with
      | [] -> 0.
      | (u, v, p) :: rest ->
          let contracted () = solve (contract rest u v) (rename s u v) (rename d u v) in
          let deleted () = solve rest s d in
          if p >= 1. then contracted ()
          else if p <= 0. then deleted ()
          else (p *. contracted ()) +. ((1. -. p) *. deleted ())
  in
  solve t.edges src dst

let connected_hosts ~n ~edges ~core ~hosts =
  let parents = Uf.create n in
  List.iter (fun (u, v) -> Uf.union parents u v) edges;
  let core_root = Uf.find parents core in
  List.length (List.filter (fun h -> Uf.find parents h = core_root) hosts)

let at_least_k_connected t ~core ~hosts ~k =
  if k <= 0 then 1.
  else if k > List.length hosts then 0.
  else begin
    List.iter
      (fun h ->
        if h < 0 || h >= t.n then
          invalid_arg "Topology.at_least_k_connected: host out of range")
      (core :: hosts);
    let edges = Array.of_list t.edges in
    let total = Array.length edges in
    (* Recurse over edge states; prune when the outcome is already
       decided with the undecided edges all-up (optimistic) or all-down
       (pessimistic). *)
    let rec go index weight up_edges =
      if weight = 0. then 0.
      else begin
        let undecided =
          List.init (total - index) (fun i ->
              let u, v, _ = edges.(index + i) in
              (u, v))
        in
        let optimistic =
          connected_hosts ~n:t.n ~edges:(undecided @ up_edges) ~core ~hosts
        in
        if optimistic < k then 0.
        else begin
          let pessimistic = connected_hosts ~n:t.n ~edges:up_edges ~core ~hosts in
          if pessimistic >= k then weight
          else begin
            (* index < total here: otherwise optimistic = pessimistic. *)
            let u, v, p = edges.(index) in
            go (index + 1) (weight *. p) ((u, v) :: up_edges)
            +. go (index + 1) (weight *. (1. -. p)) up_edges
          end
        end
      end
    in
    go 0 1. []
  end

(* Fabrics: the switch is a node whose own failures sit on its uplink
   edge to the returned core node, so a switch failure disconnects all
   of its hosts at once (common mode). *)

let single_switch ~hosts ~link_availability ~switch_availability =
  if hosts <= 0 then invalid_arg "Topology.single_switch: no hosts";
  let switch = hosts and core = hosts + 1 in
  let t = create (hosts + 2) in
  let t = add_link t switch core ~availability:switch_availability in
  let t =
    List.fold_left
      (fun t h -> add_link t h switch ~availability:link_availability)
      t
      (List.init hosts Fun.id)
  in
  (t, List.init hosts Fun.id, core)

let dual_switch ~hosts ~link_availability ~switch_availability =
  if hosts <= 0 then invalid_arg "Topology.dual_switch: no hosts";
  let s1 = hosts and s2 = hosts + 1 and core = hosts + 2 in
  let t = create (hosts + 3) in
  let t = add_link t s1 core ~availability:switch_availability in
  let t = add_link t s2 core ~availability:switch_availability in
  let t =
    List.fold_left
      (fun t h ->
        let t = add_link t h s1 ~availability:link_availability in
        add_link t h s2 ~availability:link_availability)
      t
      (List.init hosts Fun.id)
  in
  (t, List.init hosts Fun.id, core)

let pp ppf t =
  Format.fprintf ppf "@[<v>topology: %d nodes, %d links" t.n (num_links t);
  List.iter
    (fun (u, v, p) -> Format.fprintf ppf "@,  %d -- %d (a=%g)" u v p)
    (List.rev t.edges);
  Format.fprintf ppf "@]"
