lib/network/topology.ml: Array Aved_reliability Aved_units Float Format Fun List Printf
