lib/network/topology.mli: Aved_units Format
