(** LAN topologies with failing links and switches.

    The paper's future work (§7) plans to "extend Aved to factor LAN
    topologies and network failures". This module provides that
    substrate: a topology is an undirected multigraph whose edges fail
    independently with known availabilities (a failing switch is modeled
    by putting its availability on all of its incident edges, or by the
    {!switch} helper which inserts it as a node with failing legs).

    Exact network reliability is #P-hard in general; the solvers here
    use contraction/deletion factoring, which is exponential in the edge
    count but exact, and entirely adequate for rack/LAN-scale designs
    (tens of edges). *)

type node = int

type t
(** An undirected topology over nodes [0 .. num_nodes-1]. *)

val create : int -> t
(** [create n] has [n] nodes and no links. *)

val num_nodes : t -> int
val num_links : t -> int

val add_link : t -> node -> node -> availability:float -> t
(** Functional update; adds one (more) link between two distinct nodes.
    Raises [Invalid_argument] on self-loops, out-of-range nodes, or an
    availability outside [0, 1]. *)

val add_link_mtbf :
  t -> node -> node ->
  mtbf:Aved_units.Duration.t -> mttr:Aved_units.Duration.t -> t
(** Availability from failure data, [mtbf/(mtbf+mttr)]. *)

val two_terminal : t -> src:node -> dst:node -> float
(** Probability that [src] and [dst] are connected, edges failing
    independently. [1.] when [src = dst]. Exact
    (contraction/deletion). *)

val at_least_k_connected : t -> core:node -> hosts:node list -> k:int -> float
(** Probability that at least [k] of the listed host nodes can reach
    [core] — the network-side availability of a tier needing [k] of its
    [n] members reachable. Exact, by enumeration over edge states with
    factoring on shared infrastructure; exponential in the number of
    links, intended for LAN-scale graphs. *)

(** Ready-made fabrics. *)

val single_switch : hosts:int -> link_availability:float ->
  switch_availability:float -> t * node list * node
(** [hosts] hosts each wired to one switch; the switch's own failures
    sit on its uplink edge to the returned core node, so a switch
    failure takes out every host at once. Returns
    (topology, host nodes, core node). *)

val dual_switch : hosts:int -> link_availability:float ->
  switch_availability:float -> t * node list * node
(** Each host wired to two independent switches that are both connected
    to a core node; survives any single switch failure. Returns
    (topology, host nodes, core node). *)

val pp : Format.formatter -> t -> unit
