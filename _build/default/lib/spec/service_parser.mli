(** Parser for service specifications (the paper's Figs. 4 and 5).

    Grammar, by leading key of each line:

    {v
    application=NAME [jobsize=W]
    tier=NAME
      resource=RNAME [sizing=dynamic|static]
                     [failurescope=resource|tier]
        nActive=RANGE
        performance=PERF              \\ rest of line; const / expr / table
        mechanism=MNAME               \\ opens an impact block
          mperformance=EXPR           \\ unguarded case
          mperformance(P=V,...)=EXPR  \\ guarded case
    v}

    [performance] values accept a plain number (constant throughput), an
    expression in [n] (optionally prefixed [expr:]), or
    [table:n1=v1,...] — this replaces the paper's [perfX.dat] files.
    The [nActive] and [performance] attributes may also appear on the
    [resource] line itself.

    Raises {!Line_lexer.Error} on malformed input. *)

val parse : string -> Aved_model.Service.t
val parse_file : string -> Aved_model.Service.t
