(** Pretty-printer emitting the specification language.

    [Infra_parser.parse (infrastructure_to_string i)] reconstructs [i]
    (and likewise for services) — the round trip is enforced by the test
    suite. Used by [aved dump-specs] and for persisting programmatically
    built models. *)

val infrastructure_to_string : Aved_model.Infrastructure.t -> string
val service_to_string : Aved_model.Service.t -> string

val write_infrastructure : path:string -> Aved_model.Infrastructure.t -> unit
val write_service : path:string -> Aved_model.Service.t -> unit
