(** Parser for infrastructure specifications (the paper's Fig. 3).

    Grammar, by leading key of each line:

    {v
    component=NAME [cost=COST | cost([inactive,active])=[C_in C_act]]
                   [max_instances=N] [loss_window=<MECH>|DURATION]
      failure=MODE mtbf=DUR mttr=(<MECH>|DUR) [detect_time=DUR]
      ... more failure lines ...

    mechanism=NAME
      param=PNAME range=([e1,e2,...] | [LO-HI;*FACTOR])
      cost=COST | cost(PNAME)=[c1 c2 ...]
      [mttr=DUR | mttr(PNAME)=[d1 d2 ...]]
      [loss_window=PNAME | loss_window=DUR]

    resource=NAME [reconfig_time=DUR]
      component=CNAME depend=(null|CNAME) [startup=DUR]
      ...
    v}

    Tabular bindings like [cost(level)=[380 580 760 1500]] pair the
    values positionally with the parameter's declared enum range.
    Raises {!Line_lexer.Error} on any syntactic or referential
    problem (unknown components, missing attributes, ...). *)

val parse : string -> Aved_model.Infrastructure.t
val parse_file : string -> Aved_model.Infrastructure.t
