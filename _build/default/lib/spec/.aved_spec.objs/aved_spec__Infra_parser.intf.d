lib/spec/infra_parser.mli: Aved_model
