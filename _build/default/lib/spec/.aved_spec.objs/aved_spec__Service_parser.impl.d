lib/spec/service_parser.ml: Aved_model Aved_perf Fun Line_lexer List Option Parse_util String
