lib/spec/spec_writer.ml: Aved_model Aved_perf Aved_units Buffer Fun List Option Printf String
