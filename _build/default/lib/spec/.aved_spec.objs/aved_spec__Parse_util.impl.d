lib/spec/parse_util.ml: Aved_units Float Line_lexer List Printf String
