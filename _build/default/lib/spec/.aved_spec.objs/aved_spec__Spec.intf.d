lib/spec/spec.mli: Aved_model
