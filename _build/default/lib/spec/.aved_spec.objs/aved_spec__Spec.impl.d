lib/spec/spec.ml: Aved_model Infra_parser Line_lexer Printf Service_parser
