lib/spec/spec_writer.mli: Aved_model
