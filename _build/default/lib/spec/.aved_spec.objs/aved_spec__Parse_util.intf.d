lib/spec/parse_util.mli: Aved_units
