lib/spec/infra_parser.ml: Aved_model Aved_units Fun Line_lexer List Option Parse_util String
