lib/spec/service_parser.mli: Aved_model
