lib/spec/line_lexer.ml: List Option Printf String
