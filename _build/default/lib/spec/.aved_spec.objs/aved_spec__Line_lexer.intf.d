lib/spec/line_lexer.mli:
