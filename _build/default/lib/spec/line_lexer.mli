(** Lexer for the paper's attribute-value specification language.

    A specification is line-oriented. Each non-blank, non-comment line
    is a sequence of attributes:

    {v key=value   key(args)=value v}

    Comments start with [\\] (the paper's convention) or [#] and run to
    the end of the line. A value is delimited as follows: values
    starting with [\[] extend to the matching unnested [\]] (so
    [cost([inactive,active])=[2400 2640]] works); values of the
    rest-of-line keys [performance] and [mperformance] extend to the end
    of the line (so unquoted expressions work); any other value extends
    to the next whitespace. *)

exception Error of { line : int; message : string }

type attr = {
  key : string;
  args : string option;  (** The text between the parentheses, if any. *)
  value : string;
}

type line = { lineno : int; attrs : attr list }

val tokenize : string -> line list
(** Lexes a whole specification text. Line numbers are 1-based. Raises
    {!Error} on malformed lines. *)

val find : line -> string -> attr option
(** First attribute with the given key. *)

val find_value : line -> string -> string option
val leading_key : line -> string
(** Key of the first attribute (lines are classified by it). *)
