module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model

let buffer_add = Buffer.add_string

(* --- infrastructure ------------------------------------------------- *)

let component_lines buf (c : Model.Component.t) =
  buffer_add buf (Printf.sprintf "component=%s" c.name);
  if Money.equal c.cost_inactive c.cost_active then
    buffer_add buf (Printf.sprintf " cost=%s" (Money.to_string c.cost_active))
  else
    buffer_add buf
      (Printf.sprintf " cost([inactive,active])=[%s %s]"
         (Money.to_string c.cost_inactive)
         (Money.to_string c.cost_active));
  (match c.max_instances with
  | Some m -> buffer_add buf (Printf.sprintf " max_instances=%d" m)
  | None -> ());
  (match c.loss_window with
  | Model.Component.No_loss_window -> ()
  | Model.Component.Fixed_loss_window d ->
      buffer_add buf (Printf.sprintf " loss_window=%s" (Duration.to_string d))
  | Model.Component.Loss_window_by_mechanism m ->
      buffer_add buf (Printf.sprintf " loss_window=<%s>" m));
  buffer_add buf "\n";
  List.iter
    (fun (fm : Model.Component.failure_mode) ->
      let repair =
        match fm.repair with
        | Model.Component.Fixed_repair d -> Duration.to_string d
        | Model.Component.Repair_by_mechanism m -> "<" ^ m ^ ">"
      in
      buffer_add buf
        (Printf.sprintf "  failure=%s mtbf=%s mttr=%s detect_time=%s\n"
           fm.mode_name
           (Duration.to_string fm.mtbf)
           repair
           (Duration.to_string fm.detect_time)))
    c.failure_modes

let range_text = function
  | Model.Mechanism.Enum values -> "[" ^ String.concat "," values ^ "]"
  | Model.Mechanism.Duration_geometric { lo; hi; factor } ->
      Printf.sprintf "[%s-%s;*%g]" (Duration.to_string lo)
        (Duration.to_string hi) factor

let enum_values (m : Model.Mechanism.t) param =
  match
    List.find_opt
      (fun (p : Model.Mechanism.parameter) -> String.equal p.param_name param)
      m.parameters
  with
  | Some { range = Model.Mechanism.Enum values; _ } -> values
  | Some { range = Model.Mechanism.Duration_geometric _; _ } | None ->
      invalid_arg "Spec_writer: tabular binding without enum parameter"

let binding_line buf m attr to_text = function
  | Model.Mechanism.Fixed v ->
      buffer_add buf (Printf.sprintf "  %s=%s\n" attr (to_text v))
  | Model.Mechanism.By_enum { param; table } ->
      let cells =
        List.map
          (fun value ->
            match List.assoc_opt value table with
            | Some v -> to_text v
            | None -> invalid_arg "Spec_writer: incomplete binding table")
          (enum_values m param)
      in
      buffer_add buf
        (Printf.sprintf "  %s(%s)=[%s]\n" attr param (String.concat " " cells))
  | Model.Mechanism.Of_param param ->
      buffer_add buf (Printf.sprintf "  %s=%s\n" attr param)

let mechanism_lines buf (m : Model.Mechanism.t) =
  buffer_add buf (Printf.sprintf "mechanism=%s\n" m.name);
  List.iter
    (fun (p : Model.Mechanism.parameter) ->
      buffer_add buf
        (Printf.sprintf "  param=%s range=%s\n" p.param_name (range_text p.range)))
    m.parameters;
  binding_line buf m "cost" Money.to_string m.cost;
  Option.iter (binding_line buf m "mttr" Duration.to_string) m.mttr;
  Option.iter (binding_line buf m "loss_window" Duration.to_string) m.loss_window

let resource_lines buf (r : Model.Resource.t) =
  buffer_add buf
    (Printf.sprintf "resource=%s reconfig_time=%s\n" r.name
       (Duration.to_string r.reconfig_time));
  List.iter
    (fun (e : Model.Resource.element) ->
      buffer_add buf
        (Printf.sprintf "  component=%s depend=%s startup=%s\n" e.component
           (Option.value e.depends_on ~default:"null")
           (Duration.to_string e.startup)))
    r.elements

let infrastructure_to_string (infra : Model.Infrastructure.t) =
  let buf = Buffer.create 2048 in
  List.iter (component_lines buf) infra.components;
  List.iter (mechanism_lines buf) infra.mechanisms;
  List.iter (resource_lines buf) infra.resources;
  Buffer.contents buf

(* --- service --------------------------------------------------------- *)

let option_lines buf (o : Model.Service.resource_option) =
  buffer_add buf
    (Printf.sprintf "  resource=%s sizing=%s failurescope=%s nActive=%s\n"
       o.resource
       (match o.sizing with
       | Model.Service.Dynamic -> "dynamic"
       | Model.Service.Static -> "static")
       (match o.failure_scope with
       | Model.Service.Resource_scope -> "resource"
       | Model.Service.Tier_scope -> "tier")
       (Model.Int_range.to_string o.n_active));
  buffer_add buf
    (Printf.sprintf "    performance=%s\n"
       (Aved_perf.Perf_function.to_string o.performance));
  List.iter
    (fun (mech, cases) ->
      buffer_add buf (Printf.sprintf "    mechanism=%s\n" mech);
      List.iter
        (fun (case : Model.Mech_impact.case) ->
          let args =
            match case.guards with
            | [] -> ""
            | guards ->
                "("
                ^ String.concat ","
                    (List.map (fun (k, v) -> k ^ "=" ^ v) guards)
                ^ ")"
          in
          buffer_add buf
            (Printf.sprintf "      mperformance%s=%s\n" args
               (Aved_perf.Slowdown.to_string case.slowdown)))
        cases)
    o.mech_performance

let service_to_string (s : Model.Service.t) =
  let buf = Buffer.create 1024 in
  buffer_add buf (Printf.sprintf "application=%s" s.service_name);
  (match s.job_size with
  | Some size -> buffer_add buf (Printf.sprintf " jobsize=%g" size)
  | None -> ());
  buffer_add buf "\n";
  List.iter
    (fun (tier : Model.Service.tier) ->
      buffer_add buf (Printf.sprintf "tier=%s\n" tier.tier_name);
      List.iter (option_lines buf) tier.options)
    s.tiers;
  Buffer.contents buf

let write_file path content =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)

let write_infrastructure ~path infra =
  write_file path (infrastructure_to_string infra)

let write_service ~path service = write_file path (service_to_string service)
