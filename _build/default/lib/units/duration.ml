type t = float (* seconds *)

let second = 1.
let minute = 60.
let hour = 3600.
let day = 86400.
let year = 365. *. day

let zero = 0.

let of_seconds s =
  if not (Float.is_finite s) || s < 0. then
    invalid_arg (Printf.sprintf "Duration.of_seconds: %g" s)
  else s

let of_minutes m = of_seconds (m *. minute)
let of_hours h = of_seconds (h *. hour)
let of_days d = of_seconds (d *. day)
let of_years y = of_seconds (y *. year)

let seconds t = t
let minutes t = t /. minute
let hours t = t /. hour
let days t = t /. day
let years t = t /. year

let add = ( +. )
let sub a b = if b >= a then 0. else a -. b

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg (Printf.sprintf "Duration.scale: %g" k)
  else k *. t

let ratio a b = if b = 0. then raise Division_by_zero else a /. b
let min = Float.min
let max = Float.max
let is_zero t = t = 0.
let compare = Float.compare
let equal = Float.equal

let unit_value = function
  | 's' -> Some second
  | 'm' -> Some minute
  | 'h' -> Some hour
  | 'd' -> Some day
  | 'y' -> Some year
  | _ -> None

let of_string_opt s =
  let s = String.trim s in
  let n = String.length s in
  if n = 0 then None
  else
    let numeric, unit =
      match unit_value s.[n - 1] with
      | Some u when n > 1 -> (String.sub s 0 (n - 1), u)
      | Some _ | None -> (s, second)
    in
    match float_of_string_opt numeric with
    | Some v when Float.is_finite v && v >= 0. -> Some (v *. unit)
    | Some _ | None -> None

let of_string s =
  match of_string_opt s with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "Duration.of_string: %S" s)

(* Render a float without a trailing ".": 90. -> "90", 1.5 -> "1.5". *)
let compact_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let to_string t =
  if t = 0. then "0s"
  else
    let render unit suffix = compact_float (t /. unit) ^ suffix in
    if t >= year && Float.is_integer (t /. year) then render year "y"
    else if t >= day && Float.is_integer (t /. day) then render day "d"
    else if t >= hour && Float.is_integer (t /. hour) then render hour "h"
    else if t >= minute && Float.is_integer (t /. minute) then render minute "m"
    else if t < minute then render second "s"
    else if t < hour then render minute "m"
    else if t < day then render hour "h"
    else render day "d"

let pp ppf t = Format.pp_print_string ppf (to_string t)
