lib/units/money.mli: Format
