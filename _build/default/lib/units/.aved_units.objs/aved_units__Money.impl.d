lib/units/money.ml: Float Format List Printf
