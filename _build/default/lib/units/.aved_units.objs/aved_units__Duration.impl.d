lib/units/duration.ml: Float Format Printf String
