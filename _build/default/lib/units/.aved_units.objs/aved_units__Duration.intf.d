lib/units/duration.mli: Format
