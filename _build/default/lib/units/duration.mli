(** Time durations for availability modeling.

    The paper's specification language writes durations with single-letter
    unit suffixes ([650d], [2m], [38h], [30s]); annual downtime is reported
    in minutes per year. A duration is stored canonically in seconds. *)

type t
(** A non-negative span of time. *)

val zero : t

val of_seconds : float -> t
(** [of_seconds s] is the duration of [s] seconds. Raises
    [Invalid_argument] if [s] is negative or not finite. *)

val of_minutes : float -> t
val of_hours : float -> t
val of_days : float -> t

val of_years : float -> t
(** One year is 365 days (the paper's annual-downtime convention). *)

val seconds : t -> float
val minutes : t -> float
val hours : t -> float
val days : t -> float
val years : t -> float

val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] saturates at {!zero} when [b] exceeds [a]. *)

val scale : float -> t -> t
(** [scale k d] multiplies [d] by a non-negative factor [k]. *)

val ratio : t -> t -> float
(** [ratio a b] is [seconds a /. seconds b]. Raises [Division_by_zero]
    when [b] is {!zero}. *)

val min : t -> t -> t
val max : t -> t -> t
val is_zero : t -> bool
val compare : t -> t -> int
val equal : t -> t -> bool

val of_string : string -> t
(** Parses the paper's notation: a non-negative decimal number followed by
    an optional unit suffix [s] (seconds), [m] (minutes), [h] (hours),
    [d] (days) or [y] (years). A bare number is taken as seconds.
    Raises [Invalid_argument] on malformed input. *)

val of_string_opt : string -> t option

val to_string : t -> string
(** Renders with the largest unit that yields a compact number, e.g.
    ["650d"], ["2m"], ["90s"]. Inverse of {!of_string} up to rounding. *)

val pp : Format.formatter -> t -> unit
