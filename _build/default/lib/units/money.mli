(** Annualized costs.

    The paper reduces every cost to an annual figure: capital cost divided
    by useful lifetime plus yearly operational cost. A value is a plain
    amount in currency units per year. *)

type t

val zero : t
val of_float : float -> t
(** Raises [Invalid_argument] when the amount is negative or not finite. *)

val to_float : t -> float
val add : t -> t -> t
val sub : t -> t -> t
(** [sub a b] saturates at {!zero}. *)

val sum : t list -> t
val scale : float -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val min : t -> t -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string
