type t = float

let zero = 0.

let of_float v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (Printf.sprintf "Money.of_float: %g" v)
  else v

let to_float t = t
let add = ( +. )
let sub a b = if b >= a then 0. else a -. b
let sum = List.fold_left add zero

let scale k t =
  if not (Float.is_finite k) || k < 0. then
    invalid_arg (Printf.sprintf "Money.scale: %g" k)
  else k *. t

let compare = Float.compare
let equal = Float.equal
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0
let min = Float.min

let to_string t =
  if Float.is_integer t then Printf.sprintf "%.0f" t else Printf.sprintf "%.2f" t

let pp ppf t = Format.pp_print_string ppf (to_string t)
