lib/search/job_search.ml: Aved_avail Aved_model Aved_perf Aved_units Float Format Fun List Option Search_config Stdlib Tier_search
