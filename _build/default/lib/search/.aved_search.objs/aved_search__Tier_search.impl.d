lib/search/tier_search.ml: Aved_avail Aved_model Aved_units Candidate Float List Option Search_config Stdlib
