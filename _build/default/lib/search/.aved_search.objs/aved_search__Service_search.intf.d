lib/search/service_search.mli: Aved_model Aved_units Candidate Search_config
