lib/search/search_config.mli: Aved_avail
