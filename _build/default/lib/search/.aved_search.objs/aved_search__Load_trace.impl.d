lib/search/load_trace.ml: Aved_units Float Fun List Printf String
