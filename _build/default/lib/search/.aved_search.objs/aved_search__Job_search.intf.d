lib/search/job_search.mli: Aved_avail Aved_model Aved_units Format Search_config
