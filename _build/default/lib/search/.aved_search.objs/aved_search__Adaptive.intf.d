lib/search/adaptive.mli: Aved_model Aved_units Candidate Search_config
