lib/search/candidate.ml: Aved_avail Aved_model Aved_units Float Format List String
