lib/search/adaptive.ml: Aved_avail Aved_units Candidate List Printf Tier_search
