lib/search/load_trace.mli: Aved_units
