lib/search/sensitivity.ml: Aved_avail Aved_model Aved_units Candidate Float List Option Printf Tier_search
