lib/search/service_search.ml: Array Aved_model Aved_units Candidate Float Fun Job_search List Option Printf Tier_search
