lib/search/search_config.ml: Aved_avail
