lib/search/sensitivity.mli: Aved_model Aved_units Candidate Search_config
