lib/search/tier_search.mli: Aved_model Aved_units Candidate Search_config
