lib/search/candidate.mli: Aved_avail Aved_model Aved_units Format
