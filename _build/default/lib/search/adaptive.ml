module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Avail = Aved_avail

type policy = { headroom : float }

let default_policy = { headroom = 0.3 }

type step = {
  time : Duration.t;
  load : float;
  candidate : Candidate.t;
  redesigned : bool;
}

type replay = {
  steps : step list;
  redesigns : int;
  average_cost : Money.t;
}

(* A design sized for demand d0 is kept while the new load stays within
   (d0 / (1 + headroom), d0]: above d0 its availability estimate (whose
   up-condition uses the minimum machines for d0) no longer covers the
   load; far below d0 it is wastefully oversized. *)
let still_fits policy ~sized_for ~load =
  load <= sized_for && load *. (1. +. policy.headroom) >= sized_for

let replay config infra ~tier ~max_downtime ?(policy = default_policy) ~trace
    () =
  (match trace with
  | [] -> invalid_arg "Adaptive.replay: empty trace"
  | _ :: _ -> ());
  let rec check_ordered = function
    | (t1, _) :: (((t2, _) :: _) as rest) ->
        if Duration.compare t1 t2 >= 0 then
          invalid_arg "Adaptive.replay: trace not strictly time-ordered";
        check_ordered rest
    | [ _ ] | [] -> ()
  in
  check_ordered trace;
  let design_for load =
    match Tier_search.optimal config infra ~tier ~demand:load ~max_downtime with
    | Some c -> c
    | None ->
        invalid_arg
          (Printf.sprintf "Adaptive.replay: no feasible design at load %g" load)
  in
  let steps_rev, _, redesigns =
    List.fold_left
      (fun (acc, sized_for, redesigns) (time, load) ->
        match acc with
        | [] ->
            ( [ { time; load; candidate = design_for load; redesigned = true } ],
              load,
              redesigns )
        | previous :: _ ->
            if still_fits policy ~sized_for ~load then
              ( { time; load; candidate = previous.candidate; redesigned = false }
                :: acc,
                sized_for,
                redesigns )
            else
              ( { time; load; candidate = design_for load; redesigned = true }
                :: acc,
                load,
                redesigns + 1 ))
      ([], 0., 0) trace
  in
  let steps = List.rev steps_rev in
  (* Time-weighted average cost: each step's design is in force until
     the next timestamp. *)
  let average_cost =
    match steps with
    | [] | [ _ ] ->
        (match steps with
        | [ only ] -> only.candidate.Candidate.cost
        | _ -> Money.zero)
    | first :: _ ->
        let rec weighted acc total = function
          | a :: (b :: _ as rest) ->
              let dt = Duration.seconds b.time -. Duration.seconds a.time in
              weighted
                (acc +. (Money.to_float a.candidate.Candidate.cost *. dt))
                (total +. dt) rest
          | [ _ ] | [] -> (acc, total)
        in
        let acc, total = weighted 0. 0. steps in
        ignore first;
        if total <= 0. then Money.zero else Money.of_float (acc /. total)
  in
  { steps; redesigns; average_cost }
