module Duration = Aved_units.Duration

let diurnal ~days ~samples_per_day ~base ~peak ?(peak_hour = 15.)
    ?(weekend_factor = 1.) () =
  if days <= 0 || samples_per_day <= 0 then
    invalid_arg "Load_trace.diurnal: non-positive size";
  if base <= 0. || peak < base then
    invalid_arg "Load_trace.diurnal: need 0 < base <= peak";
  if weekend_factor <= 0. then
    invalid_arg "Load_trace.diurnal: non-positive weekend factor";
  List.init (days * samples_per_day) (fun i ->
      let hours =
        float_of_int i *. 24. /. float_of_int samples_per_day
      in
      let day = i / samples_per_day in
      let hour_of_day = Float.rem hours 24. in
      (* A clipped sinusoid centered on the peak hour with a 12 h
         half-width. *)
      let phase = (hour_of_day -. peak_hour) *. Float.pi /. 12. in
      let shape = Float.max 0. (cos phase) in
      let weekend = if day mod 7 >= 5 then weekend_factor else 1. in
      let load = (base +. ((peak -. base) *. shape)) *. weekend in
      (Duration.of_hours hours, Float.max 1e-6 load))

let step ~levels ~samples_per_level =
  if samples_per_level <= 0 then
    invalid_arg "Load_trace.step: non-positive samples";
  let _, rows =
    List.fold_left
      (fun (start, acc) (hours, load) ->
        if hours <= 0. then invalid_arg "Load_trace.step: non-positive level";
        let samples =
          List.init samples_per_level (fun i ->
              ( Duration.of_hours
                  (start +. (hours *. float_of_int i /. float_of_int samples_per_level)),
                load ))
        in
        (start +. hours, acc @ samples))
      (0., []) levels
  in
  rows

let of_csv_string text =
  let rows =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun line -> line <> "" && line.[0] <> '#')
    |> List.map (fun line ->
           match String.split_on_char ',' line with
           | [ hours; load ] -> (
               match
                 (float_of_string_opt (String.trim hours),
                  float_of_string_opt (String.trim load))
               with
               | Some h, Some l when Float.is_finite h && h >= 0. && l > 0. ->
                   (Duration.of_hours h, l)
               | _ ->
                   invalid_arg
                     (Printf.sprintf "Load_trace: bad row %S" line))
           | _ -> invalid_arg (Printf.sprintf "Load_trace: bad row %S" line))
  in
  let rec check = function
    | (t1, _) :: (((t2, _) :: _) as rest) ->
        if Duration.compare t1 t2 >= 0 then
          invalid_arg "Load_trace: timestamps must increase";
        check rest
    | [ _ ] | [] -> ()
  in
  check rows;
  rows

let of_csv_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_csv_string content

let to_csv_string trace =
  String.concat ""
    (List.map
       (fun (t, load) ->
         Printf.sprintf "%.6g,%.6g\n" (Duration.hours t) load)
       trace)

let peak_load = function
  | [] -> invalid_arg "Load_trace.peak_load: empty trace"
  | trace -> List.fold_left (fun acc (_, l) -> Float.max acc l) 0. trace

let mean_load = function
  | [] -> invalid_arg "Load_trace.mean_load: empty trace"
  | [ (_, only) ] -> only
  | trace ->
      let rec weighted acc total = function
        | (t1, l) :: (((t2, _) :: _) as rest) ->
            let dt = Duration.seconds t2 -. Duration.seconds t1 in
            weighted (acc +. (l *. dt)) (total +. dt) rest
        | [ _ ] | [] -> (acc, total)
      in
      let acc, total = weighted 0. 0. trace in
      if total <= 0. then invalid_arg "Load_trace.mean_load: zero span"
      else acc /. total
