(** Sensitivity of designs to errors in the failure data.

    The paper notes (§5.1) that software failure rates were estimated
    "based on the authors' intuition" — exactly the data a user should
    distrust. This module perturbs the infrastructure's MTBFs and repair
    times by scale factors, re-runs the search, and reports whether the
    chosen design family survives. *)

type variation = {
  mtbf_scale : float;  (** Multiplies every failure mode's MTBF. *)
  mttr_scale : float;
      (** Multiplies every fixed repair time and every mechanism-provided
          MTTR. *)
}

val nominal : variation
(** Scales of 1. *)

val scaled_infrastructure :
  Aved_model.Infrastructure.t -> variation -> Aved_model.Infrastructure.t
(** A copy of the infrastructure with all failure data scaled. Raises
    [Invalid_argument] on non-positive scales. *)

type outcome = {
  variation : variation;
  candidate : Candidate.t option;  (** Optimal design under the variation. *)
  family : string option;
      (** Its family tuple (with n_extra relative to the variation's own
          performance minimum). *)
}

val tier_sensitivity :
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  demand:float ->
  max_downtime:Aved_units.Duration.t ->
  variations:variation list ->
  outcome list
(** Optimal design under each variation (the nominal infrastructure is
    whatever is passed in; include {!nominal} in the list to record the
    baseline). *)

val stable_family : outcome list -> string option
(** [Some family] when every variation produced a design of the same
    family, [None] otherwise (including any infeasible variation). *)

val default_variations : variation list
(** Nominal plus ±50% on MTBF and MTTR independently — five points. *)
