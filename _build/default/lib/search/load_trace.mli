(** Load traces for the adaptive controller.

    Synthetic diurnal/weekly workload generators and a small CSV format
    ([hours,load] per line, [#] comments) for replaying recorded
    traces through {!Adaptive.replay}. *)

module Duration = Aved_units.Duration

val diurnal :
  days:int ->
  samples_per_day:int ->
  base:float ->
  peak:float ->
  ?peak_hour:float ->
  ?weekend_factor:float ->
  unit ->
  (Duration.t * float) list
(** A smooth day/night cycle: load rises from [base] to [peak] around
    [peak_hour] (default 15.0) following a clipped sinusoid. Days 6 and
    7 of each week are scaled by [weekend_factor] (default 1). Raises
    [Invalid_argument] on non-positive sizes or [peak < base]. *)

val step :
  levels:(float * float) list -> samples_per_level:int -> (Duration.t * float) list
(** Piecewise-constant trace: each [(hours, load)] level is held for the
    given duration, sampled [samples_per_level] times. *)

val of_csv_string : string -> (Duration.t * float) list
(** Parses [hours,load] lines; blank lines and [#] comments are skipped.
    Raises [Invalid_argument] on malformed rows or non-increasing
    timestamps. *)

val of_csv_file : string -> (Duration.t * float) list
val to_csv_string : (Duration.t * float) list -> string
(** Inverse of {!of_csv_string}. *)

val peak_load : (Duration.t * float) list -> float
(** Raises [Invalid_argument] on an empty trace. *)

val mean_load : (Duration.t * float) list -> float
(** Time-weighted mean (the final sample closes the last interval with
    zero weight, matching {!Adaptive.replay}'s cost accounting). *)
