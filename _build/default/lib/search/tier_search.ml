module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Avail = Aved_avail

let settings_product infra resource =
  let mechanisms = Model.Infrastructure.resource_mechanisms infra resource in
  let rec product = function
    | [] -> [ [] ]
    | (m : Model.Mechanism.t) :: rest ->
        let tails = product rest in
        List.concat_map
          (fun setting ->
            List.map (fun tail -> (m.name, setting) :: tail) tails)
          (Model.Mechanism.settings m)
  in
  product mechanisms

let spare_mode_choices config infra resource_name ~n_spare =
  if n_spare = 0 then [ [] ]
  else if not config.Search_config.explore_spare_modes then [ [] ]
  else
    let resource = Model.Infrastructure.resource_exn infra resource_name in
    Model.Resource.downward_closed_subsets resource

let evaluate config infra ~option ~demand design =
  let model =
    Avail.Tier_model.build ~infra ~option ~design ~demand:(Some demand)
  in
  let downtime_fraction =
    Avail.Evaluate.tier_downtime_fraction config.Search_config.engine model
  in
  {
    Candidate.design;
    model;
    cost = Model.Design.tier_cost infra design;
    downtime_fraction;
  }

let enumerate_total config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~total ?cost_cap () =
  let resource = Model.Infrastructure.resource_exn infra option.resource in
  let all_settings = settings_product infra resource in
  let within_cap cost =
    match cost_cap with None -> true | Some cap -> Money.(cost < cap)
  in
  List.concat_map
    (fun settings ->
      match
        Avail.Tier_model.minimum_actives ~option ~settings ~demand
      with
      | None -> []
      | Some n_min ->
          let candidates = ref [] in
          let n_values =
            List.filter
              (fun n ->
                n >= n_min && n <= total
                && n - n_min <= config.Search_config.max_extra_resources
                && total - n <= config.Search_config.max_spares)
              (Model.Int_range.to_list option.n_active)
          in
          List.iter
            (fun n_active ->
              let n_spare = total - n_active in
              List.iter
                (fun spare_active_components ->
                  let design =
                    Model.Design.tier_design ~tier_name
                      ~resource:option.resource ~n_active ~n_spare
                      ~spare_active_components ~mechanism_settings:settings ()
                  in
                  let cost = Model.Design.tier_cost infra design in
                  if within_cap cost then
                    match evaluate config infra ~option ~demand design with
                    | candidate -> candidates := candidate :: !candidates
                    | exception Invalid_argument _ -> ())
                (spare_mode_choices config infra option.resource ~n_spare))
            n_values;
          List.rev !candidates)
    all_settings

let option_minimum ~option ~settings ~demand =
  List.filter_map
    (fun s -> Avail.Tier_model.minimum_actives ~option ~settings:s ~demand)
    settings
  |> function
  | [] -> None
  | mins -> Some (List.fold_left Stdlib.min max_int mins)

(* [better a b]: prefer lower cost, then lower downtime. *)
let better (a : Candidate.t) (b : Candidate.t) =
  match Money.compare a.cost b.cost with
  | 0 -> a.downtime_fraction < b.downtime_fraction
  | c -> c < 0

let max_total_for config start =
  Stdlib.min config.Search_config.max_total_resources
    (start + config.Search_config.max_extra_resources
   + config.Search_config.max_spares)

let search_option config infra ~tier_name
    ~(option : Model.Service.resource_option) ~demand ~max_downtime ~incumbent
    =
  let resource = Model.Infrastructure.resource_exn infra option.resource in
  let all_settings = settings_product infra resource in
  match option_minimum ~option ~settings:all_settings ~demand with
  | None -> incumbent
  | Some start ->
      let limit = max_total_for config start in
      let max_downtime_fraction = Duration.years max_downtime in
      let best = ref incumbent in
      let previous_best_downtime = ref Float.infinity in
      let degradations = ref 0 in
      let stop = ref false in
      let total = ref start in
      while (not !stop) && !total <= limit do
        let cost_cap = Option.map (fun c -> c.Candidate.cost) !best in
        let candidates =
          enumerate_total config infra ~tier_name ~option ~demand ~total:!total
            ?cost_cap ()
        in
        let feasible =
          List.filter
            (fun c -> c.Candidate.downtime_fraction <= max_downtime_fraction)
            candidates
        in
        List.iter
          (fun c ->
            match !best with
            | Some b when not (better c b) -> ()
            | Some _ | None -> best := Some c)
          feasible;
        (match !best with
        | Some b ->
            (* All designs with more resources cost strictly more than the
               cheapest at this count; stop once even the cheapest cannot
               beat the incumbent. *)
            let min_cost_here =
              List.fold_left
                (fun acc c -> Money.min acc c.Candidate.cost)
                (Money.of_float Float.max_float)
                candidates
            in
            if candidates = [] || Money.(b.Candidate.cost <= min_cost_here)
            then stop := true
        | None ->
            (* No feasible design yet: give up when adding resources no
               longer improves the best achievable downtime. *)
            let best_downtime_here =
              List.fold_left
                (fun acc c -> Float.min acc c.Candidate.downtime_fraction)
                Float.infinity candidates
            in
            if best_downtime_here >= !previous_best_downtime then begin
              incr degradations;
              if !degradations >= 2 then stop := true
            end
            else degradations := 0;
            previous_best_downtime := best_downtime_here);
        incr total
      done;
      !best

let optimal config infra ~(tier : Model.Service.tier) ~demand ~max_downtime =
  List.fold_left
    (fun incumbent option ->
      search_option config infra ~tier_name:tier.tier_name ~option ~demand
        ~max_downtime ~incumbent)
    None tier.options

let frontier config infra ~(tier : Model.Service.tier) ~demand =
  let candidates =
    List.concat_map
      (fun (option : Model.Service.resource_option) ->
        let resource =
          Model.Infrastructure.resource_exn infra option.resource
        in
        let all_settings = settings_product infra resource in
        match option_minimum ~option ~settings:all_settings ~demand with
        | None -> []
        | Some start ->
            let limit = max_total_for config start in
            List.concat_map
              (fun total ->
                enumerate_total config infra ~tier_name:tier.tier_name ~option
                  ~demand ~total ())
              (List.init (limit - start + 1) (fun i -> start + i)))
      tier.options
  in
  Candidate.pareto candidates
