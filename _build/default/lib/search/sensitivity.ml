module Duration = Aved_units.Duration
module Model = Aved_model

type variation = {
  mtbf_scale : float;
  mttr_scale : float;
}

let nominal = { mtbf_scale = 1.; mttr_scale = 1. }

let check_variation v =
  if
    not (Float.is_finite v.mtbf_scale)
    || v.mtbf_scale <= 0.
    || (not (Float.is_finite v.mttr_scale))
    || v.mttr_scale <= 0.
  then
    invalid_arg
      (Printf.sprintf "Sensitivity: bad variation (%g, %g)" v.mtbf_scale
         v.mttr_scale)

let scale_duration k d = Duration.scale k d

let scaled_component v (c : Model.Component.t) =
  {
    c with
    Model.Component.failure_modes =
      List.map
        (fun (fm : Model.Component.failure_mode) ->
          {
            fm with
            mtbf = scale_duration v.mtbf_scale fm.mtbf;
            repair =
              (match fm.repair with
              | Model.Component.Fixed_repair d ->
                  Model.Component.Fixed_repair (scale_duration v.mttr_scale d)
              | Model.Component.Repair_by_mechanism _ as r -> r);
          })
        c.failure_modes;
  }

let scale_binding v = function
  | Model.Mechanism.Fixed d ->
      Model.Mechanism.Fixed (scale_duration v.mttr_scale d)
  | Model.Mechanism.By_enum { param; table } ->
      Model.Mechanism.By_enum
        {
          param;
          table =
            List.map (fun (k, d) -> (k, scale_duration v.mttr_scale d)) table;
        }
  | Model.Mechanism.Of_param _ as binding -> binding

let scaled_mechanism v (m : Model.Mechanism.t) =
  { m with Model.Mechanism.mttr = Option.map (scale_binding v) m.mttr }

let scaled_infrastructure (infra : Model.Infrastructure.t) v =
  check_variation v;
  {
    Model.Infrastructure.components =
      List.map (scaled_component v) infra.components;
    mechanisms = List.map (scaled_mechanism v) infra.mechanisms;
    resources = infra.resources;
  }

type outcome = {
  variation : variation;
  candidate : Candidate.t option;
  family : string option;
}

let tier_sensitivity config infra ~tier ~demand ~max_downtime ~variations =
  List.map
    (fun variation ->
      let scaled = scaled_infrastructure infra variation in
      let candidate =
        Tier_search.optimal config scaled ~tier ~demand ~max_downtime
      in
      let family =
        Option.map
          (fun (c : Candidate.t) ->
            Candidate.family c
              ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min)
          candidate
      in
      { variation; candidate; family })
    variations

let stable_family outcomes =
  match outcomes with
  | [] -> None
  | first :: rest -> (
      match first.family with
      | None -> None
      | Some family ->
          if
            List.for_all
              (fun o -> o.family = Some family)
              rest
          then Some family
          else None)

let default_variations =
  [
    nominal;
    { nominal with mtbf_scale = 0.5 };
    { nominal with mtbf_scale = 1.5 };
    { nominal with mttr_scale = 0.5 };
    { nominal with mttr_scale = 1.5 };
  ]
