module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model

type tier_outcome = {
  candidate : Candidate.t;
  tier : Model.Service.tier;
}

type report = {
  design : Model.Design.t;
  cost : Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
}

let series_downtime_fraction candidates =
  let up =
    List.fold_left
      (fun acc (c : Candidate.t) -> acc *. (1. -. c.downtime_fraction))
      1. candidates
  in
  1. -. up

let enterprise_report ~service_name candidates =
  let cost =
    Money.sum (List.map (fun (c : Candidate.t) -> c.Candidate.cost) candidates)
  in
  {
    design =
      Model.Design.make ~service_name
        ~tiers:(List.map (fun (c : Candidate.t) -> c.Candidate.design) candidates);
    cost;
    downtime = Some (Duration.of_years (series_downtime_fraction candidates));
    execution_time = None;
  }

(* Exact minimum-cost selection of one frontier point per tier subject
   to the series downtime budget. Frontiers are sorted by increasing
   cost (hence decreasing downtime), which gives two prunes: partial
   cost against the incumbent, and infeasibility even with the
   lowest-downtime (last) points of the remaining tiers. *)
let combine_frontiers frontiers ~budget_fraction =
  let arrays = List.map Array.of_list frontiers in
  let min_downtimes =
    (* For each suffix of tiers, the product of (1 - best downtime). *)
    let rec suffixes = function
      | [] -> [ 1. ]
      | (frontier : Candidate.t array) :: rest ->
          let tail = suffixes rest in
          let best =
            Array.fold_left
              (fun acc c -> Float.min acc c.Candidate.downtime_fraction)
              Float.infinity frontier
          in
          (match tail with
          | best_rest :: _ -> ((1. -. best) *. best_rest) :: tail
          | [] -> assert false)
    in
    Array.of_list (suffixes arrays)
  in
  let best : (Money.t * Candidate.t list) option ref = ref None in
  let rec explore idx chosen cost_so_far up_so_far remaining =
    match remaining with
    | [] ->
        if 1. -. up_so_far <= budget_fraction then begin
          match !best with
          | Some (best_cost, _) when Money.(best_cost <= cost_so_far) -> ()
          | Some _ | None -> best := Some (cost_so_far, List.rev chosen)
        end
    | (frontier : Candidate.t array) :: rest ->
        Array.iter
          (fun (c : Candidate.t) ->
            let cost = Money.add cost_so_far c.cost in
            let cost_ok =
              match !best with
              | Some (best_cost, _) -> Money.(cost < best_cost)
              | None -> true
            in
            let up = up_so_far *. (1. -. c.downtime_fraction) in
            (* Even with the best remaining tiers, can the budget hold? *)
            let attainable = up *. min_downtimes.(idx + 1) in
            if cost_ok && 1. -. attainable <= budget_fraction then
              explore (idx + 1) (c :: chosen) cost up rest)
          frontier
  in
  explore 0 [] Money.zero 1. arrays;
  Option.map snd !best

let enterprise_design config infra (service : Model.Service.t) ~throughput
    ~max_annual_downtime =
  let budget_fraction = Duration.years max_annual_downtime in
  (* Phase 1: each tier in isolation against the full requirement. *)
  let isolated =
    List.map
      (fun tier ->
        Tier_search.optimal config infra ~tier ~demand:throughput
          ~max_downtime:max_annual_downtime)
      service.tiers
  in
  if List.for_all Option.is_some isolated then begin
    let candidates = List.filter_map Fun.id isolated in
    if series_downtime_fraction candidates <= budget_fraction then
      Some (enterprise_report ~service_name:service.service_name candidates)
    else begin
      (* Phase 2: refine with per-tier frontiers and exact combination. *)
      let frontiers =
        List.map
          (fun tier -> Tier_search.frontier config infra ~tier ~demand:throughput)
          service.tiers
      in
      if List.exists (fun f -> f = []) frontiers then None
      else
        combine_frontiers frontiers ~budget_fraction
        |> Option.map
             (enterprise_report ~service_name:service.service_name)
    end
  end
  else None

let job_design config infra (service : Model.Service.t) ~job_size ~max_time =
  match service.tiers with
  | [ tier ] ->
      Job_search.optimal config infra ~tier ~job_size ~max_time
      |> Option.map (fun (c : Job_search.candidate) ->
             {
               design =
                 Model.Design.make ~service_name:service.service_name
                   ~tiers:[ c.design ];
               cost = c.cost;
               downtime = None;
               execution_time = Some c.execution_time;
             })
  | _ ->
      invalid_arg
        (Printf.sprintf
           "Service_search: finite job %s must have exactly one tier"
           service.service_name)

let design config infra (service : Model.Service.t) requirements =
  match (requirements, service.job_size) with
  | Model.Requirements.Enterprise { throughput; max_annual_downtime }, None ->
      enterprise_design config infra service ~throughput ~max_annual_downtime
  | Model.Requirements.Finite_job { max_execution_time }, Some job_size ->
      job_design config infra service ~job_size ~max_time:max_execution_time
  | Model.Requirements.Enterprise _, Some _ ->
      invalid_arg
        "Service_search: enterprise requirements for a finite job service"
  | Model.Requirements.Finite_job _, None ->
      invalid_arg
        "Service_search: job-time requirement for a service without job_size"
