module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Avail = Aved_avail
module Perf_function = Aved_perf.Perf_function

type candidate = {
  design : Model.Design.tier_design;
  model : Avail.Tier_model.t;
  cost : Money.t;
  execution_time : Duration.t;
}

let evaluate config infra ~option ~job_size design =
  let model = Avail.Tier_model.build ~infra ~option ~design ~demand:None in
  let execution_time =
    Avail.Evaluate.job_completion_time config.Search_config.engine model
      ~job_size
  in
  {
    design;
    model;
    cost = Model.Design.tier_cost infra design;
    execution_time;
  }

(* Failure-free completion time at nominal performance — a lower bound
   on the achievable execution time with [n] resources (slowdowns and
   failures only add to it). *)
let ideal_time ~(option : Model.Service.resource_option) ~job_size ~n =
  let perf = Perf_function.eval option.performance ~n in
  if perf <= 0. then None else Some (Duration.of_hours (job_size /. perf))

let feasible_n ~option ~job_size ~max_time n =
  match ideal_time ~option ~job_size ~n with
  | None -> false
  | Some ideal -> Duration.compare ideal max_time <= 0

let enumerate_total config infra ~tier_name
    ~(option : Model.Service.resource_option) ~job_size ~max_time ~total
    ?cost_cap () =
  let resource = Model.Infrastructure.resource_exn infra option.resource in
  let all_settings = Tier_search.settings_product infra resource in
  let within_cap cost =
    match cost_cap with None -> true | Some cap -> Money.(cost < cap)
  in
  let results = ref [] in
  List.iter
    (fun n_spare ->
      let n_active = total - n_spare in
      if
        n_active > 0
        && Model.Int_range.mem option.n_active n_active
        && feasible_n ~option ~job_size ~max_time n_active
      then
        List.iter
          (fun spare_active_components ->
            List.iter
              (fun settings ->
                let design =
                  Model.Design.tier_design ~tier_name
                    ~resource:option.resource ~n_active ~n_spare
                    ~spare_active_components ~mechanism_settings:settings ()
                in
                let cost = Model.Design.tier_cost infra design in
                if within_cap cost then
                  match evaluate config infra ~option ~job_size design with
                  | candidate -> results := candidate :: !results
                  | exception Invalid_argument _ -> ())
              all_settings)
          (if n_spare = 0 || not config.Search_config.explore_spare_modes then
             [ [] ]
           else Model.Resource.downward_closed_subsets resource))
    (List.init (Stdlib.min config.Search_config.max_spares total + 1) Fun.id);
  List.rev !results

(* Prefer lower cost, then faster completion. *)
let better a b =
  match Money.compare a.cost b.cost with
  | 0 -> Duration.compare a.execution_time b.execution_time < 0
  | c -> c < 0

let start_total ~(option : Model.Service.resource_option) ~job_size ~max_time =
  List.find_opt
    (fun n -> feasible_n ~option ~job_size ~max_time n)
    (Model.Int_range.to_list option.n_active)

let search_option config infra ~tier_name ~option ~job_size ~max_time
    ~incumbent =
  match start_total ~option ~job_size ~max_time with
  | None -> incumbent
  | Some start ->
      let limit =
        Stdlib.min config.Search_config.max_total_resources
          (Model.Int_range.max_value option.Model.Service.n_active
          + config.Search_config.max_spares)
      in
      let best = ref incumbent in
      let previous_best_time = ref Float.infinity in
      let degradations = ref 0 in
      let stop = ref false in
      let total = ref start in
      while (not !stop) && !total <= limit do
        let cost_cap = Option.map (fun c -> c.cost) !best in
        let candidates =
          enumerate_total config infra ~tier_name ~option ~job_size ~max_time
            ~total:!total ?cost_cap ()
        in
        let feasible =
          List.filter
            (fun c -> Duration.compare c.execution_time max_time <= 0)
            candidates
        in
        List.iter
          (fun c ->
            match !best with
            | Some b when not (better c b) -> ()
            | Some _ | None -> best := Some c)
          feasible;
        (match !best with
        | Some b ->
            let min_cost_here =
              List.fold_left
                (fun acc c -> Money.min acc c.cost)
                (Money.of_float Float.max_float)
                candidates
            in
            if candidates = [] || Money.(b.cost <= min_cost_here) then
              stop := true
        | None ->
            let best_time_here =
              List.fold_left
                (fun acc c ->
                  Float.min acc (Duration.seconds c.execution_time))
                Float.infinity candidates
            in
            if best_time_here >= !previous_best_time then begin
              incr degradations;
              if !degradations >= 2 then stop := true
            end
            else degradations := 0;
            previous_best_time := best_time_here);
        incr total
      done;
      !best

let optimal config infra ~(tier : Model.Service.tier) ~job_size ~max_time =
  List.fold_left
    (fun incumbent option ->
      search_option config infra ~tier_name:tier.tier_name ~option ~job_size
        ~max_time ~incumbent)
    None tier.options

let frontier config infra ~(tier : Model.Service.tier) ~job_size ~max_time =
  let candidates =
    List.concat_map
      (fun (option : Model.Service.resource_option) ->
        match start_total ~option ~job_size ~max_time with
        | None -> []
        | Some start ->
            let limit =
              Stdlib.min config.Search_config.max_total_resources
                (Model.Int_range.max_value option.n_active
                + config.Search_config.max_spares)
            in
            let limit =
              (* The frontier sweep is bounded like the optimal search:
                 a window of extras beyond the first feasible count. *)
              Stdlib.min limit
                (start + config.Search_config.max_extra_resources
               + config.Search_config.max_spares)
            in
            List.concat_map
              (fun total ->
                enumerate_total config infra ~tier_name:tier.tier_name ~option
                  ~job_size ~max_time ~total ())
              (List.init (Stdlib.max 0 (limit - start + 1)) (fun i -> start + i)))
      tier.options
  in
  let feasible =
    List.filter
      (fun c -> Duration.compare c.execution_time max_time <= 0)
      candidates
  in
  let sorted =
    List.sort
      (fun a b ->
        match Money.compare a.cost b.cost with
        | 0 -> Duration.compare a.execution_time b.execution_time
        | c -> c)
      feasible
  in
  let rec scan best_time acc = function
    | [] -> List.rev acc
    | c :: rest ->
        let t = Duration.seconds c.execution_time in
        if t < best_time then scan t (c :: acc) rest
        else scan best_time acc rest
  in
  scan Float.infinity [] sorted

let pp_candidate ppf c =
  Format.fprintf ppf "%a | cost %a/yr | exec %.2f h"
    Model.Design.pp_tier c.design Money.pp c.cost
    (Duration.hours c.execution_time)
