type t = {
  engine : Aved_avail.Evaluate.engine;
  max_extra_resources : int;
  max_spares : int;
  max_total_resources : int;
  explore_spare_modes : bool;
}

let default =
  {
    engine = Aved_avail.Evaluate.Analytic;
    max_extra_resources = 8;
    max_spares = 3;
    max_total_resources = 2000;
    explore_spare_modes = false;
  }

let with_engine engine t = { t with engine }
