(** Adaptive redesign for utility computing (paper §1, §5.1, §7).

    In a utility environment the optimal design family changes as load
    fluctuates, and an engine like Aved "could dynamically re-evaluate
    and change designs as conditions change". This module replays a load
    trace against a redesign policy with hysteresis: the current design
    is kept while it still meets the performance and availability
    requirements and is not over-provisioned beyond a headroom factor;
    otherwise the search runs again. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

type policy = {
  headroom : float;
      (** Tolerated over-provisioning before scaling down: the design is
          kept while [load >= capacity_needed / (1 + headroom)]. 0 means
          redesign on any decrease; 0.3 tolerates 30% slack. *)
}

val default_policy : policy
(** 30% headroom. *)

type step = {
  time : Duration.t;  (** Trace timestamp. *)
  load : float;
  candidate : Candidate.t;  (** Design in force after this step. *)
  redesigned : bool;  (** Whether this step triggered a search. *)
}

type replay = {
  steps : step list;
  redesigns : int;  (** Searches triggered after the initial one. *)
  average_cost : Money.t;
      (** Time-weighted average annual-cost rate over the trace (each
          design's cost weighted by how long it was in force; the last
          step carries the mean of the preceding intervals). *)
}

val replay :
  Search_config.t ->
  Aved_model.Infrastructure.t ->
  tier:Aved_model.Service.tier ->
  max_downtime:Duration.t ->
  ?policy:policy ->
  trace:(Duration.t * float) list ->
  unit ->
  replay
(** Replays the trace (time-ordered [(timestamp, load)] pairs; raises
    [Invalid_argument] when empty, unordered, or when some load admits
    no feasible design). *)
