(** Knobs for the design-space search. *)

type t = {
  engine : Aved_avail.Evaluate.engine;
      (** Availability engine used inside the loop. *)
  max_extra_resources : int;
      (** How far beyond the performance-derived minimum to explore the
          total resource count of a tier (extras + spares combined). *)
  max_spares : int;  (** Cap on the number of spare resources. *)
  max_total_resources : int;  (** Absolute cap on a tier's resources. *)
  explore_spare_modes : bool;
      (** When false, spares are all-inactive (the paper's application
          tier example); when true, every downward-closed set of
          spare-active components is explored. *)
}

val default : t
(** Analytic engine, up to 8 extra resources, 3 spares, 2000 total,
    all-inactive spares. *)

val with_engine : Aved_avail.Evaluate.engine -> t -> t
