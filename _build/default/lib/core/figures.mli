(** Regeneration of the paper's evaluation artifacts (Figs. 6–8,
    Table 1). Each generator returns typed rows; [print_*] renders the
    same series the paper plots, as text tables. *)

module Duration = Aved_units.Duration

(** One frontier point of Fig. 6: at [load], the design family that is
    cost-optimal for downtime requirements at or above
    [downtime_minutes]. *)
type fig6_point = {
  load : float;
  family : string;  (** (resource, contract, n_extra, n_spare). *)
  downtime_minutes : float;
  annual_cost : float;
  n_active : int;
}

val fig6 :
  ?config:Aved_search.Search_config.t ->
  ?loads:float list ->
  unit ->
  fig6_point list
(** Sweeps the application-tier example over load levels (default
    400–5000 in steps of 200) and returns, per load, the cost-downtime
    frontier labeled by design family. *)

(** One point of Fig. 7: the optimal scientific-application design at a
    job execution-time requirement. *)
type fig7_point = {
  requirement_hours : float;
  resource : string;
  n_resources : int;  (** Active resources. *)
  n_spares : int;
  checkpoint_interval_hours : float;
  storage_location : string;
  predicted_hours : float;
  annual_cost : float;
}

val fig7 :
  ?config:Aved_search.Search_config.t ->
  ?requirements_hours:float list ->
  unit ->
  fig7_point list
(** Sweeps the execution-time requirement (default 24 log-spaced points
    from 1 to 1000 hours); infeasible requirements are omitted. *)

(** One point of Fig. 8: the extra annual cost of availability at a
    given load and downtime requirement, over the cheapest design that
    merely sustains the load. *)
type fig8_point = {
  load : float;
  downtime_requirement_minutes : float;
  extra_annual_cost : float;
}

val fig8 :
  ?config:Aved_search.Search_config.t ->
  ?loads:float list ->
  ?downtimes_minutes:float list ->
  unit ->
  fig8_point list
(** Defaults: loads {400, 800, 1600, 3200}, downtime grid log-spaced
    from 0.1 to 100 minutes. Points whose requirement is infeasible are
    omitted. *)

val print_table1 : Format.formatter -> unit
val print_fig6 : Format.formatter -> fig6_point list -> unit
val print_fig7 : Format.formatter -> fig7_point list -> unit
val print_fig8 : Format.formatter -> fig8_point list -> unit

val default_fig6_loads : float list
val default_fig7_requirements : float list
val default_fig8_loads : float list
val default_fig8_downtimes : float list

val log_spaced : lo:float -> hi:float -> count:int -> float list
(** [count] log-spaced values from [lo] to [hi] inclusive. *)
