(** The paper's evaluation scenarios (Figs. 3–5, Table 1), as
    specification text and as parsed models.

    The specification strings are the single source of truth: the
    [examples/data/*.spec] files are generated from them (via
    [aved dump-specs]) and the test suite checks they stay in sync.
    Deviations from the paper's listings are normalized typos only
    (dependencies inside rB/rF/rG point at components of the same
    resource) plus the substitution of Table 1's closed forms for the
    [perfX.dat] files; see DESIGN.md. *)

val infrastructure_spec : string
(** Fig. 3: machines, software, maintenance contracts, checkpointing,
    resources rA–rI. *)

val ecommerce_spec : string
(** Fig. 4: web, application and database tiers. *)

val scientific_spec : string
(** Fig. 5: the checkpointed MPI computation tier, jobsize 10000. *)

val infrastructure : unit -> Aved_model.Infrastructure.t

val infrastructure_bronze : unit -> Aved_model.Infrastructure.t
(** The same infrastructure with the maintenance contracts fixed at the
    bronze level, as in the paper's §5.2 scientific example. *)

val ecommerce : unit -> Aved_model.Service.t
val scientific : unit -> Aved_model.Service.t

val application_tier : unit -> Aved_model.Service.tier
(** The e-commerce application tier — the subject of the paper's §5.1
    example (Figs. 6 and 8). *)

val computation_tier : unit -> Aved_model.Service.tier
(** The scientific computation tier (§5.2, Fig. 7). *)

val scientific_job_size : float

val fig7_config : Aved_search.Search_config.t
(** The §5.2 search setup: wider resource-count caps to cover the large
    clusters of Fig. 7 (use with {!infrastructure_bronze}). *)

val table1 : (string * string * string) list
(** Rows (tier/resource, attribute, function) reproducing Table 1. *)
