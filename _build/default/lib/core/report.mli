(** Design reports.

    Renders everything an operator would want to see about a design in
    one text document: the requirements, the chosen configuration and
    its cost, each tier's availability model with its per-failure-class
    downtime attribution, the expected downtime of the deployment's
    first month (transient analysis), an engine cross-check, and — for
    enterprise designs — a sensitivity table over perturbed failure
    data. *)

val generate :
  ?config:Aved_search.Search_config.t ->
  ?sensitivity:Aved_search.Sensitivity.variation list ->
  Aved_model.Infrastructure.t ->
  Aved_model.Service.t ->
  Aved_model.Requirements.t ->
  string option
(** [None] when no feasible design exists. The sensitivity section is
    produced only for enterprise requirements (defaults to
    {!Aved_search.Sensitivity.default_variations}; pass [[]] to skip). *)
