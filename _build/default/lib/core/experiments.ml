module Model = Aved_model

let infrastructure_spec =
  {|\\ Units - s:seconds, m:minutes, h:hours, d:days
\\ COMPONENTS DESCRIPTION (paper Fig. 3)
component=machineA cost([inactive,active])=[2400 2640]
  failure=hard mtbf=650d mttr=<maintenanceA> detect_time=2m
  failure=soft mtbf=75d mttr=0 detect_time=0
component=machineB cost([inactive,active])=[85000 93500]
  failure=hard mtbf=1300d mttr=<maintenanceB> detect_time=2m
  failure=soft mtbf=150d mttr=0 detect_time=0
component=linux cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=unix cost([inactive,active])=[0 200]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=webserver cost=0
  failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverA cost([inactive,active])=[0 1700]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=appserverB cost([inactive,active])=[0 2000]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=database cost([inactive,active])=[0 20000]
  failure=soft mtbf=60d mttr=0 detect_time=0
component=mpi cost=0 loss_window=<checkpoint>
  failure=soft mtbf=60d mttr=0 detect_time=0

\\ AVAILABILITY MECHANISMS
mechanism=maintenanceA
  param=level range=[bronze,silver,gold,platinum]
  cost(level)=[380 580 760 1500]
  mttr(level)=[38h 15h 8h 6h]
mechanism=maintenanceB
  param=level range=[bronze,silver,gold,platinum]
  cost(level)=[10100 12600 15800 25300]
  mttr(level)=[38h 15h 8h 6h]
mechanism=checkpoint
  param=storage_location range=[central,peer]
  param=checkpoint_interval range=[1m-24h;*1.05]
  cost=0
  loss_window=checkpoint_interval

\\ RESOURCES DESCRIPTION
resource=rA reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=webserver depend=linux startup=30s
resource=rB reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=webserver depend=unix startup=30s
resource=rC reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=appserverA depend=linux startup=2m
resource=rD reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=appserverB depend=linux startup=30s
resource=rE reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=appserverA depend=unix startup=2m
resource=rF reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=appserverB depend=unix startup=30s
resource=rG reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=database depend=unix startup=30s
resource=rH reconfig_time=0
  component=machineA depend=null startup=30s
  component=linux depend=machineA startup=2m
  component=mpi depend=linux startup=2s
resource=rI reconfig_time=0
  component=machineB depend=null startup=60s
  component=unix depend=machineB startup=4m
  component=mpi depend=unix startup=2s
|}

let ecommerce_spec =
  {|\\ Paper Fig. 4, with Table 1 closed forms replacing the perfX.dat files
application=ecommerce
tier=web
  resource=rA sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=200*n
  resource=rB sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=1600*n
tier=application
  resource=rC sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=200*n
  resource=rD sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=200*n
  resource=rE sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=1600*n
  resource=rF sizing=dynamic failurescope=resource nActive=[1-1000,+1]
    performance=1600*n
tier=database
  resource=rG sizing=static failurescope=resource nActive=[1]
    performance=10000
|}

let scientific_spec =
  {|\\ Paper Fig. 5, with Table 1 closed forms; slowdowns are >= 100%
application=scientific jobsize=10000
tier=computation
  resource=rH sizing=static failurescope=tier nActive=[1-1000,+1]
    performance=(10*n)/(1+0.004*n)
    mechanism=checkpoint
      mperformance(storage_location=central)=if n <= 30 then max(10/checkpoint_interval, 100%) else max(n/(3*checkpoint_interval), 100%)
      mperformance(storage_location=peer)=max(20/checkpoint_interval, 100%)
  resource=rI sizing=static failurescope=tier nActive=[1-1000,+1]
    performance=(100*n)/(1+0.004*n)
    mechanism=checkpoint
      mperformance(storage_location=central)=if n <= 30 then max(5/checkpoint_interval, 100%) else max(n/(6*checkpoint_interval), 100%)
      mperformance(storage_location=peer)=max(100/checkpoint_interval, 100%)
|}

let infrastructure () = Aved_spec.Spec.infrastructure_of_string infrastructure_spec

(* §5.2 fixes the maintenance contract at bronze "to avoid overloading
   the graphs": restrict the level parameter of the maintenance
   mechanisms to that single value. *)
let infrastructure_bronze () =
  let infra = infrastructure () in
  let restrict (m : Model.Mechanism.t) =
    let parameters =
      List.map
        (fun (p : Model.Mechanism.parameter) ->
          match p.range with
          | Model.Mechanism.Enum values when List.mem "bronze" values ->
              { p with range = Model.Mechanism.Enum [ "bronze" ] }
          | Model.Mechanism.Enum _ | Model.Mechanism.Duration_geometric _ -> p)
        m.Model.Mechanism.parameters
    in
    { m with parameters }
  in
  {
    infra with
    Model.Infrastructure.mechanisms =
      List.map restrict infra.Model.Infrastructure.mechanisms;
  }
let ecommerce () = Aved_spec.Spec.service_of_string ecommerce_spec
let scientific () = Aved_spec.Spec.service_of_string scientific_spec

let tier_exn service name =
  match Model.Service.find_tier service name with
  | Some tier -> tier
  | None -> invalid_arg (Printf.sprintf "Experiments: no tier %s" name)

let application_tier () = tier_exn (ecommerce ()) "application"
let computation_tier () = tier_exn (scientific ()) "computation"
let scientific_job_size = 10000.

let fig7_config =
  {
    Aved_search.Search_config.default with
    max_spares = 3;
    max_total_resources = 400;
  }

let table1 =
  [
    ("application, rC", "performance(n)", "200*n");
    ("application, rD", "performance(n)", "200*n");
    ("application, rE", "performance(n)", "1600*n");
    ("application, rF", "performance(n)", "1600*n");
    ("computation, rH", "performance(n)", "(10*n)/(1+0.004*n)");
    ("computation, rI", "performance(n)", "(100*n)/(1+0.004*n)");
    ( "computation, rH",
      "mperformance(central,cpi,n)",
      "max(10/cpi,100%) (n <= 30) | max(n/(3*cpi),100%) (n > 30)" );
    ("computation, rH", "mperformance(peer,cpi,n)", "max(20/cpi,100%)");
    ( "computation, rI",
      "mperformance(central,cpi,n)",
      "max(5/cpi,100%) (n <= 30) | max(n/(6*cpi),100%) (n > 30)" );
    ("computation, rI", "mperformance(peer,cpi,n)", "max(100/cpi,100%)");
  ]
