lib/core/engine.mli: Aved_avail Aved_model Aved_search Aved_units Format
