lib/core/figures.mli: Aved_search Aved_units Format
