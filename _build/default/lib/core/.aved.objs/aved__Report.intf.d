lib/core/report.mli: Aved_model Aved_search
