lib/core/experiments.ml: Aved_model Aved_search Aved_spec List Printf
