lib/core/engine.ml: Aved_avail Aved_model Aved_search Aved_spec Aved_units Format List Printf String
