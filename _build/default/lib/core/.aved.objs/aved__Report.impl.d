lib/core/report.ml: Aved_avail Aved_model Aved_search Aved_units Buffer Engine Float Format List Option Printf String
