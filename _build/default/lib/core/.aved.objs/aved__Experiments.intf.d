lib/core/experiments.mli: Aved_model Aved_search
