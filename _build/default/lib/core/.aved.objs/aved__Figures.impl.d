lib/core/figures.ml: Aved_avail Aved_model Aved_search Aved_units Experiments Float Format List Option String
