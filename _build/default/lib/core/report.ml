module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Search = Aved_search
module Avail = Aved_avail

let section ppf title =
  Format.fprintf ppf "@.%s@.%s@." title (String.make (String.length title) '-')

let tier_section ppf (m : Avail.Tier_model.t) =
  section ppf (Printf.sprintf "Tier %s" m.tier_name);
  Format.fprintf ppf "configuration: n=%d active, m=%d minimum, s=%d spare@."
    m.n_active m.n_min m.n_spare;
  Format.fprintf ppf "effective throughput: %g work units/hour@."
    m.effective_performance;
  let analytic = Avail.Analytic.downtime_fraction m in
  Format.fprintf ppf "predicted annual downtime: %.3f min@."
    (Duration.minutes (Duration.of_years analytic));
  (* Engine cross-check when the exact model is tractable. *)
  (match Avail.Exact.downtime_fraction ~max_states:20000 m with
  | exact ->
      Format.fprintf ppf "exact multi-mode CTMC agrees within %.1f%%@."
        (if exact = 0. then 0.
         else Float.abs (analytic -. exact) /. exact *. 100.)
  | exception Invalid_argument _ ->
      Format.fprintf ppf "exact CTMC skipped (state space too large)@.");
  (* Attribution. *)
  Format.fprintf ppf "downtime by failure class (min/yr):@.";
  List.iter
    (fun (label, fraction) ->
      Format.fprintf ppf "  %-26s %10.3f@." label
        (Duration.minutes (Duration.of_years fraction)))
    (List.sort
       (fun (_, a) (_, b) -> Float.compare b a)
       (Avail.Analytic.downtime_by_class m));
  (* First month after deployment. *)
  let first_month =
    Avail.Transient.expected_downtime_over m ~horizon:(Duration.of_days 30.)
  in
  Format.fprintf ppf
    "expected downtime over the first 30 days: %.3f min (steady-state rate \
     would give %.3f)@."
    (Duration.minutes first_month)
    (Duration.minutes (Duration.of_days 30.) *. analytic)

let sensitivity_section ppf config infra (service : Model.Service.t)
    ~throughput ~max_downtime variations =
  section ppf "Sensitivity to failure-data errors";
  Format.fprintf ppf
    "%-24s %-44s %12s@." "variation (mtbf,mttr)" "optimal first-tier family"
    "cost/yr";
  let tier = List.hd service.tiers in
  let outcomes =
    Search.Sensitivity.tier_sensitivity config infra ~tier ~demand:throughput
      ~max_downtime ~variations
  in
  List.iter
    (fun (o : Search.Sensitivity.outcome) ->
      let label =
        Printf.sprintf "x%.2f, x%.2f" o.variation.mtbf_scale
          o.variation.mttr_scale
      in
      match o.candidate with
      | Some c ->
          Format.fprintf ppf "%-24s %-44s %12s@." label
            (Option.value o.family ~default:"?")
            (Money.to_string c.cost)
      | None -> Format.fprintf ppf "%-24s infeasible@." label)
    outcomes;
  match Search.Sensitivity.stable_family outcomes with
  | Some family ->
      Format.fprintf ppf "the family %s is stable under all variations@." family
  | None ->
      Format.fprintf ppf
        "the optimal family changes under some variations — treat the \
         failure data with care@."

let generate ?(config = Search.Search_config.default)
    ?(sensitivity = Search.Sensitivity.default_variations) infra service
    requirements =
  match Search.Service_search.design config infra service requirements with
  | None -> None
  | Some report ->
      let buffer = Buffer.create 4096 in
      let ppf = Format.formatter_of_buffer buffer in
      Format.fprintf ppf "Aved design report: %s@."
        service.Model.Service.service_name;
      Format.fprintf ppf "requirements: %a@." Model.Requirements.pp
        requirements;
      section ppf "Chosen design";
      Format.fprintf ppf "%a@." Aved_model.Design.pp report.design;
      Format.fprintf ppf "annual cost: %a@." Money.pp report.cost;
      (match report.downtime with
      | Some d ->
          Format.fprintf ppf "predicted service downtime: %.3f min/yr@."
            (Duration.minutes d)
      | None -> ());
      (match report.execution_time with
      | Some t ->
          Format.fprintf ppf "predicted job completion: %.2f h@."
            (Duration.hours t)
      | None -> ());
      let demand =
        match requirements with
        | Model.Requirements.Enterprise { throughput; _ } -> Some throughput
        | Model.Requirements.Finite_job _ -> None
      in
      List.iter (tier_section ppf)
        (Engine.evaluate_design infra service report.design ~demand);
      (match (requirements, sensitivity) with
      | Model.Requirements.Enterprise { throughput; max_annual_downtime }, _ :: _
        ->
          sensitivity_section ppf config infra service ~throughput
            ~max_downtime:max_annual_downtime sensitivity
      | Model.Requirements.Enterprise _, [] | Model.Requirements.Finite_job _, _
        ->
          ());
      Format.pp_print_flush ppf ();
      Some (Buffer.contents buffer)
