(** Dense float vectors. *)

type t = float array

val create : int -> float -> t
val init : int -> (int -> float) -> t
val dim : t -> int
val copy : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val dot : t -> t -> float
val norm_inf : t -> float
val norm_1 : t -> float
val norm_2 : t -> float

val normalize_1 : t -> t
(** Scales so entries sum to 1. Raises [Invalid_argument] when the sum is
    zero or not finite. *)

val max_abs_diff : t -> t -> float
val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
