(** Dense float matrices with LU-based solvers.

    This is the numeric substrate for the Markov engine: solving linear
    systems for stationary distributions and mean times to absorption. *)

type t

val create : int -> int -> float -> t
val init : int -> int -> (int -> int -> float) -> t
val identity : int -> t
val of_rows : float array array -> t
(** Copies its argument; rows must be non-empty and of equal length. *)

val to_rows : t -> float array array
val rows : t -> int
val cols : t -> int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val copy : t -> t
val transpose : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t
val mul_vec : t -> Vector.t -> Vector.t
(** [mul_vec a x] is [a x]. *)

val vec_mul : Vector.t -> t -> Vector.t
(** [vec_mul x a] is [xᵀ a], as a vector. *)

exception Singular
(** Raised by the solvers when the matrix is (numerically) singular. *)

type lu
(** An LU factorization with partial pivoting. *)

val lu_decompose : t -> lu
(** Raises {!Singular} when a zero pivot is met. O(n³). *)

val lu_solve : lu -> Vector.t -> Vector.t

val solve : t -> Vector.t -> Vector.t
(** [solve a b] returns [x] with [a x = b]. Raises {!Singular}. *)

val solve_many : t -> Vector.t list -> Vector.t list
(** Factorizes once and solves each right-hand side. *)

val inverse : t -> t
val determinant : t -> float
val residual_inf : t -> Vector.t -> Vector.t -> float
(** [residual_inf a x b] is [‖a x − b‖∞]. *)

val equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
