type t = float array

let create n v = Array.make n v
let init = Array.init
let dim = Array.length
let copy = Array.copy

let check_same_dim a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Vector: dimension mismatch (%d vs %d)" (Array.length a)
         (Array.length b))

let add a b =
  check_same_dim a b;
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same_dim a b;
  Array.mapi (fun i x -> x -. b.(i)) a

let scale k = Array.map (fun x -> k *. x)

let dot a b =
  check_same_dim a b;
  let acc = ref 0. in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (a.(i) *. b.(i))
  done;
  !acc

let norm_inf a = Array.fold_left (fun m x -> Float.max m (Float.abs x)) 0. a
let norm_1 a = Array.fold_left (fun m x -> m +. Float.abs x) 0. a
let norm_2 a = sqrt (dot a a)

let normalize_1 a =
  let total = Array.fold_left ( +. ) 0. a in
  if total = 0. || not (Float.is_finite total) then
    invalid_arg "Vector.normalize_1: sum is zero or not finite"
  else scale (1. /. total) a

let max_abs_diff a b =
  check_same_dim a b;
  let m = ref 0. in
  for i = 0 to Array.length a - 1 do
    m := Float.max !m (Float.abs (a.(i) -. b.(i)))
  done;
  !m

let equal ?(tol = 0.) a b =
  Array.length a = Array.length b && max_abs_diff a b <= tol

let pp ppf a =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    a
