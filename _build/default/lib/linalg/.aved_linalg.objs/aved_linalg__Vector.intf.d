lib/linalg/vector.mli: Format
