lib/linalg/vector.ml: Array Float Format Printf
