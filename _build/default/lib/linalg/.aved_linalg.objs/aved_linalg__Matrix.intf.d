lib/linalg/matrix.mli: Format Vector
