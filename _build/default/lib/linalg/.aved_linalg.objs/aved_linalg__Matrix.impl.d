lib/linalg/matrix.ml: Array Float Format List Printf Vector
