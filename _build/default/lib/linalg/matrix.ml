type t = { rows : int; cols : int; data : float array }
(* Row-major storage: element (i, j) lives at [i * cols + j]. *)

let check_dims rows cols =
  if rows <= 0 || cols <= 0 then
    invalid_arg (Printf.sprintf "Matrix: bad dimensions %dx%d" rows cols)

let create rows cols v =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  check_dims rows cols;
  let data = Array.init (rows * cols) (fun k -> f (k / cols) (k mod cols)) in
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_rows rows_arr =
  let rows = Array.length rows_arr in
  if rows = 0 then invalid_arg "Matrix.of_rows: empty";
  let cols = Array.length rows_arr.(0) in
  if cols = 0 then invalid_arg "Matrix.of_rows: empty row";
  Array.iter
    (fun row ->
      if Array.length row <> cols then
        invalid_arg "Matrix.of_rows: ragged rows")
    rows_arr;
  init rows cols (fun i j -> rows_arr.(i).(j))

let to_rows m =
  Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let rows m = m.rows
let cols m = m.cols

let check_bounds m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
    invalid_arg
      (Printf.sprintf "Matrix: index (%d,%d) out of %dx%d" i j m.rows m.cols)

let get m i j =
  check_bounds m i j;
  m.data.((i * m.cols) + j)

let set m i j v =
  check_bounds m i j;
  m.data.((i * m.cols) + j) <- v

let unsafe_get m i j = Array.unsafe_get m.data ((i * m.cols) + j)
let unsafe_set m i j v = Array.unsafe_set m.data ((i * m.cols) + j) v
let copy m = { m with data = Array.copy m.data }
let transpose m = init m.cols m.rows (fun i j -> unsafe_get m j i)

let check_same m a =
  if m.rows <> a.rows || m.cols <> a.cols then
    invalid_arg "Matrix: shape mismatch"

let add m a =
  check_same m a;
  { m with data = Array.mapi (fun k x -> x +. a.data.(k)) m.data }

let sub m a =
  check_same m a;
  { m with data = Array.mapi (fun k x -> x -. a.data.(k)) m.data }

let scale k m = { m with data = Array.map (fun x -> k *. x) m.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Matrix.mul: shape mismatch";
  let out = create a.rows b.cols 0. in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = unsafe_get a i k in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          unsafe_set out i j (unsafe_get out i j +. (aik *. unsafe_get b k j))
        done
    done
  done;
  out

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Matrix.mul_vec: shape mismatch";
  Array.init a.rows (fun i ->
      let acc = ref 0. in
      for j = 0 to a.cols - 1 do
        acc := !acc +. (unsafe_get a i j *. x.(j))
      done;
      !acc)

let vec_mul x a =
  if a.rows <> Array.length x then invalid_arg "Matrix.vec_mul: shape mismatch";
  Array.init a.cols (fun j ->
      let acc = ref 0. in
      for i = 0 to a.rows - 1 do
        acc := !acc +. (x.(i) *. unsafe_get a i j)
      done;
      !acc)

exception Singular

type lu = { factors : t; pivots : int array; sign : float }

let lu_decompose m =
  if m.rows <> m.cols then invalid_arg "Matrix.lu_decompose: not square";
  let n = m.rows in
  let a = copy m in
  let pivots = Array.init n (fun i -> i) in
  let sign = ref 1. in
  for k = 0 to n - 1 do
    (* Partial pivoting: bring the largest remaining entry into (k,k). *)
    let best = ref k in
    let best_mag = ref (Float.abs (unsafe_get a k k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (unsafe_get a i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag = 0. then raise Singular;
    if !best <> k then begin
      for j = 0 to n - 1 do
        let tmp = unsafe_get a k j in
        unsafe_set a k j (unsafe_get a !best j);
        unsafe_set a !best j tmp
      done;
      let tmp = pivots.(k) in
      pivots.(k) <- pivots.(!best);
      pivots.(!best) <- tmp;
      sign := -. !sign
    end;
    let pivot = unsafe_get a k k in
    for i = k + 1 to n - 1 do
      let factor = unsafe_get a i k /. pivot in
      unsafe_set a i k factor;
      if factor <> 0. then
        for j = k + 1 to n - 1 do
          unsafe_set a i j (unsafe_get a i j -. (factor *. unsafe_get a k j))
        done
    done
  done;
  { factors = a; pivots; sign = !sign }

let lu_solve { factors; pivots; _ } b =
  let n = factors.rows in
  if Array.length b <> n then invalid_arg "Matrix.lu_solve: shape mismatch";
  let x = Array.init n (fun i -> b.(pivots.(i))) in
  (* Forward substitution with the unit lower triangle. *)
  for i = 1 to n - 1 do
    let acc = ref x.(i) in
    for j = 0 to i - 1 do
      acc := !acc -. (unsafe_get factors i j *. x.(j))
    done;
    x.(i) <- !acc
  done;
  (* Back substitution with the upper triangle. *)
  for i = n - 1 downto 0 do
    let acc = ref x.(i) in
    for j = i + 1 to n - 1 do
      acc := !acc -. (unsafe_get factors i j *. x.(j))
    done;
    let pivot = unsafe_get factors i i in
    if pivot = 0. then raise Singular;
    x.(i) <- !acc /. pivot
  done;
  x

let solve a b = lu_solve (lu_decompose a) b

let solve_many a bs =
  let lu = lu_decompose a in
  List.map (lu_solve lu) bs

let inverse m =
  let n = m.rows in
  let lu = lu_decompose m in
  let out = create n n 0. in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    let col = lu_solve lu e in
    for i = 0 to n - 1 do
      unsafe_set out i j col.(i)
    done
  done;
  out

let determinant m =
  match lu_decompose m with
  | { factors; sign; _ } ->
      let acc = ref sign in
      for i = 0 to factors.rows - 1 do
        acc := !acc *. unsafe_get factors i i
      done;
      !acc
  | exception Singular -> 0.

let residual_inf a x b = Vector.norm_inf (Vector.sub (mul_vec a x) b)

let equal ?(tol = 0.) a b =
  a.rows = b.rows && a.cols = b.cols
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%10.4g" (unsafe_get m i j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.pp_print_cut ppf ()
  done;
  Format.fprintf ppf "@]"
