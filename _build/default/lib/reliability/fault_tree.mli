(** Fault trees.

    The failure-space dual of block diagrams: the tree's top event (the
    service outage) occurs according to AND / OR / k-of-n gates over
    basic events, each with an independent occurrence probability —
    typically a component's steady-state unavailability. The second
    classical formalism of the paper's availability tools. *)

type t =
  | Basic of { name : string; probability : float }
      (** An elementary failure with the given probability. *)
  | Or of t list  (** Occurs when any input occurs. Empty: never. *)
  | And of t list  (** Occurs when all inputs occur. Empty: always. *)
  | Vote of { k : int; inputs : t list }
      (** Occurs when at least [k] inputs occur. *)

val basic : name:string -> probability:float -> t
(** Raises [Invalid_argument] outside [0, 1]. *)

val of_unavailability : name:string -> Availability.t -> t
(** Basic event whose probability is the component's unavailability. *)

val gate_or : t list -> t
val gate_and : t list -> t

val vote : k:int -> t list -> t
(** Raises [Invalid_argument] unless [0 <= k <= length inputs]. *)

val top_event_probability : t -> float
(** Probability of the top event, assuming independent basic events
    (each [Basic] leaf is a distinct event even when names repeat;
    shared events should be modeled by restructuring the tree). *)

val system_availability : t -> Availability.t
(** [1 − top_event_probability]. *)

val basic_events : t -> string list

val birnbaum_importance : t -> (string * float) list
(** ∂P(top)/∂P(event) per basic-event name, by forcing the event(s) of
    that name to certain/impossible. Names repeated in the tree are
    perturbed together. *)

val to_block_diagram : t -> Block_diagram.t
(** The structural dual: AND ↦ parallel (all must fail), OR ↦ series,
    k-of-n failure vote ↦ (n−k+1)-of-n success, basic event ↦ block
    with the complementary availability. [top_event_probability] equals
    one minus the dual diagram's availability (tested). *)

val pp : Format.formatter -> t -> unit
