(** Lost-work analysis for finite jobs (paper §4.2, Eq. 1).

    A job that loses at most a window [lw] of computation per failure
    (because it checkpoints, or because it restarts from scratch) needs
    on average [T_lw = MTBF (e^{lw/MTBF} − 1)] of machine time to push
    [lw] of useful work through, assuming exponentially distributed
    failures. *)

val mean_time_for_window :
  mtbf:Aved_units.Duration.t -> lw:Aved_units.Duration.t ->
  Aved_units.Duration.t
(** [T_lw] as above. For [lw = 0] this is 0. Raises [Invalid_argument]
    when [mtbf] is zero, or when [lw/mtbf] is large enough to overflow
    (the job cannot make progress). *)

val useful_fraction :
  mtbf:Aved_units.Duration.t -> lw:Aved_units.Duration.t -> float
(** [lw / T_lw] — the long-run fraction of machine time that is useful
    work. Tends to 1 as [lw → 0] and to 0 as [lw → ∞]. *)

val expected_job_time :
  work_seconds:float ->
  availability:Availability.t ->
  mtbf:Aved_units.Duration.t ->
  lw:Aved_units.Duration.t ->
  Aved_units.Duration.t
(** Expected wall-clock completion time for a job needing
    [work_seconds] of failure-free machine time on a system with the
    given tier availability, tier MTBF and loss window:
    [work / (availability × useful_fraction)]. Raises
    [Invalid_argument] when progress is impossible. *)

val optimal_interval :
  checkpoint_cost:Aved_units.Duration.t -> mtbf:Aved_units.Duration.t ->
  Aved_units.Duration.t
(** Young's first-order optimum [√(2 · cost · MTBF)] — used as a
    reference point in the ablation benchmarks, not by the engine. *)
