module Duration = Aved_units.Duration

type t =
  | Block of { name : string; availability : Availability.t }
  | Series of t list
  | Parallel of t list
  | K_of_n of { k : int; parts : t list }

let block ~name availability = Block { name; availability }

let of_mtbf_mttr ~name ~mtbf ~mttr =
  block ~name (Availability.of_mtbf_mttr ~mtbf ~mttr)

let series parts = Series parts
let parallel parts = Parallel parts

let k_of_n ~k parts =
  if k < 0 || k > List.length parts then
    invalid_arg
      (Printf.sprintf "Block_diagram.k_of_n: k=%d over %d parts" k
         (List.length parts));
  K_of_n { k; parts }

(* Availability with an override applied to every block of a given name
   (used for importance computation). *)
let rec eval ?override t =
  match t with
  | Block { name; availability } -> (
      match override with
      | Some (target, forced) when String.equal target name -> forced
      | Some _ | None -> Availability.to_fraction availability)
  | Series parts ->
      List.fold_left (fun acc p -> acc *. eval ?override p) 1. parts
  | Parallel parts ->
      1. -. List.fold_left (fun acc p -> acc *. (1. -. eval ?override p)) 1. parts
  | K_of_n { k; parts } ->
      (* DP over "probability exactly i of the first j parts are up". *)
      let n = List.length parts in
      let dist = Array.make (n + 1) 0. in
      dist.(0) <- 1.;
      List.iteri
        (fun j part ->
          let up = eval ?override part in
          for i = j + 1 downto 1 do
            dist.(i) <- (dist.(i) *. (1. -. up)) +. (dist.(i - 1) *. up)
          done;
          dist.(0) <- dist.(0) *. (1. -. up))
        parts;
      let acc = ref 0. in
      for i = k to n do
        acc := !acc +. dist.(i)
      done;
      !acc

let availability t = Availability.of_fraction (Float.min 1. (Float.max 0. (eval t)))
let annual_downtime t = Availability.annual_downtime (availability t)

let blocks t =
  let rec collect acc = function
    | Block { name; _ } -> name :: acc
    | Series parts | Parallel parts -> List.fold_left collect acc parts
    | K_of_n { parts; _ } -> List.fold_left collect acc parts
  in
  List.rev (collect [] t)

let birnbaum_importance t =
  let names = List.sort_uniq String.compare (blocks t) in
  List.map
    (fun name ->
      let up = eval ~override:(name, 1.) t in
      let down = eval ~override:(name, 0.) t in
      (name, up -. down))
    names

let rec pp ppf = function
  | Block { name; availability } ->
      Format.fprintf ppf "%s(%a)" name Availability.pp availability
  | Series parts ->
      Format.fprintf ppf "series(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        parts
  | Parallel parts ->
      Format.fprintf ppf "parallel(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        parts
  | K_of_n { k; parts } ->
      Format.fprintf ppf "%d-of-%d(%a)" k (List.length parts)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        parts
