lib/reliability/block_diagram.mli: Availability Aved_units Format
