lib/reliability/fault_tree.ml: Array Availability Block_diagram Float Format List Printf String
