lib/reliability/loss_window.ml: Availability Aved_units Float
