lib/reliability/availability.mli: Aved_units Format
