lib/reliability/availability.ml: Aved_units Float Format List Printf
