lib/reliability/fault_tree.mli: Availability Block_diagram Format
