lib/reliability/loss_window.mli: Availability Aved_units
