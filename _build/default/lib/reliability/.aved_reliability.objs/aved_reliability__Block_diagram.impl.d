lib/reliability/block_diagram.ml: Array Availability Aved_units Float Format List Printf String
