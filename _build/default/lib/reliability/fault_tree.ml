type t =
  | Basic of { name : string; probability : float }
  | Or of t list
  | And of t list
  | Vote of { k : int; inputs : t list }

let basic ~name ~probability =
  if not (Float.is_finite probability) || probability < 0. || probability > 1.
  then
    invalid_arg (Printf.sprintf "Fault_tree.basic: probability %g" probability);
  Basic { name; probability }

let of_unavailability ~name availability =
  basic ~name ~probability:(Availability.unavailability availability)

let gate_or inputs = Or inputs
let gate_and inputs = And inputs

let vote ~k inputs =
  if k < 0 || k > List.length inputs then
    invalid_arg
      (Printf.sprintf "Fault_tree.vote: k=%d over %d inputs" k
         (List.length inputs));
  Vote { k; inputs }

let rec eval ?override t =
  match t with
  | Basic { name; probability } -> (
      match override with
      | Some (target, forced) when String.equal target name -> forced
      | Some _ | None -> probability)
  | Or inputs ->
      1. -. List.fold_left (fun acc i -> acc *. (1. -. eval ?override i)) 1. inputs
  | And inputs ->
      List.fold_left (fun acc i -> acc *. eval ?override i) 1. inputs
  | Vote { k; inputs } ->
      let n = List.length inputs in
      let dist = Array.make (n + 1) 0. in
      dist.(0) <- 1.;
      List.iteri
        (fun j input ->
          let p = eval ?override input in
          for i = j + 1 downto 1 do
            dist.(i) <- (dist.(i) *. (1. -. p)) +. (dist.(i - 1) *. p)
          done;
          dist.(0) <- dist.(0) *. (1. -. p))
        inputs;
      let acc = ref 0. in
      for i = k to n do
        acc := !acc +. dist.(i)
      done;
      !acc

let top_event_probability t = Float.min 1. (Float.max 0. (eval t))

let system_availability t =
  Availability.of_fraction (1. -. top_event_probability t)

let basic_events t =
  let rec collect acc = function
    | Basic { name; _ } -> name :: acc
    | Or inputs | And inputs -> List.fold_left collect acc inputs
    | Vote { inputs; _ } -> List.fold_left collect acc inputs
  in
  List.rev (collect [] t)

let birnbaum_importance t =
  let names = List.sort_uniq String.compare (basic_events t) in
  List.map
    (fun name ->
      let sure = eval ~override:(name, 1.) t in
      let never = eval ~override:(name, 0.) t in
      (name, sure -. never))
    names

let rec to_block_diagram = function
  | Basic { name; probability } ->
      Block_diagram.block ~name
        (Availability.of_fraction (1. -. probability))
  | Or inputs -> Block_diagram.series (List.map to_block_diagram inputs)
  | And inputs -> Block_diagram.parallel (List.map to_block_diagram inputs)
  | Vote { k = 0; _ } ->
      (* A 0-vote always occurs: the dual system is never up. *)
      Block_diagram.parallel []
  | Vote { k; inputs } ->
      let n = List.length inputs in
      Block_diagram.k_of_n ~k:(n - k + 1) (List.map to_block_diagram inputs)

let rec pp ppf = function
  | Basic { name; probability } ->
      Format.fprintf ppf "%s[%g]" name probability
  | Or inputs ->
      Format.fprintf ppf "or(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        inputs
  | And inputs ->
      Format.fprintf ppf "and(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        inputs
  | Vote { k; inputs } ->
      Format.fprintf ppf "vote(%d, %a)" k
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        inputs
