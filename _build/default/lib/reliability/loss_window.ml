module Duration = Aved_units.Duration

let mean_time_for_window ~mtbf ~lw =
  let mtbf_s = Duration.seconds mtbf in
  let lw_s = Duration.seconds lw in
  if mtbf_s <= 0. then invalid_arg "Loss_window: mtbf must be positive";
  if lw_s = 0. then Duration.zero
  else begin
    let ratio = lw_s /. mtbf_s in
    if ratio > 700. then
      invalid_arg "Loss_window: loss window vastly exceeds MTBF; no progress"
    else Duration.of_seconds (mtbf_s *. (Float.exp ratio -. 1.))
  end

let useful_fraction ~mtbf ~lw =
  if Duration.is_zero lw then 1.
  else Duration.ratio lw (mean_time_for_window ~mtbf ~lw)

let expected_job_time ~work_seconds ~availability ~mtbf ~lw =
  if work_seconds < 0. then invalid_arg "Loss_window: negative work";
  let a = Availability.to_fraction availability in
  let efficiency = a *. useful_fraction ~mtbf ~lw in
  if efficiency <= 0. then
    invalid_arg "Loss_window: system makes no useful progress"
  else Duration.of_seconds (work_seconds /. efficiency)

let optimal_interval ~checkpoint_cost ~mtbf =
  Duration.of_seconds
    (sqrt (2. *. Duration.seconds checkpoint_cost *. Duration.seconds mtbf))
