(** Reliability block diagrams.

    The classical structural formalism of the availability tools the
    paper interfaces with (SHARPE's block diagrams): a system is a
    composition of independent blocks in series (all needed), parallel
    (any one suffices) or k-out-of-n arrangements. Aved's own tier
    composition is the special case series(k-of-n, …); this module
    provides the general form for modeling substrates like storage
    arrays or network fabrics structurally. *)

type t =
  | Block of { name : string; availability : Availability.t }
  | Series of t list
  | Parallel of t list
  | K_of_n of { k : int; parts : t list }
      (** Up when at least [k] of the parts are up; the parts need not
          be identical. *)

val block : name:string -> Availability.t -> t
val of_mtbf_mttr :
  name:string -> mtbf:Aved_units.Duration.t -> mttr:Aved_units.Duration.t -> t

val series : t list -> t
val parallel : t list -> t

val k_of_n : k:int -> t list -> t
(** Raises [Invalid_argument] unless [0 <= k <= length parts]. *)

val availability : t -> Availability.t
(** Exact system availability, assuming block independence. Empty
    [Series] is up; empty [Parallel] is down. K-of-n over heterogeneous
    parts is evaluated by dynamic programming over the part count. *)

val annual_downtime : t -> Aved_units.Duration.t

val blocks : t -> string list
(** Names of all leaf blocks, in diagram order (with duplicates if a
    name is reused). *)

val birnbaum_importance : t -> (string * float) list
(** Birnbaum structural importance of each leaf: ∂A_system/∂A_block —
    how much one point of block availability buys at the system level.
    Computed by evaluating the diagram with the block forced up and
    forced down. Blocks sharing a name are perturbed together. *)

val pp : Format.formatter -> t -> unit
