type summary = {
  count : int;
  mean : float;
  variance : float;
  stddev : float;
  min : float;
  max : float;
}

module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = Float.infinity; max = Float.neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = t.mean

  let variance t =
    if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

  let to_summary t =
    if t.count = 0 then invalid_arg "Stats.Online.to_summary: empty";
    let variance = variance t in
    {
      count = t.count;
      mean = t.mean;
      variance;
      stddev = sqrt variance;
      min = t.min;
      max = t.max;
    }
end

let summarize xs =
  if Array.length xs = 0 then invalid_arg "Stats.summarize: empty";
  let acc = Online.create () in
  Array.iter (Online.add acc) xs;
  Online.to_summary acc

let mean xs = (summarize xs).mean
let variance xs = (summarize xs).variance
let stddev xs = (summarize xs).stddev

let standard_error s =
  if s.count = 0 then 0. else s.stddev /. sqrt (float_of_int s.count)

let confidence_interval_95 s =
  let half = 1.96 *. standard_error s in
  (s.mean -. half, s.mean +. half)

let quantile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.quantile: empty";
  if p < 0. || p > 1. then invalid_arg "Stats.quantile: p outside [0,1]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let pos = p *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end
