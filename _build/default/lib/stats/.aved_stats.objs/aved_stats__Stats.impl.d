lib/stats/stats.ml: Array Float Stdlib
