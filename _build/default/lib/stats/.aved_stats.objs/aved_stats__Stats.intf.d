lib/stats/stats.mli:
