(** Summary statistics for the Monte-Carlo availability engine. *)

type summary = {
  count : int;
  mean : float;
  variance : float;  (** Unbiased sample variance (0 when count < 2). *)
  stddev : float;
  min : float;
  max : float;
}

val summarize : float array -> summary
(** Raises [Invalid_argument] on an empty array. *)

val mean : float array -> float
val variance : float array -> float
val stddev : float array -> float

val standard_error : summary -> float
(** [stddev / √count]. *)

val confidence_interval_95 : summary -> float * float
(** Normal-approximation 95% CI for the mean: [mean ± 1.96·SE]. *)

val quantile : float array -> float -> float
(** [quantile xs p] for [p] in [0, 1], by linear interpolation on the
    sorted sample. Raises [Invalid_argument] on empty input or [p]
    outside [0, 1]. *)

(** Streaming mean/variance (Welford), for accumulating simulation
    replications without retaining them. *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val to_summary : t -> summary
  (** Raises [Invalid_argument] when no value was added. *)
end
