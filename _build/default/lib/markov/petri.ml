type place = int

type semantics = Single_server | Infinite_server

type transition = {
  label : string;
  rate : float;
  semantics : semantics;
  inputs : (place * int) list;
  outputs : (place * int) list;
}

type t = {
  places : int;
  mutable transitions_rev : transition list;
}

let create ~places =
  if places <= 0 then invalid_arg "Petri.create: no places";
  { places; transitions_rev = [] }

let check_arc t (p, w) =
  if p < 0 || p >= t.places then
    invalid_arg (Printf.sprintf "Petri: place %d out of range" p);
  if w <= 0 then invalid_arg (Printf.sprintf "Petri: arc weight %d" w)

let add_transition t ~label ~rate ?(semantics = Single_server) ~inputs
    ~outputs () =
  if not (Float.is_finite rate) || rate <= 0. then
    invalid_arg (Printf.sprintf "Petri.add_transition: rate %g" rate);
  if inputs = [] && outputs = [] then
    invalid_arg "Petri.add_transition: disconnected transition";
  List.iter (check_arc t) inputs;
  List.iter (check_arc t) outputs;
  t.transitions_rev <-
    { label; rate; semantics; inputs; outputs } :: t.transitions_rev

let num_places t = t.places
let transitions t = List.rev t.transitions_rev

(* Enabling degree: how many times the transition could fire from the
   marking (0 = disabled). *)
let enabling_degree marking tr =
  List.fold_left
    (fun acc (p, w) -> Stdlib.min acc (marking.(p) / w))
    max_int tr.inputs
  |> fun d -> if tr.inputs = [] then 1 else d

let fire marking tr =
  let next = Array.copy marking in
  List.iter (fun (p, w) -> next.(p) <- next.(p) - w) tr.inputs;
  List.iter (fun (p, w) -> next.(p) <- next.(p) + w) tr.outputs;
  next

type compiled = {
  chain : Ctmc.t;
  markings : int array array;
  index_of : int array -> int option;
}

let compile t ~initial ?(max_states = 20000) () =
  if Array.length initial <> t.places then
    invalid_arg "Petri.compile: initial marking arity mismatch";
  Array.iter
    (fun tokens ->
      if tokens < 0 then invalid_arg "Petri.compile: negative tokens")
    initial;
  let transition_list = transitions t in
  let index = Hashtbl.create 64 in
  let states = ref [ Array.copy initial ] in
  let count = ref 1 in
  Hashtbl.add index (Array.to_list initial) 0;
  (* BFS over reachable markings, collecting rate-labeled edges. *)
  let edges = ref [] in
  let queue = Queue.create () in
  Queue.add (0, Array.copy initial) queue;
  while not (Queue.is_empty queue) do
    let src, marking = Queue.pop queue in
    List.iter
      (fun tr ->
        let degree = enabling_degree marking tr in
        if degree > 0 then begin
          let rate =
            match tr.semantics with
            | Single_server -> tr.rate
            | Infinite_server -> tr.rate *. float_of_int degree
          in
          let next = fire marking tr in
          let key = Array.to_list next in
          let dst =
            match Hashtbl.find_opt index key with
            | Some dst -> dst
            | None ->
                if !count >= max_states then
                  failwith
                    (Printf.sprintf
                       "Petri.compile: more than %d reachable markings"
                       max_states);
                let dst = !count in
                Hashtbl.add index key dst;
                states := next :: !states;
                incr count;
                Queue.add (dst, next) queue;
                dst
          in
          if dst <> src then edges := (src, dst, rate) :: !edges
        end)
      transition_list
  done;
  let markings = Array.of_list (List.rev !states) in
  let chain = Ctmc.create (Array.length markings) in
  List.iter
    (fun (src, dst, rate) -> Ctmc.add_transition chain ~src ~dst ~rate)
    (List.rev !edges);
  {
    chain;
    markings;
    index_of = (fun m -> Hashtbl.find_opt index (Array.to_list m));
  }

let steady_state compiled =
  let pi = Ctmc.stationary compiled.chain in
  Array.to_list (Array.mapi (fun i m -> (m, pi.(i))) compiled.markings)

let expected_tokens compiled place =
  List.fold_left
    (fun acc (marking, p) -> acc +. (float_of_int marking.(place) *. p))
    0.
    (steady_state compiled)

let probability compiled predicate =
  List.fold_left
    (fun acc (marking, p) -> if predicate marking then acc +. p else acc)
    0.
    (steady_state compiled)
