lib/markov/ctmc.mli: Aved_linalg Format
