lib/markov/ctmc.ml: Array Aved_linalg Float Format Fun Hashtbl List Printf
