lib/markov/birth_death.mli: Ctmc
