lib/markov/petri.ml: Array Ctmc Float Hashtbl List Printf Queue Stdlib
