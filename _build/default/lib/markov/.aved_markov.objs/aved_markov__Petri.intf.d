lib/markov/petri.mli: Ctmc
