lib/markov/birth_death.ml: Array Ctmc Float Printf Stdlib
