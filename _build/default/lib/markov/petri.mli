(** Stochastic Petri nets, compiled to CTMCs.

    The paper's availability engines include Mobius, whose native
    formalism is the stochastic Petri net. This module provides that
    front-end over our own solver: places hold tokens, exponential
    transitions fire at marking-dependent rates, and the reachability
    graph (from a given initial marking) is compiled into a {!Ctmc}
    whose states are the reachable markings.

    Rates support the two standard semantics: [Single] (constant rate
    while enabled) and [Infinite_server] (rate × enabling degree — one
    exponential clock per token set, the machine-repair pattern). *)

type place = int

type semantics =
  | Single_server  (** Constant rate while enabled. *)
  | Infinite_server
      (** Rate multiplied by the enabling degree
          min over inputs of ⌊tokens/weight⌋. *)

type transition = {
  label : string;
  rate : float;  (** Base firing rate; must be positive and finite. *)
  semantics : semantics;
  inputs : (place * int) list;  (** Place and arc weight (>= 1). *)
  outputs : (place * int) list;
}

type t

val create : places:int -> t
(** A net over places [0 .. places-1]. *)

val add_transition :
  t ->
  label:string ->
  rate:float ->
  ?semantics:semantics ->
  inputs:(place * int) list ->
  outputs:(place * int) list ->
  unit ->
  unit
(** [semantics] defaults to [Single_server]. Raises [Invalid_argument]
    on bad rates, weights, out-of-range places, or a transition with no
    inputs and no outputs. *)

val num_places : t -> int
val transitions : t -> transition list

type compiled = {
  chain : Ctmc.t;
  markings : int array array;
      (** [markings.(s)] is the token vector of CTMC state [s];
          state 0 is the initial marking. *)
  index_of : int array -> int option;
      (** Look up the CTMC state of a marking. *)
}

val compile : t -> initial:int array -> ?max_states:int -> unit -> compiled
(** Builds the reachability graph by breadth-first exploration.
    Raises [Invalid_argument] when the initial marking has the wrong
    arity or negative tokens, and [Failure] when the reachable set
    exceeds [max_states] (default 20000 — unbounded nets exist). *)

val steady_state : compiled -> (int array * float) list
(** Stationary probability of every reachable marking. *)

val expected_tokens : compiled -> place -> float
(** Stationary mean token count of a place. *)

val probability : compiled -> (int array -> bool) -> float
(** Stationary probability that the marking satisfies the predicate. *)
