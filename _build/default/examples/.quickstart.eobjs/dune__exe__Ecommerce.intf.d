examples/ecommerce.mli:
