examples/scientific.ml: Aved Aved_avail Aved_search Aved_stats Aved_units Format List
