examples/network_aware.ml: Array Aved Aved_avail Aved_network Aved_reliability Aved_search Aved_units Format List Sys
