examples/scientific.mli:
