examples/ecommerce.ml: Array Aved Aved_avail Aved_model Aved_search Aved_units Format List Sys
