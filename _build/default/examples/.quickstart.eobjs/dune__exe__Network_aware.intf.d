examples/network_aware.mli:
