examples/quickstart.mli:
