examples/utility_redesign.mli:
