examples/utility_redesign.ml: Aved Aved_avail Aved_model Aved_search Aved_units Float Format List String
