examples/quickstart.ml: Aved Aved_model Aved_perf Aved_units Component Format Infrastructure Int_range Mechanism Requirements Resource Service
