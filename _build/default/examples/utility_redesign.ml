(* Utility-computing redesign (paper §1 and §5.1): in a utility
   environment the infrastructure is reconfigurable, so an engine like
   Aved re-evaluates the design as conditions change. This example
   replays a day of fluctuating load against a fixed downtime target and
   shows when the optimal design family changes.

   Run with: dune exec examples/utility_redesign.exe *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Search = Aved_search

let hourly_load hour =
  (* A diurnal curve: quiet nights, morning ramp, evening peak. *)
  let base = 600. in
  let peak = 3400. in
  let phase = Float.pi *. (float_of_int hour -. 6.) /. 12. in
  if hour < 6 then base
  else base +. ((peak -. base) *. Float.max 0. (sin phase))

let () =
  let infra = Aved.Experiments.infrastructure () in
  let tier = Aved.Experiments.application_tier () in
  let config = Search.Search_config.default in
  let target = Duration.of_minutes 50. in
  Format.printf
    "application tier, downtime target %.0f min/yr, load replayed hourly:@.@."
    (Duration.minutes target);
  Format.printf "%5s %8s  %-40s %12s %14s@." "hour" "load" "design family"
    "machines" "cost/yr";
  let previous = ref "" in
  let switches = ref 0 in
  for hour = 0 to 23 do
    let load = hourly_load hour in
    match Search.Tier_search.optimal config infra ~tier ~demand:load
            ~max_downtime:target
    with
    | None -> Format.printf "%5d %8.0f  infeasible@." hour load
    | Some c ->
        let family =
          Search.Candidate.family c
            ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min
        in
        let marker =
          if String.equal family !previous then ""
          else begin
            if !previous <> "" then incr switches;
            "  <- redesign"
          end
        in
        previous := family;
        Format.printf "%5d %8.0f  %-40s %6d+%-5d %10s%s@." hour load family
          c.design.Aved_model.Design.n_active
          c.design.Aved_model.Design.n_spare
          (Money.to_string c.cost) marker
  done;
  Format.printf
    "@.%d design-family switches over the day — the re-evaluation a \
     self-managing utility would perform automatically.@."
    !switches;

  (* The same trace through the hysteresis policy of Search.Adaptive:
     a real controller would not rebuild the design on every sample. *)
  let trace =
    List.init 24 (fun h ->
        (Duration.of_hours (float_of_int h), hourly_load h))
  in
  Format.printf "@.with the adaptive controller (headroom-based hysteresis):@.";
  List.iter
    (fun headroom ->
      let replay =
        Search.Adaptive.replay config infra ~tier ~max_downtime:target
          ~policy:{ Search.Adaptive.headroom } ~trace ()
      in
      Format.printf
        "  headroom %3.0f%%: %2d redesigns, time-weighted cost %s/yr@."
        (100. *. headroom) replay.redesigns
        (Money.to_string replay.average_cost))
    [ 0.05; 0.3; 1.0 ]
