(* Network-aware design (the paper's §7 extension): the service is only
   up if enough machines are up AND the LAN connects them, so the fabric
   choice (one cheap switch vs. a redundant pair) must be co-designed
   with the compute redundancy. This example walks the application
   tier's cost-availability frontier, combines each point with each
   fabric in series, and picks the cheapest combination meeting the
   downtime budget.

   Run with: dune exec examples/network_aware.exe [LOAD [DOWNTIME_MIN]] *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Search = Aved_search
module Topology = Aved_network.Topology

type fabric = { label : string; annual_cost : float; availability : int -> int -> float }
(* availability: hosts -> k -> network-side availability. *)

let switch_availability =
  (* A switch with a 4-year MTBF and 8-hour repairs. *)
  Aved_reliability.Availability.to_fraction
    (Aved_reliability.Availability.of_mtbf_mttr
       ~mtbf:(Duration.of_days 1460.)
       ~mttr:(Duration.of_hours 8.))

let link_availability = 0.99995 (* cable + NIC *)

let fabrics =
  [
    {
      label = "single-switch";
      annual_cost = 1500.;
      availability =
        (fun hosts k ->
          let t, host_nodes, core =
            Topology.single_switch ~hosts ~link_availability
              ~switch_availability
          in
          Topology.at_least_k_connected t ~core ~hosts:host_nodes ~k);
    };
    {
      label = "dual-switch";
      annual_cost = 3600.;
      availability =
        (fun hosts k ->
          let t, host_nodes, core =
            Topology.dual_switch ~hosts ~link_availability
              ~switch_availability
          in
          Topology.at_least_k_connected t ~core ~hosts:host_nodes ~k);
    };
  ]

let () =
  let load =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1000.
  in
  let budget_minutes =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 30.
  in
  let infra = Aved.Experiments.infrastructure () in
  let tier = Aved.Experiments.application_tier () in
  let frontier =
    Search.Tier_search.frontier Search.Search_config.default infra ~tier
      ~demand:load
  in
  Format.printf
    "load %g, service downtime budget %.0f min/yr (compute and network in \
     series)@.@."
    load budget_minutes;
  Format.printf "%-14s %-34s %14s %14s %12s@." "fabric" "compute design"
    "downtime(min)" "net down(min)" "total cost";
  let best = ref None in
  List.iter
    (fun fabric ->
      (* Cheapest frontier point that fits the budget together with this
         fabric. *)
      let fits (c : Search.Candidate.t) =
        let model = c.model in
        let hosts =
          model.Aved_avail.Tier_model.n_active
          + model.Aved_avail.Tier_model.n_spare
        in
        let net = fabric.availability hosts model.Aved_avail.Tier_model.n_min in
        let up = (1. -. c.downtime_fraction) *. net in
        Duration.minutes (Duration.of_years (1. -. up)) <= budget_minutes
      in
      match List.find_opt fits frontier with
      | None -> Format.printf "%-14s (cannot meet the budget)@." fabric.label
      | Some c ->
          let model = c.model in
          let hosts =
            model.Aved_avail.Tier_model.n_active
            + model.Aved_avail.Tier_model.n_spare
          in
          let net =
            fabric.availability hosts model.Aved_avail.Tier_model.n_min
          in
          let total = Money.to_float c.cost +. fabric.annual_cost in
          Format.printf "%-14s %-34s %14.2f %14.2f %12.0f@." fabric.label
            (Search.Candidate.family c
               ~n_min_nominal:model.Aved_avail.Tier_model.n_min)
            (Duration.minutes (Search.Candidate.downtime c))
            (Duration.minutes (Duration.of_years (1. -. net)))
            total;
          (match !best with
          | Some (_, _, best_total) when best_total <= total -> ()
          | Some _ | None -> best := Some (fabric.label, c, total)))
    fabrics;
  match !best with
  | Some (label, c, total) ->
      Format.printf
        "@.chosen: %s + %s at %.0f/yr total@." label
        (Search.Candidate.family c
           ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min)
        total
  | None -> Format.printf "@.no combination meets the budget@."
