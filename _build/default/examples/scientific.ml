(* The paper's §5.2 scientific-application scenario (Fig. 5): design the
   checkpointed MPI cluster for several execution-time requirements, then
   validate the analytic prediction of one design against the
   discrete-event simulator.

   Run with: dune exec examples/scientific.exe *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Search = Aved_search
module Avail = Aved_avail

let () =
  let infra = Aved.Experiments.infrastructure_bronze () in
  let tier = Aved.Experiments.computation_tier () in
  let job_size = Aved.Experiments.scientific_job_size in
  let config = Aved.Experiments.fig7_config in

  Format.printf
    "=== optimal design vs job execution-time requirement (Fig. 7) ===@.";
  let chosen =
    List.filter_map
      (fun hours ->
        match
          Search.Job_search.optimal config infra ~tier ~job_size
            ~max_time:(Duration.of_hours hours)
        with
        | Some c ->
            Format.printf "req %7.1f h -> %a@." hours
              Search.Job_search.pp_candidate c;
            Some (hours, c)
        | None ->
            Format.printf "req %7.1f h -> infeasible@." hours;
            None)
      [ 1000.; 300.; 100.; 30.; 10.; 3. ]
  in

  (* Validate one mid-range design: does the simulator's job-completion
     time agree with the analytic Eq. 1 prediction? *)
  match List.assoc_opt 100. chosen with
  | None -> print_endline "no design at 100 h to validate"
  | Some c ->
      let analytic = Duration.hours c.execution_time in
      let sim =
        Avail.Monte_carlo.job_completion_times
          ~config:
            {
              Avail.Monte_carlo.replications = 32;
              horizon = Duration.of_years 1.;
              seed = 2004;
            }
          c.model ~job_size
      in
      let lo, hi = Aved_stats.Stats.confidence_interval_95 sim in
      Format.printf
        "@.validation of the 100 h design: analytic %.1f h, simulated %.1f h \
         (95%% CI [%.1f, %.1f], %d replications)@."
        analytic sim.mean lo hi sim.count
