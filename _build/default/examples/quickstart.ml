(* Quickstart: model a two-component web server fleet and let Aved pick
   the cheapest design meeting a throughput and downtime requirement.

   Run with: dune exec examples/quickstart.exe *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
open Aved_model

let () =
  (* 1. Describe the building blocks: a machine with hard failures
     repaired under a maintenance contract, and a web server that
     crashes occasionally and just restarts. *)
  let maintenance =
    Mechanism.make ~name:"maintenance"
      ~parameters:
        [
          {
            param_name = "level";
            range = Mechanism.Enum [ "basic"; "premium" ];
          };
        ]
      ~cost:
        (Mechanism.By_enum
           {
             param = "level";
             table =
               [
                 ("basic", Money.of_float 200.);
                 ("premium", Money.of_float 900.);
               ];
           })
      ~mttr:
        (Mechanism.By_enum
           {
             param = "level";
             table =
               [
                 ("basic", Duration.of_hours 24.);
                 ("premium", Duration.of_hours 4.);
               ];
           })
      ()
  in
  let machine =
    Component.make ~name:"machine"
      ~cost_inactive:(Money.of_float 900.)
      ~cost_active:(Money.of_float 1000.)
      ~failure_modes:
        [
          Component.failure_mode ~name:"hard" ~mtbf:(Duration.of_days 400.)
            ~repair:(Component.Repair_by_mechanism "maintenance")
            ~detect_time:(Duration.of_minutes 1.) ();
        ]
      ()
  in
  let webserver =
    Component.make ~name:"webserver" ~cost_active:Money.zero
      ~failure_modes:
        [
          Component.failure_mode ~name:"crash" ~mtbf:(Duration.of_days 30.) ();
        ]
      ()
  in
  let node =
    Resource.make ~name:"web-node"
      ~elements:
        [
          Resource.element ~component:"machine"
            ~startup:(Duration.of_seconds 60.) ();
          Resource.element ~component:"webserver" ~depends_on:"machine"
            ~startup:(Duration.of_seconds 20.) ();
        ]
      ()
  in
  let infra =
    Infrastructure.make ~components:[ machine; webserver ]
      ~mechanisms:[ maintenance ] ~resources:[ node ]
  in

  (* 2. Describe the service: one web tier, each node serving 250
     requests/hour, any number of nodes. *)
  let service =
    Service.make ~name:"quickstart"
      ~tiers:
        [
          Service.tier ~name:"web"
            ~options:
              [
                Service.resource_option ~resource:"web-node"
                  ~n_active:(Int_range.arithmetic ~lo:1 ~hi:100 ~step:1)
                  ~performance:
                    (Aved_perf.Perf_function.of_string "250*n")
                  ();
              ];
        ]
      ()
  in

  (* 3. State the requirements and search. *)
  let requirements =
    Requirements.enterprise ~throughput:1000.
      ~max_annual_downtime:(Duration.of_minutes 30.)
  in
  match Aved.Engine.design infra service requirements with
  | Some report ->
      Format.printf "requirements: %a@.@.%a@." Requirements.pp requirements
        Aved.Engine.pp_report report
  | None -> print_endline "no feasible design"
