(* The paper's §5.1 e-commerce scenario (Figs. 3 and 4): design the
   three-tier service, then walk the application tier's
   cost-availability frontier the way Fig. 6 does.

   Run with: dune exec examples/ecommerce.exe [LOAD [DOWNTIME_MIN]] *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Search = Aved_search

let () =
  let load =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 1000.
  in
  let downtime_minutes =
    if Array.length Sys.argv > 2 then float_of_string Sys.argv.(2) else 100.
  in
  let infra = Aved.Experiments.infrastructure () in
  let service = Aved.Experiments.ecommerce () in

  (* Whole-service design: web, application and database tiers in
     series must jointly meet the downtime budget. *)
  Format.printf "=== full service design (load %g, downtime <= %g min) ===@."
    load downtime_minutes;
  (match
     Aved.Engine.design infra service
       (Aved_model.Requirements.enterprise ~throughput:load
          ~max_annual_downtime:(Duration.of_minutes downtime_minutes))
   with
  | Some report -> Format.printf "%a@." Aved.Engine.pp_report report
  | None -> print_endline "no feasible design");

  (* The paper's Fig. 6 view: the application tier in isolation. *)
  let tier = Aved.Experiments.application_tier () in
  let frontier =
    Search.Tier_search.frontier Search.Search_config.default infra ~tier
      ~demand:load
  in
  Format.printf
    "@.=== application-tier frontier at load %g (design families) ===@." load;
  List.iter
    (fun (c : Search.Candidate.t) ->
      let minutes = Duration.minutes (Search.Candidate.downtime c) in
      if minutes >= 0.01 then
        Format.printf "  %-44s %10.3f min/yr  %8s/yr@."
          (Search.Candidate.family c
             ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min)
          minutes
          (Money.to_string c.cost))
    frontier;

  (* And the optimal point for the stated requirement. *)
  match
    Search.Tier_search.optimal Search.Search_config.default infra ~tier
      ~demand:load
      ~max_downtime:(Duration.of_minutes downtime_minutes)
  with
  | Some c ->
      Format.printf "@.optimal application-tier design: %a@."
        Search.Candidate.pp c
  | None -> print_endline "application tier: no feasible design"
