module Topology = Aved_network.Topology

let check_float = Alcotest.(check (float 1e-9))

let path availabilities =
  (* A chain 0 - 1 - ... - n with the given per-hop availabilities. *)
  let n = List.length availabilities + 1 in
  List.fold_left
    (fun (t, i) a -> (Topology.add_link t i (i + 1) ~availability:a, i + 1))
    (Topology.create n, 0) availabilities
  |> fst

let test_series () =
  let t = path [ 0.9; 0.8; 0.7 ] in
  check_float "series is a product" (0.9 *. 0.8 *. 0.7)
    (Topology.two_terminal t ~src:0 ~dst:3)

let test_parallel () =
  let t = Topology.create 2 in
  let t = Topology.add_link t 0 1 ~availability:0.9 in
  let t = Topology.add_link t 0 1 ~availability:0.8 in
  check_float "parallel links" (1. -. (0.1 *. 0.2))
    (Topology.two_terminal t ~src:0 ~dst:1)

let test_same_node () =
  let t = Topology.create 3 in
  check_float "src = dst" 1. (Topology.two_terminal t ~src:1 ~dst:1)

let test_disconnected () =
  (* Two separate islands: 0-1 and 2-3. *)
  let t = Topology.create 4 in
  let t = Topology.add_link t 0 1 ~availability:0.9 in
  let t = Topology.add_link t 2 3 ~availability:0.9 in
  check_float "no path" 0. (Topology.two_terminal t ~src:0 ~dst:3)

let bridge p =
  (* The classic bridge: 0-1, 0-2, 1-3, 2-3 and the bridge 1-2, all with
     availability p. Closed form for terminal pair (0,3):
     R = 2p^2 + 2p^3 - 5p^4 + 2p^5. *)
  let t = Topology.create 4 in
  let t = Topology.add_link t 0 1 ~availability:p in
  let t = Topology.add_link t 0 2 ~availability:p in
  let t = Topology.add_link t 1 3 ~availability:p in
  let t = Topology.add_link t 2 3 ~availability:p in
  Topology.add_link t 1 2 ~availability:p

let test_bridge_closed_form () =
  List.iter
    (fun p ->
      let expected =
        (2. *. (p ** 2.)) +. (2. *. (p ** 3.)) -. (5. *. (p ** 4.))
        +. (2. *. (p ** 5.))
      in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "bridge at p=%g" p)
        expected
        (Topology.two_terminal (bridge p) ~src:0 ~dst:3))
    [ 0.5; 0.9; 0.99 ]

let test_monotone_in_availability () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"reliability monotone in link availability"
       ~count:200
       QCheck2.Gen.(
         let* p1 = float_range 0.05 0.95 in
         let* p2 = float_range 0.05 0.95 in
         return (Float.min p1 p2, Float.max p1 p2))
       (fun (lo, hi) ->
         Topology.two_terminal (bridge lo) ~src:0 ~dst:3
         <= Topology.two_terminal (bridge hi) ~src:0 ~dst:3 +. 1e-12))

let test_probability_bounds () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"reliability within [0,1]" ~count:200
       QCheck2.Gen.(
         let* n = int_range 2 6 in
         let* edges =
           list_size (int_range 1 10)
             (triple (int_range 0 (n - 1)) (int_range 0 (n - 1))
                (float_range 0. 1.))
         in
         return (n, edges))
       (fun (n, edges) ->
         let t =
           List.fold_left
             (fun t (u, v, p) ->
               if u = v then t else Topology.add_link t u v ~availability:p)
             (Topology.create n) edges
         in
         let r = Topology.two_terminal t ~src:0 ~dst:(n - 1) in
         r >= -1e-12 && r <= 1. +. 1e-12))

let test_single_switch () =
  let t, hosts, core =
    Topology.single_switch ~hosts:3 ~link_availability:0.99
      ~switch_availability:0.95
  in
  (* Host reaches core iff its link and the switch are both up. *)
  check_float "host to core" (0.99 *. 0.95)
    (Topology.two_terminal t ~src:(List.hd hosts) ~dst:core);
  (* All three hosts need their links and the shared switch. *)
  check_float "all hosts" (0.95 *. (0.99 ** 3.))
    (Topology.at_least_k_connected t ~core ~hosts ~k:3);
  (* At least one host: switch up and not all links down. *)
  check_float "any host" (0.95 *. (1. -. (0.01 ** 3.)))
    (Topology.at_least_k_connected t ~core ~hosts ~k:1)

let test_dual_switch_beats_single () =
  let single, hosts_s, core_s =
    Topology.single_switch ~hosts:4 ~link_availability:0.99
      ~switch_availability:0.9
  in
  let dual, hosts_d, core_d =
    Topology.dual_switch ~hosts:4 ~link_availability:0.99
      ~switch_availability:0.9
  in
  List.iter
    (fun k ->
      let rs =
        Topology.at_least_k_connected single ~core:core_s ~hosts:hosts_s ~k
      in
      let rd =
        Topology.at_least_k_connected dual ~core:core_d ~hosts:hosts_d ~k
      in
      Alcotest.(check bool)
        (Printf.sprintf "dual >= single at k=%d (%.4f vs %.4f)" k rd rs)
        true (rd >= rs))
    [ 1; 2; 3; 4 ]

let test_k_edge_cases () =
  let t, hosts, core =
    Topology.single_switch ~hosts:2 ~link_availability:0.9
      ~switch_availability:0.9
  in
  check_float "k = 0" 1. (Topology.at_least_k_connected t ~core ~hosts ~k:0);
  check_float "k > n" 0. (Topology.at_least_k_connected t ~core ~hosts ~k:3)

let test_at_least_k_matches_two_terminal () =
  (* With a single host, k=1 connectivity equals 2-terminal
     reliability. *)
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"k=1 with one host equals two_terminal"
       ~count:100
       QCheck2.Gen.(float_range 0.1 0.99)
       (fun p ->
         let t = bridge p in
         Float.abs
           (Topology.at_least_k_connected t ~core:3 ~hosts:[ 0 ] ~k:1
           -. Topology.two_terminal t ~src:0 ~dst:3)
         < 1e-12))

let test_validation () =
  let t = Topology.create 2 in
  Alcotest.(check bool) "self loop" true
    (match Topology.add_link t 0 0 ~availability:0.5 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad availability" true
    (match Topology.add_link t 0 1 ~availability:1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "out of range" true
    (match Topology.add_link t 0 5 ~availability:0.5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_mtbf_link () =
  let t = Topology.create 2 in
  let t =
    Topology.add_link_mtbf t 0 1
      ~mtbf:(Aved_units.Duration.of_days 99.)
      ~mttr:(Aved_units.Duration.of_days 1.)
  in
  check_float "availability from failure data" 0.99
    (Topology.two_terminal t ~src:0 ~dst:1)

let () =
  Alcotest.run "network"
    [
      ( "two-terminal",
        [
          Alcotest.test_case "series" `Quick test_series;
          Alcotest.test_case "parallel" `Quick test_parallel;
          Alcotest.test_case "same node" `Quick test_same_node;
          Alcotest.test_case "disconnected" `Quick test_disconnected;
          Alcotest.test_case "bridge closed form" `Quick
            test_bridge_closed_form;
          Alcotest.test_case "monotone" `Quick test_monotone_in_availability;
          Alcotest.test_case "bounds" `Quick test_probability_bounds;
        ] );
      ( "fabrics",
        [
          Alcotest.test_case "single switch" `Quick test_single_switch;
          Alcotest.test_case "dual beats single" `Quick
            test_dual_switch_beats_single;
          Alcotest.test_case "k edge cases" `Quick test_k_edge_cases;
          Alcotest.test_case "k=1 equals two-terminal" `Quick
            test_at_least_k_matches_two_terminal;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "mtbf link" `Quick test_mtbf_link;
        ] );
    ]
