module Duration = Aved_units.Duration
module Figures = Aved.Figures
module Engine = Aved.Engine
open Aved_model

let small_fig6_loads = [ 400.; 1600. ]

let test_log_spaced () =
  let xs = Figures.log_spaced ~lo:1. ~hi:100. ~count:3 in
  Alcotest.(check int) "count" 3 (List.length xs);
  Alcotest.(check (float 1e-9)) "lo" 1. (List.hd xs);
  Alcotest.(check (float 1e-9)) "mid" 10. (List.nth xs 1);
  Alcotest.(check (float 1e-6)) "hi" 100. (List.nth xs 2);
  Alcotest.(check bool) "bad args" true
    (match Figures.log_spaced ~lo:0. ~hi:1. ~count:2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_fig6_generator () =
  let points = Figures.fig6 ~loads:small_fig6_loads () in
  Alcotest.(check bool) "non-empty" true (points <> []);
  List.iter
    (fun load ->
      let at_load =
        List.filter (fun (p : Figures.fig6_point) -> p.load = load) points
      in
      Alcotest.(check bool)
        (Printf.sprintf "several families at %g" load)
        true
        (List.length at_load > 5);
      (* Along the frontier downtime strictly decreases as cost grows. *)
      let rec check = function
        | (a : Figures.fig6_point) :: (b :: _ as rest) ->
            Alcotest.(check bool) "cost grows" true
              (a.annual_cost < b.annual_cost);
            Alcotest.(check bool) "downtime falls" true
              (b.downtime_minutes < a.downtime_minutes);
            check rest
        | [ _ ] | [] -> ()
      in
      check at_load;
      List.iter
        (fun (p : Figures.fig6_point) ->
          if p.downtime_minutes >= 0.05 then
            Alcotest.(check bool) "family names machineA resources" true
              (String.length p.family > 3
              && (String.sub p.family 1 2 = "rC" || String.sub p.family 1 2 = "rD")))
        at_load)
    small_fig6_loads

let test_fig6_downtime_grows_with_load () =
  (* Paper §5.1: within a family, downtime grows with the load level. *)
  let points = Figures.fig6 ~loads:[ 400.; 3200. ] () in
  let downtime_of load family =
    List.find_opt
      (fun (p : Figures.fig6_point) -> p.load = load && p.family = family)
      points
    |> Option.map (fun (p : Figures.fig6_point) -> p.downtime_minutes)
  in
  match (downtime_of 400. "(rC, bronze, 0, 0)", downtime_of 3200. "(rC, bronze, 0, 0)") with
  | Some low, Some high ->
      Alcotest.(check bool)
        (Printf.sprintf "%.0f < %.0f" low high)
        true (low < high)
  | _ -> Alcotest.fail "family (rC, bronze, 0, 0) missing from frontier"

let test_fig7_generator () =
  let points = Figures.fig7 ~requirements_hours:[ 500.; 20. ] () in
  Alcotest.(check int) "both requirements feasible" 2 (List.length points);
  List.iter
    (fun (p : Figures.fig7_point) ->
      Alcotest.(check bool) "prediction meets requirement" true
        (p.predicted_hours <= p.requirement_hours);
      Alcotest.(check bool) "storage chosen" true
        (p.storage_location = "central" || p.storage_location = "peer");
      Alcotest.(check bool) "interval positive" true
        (p.checkpoint_interval_hours > 0.))
    points;
  match points with
  | [ loose; tight ] ->
      Alcotest.(check bool) "more resources when tight" true
        (tight.n_resources > loose.n_resources);
      Alcotest.(check bool) "cost grows when tight" true
        (tight.annual_cost > loose.annual_cost)
  | _ -> Alcotest.fail "expected two points"

let test_fig8_generator () =
  let points =
    Figures.fig8 ~loads:[ 800. ] ~downtimes_minutes:[ 0.5; 10.; 10000. ] ()
  in
  Alcotest.(check bool) "non-empty" true (points <> []);
  List.iter
    (fun (p : Figures.fig8_point) ->
      Alcotest.(check bool) "extra cost non-negative" true
        (p.extra_annual_cost >= 0.))
    points;
  (* Extra cost shrinks as the downtime requirement relaxes. *)
  let rec check = function
    | (a : Figures.fig8_point) :: (b : Figures.fig8_point) :: rest ->
        Alcotest.(check bool) "relaxing cannot cost more" true
          (a.extra_annual_cost >= b.extra_annual_cost);
        check (b :: rest)
    | [ _ ] | [] -> ()
  in
  check points;
  (* A requirement loose enough to need nothing extra costs nothing. *)
  match List.rev points with
  | last :: _ ->
      Alcotest.(check (float 1e-6)) "loosest is free" 0. last.extra_annual_cost
  | [] -> ()

let test_engine_from_files () =
  let dir = Filename.temp_file "aved" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  let infra_file = write "infra.spec" Aved.Experiments.infrastructure_spec in
  let service_file = write "svc.spec" Aved.Experiments.ecommerce_spec in
  match
    Engine.design_from_files ~infra_file ~service_file
      (Requirements.enterprise ~throughput:600.
         ~max_annual_downtime:(Duration.of_minutes 120.))
  with
  | None -> Alcotest.fail "expected a design"
  | Some report ->
      Alcotest.(check int) "tiers" 3 (List.length report.design.Design.tiers);
      let rendered = Format.asprintf "%a" Engine.pp_report report in
      Alcotest.(check bool) "report mentions cost" true
        (String.length rendered > 0)

let test_evaluate_design_roundtrip () =
  let infra = Aved.Experiments.infrastructure () in
  let service = Aved.Experiments.ecommerce () in
  match
    Engine.design infra service
      (Requirements.enterprise ~throughput:1000.
         ~max_annual_downtime:(Duration.of_minutes 60.))
  with
  | None -> Alcotest.fail "expected a design"
  | Some report ->
      let models =
        Engine.evaluate_design infra service report.design ~demand:(Some 1000.)
      in
      Alcotest.(check int) "one model per tier" 3 (List.length models);
      let downtime =
        Aved_avail.Evaluate.service_annual_downtime Aved_avail.Evaluate.Analytic
          models
      in
      (match report.downtime with
      | Some d ->
          Alcotest.(check (float 1e-6))
            "re-evaluation agrees" (Duration.minutes d)
            (Duration.minutes downtime)
      | None -> Alcotest.fail "expected downtime")

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    if i + nl > hl then false
    else String.sub haystack i nl = needle || scan (i + 1)
  in
  scan 0

let test_table1 () =
  Alcotest.(check int) "ten rows" 10 (List.length Aved.Experiments.table1);
  let rendered = Format.asprintf "%t" Figures.print_table1 in
  Alcotest.(check bool) "mentions rH" true (contains ~needle:"rH" rendered)

let test_print_functions () =
  let fig6 = Figures.fig6 ~loads:[ 400. ] () in
  let fig7 = Figures.fig7 ~requirements_hours:[ 100. ] () in
  let fig8 = Figures.fig8 ~loads:[ 400. ] ~downtimes_minutes:[ 1.; 100. ] () in
  let render f = Format.asprintf "%a" f in
  Alcotest.(check bool) "fig6 prints" true
    (String.length (render Figures.print_fig6 fig6) > 100);
  Alcotest.(check bool) "fig7 prints" true
    (String.length (render Figures.print_fig7 fig7) > 100);
  Alcotest.(check bool) "fig8 prints" true
    (String.length (render Figures.print_fig8 fig8) > 50)

let test_report () =
  let infra = Aved.Experiments.infrastructure () in
  let service = Aved.Experiments.ecommerce () in
  match
    Aved.Report.generate
      ~sensitivity:[ Aved_search.Sensitivity.nominal ]
      infra service
      (Requirements.enterprise ~throughput:800.
         ~max_annual_downtime:(Duration.of_minutes 120.))
  with
  | None -> Alcotest.fail "expected a report"
  | Some text ->
      List.iter
        (fun needle ->
          Alcotest.(check bool) ("mentions " ^ needle) true
            (contains ~needle text))
        [
          "Chosen design"; "Tier web"; "Tier database";
          "downtime by failure class"; "first 30 days"; "Sensitivity";
          "annual cost";
        ];
      Alcotest.(check bool) "substantial" true (String.length text > 1000)

let test_report_infeasible () =
  let infra = Aved.Experiments.infrastructure () in
  let service = Aved.Experiments.ecommerce () in
  Alcotest.(check bool) "infeasible is None" true
    (Aved.Report.generate infra service
       (Requirements.enterprise ~throughput:800.
          ~max_annual_downtime:(Duration.of_seconds 1.))
    = None)

let () =
  Alcotest.run "core"
    [
      ( "figures",
        [
          Alcotest.test_case "log_spaced" `Quick test_log_spaced;
          Alcotest.test_case "fig6" `Quick test_fig6_generator;
          Alcotest.test_case "fig6 downtime vs load" `Quick
            test_fig6_downtime_grows_with_load;
          Alcotest.test_case "fig7" `Quick test_fig7_generator;
          Alcotest.test_case "fig8" `Quick test_fig8_generator;
          Alcotest.test_case "table1" `Quick test_table1;
          Alcotest.test_case "printers" `Quick test_print_functions;
        ] );
      ( "engine",
        [
          Alcotest.test_case "design from files" `Quick test_engine_from_files;
          Alcotest.test_case "evaluate_design roundtrip" `Quick
            test_evaluate_design_roundtrip;
        ] );
      ( "report",
        [
          Alcotest.test_case "generation" `Quick test_report;
          Alcotest.test_case "infeasible" `Quick test_report_infeasible;
        ] );
    ]
