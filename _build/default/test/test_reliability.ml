module Availability = Aved_reliability.Availability
module Loss_window = Aved_reliability.Loss_window
module Duration = Aved_units.Duration

let check_float = Alcotest.(check (float 1e-9))
let frac a = Availability.to_fraction a

let test_of_mtbf_mttr () =
  check_float "simple" (2. /. 3.)
    (frac
       (Availability.of_mtbf_mttr ~mtbf:(Duration.of_hours 2.)
          ~mttr:(Duration.of_hours 1.)));
  check_float "zero mttr" 1.
    (frac (Availability.of_mtbf_mttr ~mtbf:(Duration.of_hours 1.) ~mttr:Duration.zero));
  Alcotest.check_raises "zero mtbf"
    (Invalid_argument "Availability.of_mtbf_mttr: mtbf must be positive")
    (fun () ->
      ignore (Availability.of_mtbf_mttr ~mtbf:Duration.zero ~mttr:Duration.zero))

let test_series_parallel () =
  let a = Availability.of_fraction 0.9 and b = Availability.of_fraction 0.8 in
  check_float "series" 0.72 (frac (Availability.series [ a; b ]));
  check_float "series empty" 1. (frac (Availability.series []));
  check_float "parallel" 0.98 (frac (Availability.parallel [ a; b ]));
  check_float "parallel empty" 0. (frac (Availability.parallel []))

let binomial_tail k n p =
  (* Direct enumeration for the oracle. *)
  let rec choose n k =
    if k = 0 || k = n then 1. else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
  in
  let acc = ref 0. in
  for i = k to n do
    acc :=
      !acc
      +. choose n i *. (p ** float_of_int i)
         *. ((1. -. p) ** float_of_int (n - i))
  done;
  !acc

let test_k_out_of_n () =
  check_float "1-of-1" 0.9 (frac (Availability.k_out_of_n ~k:1 ~n:1 (Availability.of_fraction 0.9)));
  check_float "k=0" 1. (frac (Availability.k_out_of_n ~k:0 ~n:3 (Availability.of_fraction 0.1)));
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"binomial tail oracle" ~count:300
       QCheck2.Gen.(
         let* n = int_range 1 12 in
         let* k = int_range 0 n in
         let* p = float_range 0.01 0.99 in
         return (k, n, p))
       (fun (k, n, p) ->
         let got =
           frac (Availability.k_out_of_n ~k ~n (Availability.of_fraction p))
         in
         Float.abs (got -. binomial_tail k n p) < 1e-9))

let test_annual_downtime () =
  let a = Availability.of_fraction 0.999 in
  Alcotest.(check (float 1e-6))
    "downtime minutes" (0.001 *. 365. *. 24. *. 60.)
    (Duration.minutes (Availability.annual_downtime a));
  check_float "roundtrip" 0.999
    (frac (Availability.of_annual_downtime (Availability.annual_downtime a)));
  check_float "unavailability" 0.001 (Availability.unavailability a)

let test_of_fraction_bounds () =
  Alcotest.check_raises "above one"
    (Invalid_argument "Availability.of_fraction: 1.5") (fun () ->
      ignore (Availability.of_fraction 1.5));
  Alcotest.check_raises "negative"
    (Invalid_argument "Availability.of_fraction: -0.1") (fun () ->
      ignore (Availability.of_fraction (-0.1)))

(* ------------------------------------------------------------------ *)

let test_mean_time_for_window () =
  let mtbf = Duration.of_hours 100. in
  let lw = Duration.of_hours 1. in
  (* T_lw = MTBF (e^{lw/MTBF} - 1). *)
  let expected = 100. *. (Float.exp 0.01 -. 1.) in
  Alcotest.(check (float 1e-9))
    "closed form" expected
    (Duration.hours (Loss_window.mean_time_for_window ~mtbf ~lw));
  check_float "zero window" 0.
    (Duration.seconds (Loss_window.mean_time_for_window ~mtbf ~lw:Duration.zero))

let test_useful_fraction_limits () =
  let mtbf = Duration.of_days 20. in
  check_float "no window" 1. (Loss_window.useful_fraction ~mtbf ~lw:Duration.zero);
  let small = Loss_window.useful_fraction ~mtbf ~lw:(Duration.of_minutes 1.) in
  Alcotest.(check bool) "small window near 1" true (small > 0.9999);
  let huge = Loss_window.useful_fraction ~mtbf ~lw:(Duration.of_days 400.) in
  Alcotest.(check bool) "huge window near 0" true (huge < 1e-6)

let test_useful_fraction_monotone () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"useful fraction decreases with window"
       ~count:300
       QCheck2.Gen.(
         let* mtbf_h = float_range 1. 1000. in
         let* lw1 = float_range 0.001 100. in
         let* lw2 = float_range 0.001 100. in
         return (mtbf_h, Float.min lw1 lw2, Float.max lw1 lw2))
       (fun (mtbf_h, lo, hi) ->
         let mtbf = Duration.of_hours mtbf_h in
         Loss_window.useful_fraction ~mtbf ~lw:(Duration.of_hours lo)
         >= Loss_window.useful_fraction ~mtbf ~lw:(Duration.of_hours hi)
            -. 1e-12))

let test_expected_job_time () =
  let mtbf = Duration.of_hours 1000. in
  let lw = Duration.of_minutes 10. in
  let availability = Availability.of_fraction 0.95 in
  let t =
    Loss_window.expected_job_time ~work_seconds:36000. ~availability ~mtbf ~lw
  in
  (* Must exceed work/availability and be close to it for tiny loss. *)
  Alcotest.(check bool) "above lower bound" true
    (Duration.seconds t >= 36000. /. 0.95);
  Alcotest.(check bool) "close to lower bound" true
    (Duration.seconds t <= 36000. /. 0.95 *. 1.01);
  Alcotest.check_raises "negative work"
    (Invalid_argument "Loss_window: negative work") (fun () ->
      ignore
        (Loss_window.expected_job_time ~work_seconds:(-1.) ~availability ~mtbf
           ~lw))

let test_optimal_interval () =
  (* Young's formula. *)
  let t =
    Loss_window.optimal_interval
      ~checkpoint_cost:(Duration.of_seconds 2.)
      ~mtbf:(Duration.of_seconds 10000.)
  in
  check_float "sqrt(2 c M)" 200. (Duration.seconds t)

(* ------------------------------------------------------------------ *)
(* Block diagrams *)

module Block_diagram = Aved_reliability.Block_diagram
module Fault_tree = Aved_reliability.Fault_tree

let b name a = Block_diagram.block ~name (Availability.of_fraction a)

let test_rbd_series_parallel () =
  check_float "series" (0.9 *. 0.8)
    (frac (Block_diagram.availability (Block_diagram.series [ b "x" 0.9; b "y" 0.8 ])));
  check_float "parallel" (1. -. (0.1 *. 0.2))
    (frac (Block_diagram.availability (Block_diagram.parallel [ b "x" 0.9; b "y" 0.8 ])));
  check_float "empty series up" 1.
    (frac (Block_diagram.availability (Block_diagram.series [])));
  check_float "empty parallel down" 0.
    (frac (Block_diagram.availability (Block_diagram.parallel [])));
  (* Nesting: two replicated stacks of (web - db). *)
  let stack = Block_diagram.series [ b "web" 0.99; b "db" 0.95 ] in
  check_float "nested"
    (1. -. ((1. -. (0.99 *. 0.95)) ** 2.))
    (frac (Block_diagram.availability (Block_diagram.parallel [ stack; stack ])))

let test_rbd_k_of_n () =
  (* Homogeneous: must match the binomial closed form. *)
  let p = 0.85 in
  let parts = List.init 5 (fun i -> b (Printf.sprintf "u%d" i) p) in
  check_float "homogeneous k-of-n"
    (frac (Availability.k_out_of_n ~k:3 ~n:5 (Availability.of_fraction p)))
    (frac (Block_diagram.availability (Block_diagram.k_of_n ~k:3 parts)));
  (* Heterogeneous 1-of-2 equals parallel. *)
  let parts2 = [ b "a" 0.9; b "c" 0.7 ] in
  check_float "1-of-2 is parallel"
    (frac (Block_diagram.availability (Block_diagram.parallel parts2)))
    (frac (Block_diagram.availability (Block_diagram.k_of_n ~k:1 parts2)));
  (* n-of-n equals series. *)
  check_float "2-of-2 is series"
    (frac (Block_diagram.availability (Block_diagram.series parts2)))
    (frac (Block_diagram.availability (Block_diagram.k_of_n ~k:2 parts2)));
  check_float "0-of-n is up" 1.
    (frac (Block_diagram.availability (Block_diagram.k_of_n ~k:0 parts2)));
  Alcotest.(check bool) "bad k" true
    (match Block_diagram.k_of_n ~k:3 parts2 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_rbd_importance () =
  (* In a series system the weakest block has the highest importance
     (its improvement is multiplied by the availability of the rest). *)
  let d = Block_diagram.series [ b "strong" 0.999; b "weak" 0.9 ] in
  let importance = Block_diagram.birnbaum_importance d in
  let get name = List.assoc name importance in
  check_float "dA/dweak" 0.999 (get "weak");
  check_float "dA/dstrong" 0.9 (get "strong");
  Alcotest.(check (list string)) "blocks" [ "strong"; "weak" ]
    (Block_diagram.blocks d)

let test_rbd_importance_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"importance within [0,1] and weakest-first"
       ~count:200
       QCheck2.Gen.(list_size (int_range 1 6) (float_range 0.5 0.999))
       (fun parts ->
         let diagram =
           Block_diagram.series
             (List.mapi (fun i a -> b (Printf.sprintf "p%d" i) a) parts)
         in
         List.for_all
           (fun (_, imp) -> imp >= 0. && imp <= 1.)
           (Block_diagram.birnbaum_importance diagram)))

(* ------------------------------------------------------------------ *)
(* Fault trees *)

let ev name p = Fault_tree.basic ~name ~probability:p

let test_fault_tree_gates () =
  check_float "or" (1. -. (0.9 *. 0.8))
    (Fault_tree.top_event_probability
       (Fault_tree.gate_or [ ev "a" 0.1; ev "c" 0.2 ]));
  check_float "and" (0.1 *. 0.2)
    (Fault_tree.top_event_probability
       (Fault_tree.gate_and [ ev "a" 0.1; ev "c" 0.2 ]));
  check_float "empty or never" 0.
    (Fault_tree.top_event_probability (Fault_tree.gate_or []));
  check_float "empty and always" 1.
    (Fault_tree.top_event_probability (Fault_tree.gate_and []));
  (* 2-of-3 vote with p = 0.1 each: 3 p^2 (1-p) + p^3. *)
  let v =
    Fault_tree.vote ~k:2 [ ev "a" 0.1; ev "c" 0.1; ev "d" 0.1 ]
  in
  check_float "vote"
    ((3. *. 0.01 *. 0.9) +. 0.001)
    (Fault_tree.top_event_probability v)

let test_fault_tree_importance () =
  (* Outage = power AND (disk1 OR disk2): power dominates. *)
  let tree =
    Fault_tree.gate_or
      [
        ev "power" 0.001;
        Fault_tree.gate_and [ ev "disk1" 0.01; ev "disk2" 0.01 ];
      ]
  in
  let importance = Fault_tree.birnbaum_importance tree in
  Alcotest.(check bool) "power most important" true
    (List.assoc "power" importance > List.assoc "disk1" importance);
  check_float "events" 3. (float_of_int (List.length importance))

let gen_fault_tree =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          let leaf =
            map2
              (fun i p -> ev (Printf.sprintf "e%d" (i : int)) p)
              (int_range 0 1000) (float_range 0. 1.)
          in
          if size <= 1 then leaf
          else
            let sub = list_size (int_range 1 4) (self (size / 3)) in
            oneof
              [
                leaf;
                map Fault_tree.gate_or sub;
                map Fault_tree.gate_and sub;
                (let* inputs = sub in
                 let* k = int_range 0 (List.length inputs) in
                 return (Fault_tree.vote ~k inputs));
              ])
        (min size 8))

let test_fault_tree_duality () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make
       ~name:"fault tree equals one minus its dual block diagram"
       ~count:300 gen_fault_tree (fun tree ->
         let direct = Fault_tree.top_event_probability tree in
         let dual =
           1.
           -. frac (Block_diagram.availability (Fault_tree.to_block_diagram tree))
         in
         Float.abs (direct -. dual) < 1e-9))

let test_fault_tree_monotone () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make
       ~name:"raising a basic probability cannot lower the top event"
       ~count:200
       QCheck2.Gen.(pair gen_fault_tree (float_range 0. 1.))
       (fun (tree, bump) ->
         let rec raise_all = function
           | Fault_tree.Basic { name; probability } ->
               Fault_tree.basic ~name
                 ~probability:(Float.min 1. (probability +. bump))
           | Fault_tree.Or inputs -> Fault_tree.gate_or (List.map raise_all inputs)
           | Fault_tree.And inputs ->
               Fault_tree.gate_and (List.map raise_all inputs)
           | Fault_tree.Vote { k; inputs } ->
               Fault_tree.vote ~k (List.map raise_all inputs)
         in
         Fault_tree.top_event_probability (raise_all tree)
         >= Fault_tree.top_event_probability tree -. 1e-12))

let () =
  Alcotest.run "reliability"
    [
      ( "availability",
        [
          Alcotest.test_case "of_mtbf_mttr" `Quick test_of_mtbf_mttr;
          Alcotest.test_case "series/parallel" `Quick test_series_parallel;
          Alcotest.test_case "k-out-of-n" `Quick test_k_out_of_n;
          Alcotest.test_case "annual downtime" `Quick test_annual_downtime;
          Alcotest.test_case "fraction bounds" `Quick test_of_fraction_bounds;
        ] );
      ( "block-diagram",
        [
          Alcotest.test_case "series/parallel" `Quick test_rbd_series_parallel;
          Alcotest.test_case "k-of-n" `Quick test_rbd_k_of_n;
          Alcotest.test_case "Birnbaum importance" `Quick test_rbd_importance;
          Alcotest.test_case "importance bounds" `Quick
            test_rbd_importance_property;
        ] );
      ( "fault-tree",
        [
          Alcotest.test_case "gates" `Quick test_fault_tree_gates;
          Alcotest.test_case "importance" `Quick test_fault_tree_importance;
          Alcotest.test_case "block-diagram duality" `Quick
            test_fault_tree_duality;
          Alcotest.test_case "monotone" `Quick test_fault_tree_monotone;
        ] );
      ( "loss-window",
        [
          Alcotest.test_case "T_lw closed form" `Quick
            test_mean_time_for_window;
          Alcotest.test_case "useful fraction limits" `Quick
            test_useful_fraction_limits;
          Alcotest.test_case "useful fraction monotone" `Quick
            test_useful_fraction_monotone;
          Alcotest.test_case "expected job time" `Quick test_expected_job_time;
          Alcotest.test_case "Young optimum" `Quick test_optimal_interval;
        ] );
    ]
