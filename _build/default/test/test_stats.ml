module Stats = Aved_stats.Stats

let check_float = Alcotest.(check (float 1e-9))

let test_summarize () =
  let s = Stats.summarize [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. s.mean;
  check_float "variance" (32. /. 7.) s.variance;
  check_float "stddev" (sqrt (32. /. 7.)) s.stddev;
  check_float "min" 2. s.min;
  check_float "max" 9. s.max;
  Alcotest.(check int) "count" 8 s.count

let test_singleton () =
  let s = Stats.summarize [| 3.5 |] in
  check_float "mean" 3.5 s.mean;
  check_float "variance" 0. s.variance

let test_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty")
    (fun () -> ignore (Stats.summarize [||]))

let test_standard_error_and_ci () =
  let s = Stats.summarize [| 1.; 2.; 3.; 4.; 5. |] in
  let se = Stats.standard_error s in
  check_float "se" (s.stddev /. sqrt 5.) se;
  let lo, hi = Stats.confidence_interval_95 s in
  check_float "ci low" (s.mean -. (1.96 *. se)) lo;
  check_float "ci high" (s.mean +. (1.96 *. se)) hi;
  Alcotest.(check bool) "mean inside" true (lo <= s.mean && s.mean <= hi)

let test_quantile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median" 2.5 (Stats.quantile xs 0.5);
  check_float "min" 1. (Stats.quantile xs 0.);
  check_float "max" 4. (Stats.quantile xs 1.);
  check_float "interpolated" 1.75 (Stats.quantile xs 0.25);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.quantile: p outside [0,1]") (fun () ->
      ignore (Stats.quantile xs 1.5))

let test_online_matches_batch () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"Welford equals direct computation" ~count:200
       QCheck2.Gen.(array_size (int_range 1 200) (float_range (-1000.) 1000.))
       (fun xs ->
         let acc = Stats.Online.create () in
         Array.iter (Stats.Online.add acc) xs;
         let online = Stats.Online.to_summary acc in
         let batch = Stats.summarize xs in
         Float.abs (online.mean -. batch.mean) < 1e-7
         && Float.abs (online.variance -. batch.variance)
            < 1e-6 *. Float.max 1. batch.variance))

let test_online_empty () =
  let acc = Stats.Online.create () in
  Alcotest.(check int) "count" 0 (Stats.Online.count acc);
  Alcotest.check_raises "empty summary"
    (Invalid_argument "Stats.Online.to_summary: empty") (fun () ->
      ignore (Stats.Online.to_summary acc))

let () =
  Alcotest.run "stats"
    [
      ( "batch",
        [
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "stderr and CI" `Quick test_standard_error_and_ci;
          Alcotest.test_case "quantile" `Quick test_quantile;
        ] );
      ( "online",
        [
          Alcotest.test_case "matches batch" `Quick test_online_matches_batch;
          Alcotest.test_case "empty" `Quick test_online_empty;
        ] );
    ]
