module Matrix = Aved_linalg.Matrix
module Vector = Aved_linalg.Vector

let check_float = Alcotest.(check (float 1e-9))

let test_vector_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vector.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vector.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vector.scale 2. a);
  check_float "dot" 32. (Vector.dot a b);
  check_float "norm_inf" 3. (Vector.norm_inf a);
  check_float "norm_1" 6. (Vector.norm_1 a);
  check_float "norm_2" (sqrt 14.) (Vector.norm_2 a);
  Alcotest.(check (array (float 1e-12)))
    "normalize_1" [| 0.25; 0.75 |] (Vector.normalize_1 [| 1.; 3. |]);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vector: dimension mismatch (3 vs 2)") (fun () ->
      ignore (Vector.add a [| 1.; 2. |]))

let test_matrix_basics () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "get" 3. (Matrix.get m 1 0);
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m);
  let t = Matrix.transpose m in
  check_float "transpose" 2. (Matrix.get t 1 0);
  let i = Matrix.identity 2 in
  Alcotest.(check bool) "identity mul" true
    (Matrix.equal ~tol:1e-12 m (Matrix.mul m i));
  let sum = Matrix.add m m in
  check_float "add" 8. (Matrix.get sum 1 1);
  let diff = Matrix.sub sum m in
  Alcotest.(check bool) "sub" true (Matrix.equal ~tol:1e-12 m diff);
  let sc = Matrix.scale 3. i in
  check_float "scale" 3. (Matrix.get sc 0 0)

let test_mul_vec () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12)))
    "mul_vec" [| 5.; 11. |]
    (Matrix.mul_vec m [| 1.; 2. |]);
  Alcotest.(check (array (float 1e-12)))
    "vec_mul" [| 7.; 10. |]
    (Matrix.vec_mul [| 1.; 2. |] m)

let test_solve_known () =
  (* 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3. *)
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 5.; 10. |] in
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.; 3. |] x

let test_solve_requires_pivoting () =
  (* Leading zero pivot forces a row swap. *)
  let a = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Matrix.solve a [| 3.; 7. |] in
  Alcotest.(check (array (float 1e-12))) "swap" [| 7.; 3. |] x

let test_singular () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve a [| 1.; 1. |]));
  check_float "det 0" 0. (Matrix.determinant a)

let test_determinant () =
  let a = Matrix.of_rows [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "diag det" 6. (Matrix.determinant a);
  let b = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "swap det" (-1.) (Matrix.determinant b)

let test_inverse () =
  let a = Matrix.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Matrix.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Matrix.equal ~tol:1e-9 (Matrix.identity 2) (Matrix.mul a inv))

let gen_system =
  (* Diagonally dominant matrices are well conditioned, so residual
     checks are meaningful. *)
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* entries = array_repeat (n * n) (float_range (-1.) 1.) in
  let* rhs = array_repeat n (float_range (-10.) 10.) in
  let m =
    Matrix.init n n (fun i j ->
        let v = entries.((i * n) + j) in
        if i = j then v +. (2. *. float_of_int n) else v)
  in
  return (m, rhs)

let test_solve_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"LU solve residual" ~count:300 gen_system
       (fun (a, b) ->
         let x = Matrix.solve a b in
         Matrix.residual_inf a x b < 1e-8))

let test_inverse_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"inverse times matrix is identity" ~count:100
       gen_system (fun (a, _) ->
         let n = Matrix.rows a in
         Matrix.equal ~tol:1e-7 (Matrix.identity n)
           (Matrix.mul (Matrix.inverse a) a)))

let test_solve_many () =
  let a = Matrix.of_rows [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  match Matrix.solve_many a [ [| 2.; 4. |]; [| 6.; 8. |] ] with
  | [ x1; x2 ] ->
      Alcotest.(check (array (float 1e-12))) "first" [| 1.; 1. |] x1;
      Alcotest.(check (array (float 1e-12))) "second" [| 3.; 2. |] x2
  | _ -> Alcotest.fail "expected two solutions"

let () =
  Alcotest.run "linalg"
    [
      ( "vector",
        [ Alcotest.test_case "operations" `Quick test_vector_ops ] );
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "matrix-vector" `Quick test_mul_vec;
          Alcotest.test_case "solve known system" `Quick test_solve_known;
          Alcotest.test_case "solve with pivoting" `Quick
            test_solve_requires_pivoting;
          Alcotest.test_case "singular detection" `Quick test_singular;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "solve_many" `Quick test_solve_many;
        ] );
      ( "properties",
        [
          Alcotest.test_case "solve residual" `Quick test_solve_property;
          Alcotest.test_case "inverse identity" `Quick test_inverse_property;
        ] );
    ]
