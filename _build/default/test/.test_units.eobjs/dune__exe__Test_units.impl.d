test/test_units.ml: Alcotest Aved_units Float List Printf QCheck2
