test/test_perf.mli:
