test/test_perf.ml: Alcotest Aved_perf Float List Printf QCheck2
