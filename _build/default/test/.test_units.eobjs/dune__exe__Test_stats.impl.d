test/test_stats.ml: Alcotest Array Aved_stats Float QCheck2
