test/test_avail.mli:
