test/test_search.mli:
