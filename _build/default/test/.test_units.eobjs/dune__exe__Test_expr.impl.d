test/test_expr.ml: Alcotest Aved_expr Float List QCheck2
