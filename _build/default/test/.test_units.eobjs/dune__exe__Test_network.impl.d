test/test_network.ml: Alcotest Aved_network Aved_units Float List Printf QCheck2
