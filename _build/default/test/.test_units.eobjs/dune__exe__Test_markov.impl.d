test/test_markov.ml: Alcotest Array Aved_linalg Aved_markov Float List Printf QCheck2
