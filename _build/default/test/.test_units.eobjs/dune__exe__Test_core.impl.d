test/test_core.ml: Alcotest Aved Aved_avail Aved_model Aved_search Aved_units Design Filename Format List Option Printf Requirements String Sys Unix
