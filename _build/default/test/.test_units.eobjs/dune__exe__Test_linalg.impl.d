test/test_linalg.ml: Alcotest Array Aved_linalg QCheck2
