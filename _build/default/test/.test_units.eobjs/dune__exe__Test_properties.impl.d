test/test_properties.ml: Alcotest Aved_avail Aved_expr Aved_model Aved_reliability Aved_search Aved_units Design Float Int_range List Mechanism Printf QCheck2 QCheck_alcotest Service Stdlib
