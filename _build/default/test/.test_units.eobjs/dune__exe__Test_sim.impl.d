test/test_sim.ml: Alcotest Array Aved_sim Float List Printf QCheck2
