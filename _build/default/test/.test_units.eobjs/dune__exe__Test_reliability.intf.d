test/test_reliability.mli:
