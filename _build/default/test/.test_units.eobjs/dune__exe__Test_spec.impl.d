test/test_spec.ml: Alcotest Aved Aved_model Aved_perf Aved_spec Aved_units Component Filename Float Infrastructure Int_range List Mech_impact Mechanism Resource Service String Sys Unix
