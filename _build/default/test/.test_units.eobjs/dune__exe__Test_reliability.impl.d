test/test_reliability.ml: Alcotest Aved_reliability Aved_units Float List Printf QCheck2
