test/test_units.mli:
