test/test_model.ml: Alcotest Aved_model Aved_perf Aved_units Component Design Infrastructure Int_range List Mech_impact Mechanism Printf Resource
