test/test_avail.ml: Alcotest Array Aved Aved_avail Aved_model Aved_stats Aved_units Design Float List Mechanism Printf QCheck2 Service String
