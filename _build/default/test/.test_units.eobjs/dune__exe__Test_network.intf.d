test/test_network.mli:
