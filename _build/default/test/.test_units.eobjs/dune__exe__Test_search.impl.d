test/test_search.ml: Alcotest Aved Aved_avail Aved_model Aved_search Aved_units Design Float Infrastructure List Mechanism Option Printf Requirements Service String
