module Duration = Aved_units.Duration
module Money = Aved_units.Money
open Aved_model

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Int_range *)

let test_int_range_parse () =
  Alcotest.(check (list int)) "singleton" [ 1 ]
    (Int_range.to_list (Int_range.of_string "[1]"));
  Alcotest.(check (list int)) "arithmetic" [ 1; 2; 3; 4; 5 ]
    (Int_range.to_list (Int_range.of_string "[1-5,+1]"));
  Alcotest.(check (list int)) "arithmetic step" [ 2; 4; 6 ]
    (Int_range.to_list (Int_range.of_string "[2-7,+2]"));
  Alcotest.(check (list int)) "geometric" [ 1; 2; 4; 8 ]
    (Int_range.to_list (Int_range.of_string "[1-8,*2]"));
  Alcotest.(check (list int)) "explicit" [ 1; 2; 5 ]
    (Int_range.to_list (Int_range.of_string "[5,1,2]"));
  List.iter
    (fun text ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" text) true
        (match Int_range.of_string text with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ ""; "1-5"; "[1-5]"; "[1-5,;2]"; "[a-b,+1]"; "[5-1,+1]" ]

let test_int_range_queries () =
  let r = Int_range.of_string "[2-10,+2]" in
  Alcotest.(check bool) "mem in" true (Int_range.mem r 6);
  Alcotest.(check bool) "mem off-step" false (Int_range.mem r 5);
  Alcotest.(check bool) "mem outside" false (Int_range.mem r 12);
  Alcotest.(check int) "min" 2 (Int_range.min_value r);
  Alcotest.(check int) "max" 10 (Int_range.max_value r);
  Alcotest.(check (option int)) "next_above exact" (Some 6) (Int_range.next_above r 6);
  Alcotest.(check (option int)) "next_above between" (Some 6) (Int_range.next_above r 5);
  Alcotest.(check (option int)) "next_above beyond" None (Int_range.next_above r 11);
  Alcotest.(check string) "to_string roundtrip" "[2-10,+2]" (Int_range.to_string r)

(* ------------------------------------------------------------------ *)
(* Components & mechanisms *)

let maintenance =
  Mechanism.make ~name:"maint"
    ~parameters:
      [ { param_name = "level"; range = Mechanism.Enum [ "lo"; "hi" ] } ]
    ~cost:
      (Mechanism.By_enum
         {
           param = "level";
           table = [ ("lo", Money.of_float 100.); ("hi", Money.of_float 300.) ];
         })
    ~mttr:
      (Mechanism.By_enum
         {
           param = "level";
           table =
             [ ("lo", Duration.of_hours 24.); ("hi", Duration.of_hours 4.) ];
         })
    ()

let checkpoint =
  Mechanism.make ~name:"ckpt"
    ~parameters:
      [
        {
          param_name = "interval";
          range =
            Mechanism.Duration_geometric
              {
                lo = Duration.of_minutes 1.;
                hi = Duration.of_hours 24.;
                factor = 2.;
              };
        };
      ]
    ~cost:(Mechanism.Fixed Money.zero)
    ~loss_window:(Mechanism.Of_param "interval") ()

let machine =
  Component.make ~name:"machine" ~cost_inactive:(Money.of_float 1000.)
    ~cost_active:(Money.of_float 1200.)
    ~failure_modes:
      [
        Component.failure_mode ~name:"hard" ~mtbf:(Duration.of_days 500.)
          ~repair:(Component.Repair_by_mechanism "maint")
          ~detect_time:(Duration.of_minutes 2.) ();
        Component.failure_mode ~name:"soft" ~mtbf:(Duration.of_days 50.) ();
      ]
    ()

let os =
  Component.make ~name:"os" ~cost_active:Money.zero
    ~failure_modes:
      [ Component.failure_mode ~name:"soft" ~mtbf:(Duration.of_days 60.) () ]
    ()

let app =
  Component.make ~name:"app" ~cost_active:(Money.of_float 500.)
    ~cost_inactive:Money.zero
    ~failure_modes:
      [ Component.failure_mode ~name:"soft" ~mtbf:(Duration.of_days 60.) () ]
    ~loss_window:(Component.Loss_window_by_mechanism "ckpt") ()

let resource =
  Resource.make ~name:"node"
    ~reconfig_time:(Duration.of_seconds 10.)
    ~elements:
      [
        Resource.element ~component:"machine"
          ~startup:(Duration.of_seconds 30.) ();
        Resource.element ~component:"os" ~depends_on:"machine"
          ~startup:(Duration.of_minutes 2.) ();
        Resource.element ~component:"app" ~depends_on:"os"
          ~startup:(Duration.of_minutes 1.) ();
      ]
    ()

let infra =
  Infrastructure.make ~components:[ machine; os; app ]
    ~mechanisms:[ maintenance; checkpoint ] ~resources:[ resource ]

let test_mechanism_settings () =
  let settings = Mechanism.settings maintenance in
  Alcotest.(check int) "enum settings" 2 (List.length settings);
  let ck_settings = Mechanism.settings checkpoint in
  (* 1m doubling to 24h: 1m..1024m then the endpoint 1440m. *)
  Alcotest.(check int) "geometric settings" 12 (List.length ck_settings);
  (match List.rev ck_settings with
  | last :: _ -> (
      match List.assoc "interval" last with
      | Mechanism.Duration_value d ->
          check_float "endpoint included" (24. *. 3600.) (Duration.seconds d)
      | Mechanism.Enum_value _ -> Alcotest.fail "expected duration")
  | [] -> Alcotest.fail "no settings");
  let lo_setting = [ ("level", Mechanism.Enum_value "lo") ] in
  check_float "cost lookup" 100.
    (Money.to_float (Mechanism.cost_of maintenance lo_setting));
  (match Mechanism.mttr_of maintenance lo_setting with
  | Some d -> check_float "mttr lookup" 24. (Duration.hours d)
  | None -> Alcotest.fail "expected mttr");
  match
    Mechanism.loss_window_of checkpoint
      [ ("interval", Mechanism.Duration_value (Duration.of_minutes 8.)) ]
  with
  | Some d -> check_float "loss window of param" 8. (Duration.minutes d)
  | None -> Alcotest.fail "expected loss window"

let test_mechanism_validation () =
  let reject name f =
    Alcotest.(check bool) name true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  reject "unknown param in table" (fun () ->
      Mechanism.make ~name:"bad" ~parameters:[]
        ~cost:(Mechanism.By_enum { param = "level"; table = [] })
        ());
  reject "incomplete table" (fun () ->
      Mechanism.make ~name:"bad"
        ~parameters:
          [ { param_name = "level"; range = Mechanism.Enum [ "a"; "b" ] } ]
        ~cost:
          (Mechanism.By_enum
             { param = "level"; table = [ ("a", Money.zero) ] })
        ());
  reject "cost of duration param" (fun () ->
      Mechanism.make ~name:"bad"
        ~parameters:
          [
            {
              param_name = "d";
              range =
                Mechanism.Duration_geometric
                  {
                    lo = Duration.of_seconds 1.;
                    hi = Duration.of_seconds 10.;
                    factor = 2.;
                  };
            };
          ]
        ~cost:(Mechanism.Of_param "d") ());
  reject "empty enum" (fun () ->
      Mechanism.make ~name:"bad"
        ~parameters:[ { param_name = "level"; range = Mechanism.Enum [] } ]
        ~cost:(Mechanism.Fixed Money.zero) ())

let test_component_validation () =
  Alcotest.(check bool) "duplicate mode" true
    (match
       Component.make ~name:"c" ~cost_active:Money.zero
         ~failure_modes:
           [
             Component.failure_mode ~name:"soft" ~mtbf:(Duration.of_days 1.) ();
             Component.failure_mode ~name:"soft" ~mtbf:(Duration.of_days 2.) ();
           ]
         ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "zero mtbf" true
    (match Component.failure_mode ~name:"m" ~mtbf:Duration.zero () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check_float "default inactive cost" 500.
    (Money.to_float
       (Component.cost
          (Component.make ~name:"c" ~cost_active:(Money.of_float 500.) ())
          Component.Inactive));
  Alcotest.(check (list string)) "mechanism references" [ "ckpt" ]
    (Component.mechanism_references app);
  Alcotest.(check (list string)) "repair references" [ "maint" ]
    (Component.mechanism_references machine)

let test_resource_structure () =
  Alcotest.(check (list string)) "component names"
    [ "machine"; "os"; "app" ]
    (Resource.component_names resource);
  Alcotest.(check (list string)) "dependents of machine" [ "os"; "app" ]
    (Resource.dependents resource "machine");
  Alcotest.(check (list string)) "dependents of app" []
    (Resource.dependents resource "app");
  Alcotest.(check (list string)) "affected by os failure" [ "os"; "app" ]
    (Resource.affected_by_failure resource "os");
  check_float "restart after os failure" 180.
    (Duration.seconds (Resource.restart_time resource "os"));
  check_float "restart after machine failure" 210.
    (Duration.seconds (Resource.restart_time resource "machine"));
  check_float "total startup" 210.
    (Duration.seconds (Resource.total_startup_time resource));
  Alcotest.(check (list string)) "startup order"
    [ "machine"; "os"; "app" ]
    (Resource.startup_order resource)

let test_downward_closed_subsets () =
  (* A 3-chain has exactly the 4 prefixes. *)
  Alcotest.(check (list (list string)))
    "chain prefixes"
    [ []; [ "machine" ]; [ "machine"; "os" ]; [ "machine"; "os"; "app" ] ]
    (Resource.downward_closed_subsets resource);
  (* A fork: machine + two independent apps on it. *)
  let fork =
    Resource.make ~name:"fork"
      ~elements:
        [
          Resource.element ~component:"machine" ();
          Resource.element ~component:"os" ~depends_on:"machine" ();
          Resource.element ~component:"app" ~depends_on:"machine" ();
        ]
      ()
  in
  Alcotest.(check int) "fork subsets" 5
    (List.length (Resource.downward_closed_subsets fork))

let test_resource_validation () =
  let reject name f =
    Alcotest.(check bool) name true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  reject "unknown dependency" (fun () ->
      Resource.make ~name:"r"
        ~elements:[ Resource.element ~component:"a" ~depends_on:"ghost" () ]
        ());
  reject "self dependency" (fun () ->
      Resource.make ~name:"r"
        ~elements:[ Resource.element ~component:"a" ~depends_on:"a" () ]
        ());
  reject "cycle" (fun () ->
      Resource.make ~name:"r"
        ~elements:
          [
            Resource.element ~component:"a" ~depends_on:"b" ();
            Resource.element ~component:"b" ~depends_on:"a" ();
          ]
        ());
  reject "duplicate component" (fun () ->
      Resource.make ~name:"r"
        ~elements:
          [ Resource.element ~component:"a" (); Resource.element ~component:"a" () ]
        ());
  reject "empty" (fun () -> Resource.make ~name:"r" ~elements:[] ())

let test_infrastructure_validation () =
  let reject name f =
    Alcotest.(check bool) name true
      (match f () with _ -> false | exception Invalid_argument _ -> true)
  in
  reject "resource with unknown component" (fun () ->
      Infrastructure.make ~components:[] ~mechanisms:[]
        ~resources:
          [
            Resource.make ~name:"r"
              ~elements:[ Resource.element ~component:"ghost" () ]
              ();
          ]);
  reject "repair via unknown mechanism" (fun () ->
      Infrastructure.make ~components:[ machine ] ~mechanisms:[]
        ~resources:[]);
  reject "mechanism without needed mttr" (fun () ->
      Infrastructure.make ~components:[ machine ]
        ~mechanisms:
          [
            Mechanism.make ~name:"maint" ~parameters:[]
              ~cost:(Mechanism.Fixed Money.zero) ();
          ]
        ~resources:[]);
  reject "duplicate component names" (fun () ->
      Infrastructure.make ~components:[ os; os ] ~mechanisms:[] ~resources:[]);
  Alcotest.(check bool) "valid accepted" true
    (Infrastructure.find_component infra "machine" <> None)

let test_resource_mechanisms () =
  Alcotest.(check (list string)) "referenced mechanisms"
    [ "maint"; "ckpt" ]
    (List.map
       (fun (m : Mechanism.t) -> m.name)
       (Infrastructure.resource_mechanisms infra resource))

(* ------------------------------------------------------------------ *)
(* Design & cost *)

let settings =
  [
    ("maint", [ ("level", Mechanism.Enum_value "lo") ]);
    ( "ckpt",
      [ ("interval", Mechanism.Duration_value (Duration.of_minutes 4.)) ] );
  ]

let design n_active n_spare spare_active =
  Design.tier_design ~tier_name:"t" ~resource:"node" ~n_active ~n_spare
    ~spare_active_components:spare_active ~mechanism_settings:settings ()

let test_design_cost () =
  (* Active node: machine 1200 + os 0 + app 500 + maint 100 = 1800.
     Inactive spare: machine 1000 + 0 + 0 + maint 100 = 1100. *)
  check_float "actives only" 5400.
    (Money.to_float (Design.tier_cost infra (design 3 0 [])));
  check_float "with inactive spare" 6500.
    (Money.to_float (Design.tier_cost infra (design 3 1 [])));
  (* Spare with machine+os active: 1200 + 0 + 0(app inactive) + 100. *)
  check_float "hot spare hardware" 6700.
    (Money.to_float
       (Design.tier_cost infra (design 3 1 [ "machine"; "os" ])));
  let d = Design.make ~service_name:"svc" ~tiers:[ design 2 1 [] ] in
  check_float "service cost" 4700. (Money.to_float (Design.cost infra d))

let test_design_validation () =
  let reject name d =
    Alcotest.(check bool) name true
      (match
         Design.validate_against (Design.make ~service_name:"s" ~tiers:[ d ]) infra
       with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  Design.validate_against
    (Design.make ~service_name:"s" ~tiers:[ design 2 1 [] ])
    infra;
  reject "non-downward-closed spare set" (design 2 1 [ "app" ]);
  reject "missing mechanism setting"
    (Design.tier_design ~tier_name:"t" ~resource:"node" ~n_active:1 ());
  reject "unknown spare component" (design 2 1 [ "ghost" ]);
  Alcotest.(check bool) "n_active positive" true
    (match design 0 0 [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_design_max_instances () =
  let limited =
    Component.make ~name:"scarce" ~cost_active:Money.zero ~max_instances:2 ()
  in
  let r =
    Resource.make ~name:"r"
      ~elements:[ Resource.element ~component:"scarce" () ]
      ()
  in
  let inf =
    Infrastructure.make ~components:[ limited ] ~mechanisms:[] ~resources:[ r ]
  in
  let d n =
    Design.make ~service_name:"s"
      ~tiers:[ Design.tier_design ~tier_name:"t" ~resource:"r" ~n_active:n () ]
  in
  Design.validate_against (d 2) inf;
  Alcotest.(check bool) "over limit" true
    (match Design.validate_against (d 3) inf with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Mech_impact *)

let test_mech_impact () =
  let impact =
    [
      Mech_impact.case
        ~guards:[ ("loc", "central") ]
        (Aved_perf.Slowdown.of_string "max(10/interval, 1)");
      Mech_impact.case
        ~guards:[ ("loc", "peer") ]
        (Aved_perf.Slowdown.of_string "max(20/interval, 1)");
    ]
  in
  let setting loc =
    [
      ("loc", Mechanism.Enum_value loc);
      ("interval", Mechanism.Duration_value (Duration.of_minutes 2.));
    ]
  in
  check_float "central" 5. (Mech_impact.eval impact ~setting:(setting "central") ~n:4);
  check_float "peer" 10. (Mech_impact.eval impact ~setting:(setting "peer") ~n:4);
  Alcotest.(check bool) "no matching case" true
    (match
       Mech_impact.eval impact
         ~setting:[ ("loc", Mechanism.Enum_value "moon") ]
         ~n:1
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let unguarded = Mech_impact.unguarded (Aved_perf.Slowdown.of_string "2") in
  check_float "unguarded" 2. (Mech_impact.eval unguarded ~setting:[] ~n:1)

let () =
  Alcotest.run "model"
    [
      ( "int-range",
        [
          Alcotest.test_case "parse" `Quick test_int_range_parse;
          Alcotest.test_case "queries" `Quick test_int_range_queries;
        ] );
      ( "mechanism",
        [
          Alcotest.test_case "settings and lookups" `Quick
            test_mechanism_settings;
          Alcotest.test_case "validation" `Quick test_mechanism_validation;
        ] );
      ( "component",
        [ Alcotest.test_case "validation" `Quick test_component_validation ] );
      ( "resource",
        [
          Alcotest.test_case "structure" `Quick test_resource_structure;
          Alcotest.test_case "downward-closed subsets" `Quick
            test_downward_closed_subsets;
          Alcotest.test_case "validation" `Quick test_resource_validation;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "validation" `Quick
            test_infrastructure_validation;
          Alcotest.test_case "resource mechanisms" `Quick
            test_resource_mechanisms;
        ] );
      ( "design",
        [
          Alcotest.test_case "cost" `Quick test_design_cost;
          Alcotest.test_case "validation" `Quick test_design_validation;
          Alcotest.test_case "max instances" `Quick test_design_max_instances;
        ] );
      ( "mech-impact",
        [ Alcotest.test_case "evaluation" `Quick test_mech_impact ] );
    ]
