module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Spec = Aved_spec.Spec
module Line_lexer = Aved_spec.Line_lexer
open Aved_model

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Lexer *)

let test_lexer_basics () =
  let lines = Line_lexer.tokenize "a=1 b=2\n\n# comment\nc=3 \\\\ trailing" in
  Alcotest.(check int) "two lines" 2 (List.length lines);
  let first = List.hd lines in
  Alcotest.(check int) "lineno" 1 first.Line_lexer.lineno;
  Alcotest.(check (option string)) "a" (Some "1")
    (Line_lexer.find_value first "a");
  Alcotest.(check (option string)) "b" (Some "2")
    (Line_lexer.find_value first "b");
  let second = List.nth lines 1 in
  Alcotest.(check int) "comment stripped lineno" 4 second.Line_lexer.lineno;
  Alcotest.(check string) "leading key" "c" (Line_lexer.leading_key second)

let test_lexer_bracketed_values () =
  let lines =
    Line_lexer.tokenize "cost([inactive,active])=[2400 2640] x=5"
  in
  let line = List.hd lines in
  (match Line_lexer.find line "cost" with
  | Some { args = Some args; value; _ } ->
      Alcotest.(check string) "args" "[inactive,active]" args;
      Alcotest.(check string) "value keeps spaces" "[2400 2640]" value
  | Some { args = None; _ } | None -> Alcotest.fail "cost attr missing");
  Alcotest.(check (option string)) "following attr" (Some "5")
    (Line_lexer.find_value line "x")

let test_lexer_rest_of_line () =
  let lines =
    Line_lexer.tokenize
      "mperformance(storage_location=central)=if n <= 30 then max(10/cpi, \
       100%) else 2"
  in
  match Line_lexer.find (List.hd lines) "mperformance" with
  | Some { args = Some args; value; _ } ->
      Alcotest.(check string) "guard args" "storage_location=central" args;
      Alcotest.(check bool) "value runs to end of line" true
        (String.length value > 30)
  | Some { args = None; _ } | None -> Alcotest.fail "mperformance missing"

let test_lexer_errors () =
  let rejects text =
    match Line_lexer.tokenize text with
    | _ -> Alcotest.failf "expected lex error for %S" text
    | exception Line_lexer.Error _ -> ()
  in
  rejects "key";
  rejects "a=[1 2";
  rejects "cost(x=[1]"

(* ------------------------------------------------------------------ *)
(* Infrastructure parsing: the paper's Fig. 3 *)

let infra () = Aved.Experiments.infrastructure ()

let test_infra_counts () =
  let i = infra () in
  Alcotest.(check int) "components" 9 (List.length i.Infrastructure.components);
  Alcotest.(check int) "mechanisms" 3 (List.length i.Infrastructure.mechanisms);
  Alcotest.(check int) "resources" 9 (List.length i.Infrastructure.resources)

let test_infra_component_details () =
  let i = infra () in
  let machine_a = Infrastructure.component_exn i "machineA" in
  check_float "inactive cost" 2400. (Money.to_float machine_a.cost_inactive);
  check_float "active cost" 2640. (Money.to_float machine_a.cost_active);
  Alcotest.(check int) "two failure modes" 2
    (List.length machine_a.failure_modes);
  (match machine_a.failure_modes with
  | [ hard; soft ] ->
      Alcotest.(check string) "hard first" "hard" hard.mode_name;
      check_float "hard mtbf" 650. (Duration.days hard.mtbf);
      check_float "detect" 2. (Duration.minutes hard.detect_time);
      (match hard.repair with
      | Component.Repair_by_mechanism m ->
          Alcotest.(check string) "repair mechanism" "maintenanceA" m
      | Component.Fixed_repair _ -> Alcotest.fail "expected mechanism repair");
      check_float "soft mtbf" 75. (Duration.days soft.mtbf);
      (match soft.repair with
      | Component.Fixed_repair d ->
          check_float "soft repair 0" 0. (Duration.seconds d)
      | Component.Repair_by_mechanism _ -> Alcotest.fail "expected fixed")
  | _ -> Alcotest.fail "unexpected failure modes");
  let mpi = Infrastructure.component_exn i "mpi" in
  match mpi.loss_window with
  | Component.Loss_window_by_mechanism m ->
      Alcotest.(check string) "loss window via checkpoint" "checkpoint" m
  | Component.No_loss_window | Component.Fixed_loss_window _ ->
      Alcotest.fail "expected checkpoint loss window"

let test_infra_mechanism_details () =
  let i = infra () in
  let maint = Infrastructure.mechanism_exn i "maintenanceA" in
  Alcotest.(check int) "one parameter" 1 (List.length maint.parameters);
  let bronze = [ ("level", Mechanism.Enum_value "bronze") ] in
  let platinum = [ ("level", Mechanism.Enum_value "platinum") ] in
  check_float "bronze cost" 380. (Money.to_float (Mechanism.cost_of maint bronze));
  check_float "platinum cost" 1500.
    (Money.to_float (Mechanism.cost_of maint platinum));
  (match Mechanism.mttr_of maint bronze with
  | Some d -> check_float "bronze mttr" 38. (Duration.hours d)
  | None -> Alcotest.fail "expected mttr");
  let ckpt = Infrastructure.mechanism_exn i "checkpoint" in
  Alcotest.(check int) "two parameters" 2 (List.length ckpt.parameters);
  let settings = Mechanism.settings ckpt in
  (* 2 locations x interval grid; endpoints must be present. *)
  Alcotest.(check bool) "many settings" true (List.length settings > 250);
  let intervals =
    List.filter_map
      (fun s ->
        match List.assoc_opt "checkpoint_interval" s with
        | Some (Mechanism.Duration_value d) -> Some (Duration.minutes d)
        | Some (Mechanism.Enum_value _) | None -> None)
      settings
    |> List.sort_uniq Float.compare
  in
  check_float "interval lo" 1. (List.hd intervals);
  check_float "interval hi" 1440. (List.nth intervals (List.length intervals - 1))

let test_infra_resource_details () =
  let i = infra () in
  let rc = Infrastructure.resource_exn i "rC" in
  Alcotest.(check (list string)) "rC components"
    [ "machineA"; "linux"; "appserverA" ]
    (Resource.component_names rc);
  check_float "rC restart after linux failure" 240.
    (Duration.seconds (Resource.restart_time rc "linux"));
  check_float "reconfig" 0. (Duration.seconds rc.reconfig_time);
  Alcotest.(check (list string)) "rI startup order"
    [ "machineB"; "unix"; "mpi" ]
    (Resource.startup_order (Infrastructure.resource_exn i "rI"))

(* ------------------------------------------------------------------ *)
(* Service parsing: Figs. 4 and 5 *)

let test_ecommerce_service () =
  let s = Aved.Experiments.ecommerce () in
  Alcotest.(check string) "name" "ecommerce" s.Service.service_name;
  Alcotest.(check bool) "no job size" true (s.Service.job_size = None);
  Alcotest.(check int) "three tiers" 3 (List.length s.Service.tiers);
  let app =
    match Service.find_tier s "application" with
    | Some t -> t
    | None -> Alcotest.fail "application tier"
  in
  Alcotest.(check (list string)) "app options"
    [ "rC"; "rD"; "rE"; "rF" ]
    (List.map (fun (o : Service.resource_option) -> o.resource) app.options);
  let db =
    match Service.find_tier s "database" with
    | Some t -> t
    | None -> Alcotest.fail "database tier"
  in
  (match db.options with
  | [ rg ] ->
      Alcotest.(check bool) "static" true (rg.sizing = Service.Static);
      Alcotest.(check bool) "resource scope" true
        (rg.failure_scope = Service.Resource_scope);
      Alcotest.(check (list int)) "nActive" [ 1 ]
        (Int_range.to_list rg.n_active);
      check_float "const perf" 10000.
        (Aved_perf.Perf_function.eval rg.performance ~n:1)
  | _ -> Alcotest.fail "database options");
  Service.validate_against s (infra ())

let test_scientific_service () =
  let s = Aved.Experiments.scientific () in
  Alcotest.(check (option (float 1e-9))) "job size" (Some 10000.)
    s.Service.job_size;
  let comp =
    match Service.find_tier s "computation" with
    | Some t -> t
    | None -> Alcotest.fail "computation tier"
  in
  (match comp.options with
  | [ rh; ri ] ->
      Alcotest.(check bool) "tier scope" true
        (rh.failure_scope = Service.Tier_scope);
      check_float "rH perf at 1" (10. /. 1.004)
        (Aved_perf.Perf_function.eval rh.performance ~n:1);
      check_float "rI perf at 1" (100. /. 1.004)
        (Aved_perf.Perf_function.eval ri.performance ~n:1);
      (* Slowdowns: central at n<=30 is max(10/cpi, 1) for rH. *)
      let setting cpi loc =
        [
          ("storage_location", Mechanism.Enum_value loc);
          ( "checkpoint_interval",
            Mechanism.Duration_value (Duration.of_minutes cpi) );
        ]
      in
      let impact = List.assoc "checkpoint" rh.mech_performance in
      check_float "rH central overhead" 10.
        (Mech_impact.eval impact ~setting:(setting 1. "central") ~n:10);
      check_float "rH central large n" 20.
        (Mech_impact.eval impact ~setting:(setting 1. "central") ~n:60);
      check_float "rH peer" 20.
        (Mech_impact.eval impact ~setting:(setting 1. "peer") ~n:10);
      check_float "rH flat region" 1.
        (Mech_impact.eval impact ~setting:(setting 200. "peer") ~n:10)
  | _ -> Alcotest.fail "computation options");
  Service.validate_against s (infra ())

(* ------------------------------------------------------------------ *)
(* Errors *)

let expect_error_at line text parse =
  match parse text with
  | _ -> Alcotest.failf "expected spec error in %S" text
  | exception Line_lexer.Error e ->
      if line > 0 then Alcotest.(check int) "error line" line e.line

let test_infra_errors () =
  let p = Spec.infrastructure_of_string in
  expect_error_at 1 "component=c cost=abc" p;
  expect_error_at 1 "failure=soft mtbf=1d mttr=0" p;
  expect_error_at 2 "component=c cost=0\nfailure=soft mttr=0" p;
  expect_error_at 2 "mechanism=m\ncost(level)=[1 2]" p;
  expect_error_at 0 "mechanism=m\nparam=level range=[a,b]" p (* no cost *);
  expect_error_at 0
    "component=c cost=0\nresource=r\ncomponent=ghost depend=null" p;
  expect_error_at 0
    "component=c cost=0\n\
     failure=soft mtbf=1d mttr=<nope>\n\
     resource=r\n\
     component=c depend=null" p

let test_service_errors () =
  let p = Spec.service_of_string in
  expect_error_at 0 "tier=web" p (* no application *);
  expect_error_at 1 "application=x jobsize=nope" p;
  expect_error_at 2 "application=x\nresource=rA nActive=[1]" p;
  expect_error_at 0 "application=x\ntier=web\nresource=rA nActive=[1]" p
    (* missing performance *);
  expect_error_at 4
    "application=x\ntier=web\nresource=rA nActive=[1] performance=1\n\
     mperformance=2" p

let test_load_cross_validation () =
  let dir = Filename.temp_file "aved" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    path
  in
  let infra_file = write "infra.spec" Aved.Experiments.infrastructure_spec in
  let service_file = write "svc.spec" Aved.Experiments.ecommerce_spec in
  let _infra, service = Spec.load ~infra_file ~service_file in
  Alcotest.(check string) "loaded" "ecommerce" service.Service.service_name;
  (* A service referencing an unknown resource must be rejected. *)
  let bad =
    write "bad.spec"
      "application=x\ntier=t\nresource=ghost nActive=[1] performance=1"
  in
  match Spec.load ~infra_file ~service_file:bad with
  | _ -> Alcotest.fail "expected cross-validation failure"
  | exception Line_lexer.Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Writer round trip *)

let reserialize_infra text =
  Aved_spec.Spec_writer.infrastructure_to_string
    (Spec.infrastructure_of_string text)

let reserialize_service text =
  Aved_spec.Spec_writer.service_to_string (Spec.service_of_string text)

let test_writer_infra_roundtrip () =
  (* Serializing, parsing and serializing again must reach a fixpoint,
     and the reparsed model must behave identically. *)
  let once = reserialize_infra Aved.Experiments.infrastructure_spec in
  let twice = reserialize_infra once in
  Alcotest.(check string) "fixpoint" once twice;
  let original = Aved.Experiments.infrastructure () in
  let reparsed = Spec.infrastructure_of_string once in
  Alcotest.(check int) "components survive"
    (List.length original.Infrastructure.components)
    (List.length reparsed.Infrastructure.components);
  let machine = Infrastructure.component_exn reparsed "machineA" in
  check_float "costs survive" 2640. (Money.to_float machine.cost_active);
  let maint = Infrastructure.mechanism_exn reparsed "maintenanceA" in
  (match Mechanism.mttr_of maint [ ("level", Mechanism.Enum_value "gold") ] with
  | Some d -> check_float "mttr table survives" 8. (Duration.hours d)
  | None -> Alcotest.fail "mttr lost");
  let ckpt = Infrastructure.mechanism_exn reparsed "checkpoint" in
  Alcotest.(check int) "geometric range survives"
    (List.length (Mechanism.settings (Infrastructure.mechanism_exn original "checkpoint")))
    (List.length (Mechanism.settings ckpt))

let test_writer_service_roundtrip () =
  List.iter
    (fun text ->
      let once = reserialize_service text in
      let twice = reserialize_service once in
      Alcotest.(check string) "fixpoint" once twice;
      let original = Spec.service_of_string text in
      let reparsed = Spec.service_of_string once in
      Alcotest.(check int) "tiers survive"
        (List.length original.Service.tiers)
        (List.length reparsed.Service.tiers);
      Alcotest.(check (option (float 1e-9))) "job size survives"
        original.Service.job_size reparsed.Service.job_size)
    [ Aved.Experiments.ecommerce_spec; Aved.Experiments.scientific_spec ]

let test_writer_preserves_slowdowns () =
  let reparsed =
    Spec.service_of_string
      (reserialize_service Aved.Experiments.scientific_spec)
  in
  let tier =
    match Service.find_tier reparsed "computation" with
    | Some t -> t
    | None -> Alcotest.fail "computation tier lost"
  in
  let rh = List.hd tier.options in
  let impact = List.assoc "checkpoint" rh.mech_performance in
  let setting =
    [
      ("storage_location", Mechanism.Enum_value "central");
      ( "checkpoint_interval",
        Mechanism.Duration_value (Duration.of_minutes 1.) );
    ]
  in
  check_float "slowdown survives" 10.
    (Mech_impact.eval impact ~setting ~n:10)

let () =
  Alcotest.run "spec"
    [
      ( "lexer",
        [
          Alcotest.test_case "basics" `Quick test_lexer_basics;
          Alcotest.test_case "bracketed values" `Quick
            test_lexer_bracketed_values;
          Alcotest.test_case "rest-of-line values" `Quick
            test_lexer_rest_of_line;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "fig3",
        [
          Alcotest.test_case "counts" `Quick test_infra_counts;
          Alcotest.test_case "components" `Quick test_infra_component_details;
          Alcotest.test_case "mechanisms" `Quick test_infra_mechanism_details;
          Alcotest.test_case "resources" `Quick test_infra_resource_details;
        ] );
      ( "fig4-fig5",
        [
          Alcotest.test_case "e-commerce" `Quick test_ecommerce_service;
          Alcotest.test_case "scientific" `Quick test_scientific_service;
        ] );
      ( "writer",
        [
          Alcotest.test_case "infrastructure roundtrip" `Quick
            test_writer_infra_roundtrip;
          Alcotest.test_case "service roundtrip" `Quick
            test_writer_service_roundtrip;
          Alcotest.test_case "slowdowns preserved" `Quick
            test_writer_preserves_slowdowns;
        ] );
      ( "errors",
        [
          Alcotest.test_case "infrastructure" `Quick test_infra_errors;
          Alcotest.test_case "service" `Quick test_service_errors;
          Alcotest.test_case "load and cross-validate" `Quick
            test_load_cross_validation;
        ] );
    ]
