module Rng = Aved_sim.Rng
module Event_queue = Aved_sim.Event_queue
module Distribution = Aved_sim.Distribution

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create 8 in
  Alcotest.(check bool) "different seed differs" true
    (Rng.next_int64 a <> Rng.next_int64 c)

let test_rng_copy_and_split () =
  let a = Rng.create 1 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.next_int64 a) (Rng.next_int64 b);
  let master = Rng.create 2 in
  let s1 = Rng.split master and s2 = Rng.split master in
  Alcotest.(check bool) "splits differ" true
    (Rng.next_int64 s1 <> Rng.next_int64 s2)

let test_float_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 10000 do
    let u = Rng.float rng in
    if u < 0. || u >= 1. then Alcotest.failf "float out of range: %g" u
  done

let test_int_bounds () =
  let rng = Rng.create 4 in
  let seen = Array.make 6 0 in
  for _ = 1 to 6000 do
    let v = Rng.int rng 6 in
    seen.(v) <- seen.(v) + 1
  done;
  Array.iteri
    (fun i n ->
      if n < 700 then Alcotest.failf "bucket %d underpopulated: %d" i n)
    seen

let test_exponential_mean () =
  let rng = Rng.create 5 in
  let rate = 0.25 in
  let n = 50000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential rng ~rate
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f near %.3f" mean (1. /. rate))
    true
    (Float.abs (mean -. (1. /. rate)) < 0.1)

let test_gaussian_moments () =
  let rng = Rng.create 6 in
  let n = 50000 in
  let acc = ref 0. and acc2 = ref 0. in
  for _ = 1 to n do
    let x = Rng.gaussian rng ~mean:3. ~stddev:2. in
    acc := !acc +. x;
    acc2 := !acc2 +. (x *. x)
  done;
  let mean = !acc /. float_of_int n in
  let var = (!acc2 /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean" true (Float.abs (mean -. 3.) < 0.05);
  Alcotest.(check bool) "variance" true (Float.abs (var -. 4.) < 0.2)

let test_invalid_parameters () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Rng.exponential: rate 0") (fun () ->
      ignore (Rng.exponential rng ~rate:0.));
  Alcotest.check_raises "bad bound"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

(* ------------------------------------------------------------------ *)

let test_queue_ordering () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"events pop in time order" ~count:300
       QCheck2.Gen.(list_size (int_range 0 200) (float_range 0. 1000.))
       (fun times ->
         let q = Event_queue.create () in
         List.iteri (fun i t -> Event_queue.push q ~time:t i) times;
         let rec drain last acc =
           match Event_queue.pop q with
           | None -> List.rev acc
           | Some (t, _) ->
               if t < last then Alcotest.failf "out of order: %g after %g" t last;
               drain t (t :: acc)
         in
         let drained = drain Float.neg_infinity [] in
         List.length drained = List.length times))

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1. "first";
  Event_queue.push q ~time:1. "second";
  Event_queue.push q ~time:1. "third";
  let pop () =
    match Event_queue.pop q with Some (_, v) -> v | None -> Alcotest.fail "empty"
  in
  Alcotest.(check string) "fifo 1" "first" (pop ());
  Alcotest.(check string) "fifo 2" "second" (pop ());
  Alcotest.(check string) "fifo 3" "third" (pop ())

let test_queue_basics () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "peek none" true (Event_queue.peek_time q = None);
  Event_queue.push q ~time:5. ();
  Event_queue.push q ~time:2. ();
  Alcotest.(check int) "length" 2 (Event_queue.length q);
  Alcotest.(check bool) "peek min" true (Event_queue.peek_time q = Some 2.);
  Event_queue.clear q;
  Alcotest.(check bool) "cleared" true (Event_queue.is_empty q);
  Alcotest.check_raises "non-finite time"
    (Invalid_argument "Event_queue.push: time inf") (fun () ->
      Event_queue.push q ~time:Float.infinity ())

(* ------------------------------------------------------------------ *)

let test_distribution_means () =
  let rng = Rng.create 11 in
  let check_sampled_mean name dist tolerance =
    let n = 30000 in
    let acc = ref 0. in
    for _ = 1 to n do
      acc := !acc +. Distribution.sample dist rng
    done;
    let sampled = !acc /. float_of_int n in
    let expected = Distribution.mean dist in
    Alcotest.(check bool)
      (Printf.sprintf "%s sampled %.3f vs %.3f" name sampled expected)
      true
      (Float.abs (sampled -. expected) /. expected < tolerance)
  in
  check_sampled_mean "exponential" (Distribution.exponential_of_mean 5.) 0.05;
  check_sampled_mean "weibull"
    (Distribution.weibull_of_mean ~shape:1.5 ~mean:3.) 0.05;
  check_sampled_mean "lognormal"
    (Distribution.lognormal_of_mean ~sigma:0.5 ~mean:2.) 0.05;
  Alcotest.(check (float 1e-9))
    "deterministic" 4.
    (Distribution.sample (Distribution.Deterministic 4.) rng)

let test_distribution_mean_parameterization () =
  Alcotest.(check (float 1e-6))
    "weibull_of_mean" 7.
    (Distribution.mean (Distribution.weibull_of_mean ~shape:2. ~mean:7.));
  Alcotest.(check (float 1e-6))
    "lognormal_of_mean" 3.
    (Distribution.mean (Distribution.lognormal_of_mean ~sigma:1. ~mean:3.));
  Alcotest.(check (float 1e-6))
    "weibull shape 1 is exponential" 5.
    (Distribution.mean (Distribution.weibull_of_mean ~shape:1. ~mean:5.))

let () =
  Alcotest.run "sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "copy and split" `Quick test_rng_copy_and_split;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "int distribution" `Quick test_int_bounds;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "invalid parameters" `Quick
            test_invalid_parameters;
        ] );
      ( "event-queue",
        [
          Alcotest.test_case "ordering property" `Quick test_queue_ordering;
          Alcotest.test_case "FIFO tie-break" `Quick test_queue_fifo_ties;
          Alcotest.test_case "basics" `Quick test_queue_basics;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "sampled means" `Slow test_distribution_means;
          Alcotest.test_case "mean parameterization" `Quick
            test_distribution_mean_parameterization;
        ] );
    ]
