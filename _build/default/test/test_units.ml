module Duration = Aved_units.Duration
module Money = Aved_units.Money

let check_float = Alcotest.(check (float 1e-9))

let test_of_string_units () =
  check_float "seconds" 30. (Duration.seconds (Duration.of_string "30s"));
  check_float "minutes" 120. (Duration.seconds (Duration.of_string "2m"));
  check_float "hours" (38. *. 3600.) (Duration.seconds (Duration.of_string "38h"));
  check_float "days" (650. *. 86400.) (Duration.seconds (Duration.of_string "650d"));
  check_float "years" (365. *. 86400.) (Duration.seconds (Duration.of_string "1y"));
  check_float "bare number is seconds" 42. (Duration.seconds (Duration.of_string "42"));
  check_float "zero" 0. (Duration.seconds (Duration.of_string "0"));
  check_float "fractional" 5400. (Duration.seconds (Duration.of_string "1.5h"))

let test_of_string_invalid () =
  List.iter
    (fun text ->
      Alcotest.check_raises
        (Printf.sprintf "reject %S" text)
        (Invalid_argument (Printf.sprintf "Duration.of_string: %S" text))
        (fun () -> ignore (Duration.of_string text)))
    [ ""; "abc"; "-5m"; "3x"; "m" ]

let test_of_string_opt () =
  Alcotest.(check bool) "some" true (Duration.of_string_opt "2m" <> None);
  Alcotest.(check bool) "none" true (Duration.of_string_opt "oops" = None)

let test_to_string () =
  Alcotest.(check string) "650d" "650d" (Duration.to_string (Duration.of_days 650.));
  Alcotest.(check string) "2m" "2m" (Duration.to_string (Duration.of_minutes 2.));
  Alcotest.(check string) "zero" "0s" (Duration.to_string Duration.zero);
  Alcotest.(check string) "38h" "38h" (Duration.to_string (Duration.of_hours 38.))

let test_roundtrip () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"duration to_string/of_string roundtrip"
       ~count:500
       QCheck2.Gen.(map (fun v -> Float.abs v) (float_bound_exclusive 1e7))
       (fun seconds ->
         let d = Duration.of_seconds seconds in
         let d' = Duration.of_string (Duration.to_string d) in
         Float.abs (Duration.seconds d -. Duration.seconds d')
         <= 1e-6 *. Float.max 1. seconds))

let test_arithmetic () =
  let a = Duration.of_minutes 3. and b = Duration.of_minutes 1. in
  check_float "add" 240. (Duration.seconds (Duration.add a b));
  check_float "sub" 120. (Duration.seconds (Duration.sub a b));
  check_float "sub saturates" 0. (Duration.seconds (Duration.sub b a));
  check_float "scale" 360. (Duration.seconds (Duration.scale 2. a));
  check_float "ratio" 3. (Duration.ratio a b);
  Alcotest.check_raises "ratio by zero" Division_by_zero (fun () ->
      ignore (Duration.ratio a Duration.zero));
  Alcotest.(check bool) "min" true (Duration.equal b (Duration.min a b));
  Alcotest.(check bool) "max" true (Duration.equal a (Duration.max a b));
  Alcotest.(check bool) "compare" true (Duration.compare a b > 0)

let test_unit_conversions () =
  check_float "minutes" 1.5 (Duration.minutes (Duration.of_seconds 90.));
  check_float "hours" 0.5 (Duration.hours (Duration.of_minutes 30.));
  check_float "days" 2. (Duration.days (Duration.of_hours 48.));
  check_float "years" 1. (Duration.years (Duration.of_days 365.))

let test_invalid_construction () =
  Alcotest.check_raises "negative" (Invalid_argument "Duration.of_seconds: -1")
    (fun () -> ignore (Duration.of_seconds (-1.)));
  Alcotest.check_raises "nan" (Invalid_argument "Duration.of_seconds: nan")
    (fun () -> ignore (Duration.of_seconds Float.nan));
  Alcotest.check_raises "scale negative" (Invalid_argument "Duration.scale: -2")
    (fun () -> ignore (Duration.scale (-2.) (Duration.of_seconds 1.)))

let test_money () =
  let a = Money.of_float 100. and b = Money.of_float 40. in
  check_float "add" 140. (Money.to_float (Money.add a b));
  check_float "sub" 60. (Money.to_float (Money.sub a b));
  check_float "sub saturates" 0. (Money.to_float (Money.sub b a));
  check_float "sum" 240. (Money.to_float (Money.sum [ a; b; a ]));
  check_float "scale" 200. (Money.to_float (Money.scale 2. a));
  Alcotest.(check bool) "le" true Money.(b <= a);
  Alcotest.(check bool) "lt" true Money.(b < a);
  Alcotest.(check bool) "min" true (Money.equal b (Money.min a b));
  Alcotest.(check string) "integer print" "100" (Money.to_string a);
  Alcotest.(check string) "cents print" "12.34" (Money.to_string (Money.of_float 12.34));
  Alcotest.check_raises "negative" (Invalid_argument "Money.of_float: -3")
    (fun () -> ignore (Money.of_float (-3.)))

let () =
  Alcotest.run "units"
    [
      ( "duration",
        [
          Alcotest.test_case "of_string units" `Quick test_of_string_units;
          Alcotest.test_case "of_string invalid" `Quick test_of_string_invalid;
          Alcotest.test_case "of_string_opt" `Quick test_of_string_opt;
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "roundtrip property" `Quick test_roundtrip;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic;
          Alcotest.test_case "conversions" `Quick test_unit_conversions;
          Alcotest.test_case "invalid construction" `Quick
            test_invalid_construction;
        ] );
      ("money", [ Alcotest.test_case "operations" `Quick test_money ]);
    ]
