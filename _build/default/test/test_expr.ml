module Expr = Aved_expr.Expr

let check_float = Alcotest.(check (float 1e-9))
let eval_n text bindings = Expr.eval_alist (Expr.of_string text) bindings

let test_basic_arithmetic () =
  check_float "addition" 5. (eval_n "2+3" []);
  check_float "precedence" 14. (eval_n "2+3*4" []);
  check_float "left assoc sub" 5. (eval_n "10-2-3" []);
  check_float "left assoc div" 2. (eval_n "12/3/2" []);
  check_float "parens" 20. (eval_n "(2+3)*4" []);
  check_float "unary minus" (-7.) (eval_n "-7" []);
  check_float "double negative" 7. (eval_n "--7" []);
  check_float "neg in product" (-6.) (eval_n "2*-3" [])

let test_percent () =
  check_float "100%" 1. (eval_n "100%" []);
  check_float "50%" 0.5 (eval_n "50%" []);
  check_float "mixed" 1.5 (eval_n "100% + 50%" [])

let test_variables () =
  check_float "simple" 400. (eval_n "200*n" [ ("n", 2.) ]);
  check_float "table1 rH" (10. /. 1.004)
    (eval_n "(10*n)/(1+0.004*n)" [ ("n", 1.) ]);
  Alcotest.check_raises "unbound" (Expr.Unbound_variable "m") (fun () ->
      ignore (eval_n "m+1" [ ("n", 2.) ]))

let test_functions () =
  check_float "max picks larger" 10. (eval_n "max(10/cpi, 100%)" [ ("cpi", 1.) ]);
  check_float "max floor" 1. (eval_n "max(10/cpi, 100%)" [ ("cpi", 60.) ]);
  check_float "min" 2. (eval_n "min(2, 5)" []);
  check_float "exp" (Float.exp 1.) (eval_n "exp(1)" []);
  check_float "sqrt" 3. (eval_n "sqrt(9)" []);
  check_float "pow" 8. (eval_n "pow(2, 3)" []);
  check_float "floor" 2. (eval_n "floor(2.9)" []);
  check_float "ceil" 3. (eval_n "ceil(2.1)" []);
  check_float "abs" 4. (eval_n "abs(0-4)" [])

let test_conditional () =
  let table1_rh_central =
    "if n <= 30 then max(10/cpi, 100%) else max(n/(3*cpi), 100%)"
  in
  check_float "then branch" 10.
    (eval_n table1_rh_central [ ("n", 30.); ("cpi", 1.) ]);
  check_float "else branch" 20.
    (eval_n table1_rh_central [ ("n", 60.); ("cpi", 1.) ]);
  check_float "else floor" 1.
    (eval_n table1_rh_central [ ("n", 60.); ("cpi", 1000.) ]);
  check_float "strict lt" 1. (eval_n "if 2 < 2 then 0 else 1" []);
  check_float "ge" 0. (eval_n "if 2 >= 2 then 0 else 1" []);
  check_float "eq" 0. (eval_n "if 2 == 2 then 0 else 1" []);
  check_float "ne" 1. (eval_n "if 2 != 2 then 0 else 1" [])

let test_parse_errors () =
  let fails text =
    match Expr.of_string text with
    | _ -> Alcotest.failf "expected parse error for %S" text
    | exception Expr.Parse_error _ -> ()
  in
  List.iter fails
    [ ""; "2+"; "(2"; "foo(1)"; "max(1)"; "min(1,2,3)"; "2 2"; "if 1 then 2";
      "2 $ 3" ];
  Alcotest.(check bool) "of_string_opt none" true
    (Expr.of_string_opt "2+" = None);
  Alcotest.(check bool) "of_string_opt some" true
    (Expr.of_string_opt "2+2" <> None)

let test_error_positions () =
  (match Expr.of_string "1 + $" with
  | _ -> Alcotest.fail "expected error"
  | exception Expr.Parse_error { position; _ } ->
      Alcotest.(check int) "position of bad char" 4 position);
  match Expr.of_string "foo(1)" with
  | _ -> Alcotest.fail "expected error"
  | exception Expr.Parse_error { position; _ } ->
      Alcotest.(check int) "position of unknown function" 0 position

let test_variables_listing () =
  Alcotest.(check (list string))
    "sorted unique" [ "cpi"; "n" ]
    (Expr.variables
       (Expr.of_string "if n <= 30 then max(10/cpi, 1) else n/(3*cpi)"))

let test_constructors () =
  let e = Expr.if_ Expr.Le (Expr.var "n") (Expr.const 30.)
      ~then_:(Expr.max_ (Expr.div (Expr.const 10.) (Expr.var "cpi")) (Expr.const 1.))
      ~else_:(Expr.const 2.)
  in
  check_float "built expression" 10.
    (Expr.eval_alist e [ ("n", 10.); ("cpi", 1.) ]);
  Alcotest.check_raises "unknown function"
    (Invalid_argument "Expr.apply: unknown function \"frob\"") (fun () ->
      ignore (Expr.apply "frob" [ Expr.const 1. ]));
  Alcotest.check_raises "bad arity"
    (Invalid_argument "Expr.apply: min expects 2 argument(s), got 1")
    (fun () -> ignore (Expr.apply "min" [ Expr.const 1. ]))

(* Random ASTs for the print/parse roundtrip. *)
let gen_expr =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          let leaf =
            oneof
              [
                map (fun v -> Expr.const (Float.abs v)) (float_bound_exclusive 1000.);
                oneofl [ Expr.var "n"; Expr.var "cpi"; Expr.var "x" ];
              ]
          in
          if size <= 1 then leaf
          else
            let sub = self (size / 2) in
            oneof
              [
                leaf;
                map2 Expr.add sub sub;
                map2 Expr.sub sub sub;
                map2 Expr.mul sub sub;
                map2 Expr.div sub sub;
                map Expr.neg sub;
                map2 Expr.min_ sub sub;
                map2 Expr.max_ sub sub;
                map2
                  (fun a b ->
                    Expr.if_ Expr.Lt a b ~then_:a ~else_:b)
                  sub sub;
              ])
        (min size 8))

let test_roundtrip_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"to_string/of_string roundtrip" ~count:500
       gen_expr (fun e ->
         let printed = Expr.to_string e in
         match Expr.of_string printed with
         | parsed -> Expr.equal e parsed
         | exception Expr.Parse_error _ -> false))

let test_eval_consistency_property () =
  (* Printing then parsing must preserve semantics, not just syntax. *)
  let bindings = [ ("n", 17.); ("cpi", 3.5); ("x", 0.25) ] in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"roundtrip preserves evaluation" ~count:300
       gen_expr (fun e ->
         let v1 = Expr.eval_alist e bindings in
         let v2 = Expr.eval_alist (Expr.of_string (Expr.to_string e)) bindings in
         (Float.is_nan v1 && Float.is_nan v2) || v1 = v2))

let () =
  Alcotest.run "expr"
    [
      ( "parse-eval",
        [
          Alcotest.test_case "arithmetic" `Quick test_basic_arithmetic;
          Alcotest.test_case "percent literals" `Quick test_percent;
          Alcotest.test_case "variables" `Quick test_variables;
          Alcotest.test_case "functions" `Quick test_functions;
          Alcotest.test_case "conditionals" `Quick test_conditional;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "error positions" `Quick test_error_positions;
          Alcotest.test_case "variables listing" `Quick test_variables_listing;
          Alcotest.test_case "constructors" `Quick test_constructors;
        ] );
      ( "properties",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_property;
          Alcotest.test_case "eval consistency" `Quick
            test_eval_consistency_property;
        ] );
    ]
