(* Tests for the observability layer: the rolling SLO window (budget
   exhaustion and recovery), trace-id generation, Prometheus text
   exposition, and the request-lifecycle log record. *)

module Telemetry = Aved_telemetry.Telemetry
module Rolling = Aved_telemetry.Rolling
module Slo = Aved_obs.Slo
module Trace_id = Aved_obs.Trace_id
module Prometheus = Aved_obs.Prometheus
module Lifecycle = Aved_obs.Lifecycle
module Json = Aved_explain.Json

(* ------------------------------------------------------------------ *)
(* Rolling window *)

let test_rolling_counts () =
  let r = Rolling.create ~window_s:60. ~buckets:6 in
  let t0 = 1000. in
  Rolling.record r ~now:t0 ~good:true;
  Rolling.record r ~now:(t0 +. 1.) ~good:true;
  Rolling.record r ~now:(t0 +. 2.) ~good:false;
  let { Rolling.good; bad } = Rolling.totals r ~now:(t0 +. 3.) in
  Alcotest.(check int) "good" 2 good;
  Alcotest.(check int) "bad" 1 bad

let test_rolling_expiry () =
  let r = Rolling.create ~window_s:60. ~buckets:6 in
  let t0 = 1000. in
  Rolling.record r ~now:t0 ~good:false;
  (* Still visible within the window... *)
  Alcotest.(check int) "inside window" 1 (Rolling.totals r ~now:(t0 +. 30.)).Rolling.bad;
  (* ...gone after the window has fully rolled past it. *)
  Alcotest.(check int) "expired" 0 (Rolling.totals r ~now:(t0 +. 120.)).Rolling.bad;
  (* And the recycled bucket does not resurrect old counts. *)
  Rolling.record r ~now:(t0 +. 120.) ~good:true;
  let { Rolling.good; bad } = Rolling.totals r ~now:(t0 +. 121.) in
  Alcotest.(check int) "fresh good" 1 good;
  Alcotest.(check int) "no resurrection" 0 bad

let test_rolling_validation () =
  Alcotest.check_raises "zero window" (Invalid_argument "Rolling.create: window_s must be positive")
    (fun () -> ignore (Rolling.create ~window_s:0. ~buckets:6));
  Alcotest.check_raises "zero buckets" (Invalid_argument "Rolling.create: buckets must be >= 1")
    (fun () -> ignore (Rolling.create ~window_s:60. ~buckets:0))

(* ------------------------------------------------------------------ *)
(* SLO tracker *)

let slo_config = { Slo.target = 0.9; latency_budget_s = 0.05; window_s = 60. }

let test_slo_good_window () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for i = 0 to 99 do
    Slo.record slo ~now:(t0 +. float_of_int i /. 10.) ~ok:true ~latency_s:0.01
  done;
  let s = Slo.snapshot slo ~now:(t0 +. 10.) in
  Alcotest.(check int) "total" 100 s.Slo.total;
  Alcotest.(check (float 1e-9)) "success" 1.0 s.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "burn" 0.0 s.Slo.burn_rate;
  Alcotest.(check (float 1e-9)) "budget intact" 1.0 s.Slo.budget_remaining;
  Alcotest.(check bool) "met" true s.Slo.met

(* Budget exhaustion: with a 90% target the error budget is 10% of the
   window. 80 good + 20 bad is a 20% error rate — twice the budget, so
   burn rate 2.0, budget_remaining -1.0, objective missed. *)
let test_slo_budget_exhaustion () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for _ = 1 to 80 do
    Slo.record slo ~now:t0 ~ok:true ~latency_s:0.01
  done;
  for i = 1 to 20 do
    (* Mix the failure modes: errors, slow successes, and sheds. *)
    if i mod 3 = 0 then Slo.record_failure slo ~now:t0
    else if i mod 3 = 1 then Slo.record slo ~now:t0 ~ok:false ~latency_s:0.01
    else Slo.record slo ~now:t0 ~ok:true ~latency_s:0.2
  done;
  let s = Slo.snapshot slo ~now:(t0 +. 1.) in
  Alcotest.(check int) "total" 100 s.Slo.total;
  Alcotest.(check int) "bad" 20 s.Slo.bad;
  Alcotest.(check (float 1e-9)) "success" 0.8 s.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "burn rate" 2.0 s.Slo.burn_rate;
  Alcotest.(check (float 1e-9)) "budget overspent" (-1.0) s.Slo.budget_remaining;
  Alcotest.(check bool) "missed" false s.Slo.met

(* Recovery: the bad burst ages out of the rolling window while fresh
   good traffic keeps arriving, so the budget replenishes without any
   reset. *)
let test_slo_recovery () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for _ = 1 to 20 do
    Slo.record_failure slo ~now:t0
  done;
  let burning = Slo.snapshot slo ~now:(t0 +. 1.) in
  Alcotest.(check bool) "burning" false burning.Slo.met;
  Alcotest.(check bool) "budget gone" true
    (burning.Slo.budget_remaining < 0.);
  (* 90 seconds later the burst is outside the 60 s window. *)
  for i = 0 to 49 do
    Slo.record slo ~now:(t0 +. 90. +. float_of_int i /. 10.) ~ok:true
      ~latency_s:0.01
  done;
  let healed = Slo.snapshot slo ~now:(t0 +. 95.) in
  Alcotest.(check int) "burst aged out" 0 healed.Slo.bad;
  Alcotest.(check (float 1e-9)) "success back to 1" 1.0
    healed.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "budget recovered" 1.0
    healed.Slo.budget_remaining;
  Alcotest.(check bool) "met again" true healed.Slo.met

let test_slo_empty_window_passes () =
  let slo = Slo.create ~buckets:6 slo_config in
  let s = Slo.snapshot slo ~now:1000. in
  Alcotest.(check int) "empty" 0 s.Slo.total;
  Alcotest.(check (float 1e-9)) "success 1.0" 1.0 s.Slo.success_rate;
  Alcotest.(check bool) "met" true s.Slo.met

let test_slo_validate_config () =
  let bad cfg = match Slo.validate_config cfg with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "default valid" false (bad Slo.default_config);
  Alcotest.(check bool) "target 0" true
    (bad { slo_config with Slo.target = 0. });
  Alcotest.(check bool) "target > 1" true
    (bad { slo_config with Slo.target = 1.5 });
  Alcotest.(check bool) "negative latency" true
    (bad { slo_config with Slo.latency_budget_s = -1. });
  Alcotest.(check bool) "zero window" true
    (bad { slo_config with Slo.window_s = 0. })

(* ------------------------------------------------------------------ *)
(* Trace ids *)

let test_trace_id_format_and_uniqueness () =
  let seen = Hashtbl.create 4096 in
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  for _ = 1 to 10_000 do
    let id = Trace_id.fresh () in
    Alcotest.(check int) "16 chars" 16 (String.length id);
    Alcotest.(check bool) "lowercase hex" true (String.for_all is_hex id);
    if Hashtbl.mem seen id then Alcotest.failf "duplicate trace id %s" id;
    Hashtbl.add seen id ()
  done

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

(* A minimal text-format parser strong enough to catch what CI also
   validates: every non-comment line is [name{labels} value], every
   family has exactly one TYPE header, histogram buckets are cumulative
   and end at +Inf = count. *)
let parse_exposition text =
  let types = Hashtbl.create 16 in
  let samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then (
           match String.split_on_char ' ' line with
           | [ "#"; "TYPE"; name; kind ] ->
               if Hashtbl.mem types name then
                 Alcotest.failf "duplicate TYPE for %s" name;
               Hashtbl.add types name kind
           | _ -> Alcotest.failf "malformed TYPE line %S" line)
         else if line.[0] = '#' then ()
         else
           match String.index_opt line ' ' with
           | None -> Alcotest.failf "malformed sample line %S" line
           | Some i ->
               let name_part = String.sub line 0 i in
               let value_part =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               let value =
                 if value_part = "+Inf" then infinity
                 else
                   match float_of_string_opt value_part with
                   | Some v -> v
                   | None -> Alcotest.failf "bad sample value %S" value_part
               in
               samples := (name_part, value) :: !samples);
  (types, List.rev !samples)

let metric_name_ok name =
  let base =
    match String.index_opt name '{' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  String.length base > 0
  && (match base.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       base

let test_prometheus_render () =
  let c = Telemetry.Counter.make "test.prom.requests" in
  let g = Telemetry.Gauge.make "test.prom.depth" in
  let h = Telemetry.Histogram.make "test.prom.latency.seconds" in
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall @@ fun () ->
  Telemetry.Counter.add c 7;
  Telemetry.Gauge.set g 3.5;
  List.iter (Telemetry.Histogram.observe h) [ 0.001; 0.004; 0.02; 1.5 ];
  let text =
    Prometheus.render ~extra_counters:[ ("test.prom.extra", 11) ]
      ~extra_gauges:[ ("test.prom.budget", 0.25) ]
      t
  in
  Alcotest.(check bool) "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  let types, samples = parse_exposition text in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (Printf.sprintf "name %S legal" name) true
        (metric_name_ok name))
    samples;
  Alcotest.(check (option string)) "counter typed" (Some "counter")
    (Hashtbl.find_opt types "test_prom_requests");
  Alcotest.(check (option string)) "gauge typed" (Some "gauge")
    (Hashtbl.find_opt types "test_prom_depth");
  Alcotest.(check (option string)) "histogram typed" (Some "histogram")
    (Hashtbl.find_opt types "test_prom_latency_seconds");
  Alcotest.(check (option string)) "extra counter typed" (Some "counter")
    (Hashtbl.find_opt types "test_prom_extra");
  let value name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "missing sample %s" name
  in
  Alcotest.(check (float 1e-9)) "counter value" 7. (value "test_prom_requests");
  Alcotest.(check (float 1e-9)) "gauge value" 3.5 (value "test_prom_depth");
  Alcotest.(check (float 1e-9)) "extra counter" 11. (value "test_prom_extra");
  Alcotest.(check (float 1e-9)) "extra gauge" 0.25 (value "test_prom_budget");
  (* Histogram series: cumulative buckets, +Inf bucket equals count. *)
  let buckets =
    List.filter
      (fun (name, _) ->
        String.length name > 25
        && String.sub name 0 25 = "test_prom_latency_seconds"
        && String.contains name '{')
      samples
  in
  Alcotest.(check bool) "has buckets" true (List.length buckets > 1);
  let counts = List.map snd buckets in
  Alcotest.(check bool) "buckets cumulative" true
    (List.for_all2 ( <= ) counts
       (List.tl counts @ [ List.nth counts (List.length counts - 1) ]));
  Alcotest.(check (float 1e-9)) "count" 4.
    (value "test_prom_latency_seconds_count");
  Alcotest.(check bool) "+Inf bucket present" true
    (List.exists
       (fun (name, v) ->
         String.length name > 4
         && String.sub name (String.length name - 5) 5 = "Inf\"}"
         && v = 4.)
       buckets);
  Alcotest.(check (float 1e-6)) "sum" 1.525
    (value "test_prom_latency_seconds_sum")

let test_prometheus_sanitize () =
  Alcotest.(check string) "dots" "server_queue_depth"
    (Prometheus.sanitize_name "server.queue.depth");
  Alcotest.(check string) "leading digit" "_9lives"
    (Prometheus.sanitize_name "9lives");
  Alcotest.(check string) "parens" "evaluated_web_"
    (Prometheus.sanitize_name "evaluated(web)")

(* ------------------------------------------------------------------ *)
(* Lifecycle records *)

let test_lifecycle_record () =
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall @@ fun () ->
  let lc =
    Lifecycle.start ~trace_id:"00000000deadbeef" ~verb:"design" ~conn_id:3
      ~req_id:(Json.Int 7)
      ~now:(Unix.gettimeofday ())
      ()
  in
  List.iter
    (fun stage -> Lifecycle.stamp lc stage)
    [ "parse"; "admit"; "queue"; "handle"; "encode"; "write" ];
  let record = Lifecycle.finish lc ~outcome:"ok" ~slow_threshold_s:10. in
  let fields = match record with Json.Obj f -> f | _ -> [] in
  Alcotest.(check bool) "is object" true (fields <> []);
  let str name =
    match List.assoc_opt name fields with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "field %S missing or not a string" name
  in
  Alcotest.(check string) "trace id" "00000000deadbeef" (str "trace_id");
  Alcotest.(check string) "verb" "design" (str "verb");
  Alcotest.(check string) "outcome" "ok" (str "outcome");
  (match List.assoc_opt "slow" fields with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "slow flag should be false under a 10 s threshold");
  let stages =
    match List.assoc_opt "stages" fields with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "stages missing"
  in
  Alcotest.(check int) "six stages" 6 (List.length stages);
  let ends =
    List.map
      (fun s ->
        match s with
        | Json.Obj f -> (
            match List.assoc_opt "end_s" f with
            | Some (Json.Float e) -> e
            | _ -> Alcotest.fail "stage missing end_s")
        | _ -> Alcotest.fail "stage not an object")
      stages
  in
  Alcotest.(check bool) "monotone stage timestamps" true
    (List.for_all2 ( <= ) ends (List.tl ends @ [ infinity ]));
  (* Stage durations partition the end-to-end latency. *)
  let stage_ms =
    List.fold_left
      (fun acc s ->
        match s with
        | Json.Obj f -> (
            match List.assoc_opt "ms" f with
            | Some (Json.Float ms) -> acc +. ms
            | _ -> acc)
        | _ -> acc)
      0. stages
  in
  let total_ms =
    match List.assoc_opt "total_ms" fields with
    | Some (Json.Float ms) -> ms
    | _ -> Alcotest.fail "total_ms missing"
  in
  Alcotest.(check (float 1e-6)) "stages sum to total" total_ms stage_ms;
  (* The per-verb and per-stage histograms were fed. *)
  let histogram_count name =
    match List.assoc_opt name (Telemetry.histograms t) with
    | Some s -> s.Telemetry.Histogram.count
    | None -> 0
  in
  Alcotest.(check int) "verb histogram observed" 1
    (histogram_count "server.verb.design.seconds");
  Alcotest.(check int) "stage histogram observed" 1
    (histogram_count "server.stage.design.handle.seconds")

(* ------------------------------------------------------------------ *)
(* Trace collectors: span trees, capacity, sampling, ring, exemplars *)

module Trace = Telemetry.Trace
module Trace_store = Aved_obs.Trace_store
module Exemplars = Aved_obs.Exemplars
module Process_stats = Aved_obs.Process_stats

let span_ids spans = List.map (fun s -> s.Trace.id) spans

let check_parents_resolve spans =
  let ids = span_ids spans in
  List.iter
    (fun s ->
      if s.Trace.parent <> 0 && not (List.mem s.Trace.parent ids) then
        Alcotest.failf "span %d (%s) has unresolvable parent %d" s.Trace.id
          s.Trace.name s.Trace.parent)
    spans

let test_trace_tree () =
  let tr = Trace.create ~trace_id:"cafe" () in
  let root = Trace.alloc_span_id tr in
  Trace.with_context (Some (Trace.context tr ~parent:root)) (fun () ->
      Telemetry.with_trace_span "outer" (fun () ->
          Telemetry.with_trace_span "inner" (fun () -> ());
          Telemetry.with_trace_span "inner2" (fun () -> ())));
  Alcotest.(check (option bool))
    "context restored" None
    (Option.map (fun _ -> true) (Trace.current ()));
  let spans = Trace.spans tr in
  Alcotest.(check int) "three spans" 3 (List.length spans);
  let find name = List.find (fun s -> s.Trace.name = name) spans in
  let outer = find "outer" and inner = find "inner" and inner2 = find "inner2" in
  Alcotest.(check int) "outer under root" root outer.Trace.parent;
  Alcotest.(check int) "inner under outer" outer.Trace.id inner.Trace.parent;
  Alcotest.(check int) "inner2 under outer" outer.Trace.id inner2.Trace.parent;
  (* Durations nest: children start no earlier and end no later. *)
  List.iter
    (fun child ->
      Alcotest.(check bool) "child starts after parent" true
        (child.Trace.start_s >= outer.Trace.start_s);
      Alcotest.(check bool) "child ends before parent" true
        (child.Trace.start_s +. child.Trace.dur_s
        <= outer.Trace.start_s +. outer.Trace.dur_s +. 1e-9))
    [ inner; inner2 ];
  Alcotest.(check bool) "children sum within parent" true
    (inner.Trace.dur_s +. inner2.Trace.dur_s <= outer.Trace.dur_s +. 1e-9);
  List.iter
    (fun s ->
      Alcotest.(check bool) "cpu nonnegative" true (s.Trace.cpu_s >= 0.);
      Alcotest.(check bool) "minor words nonnegative" true
        (s.Trace.minor_words >= 0.))
    spans;
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped tr)

let test_trace_capacity_drops_subtrees () =
  let tr = Trace.create ~capacity:3 ~trace_id:"feed" () in
  let root = Trace.alloc_span_id tr in
  Trace.with_context (Some (Trace.context tr ~parent:root)) (fun () ->
      for i = 1 to 10 do
        Telemetry.with_trace_span (Printf.sprintf "outer%d" i) (fun () ->
            Telemetry.with_trace_span "leaf" (fun () -> ()))
      done);
  (* The daemon's lifecycle records the root span at finish. *)
  Trace.record tr ~id:root ~parent:0 ~name:"request" ~start_s:0. ~dur_s:1.
    ~tid:0;
  let spans = Trace.spans tr in
  Alcotest.(check int) "capacity respected" 4 (List.length spans);
  Alcotest.(check int) "drops counted" 17 (Trace.dropped tr);
  (* Cells are claimed at entry, so retained spans always form complete
     chains back to the root: no orphan leaves from dropped parents. *)
  check_parents_resolve spans;
  (* A dropped parent must not leave a retained child: every leaf's
     parent is present. *)
  List.iter
    (fun s ->
      if s.Trace.name = "leaf" then
        Alcotest.(check bool) "leaf's parent retained" true
          (List.exists
             (fun p -> p.Trace.id = s.Trace.parent)
             spans))
    spans

let test_trace_record_bypasses_capacity () =
  let tr = Trace.create ~capacity:1 ~trace_id:"beef" () in
  Trace.with_context (Some (Trace.context tr ~parent:0)) (fun () ->
      Telemetry.with_trace_span "a" (fun () -> ());
      Telemetry.with_trace_span "b" (fun () -> ()));
  let root = Trace.alloc_span_id tr in
  Trace.record tr ~id:root ~parent:0 ~name:"request" ~start_s:0. ~dur_s:1.
    ~tid:0;
  (* The synthetic lifecycle span lands even though the cap is long
     gone; only the organically-entered span was bounded. *)
  let names = List.map (fun s -> s.Trace.name) (Trace.spans tr) in
  Alcotest.(check bool) "request span present" true
    (List.mem "request" names);
  Alcotest.(check int) "one organic span" 2 (List.length names)

let test_trace_sampling () =
  let id = "00000000deadbeef" in
  Alcotest.(check bool) "rate 1 samples" true (Trace_id.sampled id ~rate:1.);
  Alcotest.(check bool) "rate 0 never" false (Trace_id.sampled id ~rate:0.);
  Alcotest.(check bool) "nan never" false (Trace_id.sampled id ~rate:Float.nan);
  (* Deterministic per id: the decision is a pure function of the id,
     so reader threads and tests agree without shared state. *)
  let d = Trace_id.sampled id ~rate:0.5 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "stable" d (Trace_id.sampled id ~rate:0.5)
  done;
  let n = 20_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Trace_id.sampled (Trace_id.fresh ()) ~rate:0.3 then incr hits
  done;
  let fraction = float_of_int !hits /. float_of_int n in
  if fraction < 0.25 || fraction > 0.35 then
    Alcotest.failf "sampling rate 0.3 hit %.3f" fraction

let completed ~trace_id ~verb =
  {
    Trace_store.trace_id;
    verb;
    conn_id = 1;
    outcome = "ok";
    started_s = 100.;
    total_s = 0.5;
    spans = [];
    spans_dropped = 0;
    counters = [ ("markov.birth_death.solves", 3) ];
  }

let test_trace_store_ring () =
  let ring = Trace_store.create ~capacity:2 in
  Trace_store.add ring (completed ~trace_id:"aa" ~verb:"design");
  Trace_store.add ring (completed ~trace_id:"bb" ~verb:"explain");
  Alcotest.(check int) "two live" 2 (Trace_store.length ring);
  Trace_store.add ring (completed ~trace_id:"cc" ~verb:"check");
  Alcotest.(check int) "still two" 2 (Trace_store.length ring);
  Alcotest.(check int) "one eviction" 1 (Trace_store.evictions ring);
  Alcotest.(check bool) "oldest gone" true (Trace_store.find ring "aa" = None);
  (match Trace_store.find ring "cc" with
  | Some c -> Alcotest.(check string) "newest verb" "check" c.Trace_store.verb
  | None -> Alcotest.fail "newest trace missing");
  match Trace_store.to_json (completed ~trace_id:"dd" ~verb:"design") with
  | Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) (key ^ " present") true
            (List.mem_assoc key fields))
        [ "trace_id"; "verb"; "outcome"; "total_ms"; "spans"; "counters" ]
  | _ -> Alcotest.fail "to_json not an object"

let test_exemplar_store () =
  let ex = Exemplars.create () in
  Exemplars.observe ex ~metric:"server.request.seconds" ~trace_id:"t1"
    ~value:0.01 ~now:5.;
  let le = Telemetry.Histogram.bound_of_value 0.01 in
  (match Exemplars.find ex ~metric:"server.request.seconds" ~le with
  | Some { Exemplars.ex_trace_id; ex_value; _ } ->
      Alcotest.(check string) "id" "t1" ex_trace_id;
      Alcotest.(check (float 0.)) "value" 0.01 ex_value
  | None -> Alcotest.fail "exemplar not found");
  (* Latest wins within a bucket; other buckets are unaffected. *)
  Exemplars.observe ex ~metric:"server.request.seconds" ~trace_id:"t2"
    ~value:0.0101 ~now:6.;
  (match Exemplars.find ex ~metric:"server.request.seconds" ~le with
  | Some e -> Alcotest.(check string) "latest wins" "t2" e.Exemplars.ex_trace_id
  | None -> Alcotest.fail "exemplar vanished");
  Exemplars.observe ex ~metric:"server.request.seconds" ~trace_id:"t3"
    ~value:100. ~now:7.;
  Alcotest.(check int) "two buckets" 2 (Exemplars.count ex);
  match Exemplars.find ex ~metric:"other" ~le with
  | Some _ -> Alcotest.fail "wrong metric matched"
  | None -> ()

let test_prometheus_exemplars () =
  let t = Telemetry.create () in
  Telemetry.with_registry t (fun () ->
      Telemetry.Histogram.observe
        (Telemetry.Histogram.make "server.request.seconds")
        0.02);
  let ex = Exemplars.create () in
  Exemplars.observe ex ~metric:"server.request.seconds" ~trace_id:"abcd1234"
    ~value:0.02 ~now:9.;
  let body = Prometheus.render ~exemplars:ex t in
  let exemplar_line =
    List.find_opt
      (fun line ->
        let has_prefix p =
          String.length line >= String.length p
          && String.sub line 0 (String.length p) = p
        in
        has_prefix "server_request_seconds_bucket"
        && String.length line > 3
        &&
        let rec contains i =
          i + 3 <= String.length line
          && (String.sub line i 3 = " # " || contains (i + 1))
        in
        contains 0)
      (String.split_on_char '\n' body)
  in
  (match exemplar_line with
  | None -> Alcotest.fail "no exemplar on any bucket line"
  | Some line ->
      let is_sub sub =
        let n = String.length sub in
        let rec go i =
          i + n <= String.length line
          && (String.sub line i n = sub || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "exemplar labels trace id" true
        (is_sub "# {trace_id=\"abcd1234\"}"));
  (* A scraper that strips exemplars must see the plain exposition:
     drop everything from " # " and re-validate with the strict
     parser (cumulative buckets, one TYPE per family). *)
  let stripped =
    String.split_on_char '\n' body
    |> List.map (fun line ->
           let rec find i =
             if i + 3 > String.length line then None
             else if String.sub line i 3 = " # " then Some i
             else find (i + 1)
           in
           match find 0 with
           | Some i -> String.sub line 0 i
           | None -> line)
    |> String.concat "\n"
  in
  let _types, samples = parse_exposition stripped in
  Alcotest.(check bool) "stripped body parses" true (samples <> [])

let test_process_stats () =
  let cpu = Process_stats.cpu_seconds () in
  Alcotest.(check bool) "cpu nonnegative" true (cpu >= 0.);
  (match Process_stats.open_fds () with
  | Some fds -> Alcotest.(check bool) "some fds open" true (fds >= 3)
  | None -> ());
  match Process_stats.live_threads () with
  | Some n -> Alcotest.(check bool) "at least one thread" true (n >= 1)
  | None -> ()

(* Pool workers adopt the spawning request's context: spans recorded
   inside tasks land in the same trace, parented under the span that
   was ambient at the [map] call. *)
let test_trace_pool_propagation () =
  let pool = Aved_parallel.Pool.create ~jobs:2 in
  Fun.protect ~finally:(fun () -> Aved_parallel.Pool.shutdown pool)
  @@ fun () ->
  let tr = Trace.create ~trace_id:"00ddba11" () in
  let root = Trace.alloc_span_id tr in
  Trace.with_context (Some (Trace.context tr ~parent:root)) (fun () ->
      Telemetry.with_trace_span "fanout" (fun () ->
          ignore
            (Aved_parallel.Pool.map pool
               (fun i ->
                 Telemetry.with_trace_span (Printf.sprintf "task%d" i)
                   (fun () -> i * i))
               [ 1; 2; 3; 4 ])));
  Trace.record tr ~id:root ~parent:0 ~name:"request" ~start_s:0. ~dur_s:1.
    ~tid:0;
  let spans = Trace.spans tr in
  check_parents_resolve spans;
  let fanout = List.find (fun s -> s.Trace.name = "fanout") spans in
  let tasks =
    List.filter
      (fun s ->
        String.length s.Trace.name >= 4 && String.sub s.Trace.name 0 4 = "task")
      spans
  in
  Alcotest.(check int) "all tasks traced" 4 (List.length tasks);
  List.iter
    (fun s ->
      Alcotest.(check int) "task under fanout" fanout.Trace.id s.Trace.parent)
    tasks

let () =
  Alcotest.run "obs"
    [
      ( "rolling",
        [
          Alcotest.test_case "counts" `Quick test_rolling_counts;
          Alcotest.test_case "expiry" `Quick test_rolling_expiry;
          Alcotest.test_case "validation" `Quick test_rolling_validation;
        ] );
      ( "slo",
        [
          Alcotest.test_case "good window" `Quick test_slo_good_window;
          Alcotest.test_case "budget exhaustion" `Quick
            test_slo_budget_exhaustion;
          Alcotest.test_case "recovery" `Quick test_slo_recovery;
          Alcotest.test_case "empty window passes" `Quick
            test_slo_empty_window_passes;
          Alcotest.test_case "validate config" `Quick test_slo_validate_config;
        ] );
      ( "trace-id",
        [
          Alcotest.test_case "format and uniqueness" `Quick
            test_trace_id_format_and_uniqueness;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render" `Quick test_prometheus_render;
          Alcotest.test_case "sanitize" `Quick test_prometheus_sanitize;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "record" `Quick test_lifecycle_record ] );
      ( "trace",
        [
          Alcotest.test_case "span tree" `Quick test_trace_tree;
          Alcotest.test_case "capacity drops subtrees" `Quick
            test_trace_capacity_drops_subtrees;
          Alcotest.test_case "record bypasses capacity" `Quick
            test_trace_record_bypasses_capacity;
          Alcotest.test_case "sampling" `Quick test_trace_sampling;
          Alcotest.test_case "ring" `Quick test_trace_store_ring;
          Alcotest.test_case "pool propagation" `Quick
            test_trace_pool_propagation;
        ] );
      ( "exemplars",
        [
          Alcotest.test_case "store" `Quick test_exemplar_store;
          Alcotest.test_case "rendered" `Quick test_prometheus_exemplars;
        ] );
      ( "process",
        [ Alcotest.test_case "stats" `Quick test_process_stats ] );
    ]
