(* Tests for the observability layer: the rolling SLO window (budget
   exhaustion and recovery), trace-id generation, Prometheus text
   exposition, and the request-lifecycle log record. *)

module Telemetry = Aved_telemetry.Telemetry
module Rolling = Aved_telemetry.Rolling
module Slo = Aved_obs.Slo
module Trace_id = Aved_obs.Trace_id
module Prometheus = Aved_obs.Prometheus
module Lifecycle = Aved_obs.Lifecycle
module Json = Aved_explain.Json

(* ------------------------------------------------------------------ *)
(* Rolling window *)

let test_rolling_counts () =
  let r = Rolling.create ~window_s:60. ~buckets:6 in
  let t0 = 1000. in
  Rolling.record r ~now:t0 ~good:true;
  Rolling.record r ~now:(t0 +. 1.) ~good:true;
  Rolling.record r ~now:(t0 +. 2.) ~good:false;
  let { Rolling.good; bad } = Rolling.totals r ~now:(t0 +. 3.) in
  Alcotest.(check int) "good" 2 good;
  Alcotest.(check int) "bad" 1 bad

let test_rolling_expiry () =
  let r = Rolling.create ~window_s:60. ~buckets:6 in
  let t0 = 1000. in
  Rolling.record r ~now:t0 ~good:false;
  (* Still visible within the window... *)
  Alcotest.(check int) "inside window" 1 (Rolling.totals r ~now:(t0 +. 30.)).Rolling.bad;
  (* ...gone after the window has fully rolled past it. *)
  Alcotest.(check int) "expired" 0 (Rolling.totals r ~now:(t0 +. 120.)).Rolling.bad;
  (* And the recycled bucket does not resurrect old counts. *)
  Rolling.record r ~now:(t0 +. 120.) ~good:true;
  let { Rolling.good; bad } = Rolling.totals r ~now:(t0 +. 121.) in
  Alcotest.(check int) "fresh good" 1 good;
  Alcotest.(check int) "no resurrection" 0 bad

let test_rolling_validation () =
  Alcotest.check_raises "zero window" (Invalid_argument "Rolling.create: window_s must be positive")
    (fun () -> ignore (Rolling.create ~window_s:0. ~buckets:6));
  Alcotest.check_raises "zero buckets" (Invalid_argument "Rolling.create: buckets must be >= 1")
    (fun () -> ignore (Rolling.create ~window_s:60. ~buckets:0))

(* ------------------------------------------------------------------ *)
(* SLO tracker *)

let slo_config = { Slo.target = 0.9; latency_budget_s = 0.05; window_s = 60. }

let test_slo_good_window () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for i = 0 to 99 do
    Slo.record slo ~now:(t0 +. float_of_int i /. 10.) ~ok:true ~latency_s:0.01
  done;
  let s = Slo.snapshot slo ~now:(t0 +. 10.) in
  Alcotest.(check int) "total" 100 s.Slo.total;
  Alcotest.(check (float 1e-9)) "success" 1.0 s.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "burn" 0.0 s.Slo.burn_rate;
  Alcotest.(check (float 1e-9)) "budget intact" 1.0 s.Slo.budget_remaining;
  Alcotest.(check bool) "met" true s.Slo.met

(* Budget exhaustion: with a 90% target the error budget is 10% of the
   window. 80 good + 20 bad is a 20% error rate — twice the budget, so
   burn rate 2.0, budget_remaining -1.0, objective missed. *)
let test_slo_budget_exhaustion () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for _ = 1 to 80 do
    Slo.record slo ~now:t0 ~ok:true ~latency_s:0.01
  done;
  for i = 1 to 20 do
    (* Mix the failure modes: errors, slow successes, and sheds. *)
    if i mod 3 = 0 then Slo.record_failure slo ~now:t0
    else if i mod 3 = 1 then Slo.record slo ~now:t0 ~ok:false ~latency_s:0.01
    else Slo.record slo ~now:t0 ~ok:true ~latency_s:0.2
  done;
  let s = Slo.snapshot slo ~now:(t0 +. 1.) in
  Alcotest.(check int) "total" 100 s.Slo.total;
  Alcotest.(check int) "bad" 20 s.Slo.bad;
  Alcotest.(check (float 1e-9)) "success" 0.8 s.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "burn rate" 2.0 s.Slo.burn_rate;
  Alcotest.(check (float 1e-9)) "budget overspent" (-1.0) s.Slo.budget_remaining;
  Alcotest.(check bool) "missed" false s.Slo.met

(* Recovery: the bad burst ages out of the rolling window while fresh
   good traffic keeps arriving, so the budget replenishes without any
   reset. *)
let test_slo_recovery () =
  let slo = Slo.create ~buckets:6 slo_config in
  let t0 = 1000. in
  for _ = 1 to 20 do
    Slo.record_failure slo ~now:t0
  done;
  let burning = Slo.snapshot slo ~now:(t0 +. 1.) in
  Alcotest.(check bool) "burning" false burning.Slo.met;
  Alcotest.(check bool) "budget gone" true
    (burning.Slo.budget_remaining < 0.);
  (* 90 seconds later the burst is outside the 60 s window. *)
  for i = 0 to 49 do
    Slo.record slo ~now:(t0 +. 90. +. float_of_int i /. 10.) ~ok:true
      ~latency_s:0.01
  done;
  let healed = Slo.snapshot slo ~now:(t0 +. 95.) in
  Alcotest.(check int) "burst aged out" 0 healed.Slo.bad;
  Alcotest.(check (float 1e-9)) "success back to 1" 1.0
    healed.Slo.success_rate;
  Alcotest.(check (float 1e-9)) "budget recovered" 1.0
    healed.Slo.budget_remaining;
  Alcotest.(check bool) "met again" true healed.Slo.met

let test_slo_empty_window_passes () =
  let slo = Slo.create ~buckets:6 slo_config in
  let s = Slo.snapshot slo ~now:1000. in
  Alcotest.(check int) "empty" 0 s.Slo.total;
  Alcotest.(check (float 1e-9)) "success 1.0" 1.0 s.Slo.success_rate;
  Alcotest.(check bool) "met" true s.Slo.met

let test_slo_validate_config () =
  let bad cfg = match Slo.validate_config cfg with Ok _ -> false | Error _ -> true in
  Alcotest.(check bool) "default valid" false (bad Slo.default_config);
  Alcotest.(check bool) "target 0" true
    (bad { slo_config with Slo.target = 0. });
  Alcotest.(check bool) "target > 1" true
    (bad { slo_config with Slo.target = 1.5 });
  Alcotest.(check bool) "negative latency" true
    (bad { slo_config with Slo.latency_budget_s = -1. });
  Alcotest.(check bool) "zero window" true
    (bad { slo_config with Slo.window_s = 0. })

(* ------------------------------------------------------------------ *)
(* Trace ids *)

let test_trace_id_format_and_uniqueness () =
  let seen = Hashtbl.create 4096 in
  let is_hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
  for _ = 1 to 10_000 do
    let id = Trace_id.fresh () in
    Alcotest.(check int) "16 chars" 16 (String.length id);
    Alcotest.(check bool) "lowercase hex" true (String.for_all is_hex id);
    if Hashtbl.mem seen id then Alcotest.failf "duplicate trace id %s" id;
    Hashtbl.add seen id ()
  done

(* ------------------------------------------------------------------ *)
(* Prometheus exposition *)

(* A minimal text-format parser strong enough to catch what CI also
   validates: every non-comment line is [name{labels} value], every
   family has exactly one TYPE header, histogram buckets are cumulative
   and end at +Inf = count. *)
let parse_exposition text =
  let types = Hashtbl.create 16 in
  let samples = ref [] in
  String.split_on_char '\n' text
  |> List.iter (fun line ->
         if line = "" then ()
         else if String.length line >= 6 && String.sub line 0 6 = "# TYPE" then (
           match String.split_on_char ' ' line with
           | [ "#"; "TYPE"; name; kind ] ->
               if Hashtbl.mem types name then
                 Alcotest.failf "duplicate TYPE for %s" name;
               Hashtbl.add types name kind
           | _ -> Alcotest.failf "malformed TYPE line %S" line)
         else if line.[0] = '#' then ()
         else
           match String.index_opt line ' ' with
           | None -> Alcotest.failf "malformed sample line %S" line
           | Some i ->
               let name_part = String.sub line 0 i in
               let value_part =
                 String.sub line (i + 1) (String.length line - i - 1)
               in
               let value =
                 if value_part = "+Inf" then infinity
                 else
                   match float_of_string_opt value_part with
                   | Some v -> v
                   | None -> Alcotest.failf "bad sample value %S" value_part
               in
               samples := (name_part, value) :: !samples);
  (types, List.rev !samples)

let metric_name_ok name =
  let base =
    match String.index_opt name '{' with
    | Some i -> String.sub name 0 i
    | None -> name
  in
  String.length base > 0
  && (match base.[0] with
     | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
     | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       base

let test_prometheus_render () =
  let c = Telemetry.Counter.make "test.prom.requests" in
  let g = Telemetry.Gauge.make "test.prom.depth" in
  let h = Telemetry.Histogram.make "test.prom.latency.seconds" in
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall @@ fun () ->
  Telemetry.Counter.add c 7;
  Telemetry.Gauge.set g 3.5;
  List.iter (Telemetry.Histogram.observe h) [ 0.001; 0.004; 0.02; 1.5 ];
  let text =
    Prometheus.render ~extra_counters:[ ("test.prom.extra", 11) ]
      ~extra_gauges:[ ("test.prom.budget", 0.25) ]
      t
  in
  Alcotest.(check bool) "ends with newline" true
    (String.length text > 0 && text.[String.length text - 1] = '\n');
  let types, samples = parse_exposition text in
  List.iter
    (fun (name, _) ->
      Alcotest.(check bool) (Printf.sprintf "name %S legal" name) true
        (metric_name_ok name))
    samples;
  Alcotest.(check (option string)) "counter typed" (Some "counter")
    (Hashtbl.find_opt types "test_prom_requests");
  Alcotest.(check (option string)) "gauge typed" (Some "gauge")
    (Hashtbl.find_opt types "test_prom_depth");
  Alcotest.(check (option string)) "histogram typed" (Some "histogram")
    (Hashtbl.find_opt types "test_prom_latency_seconds");
  Alcotest.(check (option string)) "extra counter typed" (Some "counter")
    (Hashtbl.find_opt types "test_prom_extra");
  let value name =
    match List.assoc_opt name samples with
    | Some v -> v
    | None -> Alcotest.failf "missing sample %s" name
  in
  Alcotest.(check (float 1e-9)) "counter value" 7. (value "test_prom_requests");
  Alcotest.(check (float 1e-9)) "gauge value" 3.5 (value "test_prom_depth");
  Alcotest.(check (float 1e-9)) "extra counter" 11. (value "test_prom_extra");
  Alcotest.(check (float 1e-9)) "extra gauge" 0.25 (value "test_prom_budget");
  (* Histogram series: cumulative buckets, +Inf bucket equals count. *)
  let buckets =
    List.filter
      (fun (name, _) ->
        String.length name > 25
        && String.sub name 0 25 = "test_prom_latency_seconds"
        && String.contains name '{')
      samples
  in
  Alcotest.(check bool) "has buckets" true (List.length buckets > 1);
  let counts = List.map snd buckets in
  Alcotest.(check bool) "buckets cumulative" true
    (List.for_all2 ( <= ) counts
       (List.tl counts @ [ List.nth counts (List.length counts - 1) ]));
  Alcotest.(check (float 1e-9)) "count" 4.
    (value "test_prom_latency_seconds_count");
  Alcotest.(check bool) "+Inf bucket present" true
    (List.exists
       (fun (name, v) ->
         String.length name > 4
         && String.sub name (String.length name - 5) 5 = "Inf\"}"
         && v = 4.)
       buckets);
  Alcotest.(check (float 1e-6)) "sum" 1.525
    (value "test_prom_latency_seconds_sum")

let test_prometheus_sanitize () =
  Alcotest.(check string) "dots" "server_queue_depth"
    (Prometheus.sanitize_name "server.queue.depth");
  Alcotest.(check string) "leading digit" "_9lives"
    (Prometheus.sanitize_name "9lives");
  Alcotest.(check string) "parens" "evaluated_web_"
    (Prometheus.sanitize_name "evaluated(web)")

(* ------------------------------------------------------------------ *)
(* Lifecycle records *)

let test_lifecycle_record () =
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall @@ fun () ->
  let lc =
    Lifecycle.start ~trace_id:"00000000deadbeef" ~verb:"design" ~conn_id:3
      ~req_id:(Json.Int 7)
      ~now:(Unix.gettimeofday ())
  in
  List.iter
    (fun stage -> Lifecycle.stamp lc stage)
    [ "parse"; "admit"; "queue"; "handle"; "encode"; "write" ];
  let record = Lifecycle.finish lc ~outcome:"ok" ~slow_threshold_s:10. in
  let fields = match record with Json.Obj f -> f | _ -> [] in
  Alcotest.(check bool) "is object" true (fields <> []);
  let str name =
    match List.assoc_opt name fields with
    | Some (Json.String s) -> s
    | _ -> Alcotest.failf "field %S missing or not a string" name
  in
  Alcotest.(check string) "trace id" "00000000deadbeef" (str "trace_id");
  Alcotest.(check string) "verb" "design" (str "verb");
  Alcotest.(check string) "outcome" "ok" (str "outcome");
  (match List.assoc_opt "slow" fields with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "slow flag should be false under a 10 s threshold");
  let stages =
    match List.assoc_opt "stages" fields with
    | Some (Json.List l) -> l
    | _ -> Alcotest.fail "stages missing"
  in
  Alcotest.(check int) "six stages" 6 (List.length stages);
  let ends =
    List.map
      (fun s ->
        match s with
        | Json.Obj f -> (
            match List.assoc_opt "end_s" f with
            | Some (Json.Float e) -> e
            | _ -> Alcotest.fail "stage missing end_s")
        | _ -> Alcotest.fail "stage not an object")
      stages
  in
  Alcotest.(check bool) "monotone stage timestamps" true
    (List.for_all2 ( <= ) ends (List.tl ends @ [ infinity ]));
  (* Stage durations partition the end-to-end latency. *)
  let stage_ms =
    List.fold_left
      (fun acc s ->
        match s with
        | Json.Obj f -> (
            match List.assoc_opt "ms" f with
            | Some (Json.Float ms) -> acc +. ms
            | _ -> acc)
        | _ -> acc)
      0. stages
  in
  let total_ms =
    match List.assoc_opt "total_ms" fields with
    | Some (Json.Float ms) -> ms
    | _ -> Alcotest.fail "total_ms missing"
  in
  Alcotest.(check (float 1e-6)) "stages sum to total" total_ms stage_ms;
  (* The per-verb and per-stage histograms were fed. *)
  let histogram_count name =
    match List.assoc_opt name (Telemetry.histograms t) with
    | Some s -> s.Telemetry.Histogram.count
    | None -> 0
  in
  Alcotest.(check int) "verb histogram observed" 1
    (histogram_count "server.verb.design.seconds");
  Alcotest.(check int) "stage histogram observed" 1
    (histogram_count "server.stage.design.handle.seconds")

let () =
  Alcotest.run "obs"
    [
      ( "rolling",
        [
          Alcotest.test_case "counts" `Quick test_rolling_counts;
          Alcotest.test_case "expiry" `Quick test_rolling_expiry;
          Alcotest.test_case "validation" `Quick test_rolling_validation;
        ] );
      ( "slo",
        [
          Alcotest.test_case "good window" `Quick test_slo_good_window;
          Alcotest.test_case "budget exhaustion" `Quick
            test_slo_budget_exhaustion;
          Alcotest.test_case "recovery" `Quick test_slo_recovery;
          Alcotest.test_case "empty window passes" `Quick
            test_slo_empty_window_passes;
          Alcotest.test_case "validate config" `Quick test_slo_validate_config;
        ] );
      ( "trace-id",
        [
          Alcotest.test_case "format and uniqueness" `Quick
            test_trace_id_format_and_uniqueness;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render" `Quick test_prometheus_render;
          Alcotest.test_case "sanitize" `Quick test_prometheus_sanitize;
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "record" `Quick test_lifecycle_record ] );
    ]
