module Perf_function = Aved_perf.Perf_function
module Slowdown = Aved_perf.Slowdown

let check_float = Alcotest.(check (float 1e-9))

let test_const () =
  let p = Perf_function.of_string "const:10000" in
  check_float "n=1" 10000. (Perf_function.eval p ~n:1);
  check_float "n=50" 10000. (Perf_function.eval p ~n:50);
  Alcotest.(check bool) "not scalable" false (Perf_function.is_scalable p)

let test_expr () =
  let p = Perf_function.of_string "200*n" in
  check_float "linear" 1000. (Perf_function.eval p ~n:5);
  check_float "n=0" 0. (Perf_function.eval p ~n:0);
  let q = Perf_function.of_string "expr:(10*n)/(1+0.004*n)" in
  check_float "saturating" (100. /. 1.04) (Perf_function.eval q ~n:10);
  Alcotest.(check bool) "scalable" true (Perf_function.is_scalable q)

let test_expr_rejects_foreign_vars () =
  Alcotest.(check bool) "rejects cpi" true
    (match Perf_function.of_string "10/cpi" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_table () =
  let p = Perf_function.of_string "table:1=100,4=350,2=190" in
  check_float "exact point" 190. (Perf_function.eval p ~n:2);
  check_float "interpolated" 270. (Perf_function.eval p ~n:3);
  check_float "zero resources deliver nothing" 0. (Perf_function.eval p ~n:0);
  let shifted = Perf_function.of_string "table:2=190,4=350" in
  check_float "clamp low" 190. (Perf_function.eval shifted ~n:1);
  check_float "clamp high" 350. (Perf_function.eval p ~n:9);
  Alcotest.(check bool) "duplicate n rejected" true
    (match Perf_function.of_table [ (1, 5.); (1, 6.) ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_of_string_errors () =
  List.iter
    (fun text ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" text) true
        (match Perf_function.of_string text with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "const:abc"; "table:oops"; "expr:2+"; "" ]

let test_to_string_roundtrip () =
  List.iter
    (fun text ->
      let p = Perf_function.of_string text in
      let p' = Perf_function.of_string (Perf_function.to_string p) in
      List.iter
        (fun n ->
          check_float
            (Printf.sprintf "%s at n=%d" text n)
            (Perf_function.eval p ~n) (Perf_function.eval p' ~n))
        [ 0; 1; 3; 10; 100 ])
    [ "const:10000"; "200*n"; "table:1=100,4=350" ]

let test_min_resources () =
  let p = Perf_function.of_string "200*n" in
  let candidates = List.init 20 (fun i -> i + 1) in
  Alcotest.(check (option int)) "exact" (Some 5)
    (Perf_function.min_resources p ~demand:1000. ~candidates);
  Alcotest.(check (option int)) "round up" (Some 6)
    (Perf_function.min_resources p ~demand:1001. ~candidates);
  Alcotest.(check (option int)) "unreachable" None
    (Perf_function.min_resources p ~demand:1e9 ~candidates);
  Alcotest.(check (option int)) "unsorted candidates" (Some 5)
    (Perf_function.min_resources p ~demand:1000. ~candidates:[ 9; 5; 7 ])

let test_min_resources_monotone_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"higher demand needs at least as many resources"
       ~count:200
       QCheck2.Gen.(
         let* d1 = float_range 1. 10000. in
         let* d2 = float_range 1. 10000. in
         return (Float.min d1 d2, Float.max d1 d2))
       (fun (lo, hi) ->
         let p = Perf_function.of_string "200*n" in
         let candidates = List.init 100 (fun i -> i + 1) in
         match
           ( Perf_function.min_resources p ~demand:lo ~candidates,
             Perf_function.min_resources p ~demand:hi ~candidates )
         with
         | Some a, Some b -> a <= b
         | None, Some _ -> false
         | Some _, None | None, None -> true))

(* The compiled forms exist to cut evaluator allocation on the search's
   hot path. Guard the win with Gc counters, relatively — an absolute
   zero-allocation bound is not achievable (float results box across
   module boundaries), but the compiled affine path must stay well
   under the interpreted association-list path. *)
let minor_words_per_call ~calls f =
  let before = Gc.minor_words () in
  for i = 1 to calls do
    ignore (Sys.opaque_identity (f i))
  done;
  (Gc.minor_words () -. before) /. float_of_int calls

let test_eval_allocation () =
  let expr = Aved_expr.Expr.of_string "(10*n)/(1+0.004*n)" in
  let affine = Perf_function.of_string "200*n" in
  let calls = 50_000 in
  let alist =
    minor_words_per_call ~calls (fun i ->
        Aved_expr.Expr.eval_alist expr [ ("n", float_of_int i) ])
  in
  let eval1 =
    minor_words_per_call ~calls (fun i ->
        Aved_expr.Expr.eval1 expr ~var:"n" ~value:(float_of_int i))
  in
  let compiled =
    minor_words_per_call ~calls (fun i ->
        Perf_function.eval affine ~n:(1 + (i land 63)))
  in
  Alcotest.(check bool)
    (Printf.sprintf "eval1 (%.1f w/call) below eval_alist (%.1f w/call)"
       eval1 alist)
    true (eval1 < alist);
  Alcotest.(check bool)
    (Printf.sprintf
       "compiled affine (%.1f w/call) at most half of eval_alist (%.1f \
        w/call)"
       compiled alist)
    true
    (compiled <= alist /. 2.)

let test_affine_matches_interpreter () =
  (* The compiled affine path must agree bit-for-bit with walking the
     tree, or search results could drift with the representation. *)
  List.iter
    (fun text ->
      let p = Perf_function.of_string text in
      let expr = Option.get (Perf_function.as_expr p) in
      for n = 0 to 200 do
        let compiled = Perf_function.eval p ~n in
        let interpreted =
          if n = 0 then 0.
          else Aved_expr.Expr.eval_alist expr [ ("n", float_of_int n) ]
        in
        if not (Float.equal compiled interpreted) then
          Alcotest.failf "%s at n=%d: compiled %h vs interpreted %h" text n
            compiled interpreted
      done)
    [
      "200*n";
      "n*200";
      "n";
      "100-10*n";
      "100*n-7";
      "50+2*n";
      "2*n+50";
      "0.37*n+0.11";
      "123.456";
    ]

let test_slowdown () =
  let s = Slowdown.of_string "max(10/cpi, 100%)" in
  check_float "overhead region" 10. (Slowdown.eval s [ ("cpi", 1.) ]);
  check_float "flat region" 1. (Slowdown.eval s [ ("cpi", 100.) ]);
  check_float "identity" 1. (Slowdown.eval Slowdown.none []);
  (* Values below 1 clamp to 1: a mechanism never speeds the service up. *)
  let fast = Slowdown.of_string "0.5" in
  check_float "clamped" 1. (Slowdown.eval fast []);
  Alcotest.(check (list string)) "variables" [ "cpi" ] (Slowdown.variables s);
  Alcotest.(check bool) "bad expression" true
    (match Slowdown.of_string "2+" with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "perf"
    [
      ( "perf-function",
        [
          Alcotest.test_case "constant" `Quick test_const;
          Alcotest.test_case "expression" `Quick test_expr;
          Alcotest.test_case "foreign variables rejected" `Quick
            test_expr_rejects_foreign_vars;
          Alcotest.test_case "table" `Quick test_table;
          Alcotest.test_case "of_string errors" `Quick test_of_string_errors;
          Alcotest.test_case "to_string roundtrip" `Quick
            test_to_string_roundtrip;
          Alcotest.test_case "min_resources" `Quick test_min_resources;
          Alcotest.test_case "min_resources monotone" `Quick
            test_min_resources_monotone_property;
          Alcotest.test_case "evaluator allocation budget" `Quick
            test_eval_allocation;
          Alcotest.test_case "compiled affine is bit-exact" `Quick
            test_affine_matches_interpreter;
        ] );
      ("slowdown", [ Alcotest.test_case "evaluation" `Quick test_slowdown ]);
    ]
