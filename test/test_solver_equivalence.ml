(* Numerical-equivalence harness for the CTMC solving substrate.

   The sparse backends (GTH elimination, banded elimination, warm-started
   power iteration) and the incremental solver exist to make the search
   fast; this suite pins them to the dense LU reference on randomly
   generated ergodic chains so a speed optimization can never silently
   change the numbers. Chains are generated from fixed seeds — failures
   reproduce. *)

module Ctmc = Aved_markov.Ctmc
module Matrix = Aved_linalg.Matrix
module Vector = Aved_linalg.Vector
module Duration = Aved_units.Duration
module Avail = Aved_avail

let backends = [ ("gth", Ctmc.Gth); ("banded", Ctmc.Banded); ("power", Ctmc.Power); ("lu", Ctmc.Lu) ]

(* ------------------------------------------------------------------ *)
(* Random ergodic chains: a Hamiltonian cycle guarantees irreducibility,
   random extra edges vary the structure (bandwidth, density) enough to
   exercise every backend-selection regime. Rates span [0.05, 20). *)

let rand_rate st = 0.05 +. Random.State.float st 19.95

let rand_chain st ~n ~extra =
  let chain = Ctmc.create n in
  for i = 0 to n - 1 do
    Ctmc.add_transition chain ~src:i ~dst:((i + 1) mod n) ~rate:(rand_rate st)
  done;
  let added = ref 0 in
  while !added < extra do
    let src = Random.State.int st n and dst = Random.State.int st n in
    if src <> dst then begin
      Ctmc.add_transition chain ~src ~dst ~rate:(rand_rate st);
      incr added
    end
  done;
  chain

let max_exit_rate chain =
  let m = ref 0. in
  for s = 0 to Ctmc.num_states chain - 1 do
    m := Float.max !m (Ctmc.total_exit_rate chain s)
  done;
  !m

(* One chain per (size, fill) cell; sizes cover the 5-200 range the
   engines meet in practice (the exact engine's state spaces and the
   checker's audits sit in the low hundreds). *)
let sweep_chains () =
  let st = Random.State.make [| 0x5eed; 42 |] in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun fill ->
          let extra = max 1 (fill n) in
          Some (rand_chain st ~n ~extra))
        [ (fun n -> n / 2); (fun n -> 3 * n) ])
    [ 5; 8; 13; 21; 34; 55; 89; 144; 200 ]

(* ------------------------------------------------------------------ *)
(* Differential: every backend within 1e-9 of dense LU, elementwise. *)

let test_backends_vs_lu () =
  List.iteri
    (fun i chain ->
      let reference = Ctmc.stationary_lu chain in
      List.iter
        (fun (name, backend) ->
          let pi = Ctmc.stationary_with backend chain in
          let diff = Vector.max_abs_diff pi reference in
          if diff > 1e-9 then
            Alcotest.failf "chain %d (%d states): %s differs from lu by %.3e"
              i (Ctmc.num_states chain) name diff)
        backends)
    (sweep_chains ())

(* Invariants every backend must honor on every chain: a distribution
   (non-negative, unit mass) that actually solves piQ = 0. GTH is
   subtraction-free and power iteration multiplies non-negative
   matrices, so both must be exactly non-negative; the elimination
   backends may carry rounding at the -1e-10 level. *)
let test_backend_invariants () =
  List.iteri
    (fun i chain ->
      let q = Ctmc.generator chain in
      let scale = Float.max 1. (max_exit_rate chain) in
      List.iter
        (fun (name, backend) ->
          let pi = Ctmc.stationary_with backend chain in
          let floor =
            match backend with
            | Ctmc.Gth | Ctmc.Power -> 0.
            | Ctmc.Banded | Ctmc.Lu -> -1e-10
          in
          Array.iteri
            (fun s p ->
              if p < floor then
                Alcotest.failf "chain %d: %s pi(%d) = %.3e below %.0e" i name
                  s p floor)
            pi;
          let mass = Vector.norm_1 pi in
          if Float.abs (mass -. 1.) > 1e-12 then
            Alcotest.failf "chain %d: %s mass %.17g" i name mass;
          let residual = Vector.norm_inf (Matrix.vec_mul pi q) in
          if residual > 1e-8 *. scale then
            Alcotest.failf "chain %d: %s residual %.3e (scale %.3g)" i name
              residual scale)
        backends)
    (sweep_chains ())

(* ------------------------------------------------------------------ *)
(* Ill-posed chains: every backend (and the incremental solver) must
   reject them with the same typed error, never return garbage. *)

let absorbing_chain n =
  let chain = Ctmc.create n in
  for i = 0 to n - 2 do
    Ctmc.add_transition chain ~src:i ~dst:(i + 1) ~rate:1.
  done;
  chain

(* Mass escapes from state 0's component into a closed class it cannot
   leave: states 0 and 1 cycle, but 0 also leaks into the {2, 3} cycle,
   which never returns. (A closed class that is simply unreachable from
   state 0 is tolerated by the documented contract and not tested
   here.) *)
let escaping_chain () =
  let chain = Ctmc.create 4 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:0 ~rate:1.;
  Ctmc.add_transition chain ~src:0 ~dst:2 ~rate:0.5;
  Ctmc.add_transition chain ~src:2 ~dst:3 ~rate:1.;
  Ctmc.add_transition chain ~src:3 ~dst:2 ~rate:1.;
  chain

let test_non_ergodic_rejected () =
  List.iter
    (fun (kind, chain) ->
      List.iter
        (fun (name, backend) ->
          match Ctmc.stationary_with backend chain with
          | _ -> Alcotest.failf "%s: %s accepted a non-ergodic chain" kind name
          | exception Ctmc.Non_ergodic _ -> ())
        backends;
      match Ctmc.Solver.create chain with
      | _ -> Alcotest.failf "%s: Solver.create accepted it" kind
      | exception Ctmc.Non_ergodic _ -> ())
    [
      ("absorbing", absorbing_chain 6);
      ("escaping", escaping_chain ());
    ]

(* ------------------------------------------------------------------ *)
(* Incremental solving: perturb one rate at a time; the warm-started
   solver must track a from-scratch dense solve of the same chain. *)

let test_incremental_vs_fresh () =
  let st = Random.State.make [| 0x1234; 7 |] in
  let n = 60 in
  let chain = rand_chain st ~n ~extra:(2 * n) in
  let transitions = Array.of_list (Ctmc.transitions chain) in
  let solver = Ctmc.Solver.create chain in
  for step = 1 to 25 do
    let i = Random.State.int st (Array.length transitions) in
    let src, dst, _ = transitions.(i) in
    let rate = rand_rate st in
    transitions.(i) <- (src, dst, rate);
    Ctmc.Solver.update_rate solver ~src ~dst ~rate;
    let fresh = Ctmc.create n in
    Array.iter
      (fun (src, dst, rate) -> Ctmc.add_transition fresh ~src ~dst ~rate)
      transitions;
    let incremental = Ctmc.Solver.solve solver in
    let reference = Ctmc.stationary_lu fresh in
    let diff = Vector.max_abs_diff incremental reference in
    if diff > 1e-9 then
      Alcotest.failf "step %d: incremental differs from fresh by %.3e" step
        diff
  done

let test_solver_counters_move () =
  Ctmc.Solver.reset_counters ();
  let st = Random.State.make [| 0xc0; 3 |] in
  let chain = rand_chain st ~n:30 ~extra:30 in
  let solver = Ctmc.Solver.create chain in
  ignore (Ctmc.Solver.solve solver);
  ignore (Ctmc.Solver.solve solver);
  Ctmc.Solver.update_rate solver ~src:0 ~dst:1 ~rate:2.5;
  ignore (Ctmc.Solver.solve solver);
  let c = Ctmc.Solver.counters () in
  Alcotest.(check bool) "a fresh solve happened" true (c.fresh >= 1);
  Alcotest.(check bool) "the repeat was served from cache" true (c.cached >= 1);
  Alcotest.(check bool)
    "the rate update re-solved without a fresh build" true
    (c.incremental + c.fallback >= 1)

(* ------------------------------------------------------------------ *)
(* The exact availability engine rides the same solver: perturbing one
   model parameter must give the same downtime whether the (j, N)
   skeleton is reused warm or rebuilt from scratch. *)

let synthetic_model ~mttr_hours ~n_active =
  {
    Avail.Tier_model.tier_name = "synthetic";
    n_active;
    n_min = max 1 (n_active - 2);
    n_spare = 1;
    failure_scope = Aved_model.Service.Resource_scope;
    classes =
      [
        {
          Avail.Tier_model.label = "hw";
          rate = 1. /. (720. *. 3600.);
          mttr = Duration.of_hours mttr_hours;
          failover_time = Duration.of_minutes 5.;
          failover_considered = true;
          repair_mechanism = None;
        };
        {
          Avail.Tier_model.label = "sw";
          rate = 1. /. (96. *. 3600.);
          mttr = Duration.of_hours (mttr_hours /. 4.);
          failover_time = Duration.of_minutes 2.;
          failover_considered = false;
          repair_mechanism = None;
        };
      ];
    loss_window = None;
    effective_performance = 100.;
  }

let test_exact_incremental_vs_fresh () =
  Avail.Exact.reset_solver_cache ();
  (* Warm the (j, N) skeleton, then perturb one MTTR and solve warm. *)
  ignore (Avail.Exact.downtime_fraction (synthetic_model ~mttr_hours:8. ~n_active:5));
  let warm =
    Avail.Exact.downtime_fraction (synthetic_model ~mttr_hours:11. ~n_active:5)
  in
  let counters = Avail.Exact.solver_counters () in
  Alcotest.(check bool) "second solve reused the skeleton" true
    (counters.incremental >= 1);
  (* From scratch: drop the cache and solve the perturbed model cold. *)
  Avail.Exact.reset_solver_cache ();
  let cold =
    Avail.Exact.downtime_fraction (synthetic_model ~mttr_hours:11. ~n_active:5)
  in
  let diff = Float.abs (warm -. cold) in
  if diff > 1e-9 then
    Alcotest.failf "exact warm %.17g vs cold %.17g (diff %.3e)" warm cold diff

let () =
  Alcotest.run "solver_equivalence"
    [
      ( "differential",
        [
          Alcotest.test_case "all backends vs dense LU" `Quick
            test_backends_vs_lu;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "distribution and residual" `Quick
            test_backend_invariants;
          Alcotest.test_case "non-ergodic chains rejected" `Quick
            test_non_ergodic_rejected;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "solver tracks fresh solves" `Quick
            test_incremental_vs_fresh;
          Alcotest.test_case "solver counters" `Quick
            test_solver_counters_move;
          Alcotest.test_case "exact engine warm vs cold" `Quick
            test_exact_incremental_vs_fresh;
        ] );
    ]
