(* Tests for the aved_check static analyzer.

   Four groups: golden diagnostics over the corpus of deliberately
   broken specs in bad_specs/ (every diagnostic must carry the right
   file:line:col), CTMC well-formedness on hand-built chains, the
   dimension lattice, and the central property — a spec the checker
   accepts without errors evaluates all its expressions over their
   declared ranges without Unbound_variable. *)

module Check = Aved_check.Check
module Diagnostic = Aved_check.Diagnostic
module Dim = Aved_check.Dim
module Ctmc = Aved_markov.Ctmc
module Spec = Aved_spec.Spec
open Aved_model

let qtest = QCheck_alcotest.to_alcotest
let aved = Filename.concat (Filename.concat ".." "bin") "main.exe"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let run_aved args =
  let dir = Filename.temp_file "aved_check" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let out = Filename.concat dir "out" in
  let err = Filename.concat dir "err" in
  let status =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote aved) args
         (Filename.quote out) (Filename.quote err))
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  Sys.rmdir dir;
  (status, stdout, stderr)

(* ------------------------------------------------------------------ *)
(* Golden corpus: bad_specs/X.spec must produce exactly X.expected.
   Service specs are checked together with base_infra.spec, the clean
   infrastructure they resolve against. *)

let base_infra = Filename.concat "bad_specs" "base_infra.spec"

let corpus () =
  Sys.readdir "bad_specs" |> Array.to_list
  |> List.filter (fun f ->
         Filename.check_suffix f ".spec" && f <> "base_infra.spec")
  |> List.sort String.compare

let golden_case file =
  let spec = Filename.concat "bad_specs" file in
  let expected = read_file (Filename.remove_extension spec ^ ".expected") in
  let context = if contains (read_file spec) "application=" then base_infra ^ " " else "" in
  let status, stdout, stderr = run_aved (Printf.sprintf "check %s%s" context spec) in
  Alcotest.(check string) (file ^ " stderr") "" stderr;
  Alcotest.(check string) (file ^ " diagnostics") expected stdout;
  let want = if contains expected "error[" then 1 else 0 in
  Alcotest.(check int) (file ^ " exit status") want status

let test_golden_corpus () =
  let files = corpus () in
  Alcotest.(check bool) "corpus is non-empty" true (files <> []);
  List.iter golden_case files

let test_base_infra_is_clean () =
  let status, stdout, stderr =
    run_aved (Printf.sprintf "check --strict %s" base_infra)
  in
  Alcotest.(check int) "exit status" 0 status;
  Alcotest.(check string) "stdout" "" stdout;
  Alcotest.(check string) "stderr" "" stderr

let test_strict_promotes_warnings () =
  (* svc_discontinuity carries only a warning: default gate passes,
     --strict fails. *)
  let spec = Filename.concat "bad_specs" "svc_discontinuity.spec" in
  let lax, _, _ = run_aved (Printf.sprintf "check %s %s" base_infra spec) in
  Alcotest.(check int) "default exit" 0 lax;
  let strict, _, _ =
    run_aved (Printf.sprintf "check --strict %s %s" base_infra spec)
  in
  Alcotest.(check int) "strict exit" 1 strict

let test_bounds_infeasible_budget () =
  (* The worked --bounds example: a tier-scope service whose downtime
     lower bound over the whole search region exceeds a 5 min/yr
     budget. The bounds pass must certify infeasibility (exit 1)
     byte-for-byte per the blessed output; without --bounds the spec
     checks clean (covered by the corpus golden above). *)
  let spec = Filename.concat "bad_specs" "svc_infeasible_budget.spec" in
  let expected =
    read_file (Filename.concat "bad_specs" "svc_infeasible_budget.bounds.expected")
  in
  let status, stdout, stderr =
    run_aved
      (Printf.sprintf "check --bounds --downtime 5 %s %s" base_infra spec)
  in
  Alcotest.(check string) "stderr" "" stderr;
  Alcotest.(check string) "diagnostics and bounds table" expected stdout;
  Alcotest.(check int) "exit status" 1 status

let test_json_output () =
  let spec = Filename.concat "bad_specs" "svc_parse_caret.spec" in
  let status, stdout, _ =
    run_aved (Printf.sprintf "check --json %s %s" base_infra spec)
  in
  Alcotest.(check int) "exit status" 1 status;
  Alcotest.(check bool) "is a versioned object" true
    (String.length stdout > 1
    && stdout.[0] = '{'
    && contains stdout "\"schema_version\":2");
  Alcotest.(check bool) "carries a diagnostics array" true
    (contains stdout "\"diagnostics\":[");
  Alcotest.(check bool) "carries severity" true
    (contains stdout "\"severity\":\"error\"");
  Alcotest.(check bool) "carries the span" true
    (contains stdout "\"line\":7");
  let clean, empty, _ =
    run_aved (Printf.sprintf "check --json %s" base_infra)
  in
  Alcotest.(check int) "clean exit" 0 clean;
  Alcotest.(check bool) "clean report has zero errors" true
    (contains empty "\"errors\":0");
  Alcotest.(check bool) "clean report has no diagnostics" true
    (contains empty "\"diagnostics\":[]")

let test_design_refuses_errors () =
  (* The implicit check: design refuses a spec with checker errors and
     names the override; --no-check restores the old behaviour. *)
  let spec = Filename.concat "bad_specs" "svc_dims.spec" in
  let args =
    Printf.sprintf "design -i %s -s %s --load 100 --downtime 100" base_infra
      spec
  in
  let status, _, stderr = run_aved args in
  Alcotest.(check int) "refused" 1 status;
  Alcotest.(check bool) "names the override" true
    (contains stderr "--no-check");
  Alcotest.(check bool) "shows the diagnostic" true
    (contains stderr "dim-mismatch");
  let status, _, _ = run_aved (args ^ " --no-check") in
  Alcotest.(check int) "overridden" 0 status

let test_parse_error_caret () =
  (* The real parser must locate the truncated expression and render a
     caret snippet pointing at the offending column. *)
  let spec = Filename.concat "bad_specs" "svc_parse_caret.spec" in
  match Spec.service_of_file spec with
  | _ -> Alcotest.fail "expected a parse error"
  | exception Aved_spec.Line_lexer.Error { line; col; message } ->
      Alcotest.(check int) "line" 7 line;
      Alcotest.(check int) "column" 29 col;
      Alcotest.(check bool) "echoes the source line" true
        (contains message "performance(nActive)=200*n +");
      Alcotest.(check bool) "draws the caret" true
        (contains message (String.make (col - 1) ' ' ^ "^"))

(* ------------------------------------------------------------------ *)
(* Round trip: specs written by Spec_writer must check clean. *)

let test_written_specs_check_clean () =
  let dir = Filename.temp_file "aved_dump" "" in
  Sys.remove dir;
  let status, _, _ = run_aved (Printf.sprintf "dump-specs %s" dir) in
  Alcotest.(check int) "dump-specs" 0 status;
  let specs =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".spec")
    |> List.map (Filename.concat dir)
    |> List.sort String.compare
  in
  Alcotest.(check bool) "specs were written" true (specs <> []);
  let diags = Check.check_files specs in
  Alcotest.(check string) "no diagnostics" "" (Check.render_human diags);
  List.iter Sys.remove specs;
  Sys.rmdir dir

(* ------------------------------------------------------------------ *)
(* CTMC well-formedness on hand-built chains. *)

let codes diags =
  List.sort_uniq String.compare
    (List.map (fun (d : Diagnostic.t) -> d.code) diags)

let test_ctmc_clean () =
  let chain = Ctmc.create 3 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:2 ~rate:2.;
  Ctmc.add_transition chain ~src:2 ~dst:0 ~rate:3.;
  Alcotest.(check (list string)) "no diagnostics" [] (codes (Check.check_ctmc chain))

let test_ctmc_single_state () =
  (* One state, no transitions: trivially well-formed, not absorbing. *)
  Alcotest.(check (list string)) "no diagnostics" []
    (codes (Check.check_ctmc (Ctmc.create 1)))

let test_ctmc_unreachable () =
  let chain = Ctmc.create 3 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:0 ~rate:1.;
  Ctmc.add_transition chain ~src:2 ~dst:0 ~rate:1.;
  (* State 2 can reach 0 but nothing reaches it. *)
  Alcotest.(check (list string)) "unreachable flagged" [ "ctmc-unreachable" ]
    (codes (Check.check_ctmc chain))

let test_ctmc_absorbing () =
  let chain = Ctmc.create 3 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:0 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:2 ~rate:0.5;
  (* State 2 is reachable but traps probability. *)
  Alcotest.(check (list string)) "absorbing flagged" [ "ctmc-absorbing" ]
    (codes (Check.check_ctmc chain))

let test_ctmc_on_paper_models () =
  (* The representative designs of both built-in services must induce
     well-formed chains — check_model stays silent. *)
  let infra = Aved.Experiments.infrastructure () in
  List.iter
    (fun service ->
      let diags = Check.check_model ~infra ~service in
      Alcotest.(check string)
        (service.Service.service_name ^ " models are well-formed") ""
        (Check.render_human diags))
    [ Aved.Experiments.ecommerce (); Aved.Experiments.scientific () ]

(* ------------------------------------------------------------------ *)
(* The dimension lattice. *)

let dim = Alcotest.testable (Fmt.of_to_string Dim.to_string) ( = )

let test_dim_lattice () =
  Alcotest.(check (option dim)) "duration + count is a mismatch" None
    (Dim.unify Dim.Duration Dim.Scalar);
  Alcotest.(check (option dim)) "money + duration is a mismatch" None
    (Dim.unify Dim.Money Dim.Duration);
  Alcotest.(check (option dim)) "rate vs fraction is tolerated"
    (Some Dim.Scalar)
    (Dim.unify Dim.Per_duration Dim.Scalar);
  Alcotest.(check (option dim)) "Any is polymorphic" (Some Dim.Money)
    (Dim.unify Dim.Any Dim.Money);
  (match Dim.div Dim.Scalar Dim.Duration with
  | Dim.Dim Dim.Per_duration -> ()
  | _ -> Alcotest.fail "count / duration should be a rate");
  (match Dim.mul Dim.Duration Dim.Per_duration with
  | Dim.Dim Dim.Scalar -> ()
  | _ -> Alcotest.fail "duration x rate should cancel");
  (match Dim.mul Dim.Duration Dim.Duration with
  | Dim.Nonsense _ -> ()
  | _ -> Alcotest.fail "time squared should be nonsense");
  match Dim.div Dim.Scalar Dim.Money with
  | Dim.Nonsense _ -> ()
  | _ -> Alcotest.fail "money in a denominator should be nonsense"

(* ------------------------------------------------------------------ *)
(* Property: a spec the checker accepts without errors evaluates all
   its expressions over the declared ranges without Unbound_variable.
   The generator deliberately produces free variables, dimension
   mismatches and truncated expressions some of the time; those specs
   draw errors and are vacuously fine. The interesting half is the
   accepted specs: acceptance must imply evaluability. *)

let gen_perf_expr =
  let open QCheck2.Gen in
  let leaf =
    oneof
      [
        map string_of_int (int_range 1 500);
        return "n";
        (* An unknown variable, some of the time. *)
        frequency [ (4, return "n"); (1, return "m") ];
      ]
  in
  fix
    (fun self depth ->
      if depth = 0 then leaf
      else
        let sub = self (depth - 1) in
        oneof
          [
            leaf;
            map2 (Printf.sprintf "%s + %s") sub sub;
            map2 (Printf.sprintf "%s * %s") sub sub;
            map2 (Printf.sprintf "min(%s, %s)") sub sub;
            map2 (Printf.sprintf "(%s) / %d") sub (int_range 1 9);
            map3
              (Printf.sprintf "if %s <= %d then %s else 2 * n")
              sub (int_range 1 6) sub;
          ])
    2

let gen_slowdown_expr =
  let open QCheck2.Gen in
  oneof
    [
      return "max(10/cpi, 100%)";
      return "100% + n";
      map (Printf.sprintf "%d%%") (int_range 100 400);
      (* Dimension mismatch: must be rejected, never evaluated. *)
      return "cpi + n";
      (* Free variable: likewise. *)
      return "max(10/zz, 100%)";
      map (Printf.sprintf "if n <= %d then 100%% else 100%% + n") (int_range 1 6);
    ]

let gen_service_spec =
  let open QCheck2.Gen in
  let* lo = int_range 1 4 in
  let* span = int_range 0 6 in
  let* step = int_range 1 3 in
  let* perf = gen_perf_expr in
  let* slow = gen_slowdown_expr in
  return
    (Printf.sprintf
       "application=prop\n\
        tier=web\n\
        resource=rX sizing=dynamic\n\
        nActive=[%d-%d,+%d]\n\
        performance(nActive)=%s\n\
        mechanism=chk\n\
        mperformance=%s\n"
       lo (lo + span) step perf slow)

let chk_setting =
  [
    ("cpi", Mechanism.Duration_value (Aved_units.Duration.of_minutes 1.));
    ("loc", Mechanism.Enum_value "central");
  ]

let evaluates_without_unbound (service : Service.t) =
  List.for_all
    (fun (tier : Service.tier) ->
      List.for_all
        (fun (option : Service.resource_option) ->
          List.for_all
            (fun n ->
              match
                ignore (Aved_perf.Perf_function.eval option.performance ~n);
                List.iter
                  (fun (_, impact) ->
                    ignore (Mech_impact.eval impact ~setting:chk_setting ~n))
                  option.mech_performance
              with
              | () -> true
              | exception Aved_expr.Expr.Unbound_variable _ -> false)
            (Int_range.to_list option.n_active))
        tier.options)
    service.tiers

let prop_accepted_specs_evaluate =
  QCheck2.Test.make ~name:"accepted specs evaluate over their ranges"
    ~count:120 gen_service_spec (fun text ->
      let file = Filename.temp_file "aved_prop" ".spec" in
      write_file file text;
      Fun.protect
        ~finally:(fun () -> Sys.remove file)
        (fun () ->
          let diags = Check.check_files [ base_infra; file ] in
          if Diagnostic.has_errors diags then true
          else evaluates_without_unbound (Spec.service_of_file file)))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "check"
    [
      ( "golden",
        [
          Alcotest.test_case "bad-spec corpus" `Quick test_golden_corpus;
          Alcotest.test_case "base infrastructure is clean" `Quick
            test_base_infra_is_clean;
          Alcotest.test_case "--strict promotes warnings" `Quick
            test_strict_promotes_warnings;
          Alcotest.test_case "--bounds certifies an infeasible budget"
            `Quick test_bounds_infeasible_budget;
          Alcotest.test_case "--json" `Quick test_json_output;
          Alcotest.test_case "design refuses checker errors" `Quick
            test_design_refuses_errors;
          Alcotest.test_case "parse errors carry a caret" `Quick
            test_parse_error_caret;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "written specs check clean" `Quick
            test_written_specs_check_clean;
        ] );
      ( "ctmc",
        [
          Alcotest.test_case "well-formed chain" `Quick test_ctmc_clean;
          Alcotest.test_case "single state" `Quick test_ctmc_single_state;
          Alcotest.test_case "unreachable state" `Quick test_ctmc_unreachable;
          Alcotest.test_case "absorbing class" `Quick test_ctmc_absorbing;
          Alcotest.test_case "paper models are well-formed" `Quick
            test_ctmc_on_paper_models;
        ] );
      ( "dimensions",
        [ Alcotest.test_case "lattice" `Quick test_dim_lattice ] );
      ("properties", [ qtest prop_accepted_specs_evaluate ]);
    ]
