(* The explain subsystem: provenance trail semantics, fates recorded by
   real searches, downtime decomposition agreement across the three
   engines, and the report/JSON assembly. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Availability = Aved_reliability.Availability
module Tier_model = Aved_avail.Tier_model
module Evaluate = Aved_avail.Evaluate
module Search_config = Aved_search.Search_config
module Candidate = Aved_search.Candidate
module Tier_search = Aved_search.Tier_search
module Provenance = Aved_search.Provenance
module Explain = Aved_explain.Explain
module Json = Aved_explain.Json
open Aved_model

let config = Search_config.default
let infra () = Aved.Experiments.infrastructure ()
let app_tier () = Aved.Experiments.application_tier ()

let dummy_design ?(n_active = 1) ?(n_spare = 0) ?mechanism_settings () =
  Design.tier_design ~tier_name:"t" ~resource:"rC" ~n_active ~n_spare
    ?mechanism_settings ()

let dummy_record ?(tier = "t") ?(cost = 0.) ?(fate = Provenance.Incumbent) ()
    =
  {
    Provenance.tier;
    design = dummy_design ();
    cost = Money.of_float cost;
    downtime = None;
    execution_time = None;
    fate;
  }

(* ------------------------------------------------------------------ *)
(* Trail ring semantics *)

let test_ring_bound () =
  let t = Provenance.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (Provenance.capacity t);
  Provenance.with_trail t (fun () ->
      for i = 0 to 5 do
        Provenance.note (fun () -> dummy_record ~cost:(float_of_int i) ())
      done);
  Alcotest.(check int) "noted" 6 (Provenance.noted t);
  Alcotest.(check int) "dropped" 2 (Provenance.dropped t);
  Alcotest.(check (list string)) "tiers" [ "t" ] (Provenance.tiers t);
  let costs =
    List.map
      (fun (r : Provenance.record) -> Money.to_float r.cost)
      (Provenance.records t ~tier:"t")
  in
  (* The two oldest records were overwritten; survivors oldest-first. *)
  Alcotest.(check (list (float 0.))) "oldest-first" [ 2.; 3.; 4.; 5. ] costs;
  Alcotest.(check (list string)) "unknown tier empty" []
    (List.map
       (fun (r : Provenance.record) -> r.tier)
       (Provenance.records t ~tier:"nope"))

let test_note_disabled_is_free () =
  Provenance.uninstall ();
  Alcotest.(check bool) "disabled" false (Provenance.enabled ());
  let ran = ref false in
  Provenance.note (fun () ->
      ran := true;
      dummy_record ());
  Alcotest.(check bool) "thunk not run without a trail" false !ran

let test_with_trail_scoping () =
  let t = Provenance.create () in
  Alcotest.(check bool) "enabled inside" true
    (Provenance.with_trail t (fun () -> Provenance.enabled ()));
  Alcotest.(check bool) "disabled after" false (Provenance.enabled ());
  (* Uninstalls on exception too. *)
  (try
     Provenance.with_trail t (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "disabled after raise" false (Provenance.enabled ())

let test_fate_labels () =
  let labels =
    List.map Provenance.fate_label
      [
        Provenance.Incumbent;
        Dominated { by = "x" };
        Over_downtime_budget { excess = Duration.zero };
        Over_cost_cap { excess = Money.zero };
        Rejected_by_model { reason = "r" };
        Pruned_by_bound
          {
            certificate =
              Aved_check.Certificate.make
                (Aved_check.Certificate.Infeasible
                   {
                     tier = "t";
                     resource = "r";
                     budget_fraction = 1e-6;
                     best_case_fraction = 1e-3;
                   })
                [];
          };
      ]
  in
  Alcotest.(check (list string))
    "stable labels"
    [
      "incumbent";
      "dominated";
      "over_downtime_budget";
      "over_cost_cap";
      "rejected_by_model";
      "pruned_by_bound";
    ]
    labels

(* ------------------------------------------------------------------ *)
(* Fates recorded by a real search *)

let searched_optimal ?(jobs = 1) () =
  let config = Search_config.with_jobs jobs config in
  let trail = Provenance.create ~capacity:100_000 () in
  let best =
    Provenance.with_trail trail @@ fun () ->
    Tier_search.optimal config (infra ()) ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  in
  match best with
  | Some c -> (trail, c)
  | None -> Alcotest.fail "expected a design"

let test_search_records_fates () =
  let trail, winner = searched_optimal () in
  let records = Provenance.records trail ~tier:"application" in
  Alcotest.(check bool) "has records" true (records <> []);
  Alcotest.(check int) "no drops at this capacity" 0
    (Provenance.dropped trail);
  Alcotest.(check int) "noted equals surviving" (Provenance.noted trail)
    (List.length records);
  (* The winner's latest record must be Incumbent. *)
  let final_for_winner =
    List.fold_left
      (fun acc (r : Provenance.record) ->
        if Design.compare_tier r.design winner.Candidate.design = 0 then
          Some r
        else acc)
      None records
  in
  (match final_for_winner with
  | Some { fate = Provenance.Incumbent; _ } -> ()
  | Some r ->
      Alcotest.failf "winner's final fate is %s"
        (Provenance.fate_label r.fate)
  | None -> Alcotest.fail "winner never recorded");
  let has label =
    List.exists
      (fun (r : Provenance.record) -> Provenance.fate_label r.fate = label)
      records
  in
  Alcotest.(check bool) "some candidate was over budget" true
    (has "over_downtime_budget");
  Alcotest.(check bool) "some candidate was dominated" true (has "dominated");
  (* Enterprise records carry downtime (when evaluated), never job time. *)
  List.iter
    (fun (r : Provenance.record) ->
      Alcotest.(check bool) "no execution_time" true (r.execution_time = None))
    records

let test_runner_ups_deterministic_across_jobs () =
  let explanation jobs =
    let trail, winner = searched_optimal ~jobs () in
    Explain.explain_tier ~top:5 ~trail ~engine:Evaluate.Analytic
      ~design:winner.Candidate.design ~cost:winner.Candidate.cost
      ~model:winner.Candidate.model ()
  in
  let e1 = explanation 1 and e3 = explanation 3 in
  let summarize (e : Explain.tier_explanation) =
    List.map
      (fun (r : Explain.runner_up) ->
        Provenance.describe r.record.design
        ^ " / "
        ^ Provenance.fate_label r.record.fate)
      e.runner_ups
  in
  Alcotest.(check int) "same distinct designs" e1.considered e3.considered;
  Alcotest.(check (list string))
    "same runner-ups in the same order" (summarize e1) (summarize e3)

let test_explain_tier_report () =
  let trail, winner = searched_optimal () in
  let e =
    Explain.explain_tier ~top:3 ~trail ~engine:Evaluate.Analytic
      ~design:winner.Candidate.design ~cost:winner.Candidate.cost
      ~model:winner.Candidate.model ()
  in
  Alcotest.(check string) "tier name" "application" e.tier_name;
  Alcotest.(check bool) "runner-ups bounded" true
    (List.length e.runner_ups <= 3);
  Alcotest.(check bool) "winner excluded from runner-ups" true
    (List.for_all
       (fun (r : Explain.runner_up) ->
         Design.compare_tier r.record.design winner.Candidate.design <> 0)
       e.runner_ups);
  (* Runner-ups sorted by cost. *)
  let costs =
    List.map
      (fun (r : Explain.runner_up) -> Money.to_float r.record.cost)
      e.runner_ups
  in
  Alcotest.(check (list (float 1e-9))) "sorted by cost"
    (List.sort Float.compare costs)
    costs;
  (* Deltas are relative to the winner. *)
  List.iter
    (fun (r : Explain.runner_up) ->
      Alcotest.(check (float 1e-6))
        "cost delta"
        (Money.to_float r.record.cost -. Money.to_float winner.Candidate.cost)
        r.cost_delta)
    e.runner_ups;
  (* The analytic decomposition total is the winner's downtime fraction. *)
  Alcotest.(check (float 0.))
    "total is the engine downtime" winner.Candidate.downtime_fraction
    e.decomposition.Evaluate.total;
  (* Mean failed resources is available on the analytic engine. *)
  (match e.mean_failed_resources with
  | Some m -> Alcotest.(check bool) "mean failed in (0, n)" true (m > 0.)
  | None -> Alcotest.fail "expected mean failed resources");
  (* The human report renders without raising and mentions the parts. *)
  let explanation =
    {
      Explain.service_name = "test";
      engine = Explain.engine_label Evaluate.Analytic;
      cost = winner.Candidate.cost;
      downtime = Some (Candidate.downtime winner);
      execution_time = None;
      tiers = [ e ];
      noted = Provenance.noted trail;
      dropped = Provenance.dropped trail;
    }
  in
  let text = Format.asprintf "%a" Explain.pp explanation in
  List.iter
    (fun needle ->
      if
        not
          (let nl = String.length needle and hl = String.length text in
           let rec scan i =
             i + nl <= hl
             && (String.sub text i nl = needle || scan (i + 1))
           in
           scan 0)
      then Alcotest.failf "report misses %S in:\n%s" needle text)
    [ "by failure mode"; "runner-ups"; "nines"; "min/yr" ]

(* ------------------------------------------------------------------ *)
(* Decomposition across engines *)

let mc_config =
  { Aved_avail.Monte_carlo.replications = 4; horizon = Duration.of_years 10.; seed = 11 }

let test_decomposition_sums_across_engines () =
  let _, winner = searched_optimal () in
  let model = winner.Candidate.model in
  List.iter
    (fun (name, engine) ->
      let d = Evaluate.tier_downtime_decomposition engine model in
      let parts =
        List.fold_left
          (fun acc (c : Evaluate.class_contribution) -> acc +. c.fraction)
          0. d.by_class
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: classes sum to total (|%.3e|)" name
           (parts -. d.total))
        true
        (Float.abs (parts -. d.total) <= 1e-9);
      Alcotest.(check int)
        (name ^ ": one contribution per class")
        (List.length model.Tier_model.classes)
        (List.length d.by_class);
      List.iter
        (fun (c : Evaluate.class_contribution) ->
          Alcotest.(check bool) (name ^ ": non-negative") true
            (c.fraction >= 0.))
        d.by_class;
      (* Grouping by mechanism preserves the sum. *)
      let grouped =
        List.fold_left
          (fun acc (_, f) -> acc +. f)
          0.
          (Evaluate.by_mechanism d)
      in
      Alcotest.(check bool) (name ^ ": mechanism groups sum") true
        (Float.abs (grouped -. d.total) <= 1e-9))
    [
      ("analytic", Evaluate.Analytic);
      ("exact", Evaluate.Exact { max_states = 50_000 });
      ("monte-carlo", Evaluate.Monte_carlo mc_config);
    ]

let test_decomposition_carries_mechanism () =
  let _, winner = searched_optimal () in
  let d =
    Evaluate.tier_downtime_decomposition Evaluate.Analytic
      winner.Candidate.model
  in
  (* The application tier's hardware mode repairs via a maintenance
     contract; its software modes have fixed (zero) repair. *)
  Alcotest.(check bool) "a mechanism-repaired mode exists" true
    (List.exists
       (fun (c : Evaluate.class_contribution) ->
         match c.repair_mechanism with Some _ -> true | None -> false)
       d.by_class);
  Alcotest.(check bool) "a fixed-repair mode exists" true
    (List.exists
       (fun (c : Evaluate.class_contribution) -> c.repair_mechanism = None)
       d.by_class)

let test_by_mechanism_grouping () =
  let d =
    {
      Evaluate.total = 0.6;
      by_class =
        [
          { Evaluate.label = "a"; repair_mechanism = Some "m"; fraction = 0.1 };
          { Evaluate.label = "b"; repair_mechanism = None; fraction = 0.2 };
          { Evaluate.label = "c"; repair_mechanism = Some "m"; fraction = 0.3 };
        ];
    }
  in
  match Evaluate.by_mechanism d with
  | [ (Some "m", f1); (None, f2) ] ->
      Alcotest.(check (float 1e-12)) "mechanism sum" 0.4 f1;
      Alcotest.(check (float 1e-12)) "fixed sum" 0.2 f2
  | groups ->
      Alcotest.failf "unexpected grouping of %d entries" (List.length groups)

let perfect_model =
  {
    Tier_model.tier_name = "perfect";
    n_active = 1;
    n_min = 1;
    n_spare = 0;
    failure_scope = Service.Resource_scope;
    classes = [];
    loss_window = None;
    effective_performance = 1.;
  }

let test_decomposition_perfect_tier () =
  let d = Evaluate.tier_downtime_decomposition Evaluate.Analytic perfect_model in
  Alcotest.(check (float 0.)) "no downtime" 0. d.total;
  Alcotest.(check int) "no classes" 0 (List.length d.by_class)

(* ------------------------------------------------------------------ *)
(* Typed rejection (satellite: no blanket Invalid_argument catch) *)

let test_rejected_is_typed () =
  let starved = { perfect_model with effective_performance = 0. } in
  Alcotest.(check bool) "zero throughput raises Rejected" true
    (match
       Evaluate.job_completion_time Evaluate.Analytic starved ~job_size:10.
     with
    | _ -> false
    | exception Tier_model.Rejected _ -> true)

(* ------------------------------------------------------------------ *)
(* Nines formatting *)

let test_nines () =
  let mk fraction =
    {
      Candidate.design = dummy_design ();
      model = perfect_model;
      cost = Money.zero;
      downtime_fraction = fraction;
    }
  in
  Alcotest.(check (float 1e-9)) "3 nines" 3. (Candidate.nines (mk 0.001));
  Alcotest.(check string) "formatted" "3.0"
    (Format.asprintf "%a" Candidate.pp_nines (mk 0.001));
  Alcotest.(check string) "perfect is inf" "inf"
    (Format.asprintf "%a" Candidate.pp_nines (mk 0.));
  Alcotest.(check (float 1e-9))
    "availability nines agree" 5.
    (Availability.nines (Availability.of_fraction 0.99999))

(* ------------------------------------------------------------------ *)
(* JSON *)

let test_json_serializer () =
  Alcotest.(check string) "escaping" "{\"a\\\"b\":\"x\\ny\"}"
    (Json.to_string (Json.Obj [ ("a\"b", Json.String "x\ny") ]));
  Alcotest.(check string) "scalars" "[null,true,3,0.1,\"s\"]"
    (Json.to_string
       (Json.List
          [ Json.Null; Json.Bool true; Json.Int 3; Json.Float 0.1;
            Json.String "s" ]));
  Alcotest.(check string) "non-finite floats are null" "[null,null]"
    (Json.to_string
       (Json.List [ Json.Float Float.infinity; Json.Float Float.nan ]));
  (* Round-tripping: the printed representation parses back exactly. *)
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      Alcotest.(check (float 0.)) ("round-trip " ^ s) f (float_of_string s))
    [ 0.1; 1. /. 3.; 1e-300; 98.26587 /. (365. *. 24. *. 60.) ]

let test_explanation_json_shape () =
  let trail, winner = searched_optimal () in
  let tier =
    Explain.explain_tier ~top:2 ~trail ~engine:Evaluate.Analytic
      ~design:winner.Candidate.design ~cost:winner.Candidate.cost
      ~model:winner.Candidate.model ()
  in
  let json =
    Explain.to_json
      {
        Explain.service_name = "svc";
        engine = "analytic";
        cost = winner.Candidate.cost;
        downtime = Some (Candidate.downtime winner);
        execution_time = None;
        tiers = [ tier ];
        noted = Provenance.noted trail;
        dropped = Provenance.dropped trail;
      }
  in
  match json with
  | Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool) ("has " ^ key) true (List.mem_assoc key fields))
        [ "service"; "engine"; "cost"; "downtime_minutes_per_year";
          "provenance"; "tiers" ];
      (match List.assoc "tiers" fields with
      | Json.List [ Json.Obj tier_fields ] -> (
          match List.assoc "downtime" tier_fields with
          | Json.Obj downtime_fields ->
              (* The JSON carries the raw fractions: the sum-to-total
                 check CI runs must hold on the emitted values. *)
              let fraction = function
                | Json.Float f -> f
                | _ -> Alcotest.fail "fraction not a float"
              in
              let total = fraction (List.assoc "fraction" downtime_fields) in
              let parts =
                match List.assoc "by_class" downtime_fields with
                | Json.List classes ->
                    List.fold_left
                      (fun acc c ->
                        match c with
                        | Json.Obj cf ->
                            acc +. fraction (List.assoc "fraction" cf)
                        | _ -> Alcotest.fail "class not an object")
                      0. classes
                | _ -> Alcotest.fail "by_class not a list"
              in
              Alcotest.(check bool) "emitted fractions sum" true
                (Float.abs (parts -. total) <= 1e-9)
          | _ -> Alcotest.fail "downtime not an object")
      | _ -> Alcotest.fail "tiers shape");
  | _ -> Alcotest.fail "top-level not an object"

(* ------------------------------------------------------------------ *)
(* Frontier step annotation *)

let test_annotate_step () =
  let frontier =
    Tier_search.frontier config (infra ()) ~tier:(app_tier ()) ~demand:1000.
  in
  (match frontier with
  | a :: b :: _ ->
      let line = Explain.annotate_step ~prev:a ~next:b in
      let contains needle =
        let nl = String.length needle and hl = String.length line in
        let rec scan i =
          i + nl <= hl && (String.sub line i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) ("describes a change: " ^ line) true
        (contains "->");
      Alcotest.(check bool) "prices the step" true (contains "buys");
      Alcotest.(check bool) "reports nines" true (contains "nines")
  | _ -> Alcotest.fail "frontier too small");
  (* Hand-built step: only n_spare changes. *)
  let mk ~n_spare ~cost ~fraction =
    {
      Candidate.design = dummy_design ~n_active:5 ~n_spare ();
      model = perfect_model;
      cost = Money.of_float cost;
      downtime_fraction = fraction;
    }
  in
  let line =
    Explain.annotate_step
      ~prev:(mk ~n_spare:0 ~cost:100. ~fraction:0.001)
      ~next:(mk ~n_spare:1 ~cost:150. ~fraction:0.0001)
  in
  let expect_prefix = "n_spare 0->1: +50/yr buys " in
  Alcotest.(check string) "diff and delta"
    expect_prefix
    (String.sub line 0 (String.length expect_prefix))

let () =
  Alcotest.run "explain"
    [
      ( "trail",
        [
          Alcotest.test_case "ring bound" `Quick test_ring_bound;
          Alcotest.test_case "disabled note is inert" `Quick
            test_note_disabled_is_free;
          Alcotest.test_case "with_trail scoping" `Quick
            test_with_trail_scoping;
          Alcotest.test_case "fate labels" `Quick test_fate_labels;
        ] );
      ( "fates",
        [
          Alcotest.test_case "search records fates" `Quick
            test_search_records_fates;
          Alcotest.test_case "runner-ups deterministic across jobs" `Quick
            test_runner_ups_deterministic_across_jobs;
          Alcotest.test_case "tier explanation" `Quick test_explain_tier_report;
        ] );
      ( "decomposition",
        [
          Alcotest.test_case "sums across engines" `Quick
            test_decomposition_sums_across_engines;
          Alcotest.test_case "carries repair mechanism" `Quick
            test_decomposition_carries_mechanism;
          Alcotest.test_case "by-mechanism grouping" `Quick
            test_by_mechanism_grouping;
          Alcotest.test_case "perfect tier" `Quick
            test_decomposition_perfect_tier;
          Alcotest.test_case "rejection is typed" `Quick test_rejected_is_typed;
        ] );
      ( "format",
        [
          Alcotest.test_case "nines" `Quick test_nines;
          Alcotest.test_case "json serializer" `Quick test_json_serializer;
          Alcotest.test_case "explanation json shape" `Quick
            test_explanation_json_shape;
          Alcotest.test_case "annotate step" `Quick test_annotate_step;
        ] );
    ]
