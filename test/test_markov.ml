module Ctmc = Aved_markov.Ctmc
module Birth_death = Aved_markov.Birth_death

let check_float = Alcotest.(check (float 1e-9))

let two_state lambda mu =
  let chain = Ctmc.create 2 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:lambda;
  Ctmc.add_transition chain ~src:1 ~dst:0 ~rate:mu;
  chain

let test_two_state_stationary () =
  let lambda = 0.2 and mu = 3. in
  let expected_up = mu /. (lambda +. mu) in
  let chain = two_state lambda mu in
  let pi_gth = Ctmc.stationary_gth chain in
  let pi_lu = Ctmc.stationary_lu chain in
  check_float "gth up" expected_up pi_gth.(0);
  check_float "gth down" (1. -. expected_up) pi_gth.(1);
  check_float "lu up" expected_up pi_lu.(0);
  check_float "lu down" (1. -. expected_up) pi_lu.(1)

let test_builder_validation () =
  let chain = Ctmc.create 3 in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Ctmc.add_transition: self-loop") (fun () ->
      Ctmc.add_transition chain ~src:1 ~dst:1 ~rate:1.);
  Alcotest.check_raises "bad rate"
    (Invalid_argument "Ctmc.add_transition: rate -1") (fun () ->
      Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:(-1.));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Ctmc: destination state 7 out of [0, 3)") (fun () ->
      Ctmc.add_transition chain ~src:0 ~dst:7 ~rate:1.);
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:0.5;
  check_float "rates merge" 1.5 (Ctmc.total_exit_rate chain 0);
  Alcotest.(check int) "merged transitions" 1
    (List.length (Ctmc.transitions chain))

let test_generator () =
  let chain = two_state 2. 5. in
  let q = Ctmc.generator chain in
  check_float "diag 0" (-2.) (Aved_linalg.Matrix.get q 0 0);
  check_float "offdiag" 2. (Aved_linalg.Matrix.get q 0 1);
  check_float "diag 1" (-5.) (Aved_linalg.Matrix.get q 1 1)

let test_mm1k_distribution () =
  (* M/M/1/K queue: birth rate l, death rate m, K = 4. pi_k ~ rho^k. *)
  let l = 1.0 and m = 2.0 in
  let rho = l /. m in
  let k = 4 in
  let bd =
    Birth_death.create ~up:(Array.make k l) ~down:(Array.make k m)
  in
  let pi = Birth_death.stationary bd in
  let norm = (1. -. (rho ** float_of_int (k + 1))) /. (1. -. rho) in
  Array.iteri
    (fun i p -> check_float (Printf.sprintf "pi_%d" i) ((rho ** float_of_int i) /. norm) p)
    pi

let test_birth_death_validation () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Birth_death.create: rate arrays differ in length")
    (fun () -> ignore (Birth_death.create ~up:[| 1. |] ~down:[||]));
  Alcotest.check_raises "unreturnable"
    (Invalid_argument "Birth_death.create: state 1 reachable but cannot return")
    (fun () -> ignore (Birth_death.create ~up:[| 1. |] ~down:[| 0. |]))

let test_birth_death_unreachable_states () =
  (* A zero up-rate cuts the chain: upper states get probability 0. *)
  let bd = Birth_death.create ~up:[| 1.; 0.; 5. |] ~down:[| 2.; 1.; 1. |] in
  let pi = Birth_death.stationary bd in
  check_float "state 2 unreachable" 0. pi.(2);
  check_float "state 3 unreachable" 0. pi.(3);
  check_float "mass conserved" 1. (pi.(0) +. pi.(1))

let gen_birth_death =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* up = array_repeat n (float_range 0.01 10.) in
  let* down = array_repeat n (float_range 0.01 10.) in
  return (Birth_death.create ~up ~down)

let test_birth_death_vs_gth () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"closed form matches GTH" ~count:200
       gen_birth_death (fun bd ->
         let closed = Birth_death.stationary bd in
         let general = Ctmc.stationary_gth (Birth_death.to_ctmc bd) in
         Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-9) closed general))

let test_gth_vs_lu () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"GTH matches LU on random chains" ~count:200
       QCheck2.Gen.(
         let* n = int_range 2 7 in
         let* rates =
           array_repeat (n * n) (float_range 0.01 5.)
         in
         return (n, rates))
       (fun (n, rates) ->
         let chain = Ctmc.create n in
         for i = 0 to n - 1 do
           for j = 0 to n - 1 do
             if i <> j then
               Ctmc.add_transition chain ~src:i ~dst:j
                 ~rate:rates.((i * n) + j)
           done
         done;
         let a = Ctmc.stationary_gth chain in
         let b = Ctmc.stationary_lu chain in
         Array.for_all2 (fun x y -> Float.abs (x -. y) < 1e-8) a b))

let test_stationary_is_invariant () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"pi Q = 0" ~count:100 gen_birth_death (fun bd ->
         let chain = Birth_death.to_ctmc bd in
         let pi = Ctmc.stationary chain in
         let flow =
           Aved_linalg.Matrix.vec_mul pi (Ctmc.generator chain)
         in
         Aved_linalg.Vector.norm_inf flow < 1e-9))

let test_probability_at_least () =
  let bd = Birth_death.create ~up:[| 1. |] ~down:[| 1. |] in
  check_float "half" 0.5 (Birth_death.probability_at_least bd 1);
  check_float "all" 1. (Birth_death.probability_at_least bd 0);
  check_float "none" 0. (Birth_death.probability_at_least bd 2)

let test_mean_time_to_absorption () =
  (* Single transient state, exp(lambda) to absorption: mean 1/lambda. *)
  let lambda = 0.25 in
  let chain = Ctmc.create 2 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:lambda;
  check_float "exponential absorption" (1. /. lambda)
    (Ctmc.mean_time_to_absorption chain ~absorbing:(fun s -> s = 1) ~start:0);
  check_float "absorbing start" 0.
    (Ctmc.mean_time_to_absorption chain ~absorbing:(fun s -> s = 1) ~start:1);
  (* Two sequential exponential stages: means add. *)
  let chain2 = Ctmc.create 3 in
  Ctmc.add_transition chain2 ~src:0 ~dst:1 ~rate:2.;
  Ctmc.add_transition chain2 ~src:1 ~dst:2 ~rate:4.;
  check_float "stages add" 0.75
    (Ctmc.mean_time_to_absorption chain2 ~absorbing:(fun s -> s = 2) ~start:0)

let test_expected_reward () =
  let chain = two_state 1. 1. in
  check_float "reward" 0.5
    (Ctmc.expected_reward chain ~reward:(fun s -> if s = 0 then 1. else 0.));
  check_float "probability_in" 0.5 (Ctmc.probability_in chain (fun s -> s = 1))

let test_transient () =
  let lambda = 1. and mu = 2. in
  let chain = two_state lambda mu in
  let initial = [| 1.; 0. |] in
  (* t = 0 stays put. *)
  let p0 = Ctmc.transient chain ~initial ~time:0. ~epsilon:1e-12 in
  check_float "t=0" 1. p0.(0);
  (* Closed form: p_up(t) = mu/(l+m) + l/(l+m) e^{-(l+m)t}. *)
  let t = 0.7 in
  let expected =
    (mu /. (lambda +. mu))
    +. (lambda /. (lambda +. mu)) *. Float.exp (-.(lambda +. mu) *. t)
  in
  let pt = Ctmc.transient chain ~initial ~time:t ~epsilon:1e-12 in
  Alcotest.(check (float 1e-8)) "closed form" expected pt.(0);
  (* Long horizon approaches the stationary distribution. *)
  let pinf = Ctmc.transient chain ~initial ~time:50. ~epsilon:1e-12 in
  let pi = Ctmc.stationary chain in
  Alcotest.(check (float 1e-6)) "limit" pi.(0) pinf.(0);
  (* Mass conserved. *)
  check_float "mass" 1. (pt.(0) +. pt.(1))

let test_reducible_gth () =
  (* Two disjoint closed classes: states unable to reach state 0's class
     get probability 0 and the rest renormalizes. *)
  let chain = Ctmc.create 4 in
  Ctmc.add_transition chain ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition chain ~src:1 ~dst:0 ~rate:1.;
  Ctmc.add_transition chain ~src:2 ~dst:3 ~rate:1.;
  Ctmc.add_transition chain ~src:3 ~dst:2 ~rate:1.;
  let pi = Ctmc.stationary_gth chain in
  check_float "class of 0, state 0" 0.5 pi.(0);
  check_float "class of 0, state 1" 0.5 pi.(1);
  check_float "unreachable class" 0. (pi.(2) +. pi.(3));
  (* Mass flowing out of state 0's class into a second closed class is a
     genuine error: the stationary distribution is not unique from 0. *)
  let leaky = Ctmc.create 4 in
  Ctmc.add_transition leaky ~src:0 ~dst:1 ~rate:1.;
  Ctmc.add_transition leaky ~src:1 ~dst:0 ~rate:1.;
  Ctmc.add_transition leaky ~src:0 ~dst:2 ~rate:1.;
  Ctmc.add_transition leaky ~src:2 ~dst:3 ~rate:1.;
  Ctmc.add_transition leaky ~src:3 ~dst:2 ~rate:1.;
  match Ctmc.stationary_gth leaky with
  | _ -> Alcotest.fail "expected reducible-chain failure"
  | exception Ctmc.Non_ergodic _ -> ()

(* ------------------------------------------------------------------ *)
(* Stochastic Petri nets *)

module Petri = Aved_markov.Petri

let test_petri_two_state () =
  (* up <-> down: a 2-place availability net. *)
  let net = Petri.create ~places:2 in
  Petri.add_transition net ~label:"fail" ~rate:0.2 ~inputs:[ (0, 1) ]
    ~outputs:[ (1, 1) ] ();
  Petri.add_transition net ~label:"repair" ~rate:3. ~inputs:[ (1, 1) ]
    ~outputs:[ (0, 1) ] ();
  let compiled = Petri.compile net ~initial:[| 1; 0 |] () in
  Alcotest.(check int) "two markings" 2
    (Aved_markov.Ctmc.num_states compiled.chain);
  check_float "availability" (3. /. 3.2)
    (Petri.probability compiled (fun m -> m.(0) = 1));
  check_float "expected up tokens" (3. /. 3.2)
    (Petri.expected_tokens compiled 0)

let test_petri_machine_repair () =
  (* The machine-repair model: N machines, infinite-server failures,
     single repairman — must match the birth-death closed form. *)
  let n = 4 in
  let lambda = 0.3 and mu = 1.7 in
  let net = Petri.create ~places:2 in
  (* place 0 = working, place 1 = broken *)
  Petri.add_transition net ~label:"fail" ~rate:lambda
    ~semantics:Petri.Infinite_server ~inputs:[ (0, 1) ] ~outputs:[ (1, 1) ] ();
  Petri.add_transition net ~label:"repair" ~rate:mu ~inputs:[ (1, 1) ]
    ~outputs:[ (0, 1) ] ();
  let compiled = Petri.compile net ~initial:[| n; 0 |] () in
  let bd =
    Aved_markov.Birth_death.create
      ~up:(Array.init n (fun k -> float_of_int (n - k) *. lambda))
      ~down:(Array.make n mu)
  in
  let pi = Aved_markov.Birth_death.stationary bd in
  for k = 0 to n do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "pi_%d" k)
      pi.(k)
      (Petri.probability compiled (fun m -> m.(1) = k))
  done

let test_petri_infinite_server_degree () =
  (* Infinite-server repairs: rate scales with the broken count. *)
  let net = Petri.create ~places:2 in
  Petri.add_transition net ~label:"fail" ~rate:1.
    ~semantics:Petri.Infinite_server ~inputs:[ (0, 1) ] ~outputs:[ (1, 1) ] ();
  Petri.add_transition net ~label:"repair" ~rate:2.
    ~semantics:Petri.Infinite_server ~inputs:[ (1, 1) ] ~outputs:[ (0, 1) ] ();
  let compiled = Petri.compile net ~initial:[| 3; 0 |] () in
  (* Independent units: broken count ~ Binomial(3, 1/3). *)
  let p_broken = 1. /. 3. in
  for k = 0 to 3 do
    let rec choose n k =
      if k = 0 || k = n then 1.
      else choose (n - 1) (k - 1) *. float_of_int n /. float_of_int k
    in
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "binomial %d" k)
      (choose 3 k *. (p_broken ** float_of_int k)
      *. ((1. -. p_broken) ** float_of_int (3 - k)))
      (Petri.probability compiled (fun m -> m.(1) = k))
  done

let test_petri_validation () =
  let net = Petri.create ~places:2 in
  Alcotest.(check bool) "bad rate" true
    (match
       Petri.add_transition net ~label:"x" ~rate:0. ~inputs:[ (0, 1) ]
         ~outputs:[] ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad weight" true
    (match
       Petri.add_transition net ~label:"x" ~rate:1. ~inputs:[ (0, 0) ]
         ~outputs:[] ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "bad place" true
    (match
       Petri.add_transition net ~label:"x" ~rate:1. ~inputs:[ (7, 1) ]
         ~outputs:[] ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "arity mismatch" true
    (match Petri.compile net ~initial:[| 1 |] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_petri_unbounded_guard () =
  (* A pure producer is unbounded: the state cap must fire. *)
  let net = Petri.create ~places:1 in
  Petri.add_transition net ~label:"produce" ~rate:1. ~inputs:[]
    ~outputs:[ (0, 1) ] ();
  Alcotest.(check bool) "cap fires" true
    (match Petri.compile net ~initial:[| 0 |] ~max_states:50 () with
    | _ -> false
    | exception Failure _ -> true)

let test_petri_index_of () =
  let net = Petri.create ~places:2 in
  Petri.add_transition net ~label:"move" ~rate:1. ~inputs:[ (0, 1) ]
    ~outputs:[ (1, 1) ] ();
  Petri.add_transition net ~label:"back" ~rate:1. ~inputs:[ (1, 1) ]
    ~outputs:[ (0, 1) ] ();
  let compiled = Petri.compile net ~initial:[| 2; 0 |] () in
  Alcotest.(check (option int)) "initial is state 0" (Some 0)
    (compiled.index_of [| 2; 0 |]);
  Alcotest.(check bool) "reachable marking found" true
    (compiled.index_of [| 0; 2 |] <> None);
  Alcotest.(check (option int)) "unreachable marking" None
    (compiled.index_of [| 3; 0 |])

let () =
  Alcotest.run "markov"
    [
      ( "ctmc",
        [
          Alcotest.test_case "two-state stationary" `Quick
            test_two_state_stationary;
          Alcotest.test_case "builder validation" `Quick
            test_builder_validation;
          Alcotest.test_case "generator matrix" `Quick test_generator;
          Alcotest.test_case "mean time to absorption" `Quick
            test_mean_time_to_absorption;
          Alcotest.test_case "expected reward" `Quick test_expected_reward;
          Alcotest.test_case "transient (uniformization)" `Quick
            test_transient;
          Alcotest.test_case "reducible chain rejected" `Quick
            test_reducible_gth;
        ] );
      ( "birth-death",
        [
          Alcotest.test_case "M/M/1/K distribution" `Quick
            test_mm1k_distribution;
          Alcotest.test_case "validation" `Quick test_birth_death_validation;
          Alcotest.test_case "unreachable states" `Quick
            test_birth_death_unreachable_states;
          Alcotest.test_case "probability_at_least" `Quick
            test_probability_at_least;
        ] );
      ( "petri",
        [
          Alcotest.test_case "two-state availability" `Quick
            test_petri_two_state;
          Alcotest.test_case "machine repair vs birth-death" `Quick
            test_petri_machine_repair;
          Alcotest.test_case "infinite-server degree" `Quick
            test_petri_infinite_server_degree;
          Alcotest.test_case "validation" `Quick test_petri_validation;
          Alcotest.test_case "unbounded net guarded" `Quick
            test_petri_unbounded_guard;
          Alcotest.test_case "marking lookup" `Quick test_petri_index_of;
        ] );
      ( "properties",
        [
          Alcotest.test_case "closed form vs GTH" `Quick
            test_birth_death_vs_gth;
          Alcotest.test_case "GTH vs LU" `Quick test_gth_vs_lu;
          Alcotest.test_case "stationarity" `Quick test_stationary_is_invariant;
        ] );
    ]
