module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Tier_model = Aved_avail.Tier_model
module Analytic = Aved_avail.Analytic
module Exact = Aved_avail.Exact
module Monte_carlo = Aved_avail.Monte_carlo
module Evaluate = Aved_avail.Evaluate
module Transient = Aved_avail.Transient
open Aved_model

let check_float = Alcotest.(check (float 1e-9))

(* ------------------------------------------------------------------ *)
(* Hand-built tier models for the engines *)

let failure_class ?(label = "c/m") ~mtbf_days ~mttr ~failover
    ~failover_considered () =
  {
    Tier_model.label;
    rate = 1. /. Duration.seconds (Duration.of_days mtbf_days);
    mttr;
    failover_time = failover;
    failover_considered;
    repair_mechanism = None;
  }

let model ?(n_active = 1) ?(n_min = 1) ?(n_spare = 0)
    ?(failure_scope = Service.Resource_scope) ?loss_window ?(perf = 10.)
    classes =
  {
    Tier_model.tier_name = "t";
    n_active;
    n_min;
    n_spare;
    failure_scope;
    classes;
    loss_window;
    effective_performance = perf;
  }

let single_mode ~mtbf_days ~mttr_hours =
  failure_class ~mtbf_days ~mttr:(Duration.of_hours mttr_hours)
    ~failover:(Duration.of_minutes 5.) ~failover_considered:false ()

let test_two_state_closed_form () =
  (* One resource, no spares: unavailability = rho/(1+rho). *)
  let m = model [ single_mode ~mtbf_days:10. ~mttr_hours:12. ] in
  let rho = 12. /. (10. *. 24.) in
  check_float "analytic" (rho /. (1. +. rho)) (Analytic.downtime_fraction m);
  check_float "exact agrees" (rho /. (1. +. rho)) (Exact.downtime_fraction m)

let test_no_failures () =
  let m = model [] in
  check_float "no classes no downtime" 0. (Analytic.downtime_fraction m);
  check_float "exact" 0. (Exact.downtime_fraction m)

let test_failover_transient_accounting () =
  (* n = m = 1 with one spare and failover considered: the chain sees
     state 1 as up, so downtime is the failover transient plus the
     two-failure chain mass. *)
  let ft = Duration.of_minutes 5. in
  let c =
    failure_class ~mtbf_days:10. ~mttr:(Duration.of_hours 12.) ~failover:ft
      ~failover_considered:true ()
  in
  let m = model ~n_spare:1 [ c ] in
  let pi = Analytic.state_distribution m in
  let expected_transient = pi.(0) *. c.rate *. Duration.seconds ft in
  check_float "transient term" expected_transient
    (Analytic.transient_down_fraction m);
  check_float "chain term" pi.(2) (Analytic.chain_down_fraction m);
  Alcotest.(check bool) "spare helps" true
    (Analytic.downtime_fraction m
    < Analytic.downtime_fraction (model [ c ]))

let test_extra_actives_absorb_failures () =
  (* n = 2, m = 1: a single failure leaves the service up with no
     transient; only the double-failure state is down. *)
  let c = single_mode ~mtbf_days:10. ~mttr_hours:12. in
  let m = model ~n_active:2 ~n_min:1 [ c ] in
  check_float "no transient" 0. (Analytic.transient_down_fraction m);
  let pi = Analytic.state_distribution m in
  check_float "only double failure" pi.(2) (Analytic.downtime_fraction m)

let test_tier_scope_every_failure_counts () =
  let ft = Duration.of_minutes 5. in
  let c =
    failure_class ~mtbf_days:10. ~mttr:(Duration.of_hours 12.) ~failover:ft
      ~failover_considered:true ()
  in
  let m =
    model ~n_active:4 ~n_min:4 ~n_spare:1
      ~failure_scope:Service.Tier_scope [ c ]
  in
  let pi = Analytic.state_distribution m in
  (* From state 0 (all 5 operational... 4 active), any failure interrupts. *)
  let expected = pi.(0) *. 4. *. c.rate *. Duration.seconds ft in
  check_float "tier transient" expected (Analytic.transient_down_fraction m)

let test_engines_agree_single_class () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"analytic equals exact for one class" ~count:100
       QCheck2.Gen.(
         let* n = int_range 1 4 in
         let* s = int_range 0 2 in
         let* mtbf = float_range 5. 500. in
         let* mttr = float_range 0.5 48. in
         return (n, s, mtbf, mttr))
       (fun (n, s, mtbf_days, mttr_hours) ->
         let m =
           model ~n_active:n ~n_min:n ~n_spare:s
             [ single_mode ~mtbf_days ~mttr_hours ]
         in
         let a = Analytic.downtime_fraction m in
         let b = Exact.downtime_fraction m in
         Float.abs (a -. b) <= 1e-12 +. (1e-9 *. a)))

let test_engines_close_multi_class () =
  (* With unequal repair rates the aggregate chain is an approximation;
     on realistic parameters it stays within a few percent of exact. *)
  let classes =
    [
      single_mode ~mtbf_days:650. ~mttr_hours:38.;
      single_mode ~mtbf_days:21. ~mttr_hours:0.075;
    ]
  in
  List.iter
    (fun (n, s) ->
      let m = model ~n_active:n ~n_min:n ~n_spare:s classes in
      let a = Analytic.downtime_fraction m in
      let b = Exact.downtime_fraction m in
      Alcotest.(check bool)
        (Printf.sprintf "n=%d s=%d: %.3e vs %.3e" n s a b)
        true
        (Float.abs (a -. b) /. b < 0.25))
    [ (1, 0); (2, 0); (2, 1); (3, 1) ]

let test_monte_carlo_agrees () =
  let m =
    model ~n_active:2 ~n_min:2 ~n_spare:1
      [
        failure_class ~mtbf_days:20. ~mttr:(Duration.of_hours 24.)
          ~failover:(Duration.of_minutes 10.) ~failover_considered:true ();
      ]
  in
  let exact = Exact.downtime_fraction m in
  let config =
    { Monte_carlo.replications = 24; horizon = Duration.of_years 40.; seed = 7 }
  in
  let summary = Monte_carlo.downtime_fractions ~config m in
  let relative = Float.abs (summary.mean -. exact) /. exact in
  Alcotest.(check bool)
    (Printf.sprintf "simulated %.4e vs exact %.4e (rel %.2f)" summary.mean
       exact relative)
    true (relative < 0.2)

let test_monte_carlo_deterministic () =
  let m = model [ single_mode ~mtbf_days:30. ~mttr_hours:10. ] in
  let config =
    { Monte_carlo.replications = 4; horizon = Duration.of_years 5.; seed = 3 }
  in
  check_float "same seed same result"
    (Monte_carlo.downtime_fraction ~config m)
    (Monte_carlo.downtime_fraction ~config m)

let test_spares_monotone () =
  let c =
    failure_class ~mtbf_days:30. ~mttr:(Duration.of_hours 24.)
      ~failover:(Duration.of_minutes 5.) ~failover_considered:true ()
  in
  let downtime s =
    Analytic.downtime_fraction (model ~n_active:3 ~n_min:3 ~n_spare:s [ c ])
  in
  Alcotest.(check bool) "one spare helps" true (downtime 1 < downtime 0);
  Alcotest.(check bool) "two spares help more" true (downtime 2 < downtime 1)

let test_rate_monotone () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"downtime grows with failure rate" ~count:100
       QCheck2.Gen.(
         let* m1 = float_range 5. 500. in
         let* m2 = float_range 5. 500. in
         return (Float.min m1 m2, Float.max m1 m2))
       (fun (fast, slow) ->
         let downtime mtbf_days =
           Analytic.downtime_fraction
             (model ~n_active:2 ~n_min:2
                [ single_mode ~mtbf_days ~mttr_hours:8. ])
         in
         downtime fast >= downtime slow -. 1e-15))

(* ------------------------------------------------------------------ *)
(* Job completion *)

let test_job_time_formula () =
  (* perf 10 units/h, job 100 units: ideal 10 h; with availability A and
     loss window lw the closed form must match Evaluate. *)
  let lw = Duration.of_hours 1. in
  let m =
    model ~perf:10. ~loss_window:lw
      ~failure_scope:Service.Tier_scope
      [ single_mode ~mtbf_days:10. ~mttr_hours:12. ]
  in
  let t = Evaluate.job_completion_time Evaluate.Analytic m ~job_size:100. in
  let a = 1. -. Analytic.downtime_fraction m in
  let mtbf_h = 240. in
  let t_lw = mtbf_h *. (Float.exp (1. /. mtbf_h) -. 1.) in
  check_float "closed form" (10. /. a *. t_lw) (Duration.hours t)

let test_job_time_no_checkpoint_worse () =
  let mk lw =
    model ~perf:10. ?loss_window:lw ~failure_scope:Service.Tier_scope
      [ single_mode ~mtbf_days:2. ~mttr_hours:2. ]
  in
  let with_ckpt =
    Evaluate.job_completion_time Evaluate.Analytic
      (mk (Some (Duration.of_minutes 30.)))
      ~job_size:1000.
  in
  let without =
    Evaluate.job_completion_time Evaluate.Analytic (mk None) ~job_size:1000.
  in
  Alcotest.(check bool) "checkpointing helps long jobs" true
    (Duration.compare with_ckpt without < 0)

let test_job_time_monte_carlo () =
  let m =
    model ~perf:10. ~loss_window:(Duration.of_hours 2.)
      ~failure_scope:Service.Tier_scope
      [
        failure_class ~mtbf_days:5. ~mttr:(Duration.of_hours 6.)
          ~failover:(Duration.of_minutes 5.) ~failover_considered:false ();
      ]
  in
  let analytic =
    Duration.hours
      (Evaluate.job_completion_time Evaluate.Analytic m ~job_size:2000.)
  in
  let config =
    { Monte_carlo.replications = 48; horizon = Duration.of_years 1.; seed = 11 }
  in
  let sim = Monte_carlo.job_completion_times ~config m ~job_size:2000. in
  let relative = Float.abs (sim.mean -. analytic) /. analytic in
  Alcotest.(check bool)
    (Printf.sprintf "sim %.1fh vs analytic %.1fh (rel %.2f)" sim.mean analytic
       relative)
    true (relative < 0.2)

let test_evaluate_facade () =
  let m =
    model ~n_active:2 ~n_min:2 ~n_spare:1
      [ single_mode ~mtbf_days:20. ~mttr_hours:24. ]
  in
  let analytic = Evaluate.tier_downtime_fraction Evaluate.Analytic m in
  let exact =
    Evaluate.tier_downtime_fraction (Evaluate.Exact { max_states = 5000 }) m
  in
  Alcotest.(check bool) "facade dispatches analytic vs exact" true
    (Float.abs (analytic -. exact) /. exact < 0.01);
  let mc =
    Evaluate.tier_downtime_fraction
      (Evaluate.Monte_carlo
         { Monte_carlo.replications = 16; horizon = Duration.of_years 30.;
           seed = 4 })
      m
  in
  Alcotest.(check bool) "facade dispatches simulation" true
    (Float.abs (mc -. exact) /. exact < 0.3);
  (* Series composition across two copies of the tier. *)
  let service = Evaluate.service_annual_downtime Evaluate.Analytic [ m; m ] in
  let single = Evaluate.tier_annual_downtime Evaluate.Analytic m in
  Alcotest.(check bool) "two tiers roughly double the downtime" true
    (Duration.seconds service > 1.9 *. Duration.seconds single
    && Duration.seconds service <= 2. *. Duration.seconds single +. 1e-6);
  (* Interruption rate at time 0 equals the all-up-state rate. *)
  let m2 =
    model ~n_spare:1
      [
        failure_class ~mtbf_days:10. ~mttr:(Duration.of_hours 12.)
          ~failover:(Duration.of_minutes 5.) ~failover_considered:true ();
      ]
  in
  let c = List.hd m2.Tier_model.classes in
  Alcotest.(check (float 1e-12)) "interruption rate at t=0"
    (c.rate *. Duration.seconds c.failover_time)
    (Transient.interruption_rate_at m2 Duration.zero)

let test_exceedance_probability () =
  let m =
    model ~n_active:2 ~n_min:2
      [ single_mode ~mtbf_days:30. ~mttr_hours:6. ]
  in
  let config =
    { Monte_carlo.replications = 64; horizon = Duration.of_years 1.; seed = 13 }
  in
  let p budget_minutes =
    Monte_carlo.exceedance_probability ~config m
      ~budget:(Duration.of_minutes budget_minutes)
  in
  Alcotest.(check (float 1e-9)) "tiny budget always busted" 1. (p 0.001);
  Alcotest.(check (float 1e-9)) "huge budget never busted" 0. (p 1e9);
  Alcotest.(check bool) "monotone" true (p 10. >= p 100. && p 100. >= p 1000.);
  (* Either unit down counts (n = m = 2): mean annual downtime is about
     8700 min, so a 100-minute budget busts almost surely and a
     20000-minute one almost never. *)
  Alcotest.(check bool) "mid budgets discriminate" true
    (p 100. > 0.5 && p 20000. < 0.5)

(* ------------------------------------------------------------------ *)
(* Tier_model.build on the paper's infrastructure *)

let paper_option resource_name =
  let service = Aved.Experiments.ecommerce () in
  let tier =
    match Service.find_tier service "application" with
    | Some t -> t
    | None -> Alcotest.fail "application tier"
  in
  List.find
    (fun (o : Service.resource_option) -> String.equal o.resource resource_name)
    tier.options

let bronze = [ ("maintenanceA", [ ("level", Mechanism.Enum_value "bronze") ]) ]

let design_rc ~n_active ~n_spare =
  Design.tier_design ~tier_name:"application" ~resource:"rC" ~n_active
    ~n_spare ~mechanism_settings:bronze ()

let test_build_classes () =
  let infra = Aved.Experiments.infrastructure () in
  let tm =
    Tier_model.build ~infra ~option:(paper_option "rC")
      ~design:(design_rc ~n_active:5 ~n_spare:1)
      ~demand:(Some 1000.)
  in
  Alcotest.(check int) "n" 5 tm.Tier_model.n_active;
  Alcotest.(check int) "m from performance" 5 tm.Tier_model.n_min;
  Alcotest.(check int) "s" 1 tm.Tier_model.n_spare;
  Alcotest.(check int) "4 failure classes" 4 (List.length tm.Tier_model.classes);
  let find label =
    List.find
      (fun (c : Tier_model.failure_class) -> String.equal c.label label)
      tm.Tier_model.classes
  in
  let hard = find "machineA/hard" in
  (* MTTR = detect 2m + repair 38h + restart (30s + 2m + 2m). *)
  check_float "hard mttr" ((38. *. 3600.) +. 120. +. 270.)
    (Duration.seconds hard.mttr);
  (* Failover: detect 2m + reconfig 0 + cold-spare startup 4.5m. *)
  check_float "hard failover" (120. +. 270.) (Duration.seconds hard.failover_time);
  Alcotest.(check bool) "hard fails over" true hard.failover_considered;
  let linux_soft = find "linux/soft" in
  (* Restart linux + appserverA: 2m + 2m; no detect. *)
  check_float "linux mttr" 240. (Duration.seconds linux_soft.mttr);
  Alcotest.(check bool) "soft repairs in place" false
    linux_soft.failover_considered;
  check_float "rate" (1. /. Duration.seconds (Duration.of_days 60.))
    linux_soft.rate;
  Alcotest.(check bool) "no loss window" true (tm.Tier_model.loss_window = None)

let test_build_m_with_extras () =
  let infra = Aved.Experiments.infrastructure () in
  let tm =
    Tier_model.build ~infra ~option:(paper_option "rC")
      ~design:(design_rc ~n_active:7 ~n_spare:0)
      ~demand:(Some 1000.)
  in
  Alcotest.(check int) "m stays at perf minimum" 5 tm.Tier_model.n_min;
  Alcotest.(check int) "n grows" 7 tm.Tier_model.n_active

let test_build_rejects_undersized () =
  let infra = Aved.Experiments.infrastructure () in
  Alcotest.(check bool) "cannot deliver demand" true
    (match
       Tier_model.build ~infra ~option:(paper_option "rC")
         ~design:(design_rc ~n_active:4 ~n_spare:0)
         ~demand:(Some 1000.)
     with
    | _ -> false
    | exception Tier_model.Rejected _ -> true)

let test_build_scientific_loss_window () =
  let infra = Aved.Experiments.infrastructure_bronze () in
  let service = Aved.Experiments.scientific () in
  let tier =
    match Service.find_tier service "computation" with
    | Some t -> t
    | None -> Alcotest.fail "tier"
  in
  let option = List.hd tier.options in
  let settings =
    [
      ("maintenanceA", [ ("level", Mechanism.Enum_value "bronze") ]);
      ( "checkpoint",
        [
          ("storage_location", Mechanism.Enum_value "central");
          ( "checkpoint_interval",
            Mechanism.Duration_value (Duration.of_minutes 30.) );
        ] );
    ]
  in
  let design =
    Design.tier_design ~tier_name:"computation" ~resource:"rH" ~n_active:10
      ~n_spare:1 ~mechanism_settings:settings ()
  in
  let tm = Tier_model.build ~infra ~option ~design ~demand:None in
  (match tm.Tier_model.loss_window with
  | Some lw -> check_float "loss window = interval" 30. (Duration.minutes lw)
  | None -> Alcotest.fail "expected loss window");
  Alcotest.(check int) "tier scope m = n" 10 tm.Tier_model.n_min;
  (* 30-minute interval is in the flat region (threshold 10m): no slowdown. *)
  check_float "effective performance" (100. /. 1.04)
    tm.Tier_model.effective_performance;
  (* At a 1-minute interval the slowdown bites: 10/cpi = 10. *)
  let fast_settings =
    [
      ("maintenanceA", [ ("level", Mechanism.Enum_value "bronze") ]);
      ( "checkpoint",
        [
          ("storage_location", Mechanism.Enum_value "central");
          ( "checkpoint_interval",
            Mechanism.Duration_value (Duration.of_minutes 1.) );
        ] );
    ]
  in
  let tm2 =
    Tier_model.build ~infra ~option
      ~design:
        (Design.tier_design ~tier_name:"computation" ~resource:"rH"
           ~n_active:10 ~n_spare:1 ~mechanism_settings:fast_settings ())
      ~demand:None
  in
  check_float "slowed performance" (100. /. 1.04 /. 10.)
    tm2.Tier_model.effective_performance

let test_derived_quantities () =
  let c1 = single_mode ~mtbf_days:100. ~mttr_hours:10. in
  let c2 = single_mode ~mtbf_days:50. ~mttr_hours:1. in
  let m = model ~n_active:4 [ c1; c2 ] in
  let rate = c1.rate +. c2.rate in
  check_float "total rate" rate (Tier_model.total_failure_rate m);
  check_float "resource mtbf" (1. /. rate)
    (Duration.seconds (Tier_model.resource_mtbf m));
  check_float "tier mtbf" (1. /. (4. *. rate))
    (Duration.seconds (Tier_model.tier_mtbf m));
  let expected_mean_repair =
    ((c1.rate *. 36000.) +. (c2.rate *. 3600.)) /. rate
  in
  check_float "mean repair" expected_mean_repair
    (Duration.seconds (Tier_model.mean_repair_time m))

let test_exact_state_limit () =
  let classes =
    List.init 4 (fun i ->
        failure_class
          ~label:(Printf.sprintf "c%d" i)
          ~mtbf_days:(10. +. float_of_int i)
          ~mttr:(Duration.of_hours 1.)
          ~failover:Duration.zero ~failover_considered:false ())
  in
  let m = model ~n_active:10 ~n_min:10 ~n_spare:2 classes in
  Alcotest.(check bool) "limit enforced" true
    (match Exact.downtime_fraction ~max_states:10 m with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check int) "state count" (Exact.num_states m)
    (let n = 12 and j = 4 in
     (* C(n+j, j) *)
     let rec c n k = if k = 0 then 1 else c (n - 1) (k - 1) * n / k in
     c (n + j) j)

(* ------------------------------------------------------------------ *)
(* Transient analysis and downtime attribution *)

let test_transient_limits () =
  let m =
    model ~n_active:2 ~n_min:2 ~n_spare:1
      [ single_mode ~mtbf_days:20. ~mttr_hours:24. ]
  in
  check_float "down probability at 0" 0.
    (Transient.down_probability_at m Duration.zero);
  let steady = Analytic.chain_down_fraction m in
  let late = Transient.down_probability_at m (Duration.of_years 10.) in
  Alcotest.(check (float 1e-6)) "late-time limit" steady late;
  (* Over a long horizon the average converges to the stationary rate. *)
  let long = Duration.of_years 40. in
  let accumulated =
    Duration.seconds (Transient.expected_downtime_over ~steps:256 m ~horizon:long)
  in
  let expected = Duration.seconds long *. Analytic.downtime_fraction m in
  Alcotest.(check bool)
    (Printf.sprintf "long-run convergence (%.4g vs %.4g)" accumulated expected)
    true
    (Float.abs (accumulated -. expected) /. expected < 0.05);
  (* With no failover transients (extra active absorbs failures) a fresh
     system strictly beats its steady state: the chain starts all-up. *)
  let pure_chain =
    model ~n_active:2 ~n_min:1 [ single_mode ~mtbf_days:20. ~mttr_hours:24. ]
  in
  let horizon = Duration.of_days 30. in
  let fresh =
    Duration.seconds (Transient.expected_downtime_over pure_chain ~horizon)
  in
  let steady_estimate =
    Duration.seconds horizon *. Analytic.downtime_fraction pure_chain
  in
  Alcotest.(check bool) "fresh system is better" true
    (fresh <= steady_estimate +. 1e-9)

let test_transient_monotone_horizon () =
  let m = model [ single_mode ~mtbf_days:10. ~mttr_hours:12. ] in
  let downtime days =
    Duration.seconds
      (Transient.expected_downtime_over m ~horizon:(Duration.of_days days))
  in
  Alcotest.(check bool) "cumulative downtime grows" true
    (downtime 1. < downtime 10. && downtime 10. < downtime 100.)

let test_downtime_by_class () =
  let c1 = single_mode ~mtbf_days:100. ~mttr_hours:10. in
  let c2 =
    failure_class ~label:"c2" ~mtbf_days:10. ~mttr:(Duration.of_minutes 3.)
      ~failover:(Duration.of_minutes 5.) ~failover_considered:false ()
  in
  let m = model ~n_active:2 ~n_min:2 [ { c1 with label = "c1" }; c2 ] in
  let breakdown = Analytic.downtime_by_class m in
  Alcotest.(check int) "one entry per class" 2 (List.length breakdown);
  let total = List.fold_left (fun acc (_, f) -> acc +. f) 0. breakdown in
  Alcotest.(check (float 1e-12)) "sums to total"
    (Analytic.downtime_fraction m) total;
  List.iter
    (fun (label, f) ->
      Alcotest.(check bool) (label ^ " non-negative") true (f >= 0.))
    breakdown;
  (* The slow-repair class dominates: lambda*mttr is 25x larger. *)
  let contribution label = List.assoc label breakdown in
  Alcotest.(check bool) "hard failures dominate" true
    (contribution "c1" > contribution "c2")

(* ------------------------------------------------------------------ *)
(* Distribution-shape ablation *)

let test_shapes_mean_preserving () =
  (* Exponential vs. mean-preserving Weibull: steady-state availability
     of an n=1 system depends only on the means (renewal-reward), so the
     simulated downtime must agree across shapes. *)
  let m = model [ single_mode ~mtbf_days:10. ~mttr_hours:12. ] in
  let config =
    { Monte_carlo.replications = 24; horizon = Duration.of_years 40.; seed = 5 }
  in
  let exp_downtime = Monte_carlo.downtime_fraction ~config m in
  let weibull_downtime =
    Monte_carlo.downtime_fraction ~config
      ~shapes:
        {
          Monte_carlo.failure = Monte_carlo.Weibull_shape 1.5;
          repair = Monte_carlo.Weibull_shape 0.8;
        }
      m
  in
  Alcotest.(check bool)
    (Printf.sprintf "renewal-reward invariance (%.4g vs %.4g)" exp_downtime
       weibull_downtime)
    true
    (Float.abs (exp_downtime -. weibull_downtime) /. exp_downtime < 0.1)

let test_shapes_parallel_invariance () =
  (* For independent alternating-renewal units, steady-state
     unavailability depends only on the means (renewal-reward), so a
     2-unit parallel system's downtime must be shape-invariant too. *)
  let m =
    model ~n_active:2 ~n_min:1
      [ single_mode ~mtbf_days:5. ~mttr_hours:24. ]
  in
  let config =
    { Monte_carlo.replications = 32; horizon = Duration.of_years 60.; seed = 9 }
  in
  let with_shape k =
    Monte_carlo.downtime_fraction ~config
      ~shapes:
        { Monte_carlo.failure = Monte_carlo.Weibull_shape k;
          repair = Monte_carlo.Exponential }
      m
  in
  let bursty = with_shape 0.6 in
  let regular = with_shape 2.0 in
  Alcotest.(check bool)
    (Printf.sprintf "renewal-reward invariance (%.3e vs %.3e)" bursty regular)
    true
    (Float.abs (regular -. bursty) /. regular < 0.1)

let test_shapes_change_job_times () =
  (* Where the exponential assumption genuinely matters: lost-work for
     finite jobs. With the mean gap fixed, bursty failures (Weibull
     k < 1, decreasing hazard) restart checkpointed windows more often —
     a freshly repaired unit is at its most fragile — while regular
     failures (k > 1) let windows complete. Job time must be monotone
     in the shape. *)
  let m =
    model ~n_active:8 ~n_min:8 ~perf:10.
      ~loss_window:(Duration.of_hours 2.)
      ~failure_scope:Service.Tier_scope
      [
        failure_class ~mtbf_days:5. ~mttr:(Duration.of_hours 4.)
          ~failover:(Duration.of_minutes 5.) ~failover_considered:false ();
      ]
  in
  let config =
    { Monte_carlo.replications = 48; horizon = Duration.of_years 1.; seed = 3 }
  in
  let time shapes =
    (Monte_carlo.job_completion_times ~config ~shapes m ~job_size:2000.)
      .Aved_stats.Stats.mean
  in
  let exponential = time Monte_carlo.exponential_shapes in
  let bursty =
    time
      { Monte_carlo.failure = Monte_carlo.Weibull_shape 0.6;
        repair = Monte_carlo.Exponential }
  in
  let regular =
    time
      { Monte_carlo.failure = Monte_carlo.Weibull_shape 2.0;
        repair = Monte_carlo.Exponential }
  in
  Alcotest.(check bool)
    (Printf.sprintf "monotone in shape (%.1f > %.1f > %.1f)" bursty
       exponential regular)
    true
    (bursty > exponential *. 1.02 && exponential > regular *. 1.02)

let () =
  Alcotest.run "avail"
    [
      ( "engines",
        [
          Alcotest.test_case "two-state closed form" `Quick
            test_two_state_closed_form;
          Alcotest.test_case "no failures" `Quick test_no_failures;
          Alcotest.test_case "failover transient" `Quick
            test_failover_transient_accounting;
          Alcotest.test_case "extra actives absorb" `Quick
            test_extra_actives_absorb_failures;
          Alcotest.test_case "tier scope" `Quick
            test_tier_scope_every_failure_counts;
          Alcotest.test_case "A = B for one class" `Quick
            test_engines_agree_single_class;
          Alcotest.test_case "A close to B multi-class" `Quick
            test_engines_close_multi_class;
          Alcotest.test_case "Monte Carlo agrees" `Slow test_monte_carlo_agrees;
          Alcotest.test_case "Monte Carlo deterministic" `Quick
            test_monte_carlo_deterministic;
          Alcotest.test_case "spares monotone" `Quick test_spares_monotone;
          Alcotest.test_case "rate monotone" `Quick test_rate_monotone;
        ] );
      ( "job",
        [
          Alcotest.test_case "closed form" `Quick test_job_time_formula;
          Alcotest.test_case "checkpointing helps" `Quick
            test_job_time_no_checkpoint_worse;
          Alcotest.test_case "Monte Carlo job time" `Slow
            test_job_time_monte_carlo;
        ] );
      ( "transient",
        [
          Alcotest.test_case "limits" `Quick test_transient_limits;
          Alcotest.test_case "monotone in horizon" `Quick
            test_transient_monotone_horizon;
          Alcotest.test_case "downtime by class" `Quick
            test_downtime_by_class;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "mean-preserving invariance" `Slow
            test_shapes_mean_preserving;
          Alcotest.test_case "parallel invariance" `Slow
            test_shapes_parallel_invariance;
          Alcotest.test_case "job times shape-sensitive" `Slow
            test_shapes_change_job_times;
        ] );
      ( "risk",
        [
          Alcotest.test_case "exceedance monotone" `Slow
            test_exceedance_probability;
          Alcotest.test_case "evaluate facade" `Quick test_evaluate_facade;
        ] );
      ( "tier-model",
        [
          Alcotest.test_case "classes from Fig. 3" `Quick test_build_classes;
          Alcotest.test_case "m with extra actives" `Quick
            test_build_m_with_extras;
          Alcotest.test_case "undersized rejected" `Quick
            test_build_rejects_undersized;
          Alcotest.test_case "scientific loss window" `Quick
            test_build_scientific_loss_window;
          Alcotest.test_case "derived quantities" `Quick
            test_derived_quantities;
          Alcotest.test_case "exact engine state limit" `Quick
            test_exact_state_limit;
        ] );
    ]
