(* Soundness of the abstract-interpretation layer and of the pruning
   built on it.

   Three layers of property tests: interval arithmetic contains the
   concrete operation, abstract expression evaluation contains concrete
   evaluation, and the whole-domain downtime bounds contain the
   analytic engine's result for every concrete design and settings
   assignment. On top of those, differential tests pin the contract
   that makes --prune-bounds safe to ship: the pruned search returns
   byte-identical figures, while actually pruning work. *)

module Duration = Aved_units.Duration
module Expr = Aved_expr.Expr
module Interval = Aved_check.Interval
module Abstract_expr = Aved_check.Abstract_expr
module Bounds = Aved_check.Bounds
module Certificate = Aved_check.Certificate
module Model = Aved_model
module Mechanism = Aved_model.Mechanism
module Tier_model = Aved_avail.Tier_model
module Search_config = Aved_search.Search_config
module Search_metrics = Aved_search.Search_metrics
module Provenance = Aved_search.Provenance
module Experiments = Aved.Experiments
module Figures = Aved.Figures

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Interval arithmetic: the concrete operation stays inside *)

let gen_interval_and_point =
  let open QCheck2.Gen in
  let* a = float_range (-100.) 100. in
  let* b = float_range (-100.) 100. in
  let lo = Float.min a b and hi = Float.max a b in
  let* t = float_range 0. 1. in
  let x = lo +. (t *. (hi -. lo)) in
  return (Interval.of_bounds lo hi, Float.min hi (Float.max lo x))

let interval_ops_sound =
  let open QCheck2 in
  Test.make ~name:"interval ops contain the concrete result" ~count:2000
    (Gen.pair gen_interval_and_point gen_interval_and_point)
    (fun ((ia, a), (ib, b)) ->
      let contains op_name iv v =
        Float.is_nan v || Interval.mem v iv
        || QCheck2.Test.fail_reportf "%s: %g not in %s" op_name v
             (Interval.to_string iv)
      in
      contains "add" (Interval.add ia ib) (a +. b)
      && contains "sub" (Interval.sub ia ib) (a -. b)
      && contains "mul" (Interval.mul ia ib) (a *. b)
      && contains "div" (Interval.div ia ib) (a /. b)
      && contains "neg" (Interval.neg ia) (-.a)
      && contains "abs" (Interval.abs ia) (Float.abs a)
      && contains "min" (Interval.min_ ia ib) (Float.min a b)
      && contains "max" (Interval.max_ ia ib) (Float.max a b)
      && contains "exp" (Interval.exp ia) (Float.exp a)
      && contains "log" (Interval.log ia) (Float.log a)
      && contains "sqrt" (Interval.sqrt ia) (Float.sqrt a)
      && contains "floor" (Interval.floor ia) (Float.floor a)
      && contains "ceil" (Interval.ceil ia) (Float.ceil a)
      && contains "pow" (Interval.pow ia ib) (Float.pow a b))

(* ------------------------------------------------------------------ *)
(* Abstract expression evaluation: concrete eval stays inside *)

let var_names = [ "n"; "cpi"; "x" ]

let gen_expr =
  let open QCheck2.Gen in
  sized (fun size ->
      fix
        (fun self size ->
          let leaf =
            oneof
              [
                map (fun v -> Expr.const v) (float_range (-100.) 100.);
                map Expr.var (oneofl var_names);
              ]
          in
          if size <= 1 then leaf
          else
            let sub = self (size / 2) in
            oneof
              [
                leaf;
                map2 Expr.add sub sub;
                map2 Expr.sub sub sub;
                map2 Expr.mul sub sub;
                map2 Expr.div sub sub;
                map Expr.neg sub;
                map2 Expr.min_ sub sub;
                map2 Expr.max_ sub sub;
                map (fun e -> Expr.apply "abs" [ e ]) sub;
                map (fun e -> Expr.apply "sqrt" [ e ]) sub;
                map (fun e -> Expr.apply "floor" [ e ]) sub;
                map2
                  (fun a b -> Expr.if_ Expr.Le a b ~then_:a ~else_:b)
                  sub sub;
              ])
        (min size 8))

(* One box and one concrete point inside it, per variable. *)
let gen_env =
  let open QCheck2.Gen in
  let gen_binding name =
    let* a = float_range (-50.) 50. in
    let* b = float_range (-50.) 50. in
    let lo = Float.min a b and hi = Float.max a b in
    let* t = float_range 0. 1. in
    let x = Float.min hi (Float.max lo (lo +. (t *. (hi -. lo)))) in
    return (name, (lo, hi), x)
  in
  flatten_l (List.map gen_binding var_names)

let abstract_eval_sound =
  let open QCheck2 in
  Test.make ~name:"concrete eval lies in the abstract interval"
    ~count:2000
    (Gen.pair gen_expr gen_env)
    (fun (e, bindings) ->
      let env name =
        List.find_map
          (fun (v, (lo, hi), _) ->
            if String.equal v name then Some (Interval.of_bounds lo hi)
            else None)
          bindings
      in
      let lookup name =
        List.find_map
          (fun (v, _, x) -> if String.equal v name then Some x else None)
          bindings
      in
      let iv = Abstract_expr.eval_range ~env e in
      match Expr.eval e lookup with
      | v ->
          Float.is_nan v || Interval.mem v iv
          || QCheck2.Test.fail_reportf "%s = %g not in %s" (Expr.to_string e)
               v (Interval.to_string iv)
      | exception Division_by_zero -> true)

let monotonicity_sound =
  let open QCheck2 in
  Test.make
    ~name:"a monotonicity verdict is honored by concrete samples"
    ~count:1000
    (Gen.pair gen_expr gen_env)
    (fun (e, bindings) ->
      (* n ranges over a box; the other variables are pinned to their
         sampled concrete value, a member of any box we could have
         given them. *)
      let n_lo = 1. and n_hi = 40. in
      let env name =
        if String.equal name "n" then Some (Interval.of_bounds n_lo n_hi)
        else
          List.find_map
            (fun (v, _, x) ->
              if String.equal v name then Some (Interval.point x) else None)
            bindings
      in
      let eval_at n =
        Expr.eval e (fun name ->
            if String.equal name "n" then Some n
            else
              List.find_map
                (fun (v, _, x) ->
                  if String.equal v name then Some x else None)
                bindings)
      in
      match Abstract_expr.monotonicity ~var:"n" ~env e with
      | Abstract_expr.Unknown -> true
      | verdict ->
          let samples = List.init 21 (fun i -> 1. +. (float_of_int i *. 1.95)) in
          let ok v1 v2 =
            Float.is_nan v1 || Float.is_nan v2
            ||
            match verdict with
            | Abstract_expr.Constant -> v1 = v2
            | Abstract_expr.Nondecreasing -> v1 <= v2
            | Abstract_expr.Nonincreasing -> v1 >= v2
            | Abstract_expr.Unknown -> true
          in
          let rec pairs = function
            | n1 :: (n2 :: _ as rest) ->
                (ok (eval_at n1) (eval_at n2)
                || QCheck2.Test.fail_reportf
                     "%s claimed %s but f(%g)=%g, f(%g)=%g"
                     (Expr.to_string e)
                     (match verdict with
                     | Abstract_expr.Constant -> "constant"
                     | Abstract_expr.Nondecreasing -> "nondecreasing"
                     | Abstract_expr.Nonincreasing -> "nonincreasing"
                     | Abstract_expr.Unknown -> "unknown")
                     n1 (eval_at n1) n2 (eval_at n2))
                && pairs rest
            | [ _ ] | [] -> true
          in
          pairs samples)

(* ------------------------------------------------------------------ *)
(* Whole-domain bounds contain the analytic engine *)

(* Random concrete designs over the paper's infrastructure: any
   mechanism settings, any resource count in a window, any spare
   count. The analyzer must bracket the analytic downtime of every
   one of them. *)
let gen_design_case =
  let open QCheck2.Gen in
  let* tier_pick = oneofl [ `App; `Sci ] in
  let* option_index = int_range 0 5 in
  let* n = int_range 1 8 in
  let* spares = int_range 0 2 in
  let* demand_scale = float_range 0.1 1.0 in
  let* setting_picks = list_repeat 4 (int_range 0 1000) in
  return (tier_pick, option_index, n, spares, demand_scale, setting_picks)

let bounds_contain_analytic =
  let open QCheck2 in
  let app_infra = Experiments.infrastructure () in
  let bronze_infra = Experiments.infrastructure_bronze () in
  let app_tier = Experiments.application_tier () in
  let sci_tier = Experiments.computation_tier () in
  Test.make ~name:"downtime bounds contain the analytic downtime"
    ~count:300 gen_design_case
    (fun (tier_pick, option_index, n, spares, demand_scale, setting_picks) ->
      let infra, tier =
        match tier_pick with
        | `App -> (app_infra, app_tier)
        | `Sci -> (bronze_infra, sci_tier)
      in
      let options = tier.Model.Service.options in
      let option = List.nth options (option_index mod List.length options) in
      match Model.Infrastructure.find_resource infra option.resource with
      | None -> true
      | Some resource -> (
          let mechs =
            Model.Infrastructure.resource_mechanisms infra resource
          in
          let settings =
            List.mapi
              (fun i (m : Mechanism.t) ->
                let all = Mechanism.settings m in
                let pick =
                  List.nth setting_picks (i mod List.length setting_picks)
                in
                (m.name, List.nth all (pick mod List.length all)))
              mechs
          in
          match Bounds.analyzer ~infra ~tier_name:tier.tier_name ~option with
          | None -> true
          | Some an -> (
              let design =
                Model.Design.tier_design ~tier_name:tier.tier_name
                  ~resource:option.resource ~n_active:n ~n_spare:spares
                  ~mechanism_settings:settings ()
              in
              let demand =
                if
                  Model.Service.is_finite_job
                    (match tier_pick with
                    | `App -> Experiments.ecommerce ()
                    | `Sci -> Experiments.scientific ())
                then None
                else
                  Some
                    (demand_scale
                    *. Tier_model.effective_performance_of ~option ~settings
                         ~n)
              in
              match Tier_model.build ~infra ~option ~design ~demand with
              | exception Tier_model.Rejected _ -> true
              | exception Invalid_argument _ -> true
              | model ->
                  let concrete =
                    Aved_avail.Analytic.downtime_fraction model
                  in
                  let iv =
                    Bounds.downtime_interval an ~n_active:model.n_active
                      ~n_min:model.n_min ~n_spare:model.n_spare
                  in
                  Interval.mem concrete iv
                  || QCheck2.Test.fail_reportf
                       "%s/%s n=%d n_min=%d s=%d: %.12g not in %s"
                       tier.tier_name option.resource model.n_active
                       model.n_min model.n_spare concrete
                       (Interval.to_string iv))))

(* ------------------------------------------------------------------ *)
(* Certificates: produced verdicts re-verify *)

let test_region_certificates () =
  let infra = Experiments.infrastructure () in
  let service = Experiments.ecommerce () in
  let database =
    match Model.Service.find_tier service "database" with
    | Some t -> t
    | None -> Alcotest.fail "no database tier"
  in
  let option = List.hd database.options in
  let analyze budget_minutes =
    Bounds.analyze_option ~infra ~tier_name:database.tier_name ~option
      ~demand:(Some 1000.)
      ~budget_fraction:
        (Some (Duration.years (Duration.of_minutes budget_minutes)))
      ()
  in
  (match (analyze 10.).rp_verdict with
  | Some (Bounds.Infeasible c) ->
      Alcotest.(check bool) "infeasible certificate verifies" true
        (Certificate.verify c);
      Alcotest.(check bool) "summary mentions the budget" true
        (String.length (Certificate.summary c) > 0);
      Alcotest.(check bool) "serializes" true
        (String.length (Certificate.to_json c) > 2)
  | _ -> Alcotest.fail "10 min/yr should be provably unattainable");
  match (analyze 1_000_000.).rp_verdict with
  | Some (Bounds.Trivially_satisfiable c) ->
      Alcotest.(check bool) "trivial certificate verifies" true
        (Certificate.verify c)
  | _ -> Alcotest.fail "a 1M min/yr budget should be trivially satisfiable"

let test_prune_certificates_verify () =
  (* Every certificate attached to a Pruned_by_bound fate must
     re-verify: the proof object is only worth shipping if it stands
     on its own. *)
  let infra = Experiments.infrastructure () in
  let tier = Experiments.application_tier () in
  let config =
    Search_config.default |> Search_config.with_prune_bounds true
  in
  let trail = Provenance.create ~capacity:4096 () in
  let result =
    Provenance.with_trail trail @@ fun () ->
    Aved_search.Tier_search.optimal config infra ~tier ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  in
  Alcotest.(check bool) "search found a design" true (result <> None);
  let pruned_certs =
    List.filter_map
      (fun (r : Provenance.record) ->
        match r.fate with
        | Provenance.Pruned_by_bound { certificate } -> Some certificate
        | _ -> None)
      (Provenance.records trail ~tier:tier.Model.Service.tier_name)
  in
  List.iter
    (fun c ->
      if not (Certificate.verify c) then
        Alcotest.failf "certificate does not verify: %s"
          (Certificate.summary c))
    pruned_certs

(* ------------------------------------------------------------------ *)
(* Differential: --prune-bounds never changes a figure *)

(* (figure, generated, bound_pruned) per pruned run; the prune-rate
   test at the end asserts the work reduction is real on at least one
   figure, so the identity tests cannot silently pass because pruning
   never fired. *)
let prune_stats : (string * int * int) list ref = ref []

let differential name ~render ~run =
  let off = run Search_config.default in
  Search_metrics.reset_counts ();
  let on =
    run (Search_config.default |> Search_config.with_prune_bounds true)
  in
  let generated = Search_metrics.generated_count () in
  let pruned = Search_metrics.bound_pruned_count () in
  prune_stats := (name, generated, pruned) :: !prune_stats;
  Alcotest.(check string)
    (Printf.sprintf "%s byte-identical under --prune-bounds" name)
    (render off) (render on)

let test_fig6_differential () =
  differential "fig6"
    ~render:(Format.asprintf "%a" Figures.print_fig6)
    ~run:(fun config ->
      Figures.fig6 ~config ~loads:[ 400.; 1000.; 1600.; 3200. ] ())

let test_fig7_differential () =
  let base = Experiments.fig7_config in
  let off =
    Figures.fig7 ~config:base ~requirements_hours:[ 2.; 10.; 100. ] ()
  in
  Search_metrics.reset_counts ();
  let on =
    Figures.fig7
      ~config:(Search_config.with_prune_bounds true base)
      ~requirements_hours:[ 2.; 10.; 100. ] ()
  in
  prune_stats :=
    ("fig7", Search_metrics.generated_count (),
     Search_metrics.bound_pruned_count ())
    :: !prune_stats;
  Alcotest.(check string) "fig7 byte-identical under --prune-bounds"
    (Format.asprintf "%a" Figures.print_fig7 off)
    (Format.asprintf "%a" Figures.print_fig7 on)

let test_fig8_differential () =
  differential "fig8"
    ~render:(Format.asprintf "%a" Figures.print_fig8)
    ~run:(fun config ->
      Figures.fig8 ~config ~loads:[ 400.; 800. ]
        ~downtimes_minutes:[ 0.5; 5.; 50. ] ())

let test_prune_rate () =
  let stats = !prune_stats in
  Alcotest.(check bool) "differential runs recorded" true (stats <> []);
  List.iter
    (fun (name, generated, pruned) ->
      Printf.printf "%s: generated %d, pruned by bound %d (%.2f%%)\n" name
        generated pruned
        (100. *. float_of_int pruned /. float_of_int (max 1 generated)))
    stats;
  let fires =
    List.exists
      (fun (_, generated, pruned) ->
        generated > 0
        && float_of_int pruned >= 0.01 *. float_of_int generated)
      stats
  in
  Alcotest.(check bool) "bound pruning skips >= 1% on some figure" true
    fires

(* Random requirements over the paper's tier: pruned and unpruned
   searches agree on the optimum everywhere, not just at the figures'
   grid points. *)
let optimal_differential =
  let open QCheck2 in
  let infra = Experiments.infrastructure () in
  let tier = Experiments.application_tier () in
  Test.make ~name:"pruned tier search returns the identical optimum"
    ~count:12
    Gen.(pair (float_range 200. 3000.) (float_range 1. 300.))
    (fun (demand, budget_minutes) ->
      let max_downtime = Duration.of_minutes budget_minutes in
      let run config =
        Aved_search.Tier_search.optimal config infra ~tier ~demand
          ~max_downtime
      in
      let describe = function
        | None -> "infeasible"
        | Some (c : Aved_search.Candidate.t) ->
            Format.asprintf "%s %.9f %s"
              (Provenance.describe c.design)
              (Duration.minutes (Aved_search.Candidate.downtime c))
              (Aved_units.Money.to_string c.cost)
      in
      let off = describe (run Search_config.default) in
      let on =
        describe
          (run (Search_config.with_prune_bounds true Search_config.default))
      in
      String.equal off on
      || QCheck2.Test.fail_reportf
           "demand %g budget %g min: unpruned %s vs pruned %s" demand
           budget_minutes off on)

let () =
  Alcotest.run "absint"
    [
      ( "soundness",
        [
          qtest interval_ops_sound;
          qtest abstract_eval_sound;
          qtest monotonicity_sound;
          qtest bounds_contain_analytic;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "region verdicts verify" `Quick
            test_region_certificates;
          Alcotest.test_case "prune certificates verify" `Quick
            test_prune_certificates_verify;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fig6 identical under pruning" `Slow
            test_fig6_differential;
          Alcotest.test_case "fig7 identical under pruning" `Slow
            test_fig7_differential;
          Alcotest.test_case "fig8 identical under pruning" `Slow
            test_fig8_differential;
          Alcotest.test_case "pruning removes work" `Slow test_prune_rate;
          qtest optimal_differential;
        ] );
    ]
