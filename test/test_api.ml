(* The versioned wire API: golden fixtures pin every encoder's byte
   shape at the current schema_version, decoders round-trip those bytes
   exactly, and the JSON parser is the exact inverse of the printer.

   Fixtures live in api_fixtures/*.json. To regenerate after an
   intentional schema bump:

     dune build test/test_api.exe
     (cd test && AVED_API_BLESS=1 ../_build/default/test/test_api.exe) *)

module Api = Aved_api.Api
module Json_parse = Aved_api.Json_parse
module Json = Aved_explain.Json
module Design = Aved_model.Design
module Mechanism = Aved_model.Mechanism
module Duration = Aved_units.Duration

(* ------------------------------------------------------------------ *)
(* Hand-built values, floats chosen to need the 17-digit fallback *)

let tricky = 0.1 +. 0.2 (* 0.30000000000000004 *)

let web_tier =
  Design.tier_design ~tier_name:"web" ~resource:"blade" ~n_active:3 ~n_spare:1
    ~spare_active_components:[ "os" ]
    ~mechanism_settings:
      [
        ("repair", [ ("grade", Mechanism.Enum_value "gold") ]);
        ( "backup",
          [
            ("interval", Mechanism.Duration_value (Duration.of_hours 0.5));
            ("media", Mechanism.Enum_value "tape");
          ] );
      ]
    ()

let db_tier =
  Design.tier_design ~tier_name:"db" ~resource:"server" ~n_active:1 ()

let design_feasible =
  {
    Api.feasible = true;
    design = Some (Design.make ~service_name:"shop" ~tiers:[ web_tier; db_tier ]);
    cost = Some 123456.78;
    downtime_minutes = Some tricky;
    execution_hours = None;
  }

let design_infeasible =
  {
    Api.feasible = false;
    design = None;
    cost = None;
    downtime_minutes = None;
    execution_hours = None;
  }

let frontier =
  {
    Api.frontier_tier = "application";
    demand = 1500.;
    points =
      [
        {
          Api.family = "3 blade";
          point_cost = 1e6 /. 3.;
          point_downtime_minutes = 4.2;
          point_design = web_tier;
        };
        {
          Api.family = "1 server";
          point_cost = 42000.;
          point_downtime_minutes = tricky;
          point_design = db_tier;
        };
      ];
  }

let explain_feasible =
  {
    Api.explain_feasible = true;
    body =
      Some
        {
          Api.explain_service = "shop";
          explain_engine = "analytic";
          explain_cost = 98765.4321;
          explain_downtime_minutes = Some 87.5;
          explain_execution_seconds = None;
          noted = 12;
          dropped = 3;
          explain_tiers =
            [
              {
                Api.explain_tier_name = "web";
                tier_design_text = "3 blade + 1 spare";
                tier_resource = "blade";
                tier_n_active = 3;
                tier_n_spare = 1;
                tier_cost = 3333.25;
                tier_fraction = 1e-4;
                tier_minutes = 52.56;
                tier_nines = 4.;
                by_class =
                  [
                    {
                      Api.label = "hardware";
                      repair_mechanism = Some "contract";
                      fraction = 7e-5;
                      contribution_minutes = 36.792;
                      contribution_nines = 4.154901959985743;
                    };
                    {
                      Api.label = "software";
                      repair_mechanism = None;
                      fraction = 3e-5;
                      contribution_minutes = 15.768;
                      contribution_nines = 4.52287874528034;
                    };
                  ];
                by_mechanism =
                  [
                    {
                      Api.mechanism = Some "contract";
                      share_fraction = 0.7;
                      share_minutes = 36.792;
                    };
                    {
                      Api.mechanism = None;
                      share_fraction = 0.3;
                      share_minutes = 15.768;
                    };
                  ];
                mean_failed_resources = Some tricky;
                designs_considered = 144;
                runner_ups =
                  [
                    {
                      Api.runner_design = "4 blade";
                      fate = "dominated";
                      detail = Api.Text_detail "3 blade + 1 spare";
                      runner_cost = 4444.;
                      cost_delta = 1110.75;
                      runner_downtime_minutes = Some 60.;
                      downtime_delta_minutes = Some 7.4399999999999995;
                      runner_execution_seconds = None;
                    };
                    {
                      Api.runner_design = "2 blade";
                      fate = "over-downtime-budget";
                      detail = Api.Number_detail 250.5;
                      runner_cost = 2222.;
                      cost_delta = -1111.25;
                      runner_downtime_minutes = None;
                      downtime_delta_minutes = None;
                      runner_execution_seconds = Some 3.;
                    };
                    {
                      Api.runner_design = "3 blade";
                      fate = "incumbent";
                      detail = Api.No_detail;
                      runner_cost = 3333.25;
                      cost_delta = 0.;
                      runner_downtime_minutes = Some 52.56;
                      downtime_delta_minutes = Some 0.;
                      runner_execution_seconds = None;
                    };
                  ];
              };
            ];
        };
  }

let explain_infeasible = { Api.explain_feasible = false; body = None }

let check_with_findings =
  {
    Api.diagnostics =
      [
        {
          Api.severity = "error";
          code = "unknown-resource";
          file = Some "infra.spec";
          line = Some 7;
          col = Some 12;
          message = "resource \"bladee\" is not declared";
        };
        {
          Api.severity = "warning";
          code = "unused-mechanism";
          file = Some "infra.spec";
          line = Some 20;
          col = Some 1;
          message = "mechanism \"backup\" is never referenced";
        };
        {
          Api.severity = "info";
          code = "summary";
          file = None;
          line = None;
          col = None;
          message = "checked 2 files";
        };
      ];
  }

let check_clean = { Api.diagnostics = [] }

(* ------------------------------------------------------------------ *)
(* Golden fixtures *)

let bless = Sys.getenv_opt "AVED_API_BLESS" = Some "1"
let fixture_dir = "api_fixtures"
let fixture_path name = Filename.concat fixture_dir (name ^ ".json")

(* Each value is pinned twice: at the current schema_version, and in
   the v1 dialect (the [*.v1.json] files are the original v1-era
   fixtures, byte-for-byte) — encoders must keep rendering the legacy
   dialect exactly for as long as the daemon accepts v1 requests. *)
let golden_values : (string * (?version:int -> unit -> Json.t)) list =
  [
    ( "design_feasible",
      fun ?version () -> Api.design_result_to_json ?version design_feasible );
    ( "design_infeasible",
      fun ?version () -> Api.design_result_to_json ?version design_infeasible
    );
    ("frontier", fun ?version () -> Api.frontier_result_to_json ?version frontier);
    ( "explain_feasible",
      fun ?version () -> Api.explain_result_to_json ?version explain_feasible
    );
    ( "explain_infeasible",
      fun ?version () -> Api.explain_result_to_json ?version explain_infeasible
    );
    ( "check_with_findings",
      fun ?version () -> Api.check_result_to_json ?version check_with_findings
    );
    ( "check_clean",
      fun ?version () -> Api.check_result_to_json ?version check_clean );
  ]

let golden_cases =
  List.concat_map
    (fun ((name, encode) : string * (?version:int -> unit -> Json.t)) ->
      [ (name, encode ()); (name ^ ".v1", encode ~version:1 ()) ])
    golden_values

let test_golden (name, json) () =
  let encoded = Json.to_string json ^ "\n" in
  if bless then (
    if not (Sys.file_exists fixture_dir) then Sys.mkdir fixture_dir 0o755;
    Out_channel.with_open_bin (fixture_path name) (fun oc ->
        Out_channel.output_string oc encoded);
    Printf.printf "blessed %s\n" (fixture_path name))
  else
    let expected =
      In_channel.with_open_bin (fixture_path name) In_channel.input_all
    in
    Alcotest.(check string) (name ^ " matches fixture") expected encoded

(* ------------------------------------------------------------------ *)
(* Round trips: encode -> serialize -> parse -> decode -> re-encode *)

let check_roundtrip name to_json of_json value =
  let serialized = Json.to_string (to_json value) in
  let parsed = Json_parse.of_string_exn serialized in
  match of_json parsed with
  | Error e -> Alcotest.failf "%s: decode failed: %s" name e
  | Ok decoded ->
      Alcotest.(check string)
        (name ^ ": re-encoding is byte-identical")
        serialized
        (Json.to_string (to_json decoded))

let test_roundtrips () =
  check_roundtrip "design feasible" Api.design_result_to_json
    Api.design_result_of_json design_feasible;
  check_roundtrip "design infeasible" Api.design_result_to_json
    Api.design_result_of_json design_infeasible;
  check_roundtrip "frontier" Api.frontier_result_to_json
    Api.frontier_result_of_json frontier;
  check_roundtrip "explain feasible" Api.explain_result_to_json
    Api.explain_result_of_json explain_feasible;
  check_roundtrip "explain infeasible" Api.explain_result_to_json
    Api.explain_result_of_json explain_infeasible;
  check_roundtrip "check with findings" Api.check_result_to_json
    Api.check_result_of_json check_with_findings;
  check_roundtrip "check clean" Api.check_result_to_json
    Api.check_result_of_json check_clean

(* ------------------------------------------------------------------ *)
(* Decoder rejections *)

let with_version v = function
  | Json.Obj (("schema_version", _) :: rest) ->
      Json.Obj (("schema_version", v) :: rest)
  | _ -> Alcotest.fail "encoding does not lead with schema_version"

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec loop i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else loop (i + 1)
  in
  n = 0 || loop 0

let expect_version_error name of_json doc =
  match of_json (with_version (Json.Int 999) doc) with
  | Ok _ -> Alcotest.failf "%s: accepted schema_version 999" name
  | Error e ->
      Alcotest.(check bool)
        (name ^ ": error names the version")
        true
        (contains e "schema_version 999")

let test_version_rejected () =
  expect_version_error "design" Api.design_result_of_json
    (Api.design_result_to_json design_feasible);
  expect_version_error "frontier" Api.frontier_result_of_json
    (Api.frontier_result_to_json frontier);
  expect_version_error "explain" Api.explain_result_of_json
    (Api.explain_result_to_json explain_feasible);
  expect_version_error "check" Api.check_result_of_json
    (Api.check_result_to_json check_with_findings)

let test_malformed_rejected () =
  let expect_error name of_json doc =
    match of_json doc with
    | Ok _ -> Alcotest.failf "%s: accepted a malformed document" name
    | Error _ -> ()
  in
  expect_error "not an object" Api.design_result_of_json (Json.Int 3);
  expect_error "missing version" Api.design_result_of_json
    (Json.Obj [ ("feasible", Json.Bool false) ]);
  expect_error "feasible not a bool" Api.design_result_of_json
    (Api.versioned [ ("feasible", Json.Int 1) ]);
  expect_error "frontier without points" Api.frontier_result_of_json
    (Api.versioned [ ("tier", Json.String "t"); ("demand", Json.Float 1.) ]);
  expect_error "check diagnostics not a list" Api.check_result_of_json
    (Api.versioned
       [
         ("errors", Json.Int 0);
         ("warnings", Json.Int 0);
         ("infos", Json.Int 0);
         ("diagnostics", Json.String "none");
       ]);
  expect_error "tier with n_active 0" Api.frontier_result_of_json
    (with_version (Json.Int Api.schema_version)
       (Api.frontier_result_to_json
          {
            frontier with
            Api.points =
              [
                {
                  (List.hd frontier.Api.points) with
                  Api.point_design = { web_tier with Design.n_active = 0 };
                };
              ];
          }))

(* ------------------------------------------------------------------ *)
(* The JSON parser *)

let json_testable =
  Alcotest.testable
    (fun ppf v -> Format.pp_print_string ppf (Json.to_string v))
    ( = )

let parse_ok s =
  match Json_parse.of_string s with
  | Ok v -> v
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_parse_values () =
  Alcotest.(check json_testable)
    "scalars and containers"
    (Json.Obj
       [
         ( "a",
           Json.List
             [ Json.Int 1; Json.Float 2.5; Json.Bool true; Json.Null ] );
         ("b", Json.String "xA\n");
       ])
    (parse_ok "  {\"a\": [1, 2.5, true, null], \"b\": \"x\\u0041\\n\"}  ");
  Alcotest.(check json_testable)
    "plain integer parses as Int" (Json.Int 1000) (parse_ok "1000");
  Alcotest.(check json_testable)
    "exponent form parses as Float" (Json.Float 1000.) (parse_ok "1e3");
  Alcotest.(check json_testable)
    "negative float" (Json.Float (-0.25)) (parse_ok "-0.25");
  Alcotest.(check json_testable)
    "unicode escape to UTF-8" (Json.String "caf\xc3\xa9")
    (parse_ok "\"caf\\u00e9\"");
  Alcotest.(check json_testable) "empty object" (Json.Obj []) (parse_ok "{}");
  Alcotest.(check json_testable) "empty array" (Json.List []) (parse_ok "[]")

let test_parse_errors () =
  let expect_error s =
    match Json_parse.of_string s with
    | Ok v -> Alcotest.failf "parse %S unexpectedly gave %s" s (Json.to_string v)
    | Error _ -> ()
  in
  List.iter expect_error
    [
      "";
      "1 2" (* trailing garbage *);
      "\"\\q\"" (* bad escape *);
      "[1," (* unterminated array *);
      "{\"a\" 1}" (* missing colon *);
      "{\"a\":1,}" (* trailing comma *);
      "truth";
      "\"unterminated";
      "\"\\u12g4\"" (* bad hex *);
      "nan";
    ]

(* Adversarial input: nesting past the parser's depth limit must come
   back as a parse error, never a Stack_overflow (which would kill a
   server reader thread and leak its connection). *)
let test_parse_depth_limit () =
  let nested n = String.make n '[' ^ "1" ^ String.make n ']' in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
    at 0
  in
  (match Json_parse.of_string (nested 100) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "depth 100 should parse, got: %s" e);
  List.iter
    (fun n ->
      match Json_parse.of_string (nested n) with
      | Ok _ -> Alcotest.failf "depth %d unexpectedly parsed" n
      | Error e ->
          Alcotest.(check bool)
            (Printf.sprintf "depth %d reports the nesting limit" n)
            true (contains e "nesting"))
    [ 200; 100_000 ]

let test_parse_print_identity () =
  List.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "print (parse %S)" s)
        s
        (Json.to_string (parse_ok s)))
    [
      "null";
      "true";
      "-17";
      "0.30000000000000004";
      "\"he said \\\"hi\\\"\"";
      "[1,2,[3,{}]]";
      "{\"k\":[null,false],\"j\":{\"x\":0.5}}";
    ]

(* Property: serialize -> parse -> serialize is the identity on the
   serialized form, for arbitrary JSON values (including non-finite
   floats, which print as null and stay null). *)
let gen_json =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Int i) int;
               map (fun f -> Json.Float f) (float_range (-1e9) 1e9);
               return (Json.Float nan);
               map (fun s -> Json.String s) (string_size (int_range 0 8));
             ]
         in
         if n = 0 then scalar
         else
           oneof
             [
               scalar;
               map
                 (fun l -> Json.List l)
                 (list_size (int_range 0 4) (self (n / 2)));
               map
                 (fun l -> Json.Obj l)
                 (list_size (int_range 0 4)
                    (pair (string_size (int_range 0 5)) (self (n / 2))));
             ])

let prop_serialize_parse_serialize =
  QCheck2.Test.make ~name:"serialize/parse/serialize is stable" ~count:500
    gen_json (fun v ->
      let s = Json.to_string v in
      match Json_parse.of_string s with
      | Error e -> QCheck2.Test.fail_reportf "did not reparse %s: %s" s e
      | Ok v' -> String.equal s (Json.to_string v'))

let () =
  Alcotest.run "api"
    [
      ( "golden",
        List.map
          (fun (name, json) ->
            Alcotest.test_case name `Quick (test_golden (name, json)))
          golden_cases );
      ( "roundtrip",
        [
          Alcotest.test_case "every encoder round-trips byte-identically"
            `Quick test_roundtrips;
        ] );
      ( "decoder",
        [
          Alcotest.test_case "foreign schema_version rejected" `Quick
            test_version_rejected;
          Alcotest.test_case "malformed documents rejected" `Quick
            test_malformed_rejected;
        ] );
      ( "json-parse",
        [
          Alcotest.test_case "values" `Quick test_parse_values;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "depth limit" `Quick test_parse_depth_limit;
          Alcotest.test_case "parse/print identity" `Quick
            test_parse_print_identity;
          QCheck_alcotest.to_alcotest prop_serialize_parse_serialize;
        ] );
    ]
