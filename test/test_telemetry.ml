(* Tests for the telemetry registry: sharded counter/histogram merge
   across domains, span nesting, disabled-registry no-ops, and the
   Chrome trace export. *)

module Telemetry = Aved_telemetry.Telemetry

let with_fresh_registry f =
  let t = Telemetry.create () in
  Telemetry.install t;
  Fun.protect ~finally:Telemetry.uninstall (fun () -> f t)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_basic () =
  let c = Telemetry.Counter.make "test.counter.basic" in
  with_fresh_registry @@ fun t ->
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  Alcotest.(check int) "aggregated" 42 (Telemetry.Counter.read t c);
  Alcotest.(check int) "by name" 42
    (Telemetry.Counter.read_by_name t "test.counter.basic");
  Alcotest.(check int) "unknown name" 0
    (Telemetry.Counter.read_by_name t "test.counter.never-created")

let test_counter_merge_across_domains () =
  let c = Telemetry.Counter.make "test.counter.domains" in
  with_fresh_registry @@ fun t ->
  Telemetry.Counter.incr c;
  let domains =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 1000 do
              Telemetry.Counter.incr c
            done))
  in
  List.iter Domain.join domains;
  (* The read aggregates every shard, so no increment is lost even
     though the worker domains have exited. *)
  Alcotest.(check int) "all increments survive" 4001
    (Telemetry.Counter.read t c)

let test_counter_isolated_between_registries () =
  let c = Telemetry.Counter.make "test.counter.isolation" in
  let first =
    with_fresh_registry (fun t ->
        Telemetry.Counter.add c 7;
        Telemetry.Counter.read t c)
  in
  Alcotest.(check int) "first registry" 7 first;
  let second =
    with_fresh_registry (fun t ->
        Telemetry.Counter.incr c;
        Telemetry.Counter.read t c)
  in
  (* A fresh registry starts from zero; the earlier run's cells belong
     to the earlier registry. *)
  Alcotest.(check int) "second registry starts clean" 1 second

let test_disabled_is_noop () =
  let c = Telemetry.Counter.make "test.counter.disabled" in
  let h = Telemetry.Histogram.make "test.histogram.disabled" in
  (* No registry installed: record operations are dropped, value-passing
     combinators still pass values through. *)
  Alcotest.(check bool) "disabled" false (Telemetry.enabled ());
  Telemetry.Counter.incr c;
  Telemetry.Histogram.observe h 1.0;
  Alcotest.(check int) "timed thunk still runs" 9
    (Telemetry.Histogram.time h (fun () -> 9));
  Alcotest.(check string) "span thunk still runs" "ok"
    (Telemetry.with_span "test.disabled.span" (fun () -> "ok"));
  with_fresh_registry @@ fun t ->
  (* The pre-install activity left no trace in the new registry. *)
  Alcotest.(check int) "counter clean" 0 (Telemetry.Counter.read t c);
  Alcotest.(check int) "histogram clean" 0
    (Telemetry.Histogram.read t h).Telemetry.Histogram.count

(* ------------------------------------------------------------------ *)
(* Gauges and histograms *)

let test_gauge () =
  let g = Telemetry.Gauge.make "test.gauge" in
  with_fresh_registry @@ fun t ->
  Alcotest.(check bool) "unset reads None" true
    (Telemetry.Gauge.read t g = None);
  Telemetry.Gauge.set g 2.5;
  Telemetry.Gauge.set g 4.0;
  Alcotest.(check (option (float 1e-9))) "last write wins" (Some 4.0)
    (Telemetry.Gauge.read t g)

let test_histogram_summary () =
  let h = Telemetry.Histogram.make "test.histogram.summary" in
  with_fresh_registry @@ fun t ->
  List.iter (Telemetry.Histogram.observe h) [ 1.0; 2.0; 4.0; 8.0 ];
  let s = Telemetry.Histogram.read t h in
  Alcotest.(check int) "count" 4 s.Telemetry.Histogram.count;
  Alcotest.(check (float 1e-9)) "sum" 15.0 s.Telemetry.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Telemetry.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 8.0 s.Telemetry.Histogram.max;
  Alcotest.(check (float 1e-9)) "mean" 3.75 (Telemetry.Histogram.mean s);
  (* Quantiles report the upper bound of the crossing bucket. *)
  Alcotest.(check bool) "p99 covers the max" true
    (Telemetry.Histogram.quantile s 0.99 >= 8.0)

(* quantile_est interpolates within the crossing log bucket, so any
   estimate must land within one bucket (a factor of 2) of the true
   quantile of the observed distribution — and exactly on it when every
   observation in the crossing bucket is the same value. *)
let test_histogram_quantile_est () =
  let h = Telemetry.Histogram.make "test.histogram.quantile_est" in
  with_fresh_registry @@ fun t ->
  (* Uniform 1..1000 ms expressed in seconds. *)
  for i = 1 to 1000 do
    Telemetry.Histogram.observe h (float_of_int i /. 1000.)
  done;
  let s = Telemetry.Histogram.read t h in
  List.iter
    (fun (q, exact) ->
      let est = Telemetry.Histogram.quantile_est s q in
      let ratio = est /. exact in
      if not (ratio >= 0.5 && ratio <= 2.0) then
        Alcotest.failf "p%.0f estimate %.4f not within a bucket of %.4f"
          (100. *. q) est exact;
      (* And never outside the observed range. *)
      Alcotest.(check bool) "within min/max" true
        (est >= s.Telemetry.Histogram.min && est <= s.Telemetry.Histogram.max))
    [ (0.5, 0.5); (0.95, 0.95); (0.99, 0.99) ]

let test_histogram_quantile_est_point_mass () =
  let h = Telemetry.Histogram.make "test.histogram.quantile_point" in
  with_fresh_registry @@ fun t ->
  (* Every observation identical: all quantiles are that value, and
     min/max clamping makes the estimate exact. *)
  for _ = 1 to 100 do
    Telemetry.Histogram.observe h 0.042
  done;
  let s = Telemetry.Histogram.read t h in
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f of point mass" (100. *. q))
        0.042
        (Telemetry.Histogram.quantile_est s q))
    [ 0.5; 0.95; 0.99 ];
  (* Empty summary: NaN, matching [quantile]. *)
  let empty = Telemetry.Histogram.make "test.histogram.quantile_empty" in
  let s = Telemetry.Histogram.read t empty in
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Telemetry.Histogram.quantile_est s 0.5))

(* A two-sided spread: 90 fast observations and 10 slow ones. p50 must
   report the fast mode and p99 the slow mode — the tail is never
   averaged away. *)
let test_histogram_quantile_est_bimodal () =
  let h = Telemetry.Histogram.make "test.histogram.quantile_bimodal" in
  with_fresh_registry @@ fun t ->
  for _ = 1 to 90 do
    Telemetry.Histogram.observe h 0.001
  done;
  for _ = 1 to 10 do
    Telemetry.Histogram.observe h 1.0
  done;
  let s = Telemetry.Histogram.read t h in
  let p50 = Telemetry.Histogram.quantile_est s 0.5 in
  let p99 = Telemetry.Histogram.quantile_est s 0.99 in
  Alcotest.(check bool) "p50 sits in the fast mode" true (p50 < 0.01);
  Alcotest.(check bool) "p99 sits in the slow mode" true (p99 > 0.5)

let test_histogram_merge_across_domains () =
  let h = Telemetry.Histogram.make "test.histogram.domains" in
  with_fresh_registry @@ fun t ->
  let domains =
    List.init 4 (fun i ->
        Domain.spawn (fun () ->
            (* Distinct magnitudes per domain so min/max provably come
               from different shards. *)
            Telemetry.Histogram.observe h (Float.pow 10. (float_of_int i))))
  in
  List.iter Domain.join domains;
  let s = Telemetry.Histogram.read t h in
  Alcotest.(check int) "count" 4 s.Telemetry.Histogram.count;
  Alcotest.(check (float 1e-6)) "sum" 1111.0 s.Telemetry.Histogram.sum;
  Alcotest.(check (float 1e-9)) "min" 1.0 s.Telemetry.Histogram.min;
  Alcotest.(check (float 1e-9)) "max" 1000.0 s.Telemetry.Histogram.max

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_nesting () =
  with_fresh_registry @@ fun t ->
  let result =
    Telemetry.with_span "outer" (fun () ->
        Telemetry.with_span "inner" (fun () -> 17))
  in
  Alcotest.(check int) "value passes through" 17 result;
  let spans = Telemetry.spans t in
  let find name =
    match
      List.find_opt (fun s -> s.Telemetry.span_name = name) spans
    with
    | Some s -> s
    | None -> Alcotest.failf "span %s not recorded" name
  in
  let outer = find "outer" and inner = find "inner" in
  Alcotest.(check int) "same domain" outer.Telemetry.tid
    inner.Telemetry.tid;
  (* The inner interval lies within the outer one. *)
  Alcotest.(check bool) "inner starts after outer" true
    (inner.Telemetry.start_s >= outer.Telemetry.start_s);
  Alcotest.(check bool) "inner ends before outer" true
    (inner.Telemetry.start_s +. inner.Telemetry.dur_s
    <= outer.Telemetry.start_s +. outer.Telemetry.dur_s +. 1e-9)

let test_span_survives_exception () =
  with_fresh_registry @@ fun t ->
  (match Telemetry.with_span "failing" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected the exception to propagate"
  | exception Failure _ -> ());
  Alcotest.(check bool) "span recorded despite the raise" true
    (List.exists
       (fun s -> s.Telemetry.span_name = "failing")
       (Telemetry.spans t))

let test_chrome_trace_export () =
  with_fresh_registry @@ fun t ->
  Telemetry.with_span "export \"quoted\"" (fun () -> ());
  let path = Filename.temp_file "aved_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Telemetry.write_chrome_trace t oc;
      close_out oc;
      let ic = open_in path in
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      close_in ic;
      let contains needle =
        let nl = String.length needle and cl = String.length content in
        let rec scan i =
          i + nl <= cl && (String.sub content i nl = needle || scan (i + 1))
        in
        scan 0
      in
      Alcotest.(check bool) "has traceEvents" true
        (contains "\"traceEvents\"");
      Alcotest.(check bool) "has complete events" true
        (contains "\"ph\":\"X\"");
      Alcotest.(check bool) "escapes quotes in names" true
        (contains "export \\\"quoted\\\""))

let () =
  Alcotest.run "telemetry"
    [
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick test_counter_basic;
          Alcotest.test_case "merge across domains" `Quick
            test_counter_merge_across_domains;
          Alcotest.test_case "registry isolation" `Quick
            test_counter_isolated_between_registries;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_disabled_is_noop;
        ] );
      ( "gauges-histograms",
        [
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram quantile_est uniform" `Quick
            test_histogram_quantile_est;
          Alcotest.test_case "histogram quantile_est point mass" `Quick
            test_histogram_quantile_est_point_mass;
          Alcotest.test_case "histogram quantile_est bimodal" `Quick
            test_histogram_quantile_est_bimodal;
          Alcotest.test_case "histogram summary" `Quick
            test_histogram_summary;
          Alcotest.test_case "histogram merge across domains" `Quick
            test_histogram_merge_across_domains;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "survives exceptions" `Quick
            test_span_survives_exception;
          Alcotest.test_case "chrome trace export" `Quick
            test_chrome_trace_export;
        ] );
    ]
