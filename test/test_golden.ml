(* Golden regression over the paper's evaluation artifacts: pinned
   rows of the Fig. 6 family table, the Fig. 7 design series at a
   reduced requirement grid, and the Fig. 8 cost-of-availability steps.
   These snapshots freeze the search's observable behavior; any change
   to pruning, tie-breaking or the availability engines that shifts a
   selected design shows up here. *)

module Duration = Aved_units.Duration
module Search_config = Aved_search.Search_config
module Figures = Aved.Figures

let costs_equal = Alcotest.float 1e-6

(* ------------------------------------------------------------------ *)
(* Fig. 6 *)

let fig6_points = lazy (Figures.fig6 ())

(* Optimal design at a load for a downtime budget: the frontier is
   ordered by increasing cost and decreasing downtime, so the first
   point within budget is the cheapest feasible design. *)
let optimal_at points ~load ~budget_minutes =
  List.find_opt
    (fun (p : Figures.fig6_point) ->
      p.load = load && p.downtime_minutes <= budget_minutes)
    points

let test_fig6_pinned_rows () =
  let points = Lazy.force fig6_points in
  List.iter
    (fun (load, family, cost) ->
      match optimal_at points ~load ~budget_minutes:100. with
      | None -> Alcotest.failf "no design within budget at load %g" load
      | Some p ->
          Alcotest.(check string)
            (Printf.sprintf "family at load %g" load)
            family p.family;
          Alcotest.check costs_equal
            (Printf.sprintf "cost at load %g" load)
            cost p.annual_cost)
    [
      (400., "(rD, bronze, 0, 1)", 12820.);
      (1000., "(rC, bronze, 1, 0)", 28320.);
      (1400., "(rC, bronze, 1, 0)", 37760.);
      (1600., "(rC, silver, 1, 0)", 44280.);
      (3200., "(rC, bronze, 1, 1)", 83020.);
    ]

let test_fig6_family_crossover () =
  (* Paper §5.1: at a 100 min/yr budget the one-extra-resource bronze
     family carries the low-load range and hands over to the silver
     family around 1400-1600 load units. *)
  let points = Lazy.force fig6_points in
  let family load =
    match optimal_at points ~load ~budget_minutes:100. with
    | Some p -> p.family
    | None -> Alcotest.failf "no design at load %g" load
  in
  List.iter
    (fun load ->
      Alcotest.(check string)
        (Printf.sprintf "below crossover (%g)" load)
        "(rC, bronze, 1, 0)" (family load))
    [ 600.; 1000.; 1400. ];
  List.iter
    (fun load ->
      Alcotest.(check string)
        (Printf.sprintf "above crossover (%g)" load)
        "(rC, silver, 1, 0)" (family load))
    [ 1600.; 2000.; 2400. ]

let test_fig6_machineb_never_selected () =
  (* Paper §5.1: machineB (rE/rF) never appears on the frontier over
     the practical downtime range. *)
  List.iter
    (fun (p : Figures.fig6_point) ->
      if
        p.downtime_minutes >= 0.05
        && (String.length p.family >= 3
           && (String.sub p.family 1 2 = "rE" || String.sub p.family 1 2 = "rF")
           )
      then
        Alcotest.failf "machineB on the frontier: load %g, %s" p.load p.family)
    (Lazy.force fig6_points)

let test_fig6_downtime_monotone_in_load () =
  (* Within one design family, downtime only grows with load. *)
  let by_family = Hashtbl.create 64 in
  List.iter
    (fun (p : Figures.fig6_point) ->
      Hashtbl.replace by_family p.family
        ((p.load, p.downtime_minutes)
        :: Option.value ~default:[] (Hashtbl.find_opt by_family p.family)))
    (Lazy.force fig6_points);
  Hashtbl.iter
    (fun family points ->
      let sorted =
        List.sort (fun (a, _) (b, _) -> Float.compare a b) points
      in
      let rec check = function
        | (l1, d1) :: ((l2, d2) :: _ as rest) ->
            if d2 < d1 -. 1e-12 then
              Alcotest.failf "%s: downtime shrank from load %g to %g" family
                l1 l2;
            check rest
        | [ _ ] | [] -> ()
      in
      check sorted)
    by_family

(* ------------------------------------------------------------------ *)
(* Fig. 7 *)

(* A reduced requirement grid spanning the rI -> rH crossover; the
   memoized engine is bit-identical to the plain analytic one. *)
let fig7_points =
  lazy
    (Figures.fig7
       ~config:(Search_config.with_memo Aved.Experiments.fig7_config)
       ~requirements_hours:[ 1.; 6.; 8.2; 24.; 90.; 400. ]
       ())

let test_fig7_pinned_series () =
  let points = Lazy.force fig7_points in
  Alcotest.(check int) "all requirements feasible" 6 (List.length points);
  List.iter2
    (fun (resource, n, spares, ckpt, storage, cost)
         (p : Figures.fig7_point) ->
      let tag = Printf.sprintf "req %gh" p.requirement_hours in
      Alcotest.(check string) (tag ^ ": resource") resource p.resource;
      Alcotest.(check int) (tag ^ ": n") n p.n_resources;
      Alcotest.(check int) (tag ^ ": spares") spares p.n_spares;
      Alcotest.check (Alcotest.float 1e-4)
        (tag ^ ": checkpoint interval")
        ckpt p.checkpoint_interval_hours;
      Alcotest.(check string) (tag ^ ": storage") storage p.storage_location;
      Alcotest.check costs_equal (tag ^ ": cost") cost p.annual_cost)
    [
      ("rI", 206, 3, 0.587040, "central", 21668100.);
      ("rI", 18, 1, 0.083386, "central", 1963500.);
      ("rH", 317, 3, 0.343230, "peer", 965680.);
      ("rH", 52, 1, 0.296495, "central", 159820.);
      ("rH", 12, 1, 0.173354, "central", 39020.);
      ("rH", 3, 0, 0.173354, "central", 9060.);
    ]
    points

let test_fig7_structure () =
  let points = Lazy.force fig7_points in
  List.iter
    (fun (p : Figures.fig7_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "prediction within requirement at %gh"
           p.requirement_hours)
        true
        (p.predicted_hours <= p.requirement_hours))
    points;
  let rec pairwise = function
    | (a : Figures.fig7_point) :: (b :: _ as rest) ->
        Alcotest.(check bool)
          (Printf.sprintf "cost non-increasing %gh -> %gh"
             a.requirement_hours b.requirement_hours)
          true
          (b.annual_cost <= a.annual_cost);
        (* Resource counts shrink as the requirement loosens — but only
           within one machine type; the crossover to the slower machine
           jumps to a larger fleet. *)
        if String.equal a.resource b.resource then
          Alcotest.(check bool)
            (Printf.sprintf "resources non-increasing %gh -> %gh"
               a.requirement_hours b.requirement_hours)
            true
            (b.n_resources <= a.n_resources);
        pairwise rest
    | [ _ ] | [] -> ()
  in
  pairwise points;
  (* The fast machine carries tight requirements, the cheap one the
     loose ones; the crossover sits between 6 and 8.2 hours. *)
  List.iter
    (fun (p : Figures.fig7_point) ->
      Alcotest.(check string)
        (Printf.sprintf "resource at %gh" p.requirement_hours)
        (if p.requirement_hours <= 6. then "rI" else "rH")
        p.resource)
    points

(* ------------------------------------------------------------------ *)
(* Fig. 8 *)

let fig8_points = lazy (Figures.fig8 ())

let test_fig8_cost_steps () =
  let points = Lazy.force fig8_points in
  (* Buying less downtime never costs less; relaxing the budget never
     costs more. *)
  List.iter
    (fun (p : Figures.fig8_point) ->
      Alcotest.(check bool)
        (Printf.sprintf "extra cost >= 0 at load %g, budget %.2f" p.load
           p.downtime_requirement_minutes)
        true (p.extra_annual_cost >= 0.))
    points;
  List.iter
    (fun load ->
      let series =
        List.filter (fun (p : Figures.fig8_point) -> p.load = load) points
        |> List.sort (fun (a : Figures.fig8_point) b ->
               Float.compare a.downtime_requirement_minutes
                 b.downtime_requirement_minutes)
      in
      Alcotest.(check bool)
        (Printf.sprintf "full grid feasible at load %g" load)
        true
        (List.length series = 16);
      let rec check = function
        | (a : Figures.fig8_point) :: (b :: _ as rest) ->
            if b.extra_annual_cost > a.extra_annual_cost then
              Alcotest.failf
                "load %g: extra cost rose from budget %.2f to %.2f" load
                a.downtime_requirement_minutes b.downtime_requirement_minutes;
            check rest
        | [ _ ] | [] -> ()
      in
      check series)
    Figures.default_fig8_loads

let test_fig8_pinned_endpoints () =
  let points = Lazy.force fig8_points in
  let extra ~load ~budget =
    match
      List.find_opt
        (fun (p : Figures.fig8_point) ->
          p.load = load
          && Float.abs (p.downtime_requirement_minutes -. budget) < 1e-9)
        points
    with
    | Some p -> p.extra_annual_cost
    | None -> Alcotest.failf "missing point load %g budget %g" load budget
  in
  Alcotest.check costs_equal "load 400, tightest budget" 7500.
    (extra ~load:400. ~budget:0.1);
  Alcotest.check costs_equal "load 400, loosest budget" 3380.
    (extra ~load:400. ~budget:100.);
  Alcotest.check costs_equal "load 3200, tightest budget" 10280.
    (extra ~load:3200. ~budget:0.1);
  Alcotest.check costs_equal "load 3200, loosest budget" 7500.
    (extra ~load:3200. ~budget:100.)

let () =
  Alcotest.run "golden"
    [
      ( "fig6",
        [
          Alcotest.test_case "pinned optimal rows (100 min/yr)" `Quick
            test_fig6_pinned_rows;
          Alcotest.test_case "bronze->silver crossover near 1400-1600" `Quick
            test_fig6_family_crossover;
          Alcotest.test_case "machineB never selected" `Quick
            test_fig6_machineb_never_selected;
          Alcotest.test_case "downtime monotone in load per family" `Quick
            test_fig6_downtime_monotone_in_load;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "pinned design series" `Quick
            test_fig7_pinned_series;
          Alcotest.test_case "series structure and rI->rH crossover" `Quick
            test_fig7_structure;
        ] );
      ( "fig8",
        [
          Alcotest.test_case "cost steps monotone, non-negative" `Quick
            test_fig8_cost_steps;
          Alcotest.test_case "pinned endpoints" `Quick
            test_fig8_pinned_endpoints;
        ] );
    ]
