(* End-to-end tests of the aved serve daemon: a real subprocess on a
   temp Unix socket, driven over the wire protocol. The load-bearing
   assertion is byte parity — for every verb with a CLI --json twin,
   the server's "result" field re-serializes to exactly the CLI's
   stdout for the same spec files and request. The suite ends by
   delivering SIGTERM and asserting a clean drain: exit status 0 and
   the socket file unlinked. Runs from _build/default/test. *)

module Protocol = Aved_server.Protocol
module Json = Aved_explain.Json

let aved = Filename.concat (Filename.concat ".." "bin") "main.exe"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

let run_aved args =
  let dir = Filename.temp_file "aved_srv_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let out = Filename.concat dir "out" in
  let err = Filename.concat dir "err" in
  let status =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote aved) args
         (Filename.quote out) (Filename.quote err))
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  Sys.rmdir dir;
  (status, stdout, stderr)

let spec_dir =
  lazy
    (let dir = Filename.temp_file "aved_srv_specs" "" in
     Sys.remove dir;
     let status, _, _ = run_aved (Printf.sprintf "dump-specs %s" dir) in
     if status <> 0 then Alcotest.failf "dump-specs failed with %d" status;
     dir)

let spec name = Filename.concat (Lazy.force spec_dir) name

(* ------------------------------------------------------------------ *)
(* The daemon under test, shared by the whole suite *)

type daemon = { pid : int; socket : string; dir : string }

let daemon = ref None

let start_daemon () =
  let dir = Filename.temp_file "aved_srv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let socket = Filename.concat dir "aved.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process aved
      [| aved; "serve"; "--socket"; socket; "--jobs"; "2" |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let d = { pid; socket; dir } in
  daemon := Some d;
  d

let connect_once socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX socket) with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
      Unix.close fd;
      None

(* The daemon, started on first use and polled until it accepts. *)
let the_daemon =
  lazy
    (let d = start_daemon () in
     let deadline = Unix.gettimeofday () +. 10. in
     let rec wait () =
       match connect_once d.socket with
       | Some fd ->
           Unix.close fd;
           d
       | None ->
           if Unix.gettimeofday () > deadline then
             Alcotest.fail "server did not come up within 10s";
           Unix.sleepf 0.05;
           wait ()
     in
     wait ())

let with_conn f =
  let d = Lazy.force the_daemon in
  match connect_once d.socket with
  | None -> Alcotest.fail "could not connect to the server"
  | Some fd ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> f ic oc)

let rpc ic oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc;
  input_line ic

let response line =
  match Protocol.response_of_line line with
  | Ok r -> r
  | Error m -> Alcotest.failf "unparsable response %S: %s" line m

let server_result line =
  with_conn @@ fun ic oc ->
  match (response (rpc ic oc line)).Protocol.outcome with
  | Ok result -> result
  | Error (_, m) -> Alcotest.failf "server refused %S: %s" line m

let server_error line =
  with_conn @@ fun ic oc ->
  let r = response (rpc ic oc line) in
  match r.Protocol.outcome with
  | Ok result ->
      Alcotest.failf "server accepted %S: %s" line (Json.to_string result)
  | Error (code, message) -> (r.Protocol.response_id, code, message)

let code_name = function
  | Some c -> Protocol.error_code_to_string c
  | None -> "<unknown code>"

let check_code name expected actual =
  Alcotest.(check string)
    name
    (Protocol.error_code_to_string expected)
    (code_name actual)

let spec_params () =
  [
    ("infra_file", Json.String (spec "infrastructure.spec"));
    ("service_file", Json.String (spec "ecommerce.spec"));
  ]

(* ------------------------------------------------------------------ *)
(* Byte parity with the one-shot CLI *)

let check_parity name ~cli ~verb ~params =
  let status, stdout, stderr = run_aved cli in
  if status <> 0 then
    Alcotest.failf "%s: CLI exited %d: %s" name status stderr;
  let result = server_result (Protocol.request_line verb params) in
  Alcotest.(check string)
    (name ^ ": server result = CLI stdout")
    (String.trim stdout) (Json.to_string result)

let test_design_parity () =
  check_parity "design"
    ~cli:
      (Printf.sprintf "design -i %s -s %s --load 1000 --downtime 100 --json"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
    ~verb:Protocol.Design
    ~params:
      (spec_params ()
      @ [ ("load", Json.Float 1000.); ("downtime_minutes", Json.Float 100.) ])

let test_frontier_parity () =
  check_parity "frontier"
    ~cli:
      (Printf.sprintf "frontier -i %s -s %s --load 1000 --json"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
    ~verb:Protocol.Frontier
    ~params:(spec_params () @ [ ("load", Json.Float 1000.) ])

let test_explain_parity () =
  check_parity "explain"
    ~cli:
      (Printf.sprintf
         "explain -i %s -s %s --load 1000 --downtime 100 --top 2 --json"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
    ~verb:Protocol.Explain
    ~params:
      (spec_params ()
      @ [
          ("load", Json.Float 1000.);
          ("downtime_minutes", Json.Float 100.);
          ("top", Json.Int 2);
        ])

let test_check_parity () =
  let status, stdout, stderr =
    run_aved
      (Printf.sprintf "check %s %s --json" (spec "infrastructure.spec")
         (spec "ecommerce.spec"))
  in
  if status <> 0 then
    Alcotest.failf "check: CLI exited %d: %s" status stderr;
  let result =
    server_result
      (Protocol.request_line Protocol.Check
         [
           ( "files",
             Json.List
               [
                 Json.String (spec "infrastructure.spec");
                 Json.String (spec "ecommerce.spec");
               ] );
         ])
  in
  Alcotest.(check string)
    "check: server result = CLI stdout" (String.trim stdout)
    (Json.to_string result)

(* ------------------------------------------------------------------ *)
(* Protocol behavior *)

let test_health () =
  let result = server_result (Protocol.request_line Protocol.Health []) in
  Alcotest.(check string)
    "exact bytes" "{\"schema_version\":2,\"status\":\"ok\"}"
    (Json.to_string result)

let test_id_echo () =
  with_conn @@ fun ic oc ->
  let line =
    Protocol.request_line ~id:(Json.String "req-5") Protocol.Health []
  in
  let r = response (rpc ic oc line) in
  Alcotest.(check string)
    "id echoed" "\"req-5\""
    (Json.to_string r.Protocol.response_id)

let test_stats_shape () =
  let result = server_result (Protocol.request_line Protocol.Stats []) in
  match result with
  | Json.Obj fields ->
      List.iter
        (fun key ->
          Alcotest.(check bool)
            (Printf.sprintf "stats has %S" key)
            true
            (List.mem_assoc key fields))
        [
          "uptime_seconds"; "queue"; "connections"; "coalescing"; "slo";
          "memo"; "spec_cache"; "counters"; "gauges"; "histograms";
          "spans_dropped";
        ];
      (* The coalescing object reports the in-flight registry... *)
      (match List.assoc_opt "coalescing" fields with
      | Some (Json.Obj c) ->
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "coalescing has %S" key)
                true (List.mem_assoc key c))
            [ "enabled"; "inflight"; "coalesced"; "broadcasts" ]
      | _ -> Alcotest.fail "stats coalescing is not an object");
      (* ...and connections the event loop's admission counters. *)
      (match List.assoc_opt "connections" fields with
      | Some (Json.Obj c) ->
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "connections has %S" key)
                true (List.mem_assoc key c))
            [ "live"; "opened"; "closed"; "rejected" ]
      | _ -> Alcotest.fail "stats connections is not an object");
      (* The queue object carries the backpressure counters... *)
      (match List.assoc_opt "queue" fields with
      | Some (Json.Obj q) ->
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "queue has %S" key)
                true (List.mem_assoc key q))
            [ "depth"; "capacity"; "high_water"; "shed"; "deadline_exceeded" ]
      | _ -> Alcotest.fail "stats queue is not an object");
      (* ...and the SLO object the error-budget readout. *)
      (match List.assoc_opt "slo" fields with
      | Some (Json.Obj s) ->
          List.iter
            (fun key ->
              Alcotest.(check bool)
                (Printf.sprintf "slo has %S" key)
                true (List.mem_assoc key s))
            [
              "target"; "window_seconds"; "requests"; "good"; "bad";
              "success_rate"; "error_budget"; "burn_rate"; "budget_remaining";
              "met";
            ]
      | _ -> Alcotest.fail "stats slo is not an object")
  | _ -> Alcotest.fail "stats result is not an object"

let test_metrics_exposition () =
  let result = server_result (Protocol.request_line Protocol.Metrics []) in
  match Aved_api.Api.metrics_result_of_json result with
  | Error m -> Alcotest.failf "metrics result did not decode: %s" m
  | Ok { Aved_api.Api.metrics_content_type; body } ->
      Alcotest.(check string)
        "content type" "text/plain; version=0.0.4" metrics_content_type;
      Alcotest.(check bool) "non-empty" true (String.length body > 0);
      Alcotest.(check bool) "ends with newline" true
        (body.[String.length body - 1] = '\n');
      (* Every family the dashboard relies on is present and typed. *)
      List.iter
        (fun family ->
          Alcotest.(check bool)
            (Printf.sprintf "exposes %s" family)
            true
            (contains body (Printf.sprintf "# TYPE %s " family)))
        [
          "server_slo_target"; "server_slo_success_rate";
          "server_slo_burn_rate"; "server_slo_error_budget_remaining";
          "server_queue_depth"; "server_connections_live";
          "server_requests_health"; "server_spans_dropped";
          "server_gc_heap_words";
        ];
      (* Request histograms render as native histogram families. *)
      Alcotest.(check bool) "request histogram" true
        (contains body "# TYPE server_request_seconds histogram");
      Alcotest.(check bool) "cumulative buckets" true
        (contains body "server_request_seconds_bucket{le=\"+Inf\"}");
      Alcotest.(check bool) "histogram count series" true
        (contains body "server_request_seconds_count")

let test_bad_json () =
  let id, code, message = server_error "this is not json" in
  check_code "code" Protocol.Bad_request code;
  Alcotest.(check string) "null id" "null" (Json.to_string id);
  Alcotest.(check bool) "names the parse failure" true
    (contains message "malformed JSON")

let test_unknown_verb () =
  let _, code, message =
    server_error "{\"schema_version\":1,\"verb\":\"bogus\",\"params\":{}}"
  in
  check_code "code" Protocol.Bad_request code;
  Alcotest.(check bool) "names the verb" true (contains message "bogus")

let test_wrong_schema_version () =
  let _, code, message =
    server_error "{\"schema_version\":3,\"verb\":\"health\",\"params\":{}}"
  in
  check_code "code" Protocol.Bad_request code;
  Alcotest.(check bool) "names the version" true
    (contains message "schema_version 3")

let test_missing_params () =
  let _, code, message =
    server_error (Protocol.request_line Protocol.Design [])
  in
  check_code "code" Protocol.Bad_request code;
  Alcotest.(check bool) "names the param" true (contains message "infra_file")

let test_bad_spec_is_user_error () =
  let _, code, _ =
    server_error
      (Protocol.request_line Protocol.Design
         [
           ("infra_file", Json.String "/nonexistent/infra.spec");
           ("service_file", Json.String (spec "ecommerce.spec"));
           ("load", Json.Float 1000.);
           ("downtime_minutes", Json.Float 100.);
         ])
  in
  check_code "code" Protocol.User_error code

let test_expired_deadline () =
  (* A negative queueing deadline has always already passed, so the
     check fires deterministically regardless of clock granularity. *)
  let id, code, _ =
    server_error
      (Protocol.request_line ~id:(Json.Int 42) ~deadline_ms:(-1.)
         Protocol.Design
         (spec_params ()
         @ [ ("load", Json.Float 1000.); ("downtime_minutes", Json.Float 100.) ]
         ))
  in
  check_code "code" Protocol.Deadline_exceeded code;
  Alcotest.(check string) "id echoed" "42" (Json.to_string id)

let test_blank_lines_skipped () =
  with_conn @@ fun ic oc ->
  output_string oc "\n  \n";
  let line = Protocol.request_line Protocol.Health [] in
  output_string oc line;
  output_char oc '\n';
  flush oc;
  match (response (input_line ic)).Protocol.outcome with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "health refused after blank lines: %s" m

let test_deep_nesting_rejected () =
  (* A deeply nested line must be a bad request, not a Stack_overflow
     that kills the reader thread and leaks the connection: the same
     connection must still answer a health request afterwards. *)
  with_conn @@ fun ic oc ->
  let bomb = String.make 100_000 '[' in
  let r = response (rpc ic oc bomb) in
  (match r.Protocol.outcome with
  | Ok result ->
      Alcotest.failf "nesting bomb accepted: %s" (Json.to_string result)
  | Error (code, _) -> check_code "code" Protocol.Bad_request code);
  match (response (rpc ic oc (Protocol.request_line Protocol.Health []))).Protocol.outcome with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "health refused after nesting bomb: %s" m

let test_live_socket_refused () =
  (* A second daemon pointed at the live daemon's socket must refuse to
     steal the endpoint and exit as a user error. *)
  let d = Lazy.force the_daemon in
  let status, _, stderr =
    run_aved (Printf.sprintf "serve --socket %s" (Filename.quote d.socket))
  in
  Alcotest.(check int) "exit code" 1 status;
  Alcotest.(check bool) "names the conflict" true (contains stderr "in use");
  (* The probe must not have disturbed the running daemon. *)
  match
    (response
       (with_conn @@ fun ic oc ->
        rpc ic oc (Protocol.request_line Protocol.Health [])))
      .Protocol.outcome
  with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "daemon unhealthy after probe: %s" m

let test_concurrent_connections () =
  with_conn @@ fun ic1 oc1 ->
  with_conn @@ fun ic2 oc2 ->
  let line = Protocol.request_line Protocol.Health [] in
  output_string oc1 line;
  output_char oc1 '\n';
  flush oc1;
  output_string oc2 line;
  output_char oc2 '\n';
  flush oc2;
  List.iter
    (fun ic ->
      match (response (input_line ic)).Protocol.outcome with
      | Ok _ -> ()
      | Error (_, m) -> Alcotest.failf "health failed: %s" m)
    [ ic2; ic1 ]

(* ------------------------------------------------------------------ *)
(* The structured request log, against a dedicated constrained daemon *)

(* A private daemon with --log, a one-slot queue and one dispatcher:
   a slow cold design parks the dispatcher, so pipelined health
   requests behind it overflow the queue deterministically and at
   least one is shed. Every request line — answered, shed, malformed —
   must then appear exactly once in the JSON log with monotone stage
   timestamps, and SIGUSR1 must append a snapshot record. *)
let test_request_log () =
  let dir = Filename.temp_file "aved_srv_log" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let socket = Filename.concat dir "aved.sock" in
  let log_path = Filename.concat dir "requests.jsonl" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process aved
      [|
        aved; "serve"; "--socket"; socket; "--jobs"; "1"; "--dispatchers";
        "1"; "--queue"; "1"; "--log"; log_path;
      |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let cleanup () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match connect_once socket with
    | Some fd -> fd
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "log daemon did not come up within 10s";
        Unix.sleepf 0.05;
        wait ()
  in
  let fd = wait () in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let healths = 8 in
  let requests = 1 + healths in
  (* One write: the design reaches the lone dispatcher first, then the
     healths behind it hit the one-slot queue while it is still busy. *)
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Protocol.request_line ~id:(Json.Int 1) Protocol.Design
       (spec_params ()
       @ [ ("load", Json.Float 1000.); ("downtime_minutes", Json.Float 100.) ]
       ));
  Buffer.add_char buf '\n';
  for i = 2 to requests do
    Buffer.add_string buf
      (Protocol.request_line ~id:(Json.Int i) Protocol.Health []);
    Buffer.add_char buf '\n'
  done;
  output_string oc (Buffer.contents buf);
  flush oc;
  let shed_seen = ref 0 in
  for _ = 1 to requests do
    match (response (input_line ic)).Protocol.outcome with
    | Ok _ -> ()
    | Error (Some Protocol.Overloaded, _) -> incr shed_seen
    | Error (code, m) ->
        Alcotest.failf "unexpected error %s: %s" (code_name code) m
  done;
  Alcotest.(check bool) "at least one request shed" true (!shed_seen >= 1);
  (* A malformed line must be logged too, under verb "invalid". *)
  (match (response (rpc ic oc "not json")).Protocol.outcome with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ());
  Unix.close fd;
  (* SIGUSR1: the accept loop notices within its 250 ms timeout. *)
  Unix.kill pid Sys.sigusr1;
  Unix.sleepf 0.6;
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "log daemon did not drain cleanly");
  let records =
    read_file log_path |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match Aved_api.Json_parse.of_string line with
           | Ok (Json.Obj fields) -> fields
           | Ok _ -> Alcotest.failf "log line is not an object: %s" line
           | Error m -> Alcotest.failf "unparsable log line %S: %s" line m)
  in
  let event fields =
    match List.assoc_opt "event" fields with
    | Some (Json.String e) -> e
    | _ -> Alcotest.fail "log record lacks an event"
  in
  let of_kind k = List.filter (fun r -> event r = k) records in
  Alcotest.(check int) "one start event" 1 (List.length (of_kind "start"));
  Alcotest.(check int) "one stop event" 1 (List.length (of_kind "stop"));
  Alcotest.(check bool) "snapshot dumped" true
    (List.length (of_kind "snapshot") >= 1);
  let reqs = of_kind "request" in
  (* Every request line appears exactly once: the N well-formed ones,
     keyed by their echoed ids, plus the malformed line. *)
  Alcotest.(check int) "one record per request" (requests + 1)
    (List.length reqs);
  for i = 1 to requests do
    Alcotest.(check int)
      (Printf.sprintf "request %d logged once" i)
      1
      (List.length
         (List.filter
            (fun r -> List.assoc_opt "id" r = Some (Json.Int i))
            reqs))
  done;
  Alcotest.(check int) "malformed line logged as invalid" 1
    (List.length
       (List.filter
          (fun r -> List.assoc_opt "verb" r = Some (Json.String "invalid"))
          reqs));
  Alcotest.(check int) "shed requests logged as overloaded" !shed_seen
    (List.length
       (List.filter
          (fun r ->
            List.assoc_opt "outcome" r = Some (Json.String "overloaded"))
          reqs));
  (* Trace ids are unique across the run. *)
  let ids =
    List.map
      (fun r ->
        match List.assoc_opt "trace_id" r with
        | Some (Json.String id) -> id
        | _ -> Alcotest.fail "request record lacks a trace id")
      reqs
  in
  Alcotest.(check int) "trace ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  (* Stage timestamps are monotone and stage durations partition the
     end-to-end latency. *)
  List.iter
    (fun r ->
      let stages =
        match List.assoc_opt "stages" r with
        | Some (Json.List l) -> l
        | _ -> Alcotest.fail "request record lacks stages"
      in
      let ends =
        List.map
          (fun s ->
            match s with
            | Json.Obj f -> (
                match List.assoc_opt "end_s" f with
                | Some (Json.Float e) -> e
                | _ -> Alcotest.fail "stage lacks end_s")
            | _ -> Alcotest.fail "stage is not an object")
          stages
      in
      Alcotest.(check bool) "monotone stage timestamps" true
        (List.for_all2 ( <= ) ends (List.tl ends @ [ infinity ]));
      let stage_ms =
        List.fold_left
          (fun acc s ->
            match s with
            | Json.Obj f -> (
                match List.assoc_opt "ms" f with
                | Some (Json.Float ms) -> acc +. ms
                | _ -> acc)
            | _ -> acc)
          0. stages
      in
      match List.assoc_opt "total_ms" r with
      | Some (Json.Float total) ->
          Alcotest.(check (float 1e-6)) "stages sum to total" total stage_ms
      | _ -> Alcotest.fail "request record lacks total_ms")
    reqs;
  (* The snapshot carries the full stats document. *)
  match of_kind "snapshot" with
  | snap :: _ -> (
      match List.assoc_opt "stats" snap with
      | Some (Json.Obj stats) ->
          Alcotest.(check bool) "snapshot has slo" true
            (List.mem_assoc "slo" stats);
          Alcotest.(check bool) "snapshot has gauges" true
            (List.mem_assoc "gauges" stats)
      | _ -> Alcotest.fail "snapshot record lacks stats")
  | [] -> ()

(* ------------------------------------------------------------------ *)
(* Distributed tracing: a dedicated daemon with sampling forced on *)

let obj_fields = function Json.Obj fields -> fields | _ -> []

(* Span accessors over the wire encoding of the trace verb. *)
let span_int s name =
  match List.assoc_opt name (match s with Json.Obj f -> f | _ -> []) with
  | Some (Json.Int i) -> i
  | _ -> Alcotest.failf "span missing int field %s" name

let span_float s name =
  match List.assoc_opt name (match s with Json.Obj f -> f | _ -> []) with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> Alcotest.failf "span missing float field %s" name

let span_str s name =
  match List.assoc_opt name (match s with Json.Obj f -> f | _ -> []) with
  | Some (Json.String v) -> v
  | _ -> Alcotest.failf "span missing string field %s" name

let has_prefix p s =
  String.length s >= String.length p && String.sub s 0 (String.length p) = p

(* Does [id]'s ancestor chain pass through [ancestor]? *)
let rec under parents id ancestor =
  match Hashtbl.find_opt parents id with
  | None -> false
  | Some p -> p = ancestor || under parents p ancestor

let check_span_tree spans =
  let ids = Hashtbl.create 256 in
  let parents = Hashtbl.create 256 in
  List.iter
    (fun s ->
      let id = span_int s "id" in
      if Hashtbl.mem ids id then Alcotest.failf "duplicate span id %d" id;
      Hashtbl.add ids id ();
      Hashtbl.add parents id (span_int s "parent"))
    spans;
  let roots =
    List.filter (fun s -> span_int s "parent" = 0) spans
  in
  (match roots with
  | [ root ] ->
      Alcotest.(check string)
        "root is the request span" "request" (span_str root "name")
  | _ -> Alcotest.failf "expected exactly one root, got %d" (List.length roots));
  (* Every parent link resolves: capacity drops whole subtrees, never
     a parent out from under a retained child. *)
  List.iter
    (fun s ->
      let parent = span_int s "parent" in
      if parent <> 0 && not (Hashtbl.mem ids parent) then
        Alcotest.failf "span %d (%s) has unresolvable parent %d"
          (span_int s "id") (span_str s "name") parent)
    spans;
  (* Containment: every span's window lies within its parent's (a small
     epsilon absorbs float rounding of the shared wall clock), and the
     same-domain children of any span fit inside it back-to-back. *)
  let by_id = Hashtbl.create 256 in
  List.iter (fun s -> Hashtbl.add by_id (span_int s "id") s) spans;
  let eps = 0.5 (* ms *) in
  List.iter
    (fun s ->
      match Hashtbl.find_opt by_id (span_int s "parent") with
      | None -> ()
      | Some p ->
          let s0 = span_float s "start_ms" and d = span_float s "dur_ms" in
          let p0 = span_float p "start_ms" and pd = span_float p "dur_ms" in
          if s0 < p0 -. eps || s0 +. d > p0 +. pd +. eps then
            Alcotest.failf "span %d (%s) escapes its parent %d (%s)"
              (span_int s "id") (span_str s "name") (span_int p "id")
              (span_str p "name"))
    spans;
  (* The lifecycle stages are a strict partition of the request: their
     durations sum to the root's. (Deeper levels only guarantee
     containment — a worker help-draining a sibling task runs it
     nested inside its own span's window, so sibling durations can
     legitimately double-count.) *)
  let root = List.find (fun s -> span_int s "parent" = 0) spans in
  let stage_sum =
    List.fold_left
      (fun a s ->
        if span_int s "parent" = span_int root "id" then
          a +. span_float s "dur_ms"
        else a)
      0. spans
  in
  if Float.abs (stage_sum -. span_float root "dur_ms") > eps then
    Alcotest.failf "stage spans sum to %.3f ms, request took %.3f ms"
      stage_sum (span_float root "dur_ms");
  parents

let test_tracing_live () =
  let dir = Filename.temp_file "aved_srv_trace" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let socket = Filename.concat dir "aved.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process aved
      [|
        aved; "serve"; "--socket"; socket; "--jobs"; "2"; "--trace-sample";
        "1";
      |]
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let cleanup () =
    (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
    (try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ());
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match connect_once socket with
    | Some fd -> fd
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "trace daemon did not come up within 10s";
        Unix.sleepf 0.05;
        wait ()
  in
  let fd = wait () in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let design_line =
    Protocol.request_line ~id:(Json.Int 1) Protocol.Design
      (spec_params ()
      @ [ ("load", Json.Float 1000.); ("downtime_minutes", Json.Float 100.) ])
  in
  let fetch_trace () =
    let r = response (rpc ic oc design_line) in
    (match r.Protocol.outcome with
    | Ok _ -> ()
    | Error (_, m) -> Alcotest.failf "design refused: %s" m);
    let trace_id =
      match r.Protocol.response_trace_id with
      | Some id -> id
      | None -> Alcotest.fail "ok envelope carries no trace_id"
    in
    (* The response is written before the lifecycle finishes, so the
       trace can land in the ring a moment after the client has the
       answer; a fetch straight after the reply may race it. *)
    let rec fetch_doc attempts =
      match
        (response
           (rpc ic oc
              (Protocol.request_line Protocol.Trace
                 [ ("trace_id", Json.String trace_id) ])))
          .Protocol.outcome
      with
      | Ok result -> (
          match List.assoc_opt "trace" (obj_fields result) with
          | Some doc -> doc
          | None -> Alcotest.fail "trace result lacks a trace field")
      | Error (_, m) ->
          if attempts >= 40 then Alcotest.failf "trace fetch refused: %s" m
          else begin
            Unix.sleepf 0.05;
            fetch_doc (attempts + 1)
          end
    in
    let doc = fetch_doc 0 in
    Alcotest.(check string)
      "trace document echoes the id" trace_id
      (match List.assoc_opt "trace_id" (obj_fields doc) with
      | Some (Json.String s) -> s
      | _ -> "");
    doc
  in
  let doc = fetch_trace () in
  let spans =
    match List.assoc_opt "spans" (obj_fields doc) with
    | Some (Json.List spans) -> spans
    | _ -> Alcotest.fail "trace document lacks spans"
  in
  Alcotest.(check bool) "trace has spans" true (List.length spans > 6);
  let parents = check_span_tree spans in
  let handle =
    match List.find_opt (fun s -> span_str s "name" = "handle") spans with
    | Some s -> span_int s "id"
    | None -> Alcotest.fail "no handle stage span"
  in
  let under_handle pred =
    List.filter
      (fun s -> pred (span_str s "name") && under parents (span_int s "id") handle)
      spans
  in
  Alcotest.(check bool) "search-layer span under handle" true
    (under_handle (has_prefix "search.") <> []);
  Alcotest.(check bool) "solver-layer span under handle" true
    (under_handle (fun n ->
         has_prefix "markov." n || has_prefix "avail.engine." n)
    <> []);
  (* Worker domains adopt the request's context: with --jobs 2 the
     search fans out to domains other than the dispatcher's, so spans
     from a different tid must appear in the same trace. Pool pickup
     is scheduling-dependent, so allow a few attempts. *)
  let root_tid =
    match List.find_opt (fun s -> span_int s "parent" = 0) spans with
    | Some root -> span_int root "tid"
    | None -> Alcotest.fail "no root span"
  in
  let has_worker_span spans =
    List.exists (fun s -> span_int s "tid" <> root_tid) spans
  in
  let rec try_workers attempt spans =
    if has_worker_span spans then ()
    else if attempt >= 5 then
      Alcotest.fail "no worker-domain span in any sampled trace"
    else
      let doc = fetch_trace () in
      match List.assoc_opt "spans" (obj_fields doc) with
      | Some (Json.List spans) -> try_workers (attempt + 1) spans
      | _ -> Alcotest.fail "trace document lacks spans"
  in
  try_workers 0 spans;
  (* Request-scoped counter attribution reached the document. *)
  (match List.assoc_opt "counters" (obj_fields doc) with
  | Some (Json.Obj counters) ->
      Alcotest.(check bool) "attributed counters present" true (counters <> [])
  | _ -> Alcotest.fail "trace document lacks counters");
  (* Unknown ids are a user error, and even error envelopes carry a
     trace id. *)
  let r =
    response
      (rpc ic oc
         (Protocol.request_line Protocol.Trace
            [ ("trace_id", Json.String "doesnotexist") ]))
  in
  (match r.Protocol.outcome with
  | Ok _ -> Alcotest.fail "unknown trace id was accepted"
  | Error (code, _) -> check_code "unknown id" Protocol.User_error code);
  match r.Protocol.response_trace_id with
  | Some _ -> ()
  | None -> Alcotest.fail "error envelope carries no trace_id"

(* The shared daemon runs with sampling off: its envelopes still carry
   trace ids, but the trace verb has nothing to serve. *)
let test_trace_ids_without_sampling () =
  (with_conn @@ fun ic oc ->
   let r =
     response (rpc ic oc (Protocol.request_line Protocol.Health []))
   in
   match r.Protocol.response_trace_id with
   | Some id -> Alcotest.(check int) "16-hex id" 16 (String.length id)
   | None -> Alcotest.fail "ok envelope carries no trace_id");
  let _, code, message =
    server_error
      (Protocol.request_line Protocol.Trace
         [ ("trace_id", Json.String "0123456789abcdef") ])
  in
  check_code "unsampled fetch is a user error" Protocol.User_error code;
  Alcotest.(check bool) "message points at --trace-sample" true
    (contains message "trace-sample")

(* ------------------------------------------------------------------ *)
(* Unit tests of the event-loop building blocks *)

module Framing = Aved_server.Framing
module Inflight = Aved_server.Inflight

let feed_string t s =
  match Framing.feed t (Bytes.of_string s) ~len:(String.length s) with
  | Ok lines -> lines
  | Error m -> Alcotest.failf "framing refused %S: %s" s m

let test_framing_incremental () =
  let t = Framing.create () in
  (* A line split across many 1-byte chunks closes exactly once. *)
  String.iter
    (fun c ->
      Alcotest.(check (list string))
        "no line before the newline" []
        (feed_string t (String.make 1 c)))
    "hello";
  Alcotest.(check int) "partial bytes buffered" 5 (Framing.buffered t);
  Alcotest.(check (list string)) "line closes" [ "hello" ] (feed_string t "\n");
  Alcotest.(check int) "buffer drained" 0 (Framing.buffered t);
  (* Several pipelined lines in one chunk, CRLF tolerated, tail kept. *)
  Alcotest.(check (list string))
    "pipelined chunk" [ "a"; "b" ]
    (feed_string t "a\r\nb\ntail");
  Alcotest.(check (list string)) "tail closes" [ "tailc" ] (feed_string t "c\n")

let test_framing_bound () =
  let t = Framing.create ~max_line_bytes:16 () in
  let flood = String.make 32 'x' in
  (match Framing.feed t (Bytes.of_string flood) ~len:(String.length flood) with
  | Ok _ -> Alcotest.fail "oversized partial line accepted"
  | Error _ -> ());
  (* The failure is permanent: the stream cannot re-synchronize. *)
  match Framing.feed t (Bytes.of_string "a\n") ~len:2 with
  | Ok _ -> Alcotest.fail "framing resumed after overflow"
  | Error _ -> ()

let test_inflight_registry () =
  let t = Inflight.create () in
  Alcotest.(check int) "empty" 0 (Inflight.length t);
  (match Inflight.claim t ~key:"k" ~waiter:"leader-is-not-stored" with
  | `Leader -> ()
  | `Attached -> Alcotest.fail "first claim must lead");
  List.iter
    (fun w ->
      match Inflight.claim t ~key:"k" ~waiter:w with
      | `Attached -> ()
      | `Leader -> Alcotest.failf "%s claimed a second leadership" w)
    [ "w1"; "w2"; "w3" ];
  (match Inflight.claim t ~key:"other" ~waiter:"x" with
  | `Leader -> ()
  | `Attached -> Alcotest.fail "distinct keys are independent");
  Alcotest.(check int) "two in flight" 2 (Inflight.length t);
  (* Broadcast hits every waiter in attach order, with the verdict. *)
  let seen = ref [] in
  let n =
    Inflight.complete t ~key:"k" ~result:42 ~broadcast:(fun w r ->
        Alcotest.(check int) "verdict delivered" 42 r;
        seen := w :: !seen)
  in
  Alcotest.(check int) "three waiters" 3 n;
  Alcotest.(check (list string)) "attach order" [ "w1"; "w2"; "w3" ]
    (List.rev !seen);
  (* The key is free again; completing an absent key is a no-op. *)
  (match Inflight.claim t ~key:"k" ~waiter:"y" with
  | `Leader -> ()
  | `Attached -> Alcotest.fail "completed key still had an entry");
  Alcotest.(check int) "absent key broadcasts nothing" 0
    (Inflight.complete t ~key:"gone" ~result:0 ~broadcast:(fun _ _ -> ()))

let test_coalesce_key_identity () =
  let req line =
    match Protocol.request_of_line line with
    | Ok r -> r
    | Error (_, m) -> Alcotest.failf "bad request line: %s" m
  in
  let key line =
    match Protocol.coalesce_key (req line) with
    | Some k -> k
    | None -> Alcotest.failf "no coalesce key for %s" line
  in
  (* Same computation, different field order, ids and deadlines: one key. *)
  let a = key "{\"verb\":\"design\",\"id\":1,\"params\":{\"load\":5,\"x\":{\"b\":1,\"a\":2}}}" in
  let b = key "{\"verb\":\"design\",\"id\":2,\"deadline_ms\":50,\"params\":{\"x\":{\"a\":2,\"b\":1},\"load\":5}}" in
  Alcotest.(check string) "field order and envelope do not split keys" a b;
  (* Different params, verb, or negotiated version: distinct keys. *)
  let c = key "{\"verb\":\"design\",\"params\":{\"load\":6,\"x\":{\"a\":2,\"b\":1}}}" in
  Alcotest.(check bool) "params split keys" false (a = c);
  let d = key "{\"verb\":\"frontier\",\"params\":{\"load\":5,\"x\":{\"b\":1,\"a\":2}}}" in
  Alcotest.(check bool) "verbs split keys" false (a = d);
  let e = key "{\"schema_version\":2,\"verb\":\"design\",\"params\":{\"load\":5,\"x\":{\"b\":1,\"a\":2}}}" in
  Alcotest.(check bool) "dialects split keys" false (a = e);
  (* Time-varying verbs never coalesce. *)
  List.iter
    (fun v ->
      match
        Protocol.coalesce_key
          (req (Printf.sprintf "{\"verb\":%S,\"params\":{}}" v))
      with
      | None -> ()
      | Some _ -> Alcotest.failf "%s must not coalesce" v)
    [ "health"; "stats"; "metrics"; "trace" ]

let test_envelope_dialects () =
  (* v1 success envelopes carry no coalesced field; v2 always do. *)
  let v1 = Protocol.ok_response ~version:1 ~id:(Json.Int 3) (Json.Bool true) in
  Alcotest.(check string) "v1 bytes"
    "{\"schema_version\":1,\"id\":3,\"ok\":true,\"result\":true}" v1;
  let v2 =
    Protocol.ok_response ~version:2 ~coalesced:true ~id:(Json.Int 3)
      (Json.Bool true)
  in
  Alcotest.(check string) "v2 bytes"
    "{\"schema_version\":2,\"id\":3,\"ok\":true,\"coalesced\":true,\"result\":true}"
    v2;
  (* The spliced-body renderer is byte-identical to the JSON one. *)
  let result = Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Null ]) ] in
  Alcotest.(check string) "rendered splice = object render"
    (Protocol.ok_response ~version:2 ~trace_id:"t1" ~id:(Json.String "x") result)
    (Protocol.ok_response_rendered ~version:2 ~trace_id:"t1"
       ~id:(Json.String "x") (Json.to_string result));
  (* Error codes: legacy hyphenated strings on v1, the unified
     taxonomy on v2 — Shutting_down folds into overloaded. *)
  List.iter
    (fun (code, s1, s2) ->
      Alcotest.(check string) "v1 code" s1
        (Protocol.error_code_to_string ~version:1 code);
      Alcotest.(check string) "v2 code" s2
        (Protocol.error_code_to_string ~version:2 code))
    [
      (Protocol.Bad_request, "bad-request", "bad_request");
      (Protocol.User_error, "user-error", "check_error");
      (Protocol.Overloaded, "overloaded", "overloaded");
      (Protocol.Deadline_exceeded, "deadline-exceeded", "deadline");
      (Protocol.Shutting_down, "shutting-down", "overloaded");
      (Protocol.Internal, "internal", "internal");
    ];
  (* Both dialects decode. *)
  List.iter
    (fun (s, code) ->
      match Protocol.error_code_of_string s with
      | Some c when c = code -> ()
      | _ -> Alcotest.failf "%S did not decode" s)
    [
      ("bad-request", Protocol.Bad_request);
      ("bad_request", Protocol.Bad_request);
      ("check_error", Protocol.User_error);
      ("deadline", Protocol.Deadline_exceeded);
      ("overloaded", Protocol.Overloaded);
    ]

(* ------------------------------------------------------------------ *)
(* Wire API v2 against the live daemon *)

let raw_response line =
  with_conn @@ fun ic oc -> rpc ic oc line

(* v1 clients are untouched by the redesign: an explicit version-1
   request — or one naming no version at all, the only kind that
   existed before negotiation — gets a version-1 envelope, legacy
   result bytes, and no [coalesced] field. *)
let test_v1_compat () =
  List.iter
    (fun request ->
      let line = raw_response request in
      Alcotest.(check bool)
        (Printf.sprintf "v1 envelope for %s" request)
        true
        (has_prefix "{\"schema_version\":1,\"id\":null,\"ok\":true,\"trace_id\":" line);
      Alcotest.(check bool) "no coalesced field" false
        (contains line "coalesced");
      Alcotest.(check bool) "v1 result bytes" true
        (contains line "\"result\":{\"schema_version\":1,\"status\":\"ok\"}"))
    [
      "{\"schema_version\":1,\"verb\":\"health\",\"params\":{}}";
      "{\"verb\":\"health\",\"params\":{}}";
      "{\"verb\":\"health\"}";
    ];
  (* v1 errors keep the legacy hyphenated code strings. *)
  let err = raw_response "{\"schema_version\":1,\"verb\":\"bogus\",\"params\":{}}" in
  Alcotest.(check bool) "v1 error code" true
    (contains err "\"code\":\"bad-request\"")

let test_v2_envelope () =
  let line =
    raw_response (Protocol.request_line ~id:(Json.Int 7) Protocol.Health [])
  in
  Alcotest.(check bool) "v2 prefix with coalesced" true
    (has_prefix "{\"schema_version\":2,\"id\":7,\"ok\":true,\"coalesced\":false"
       line);
  let r = response line in
  Alcotest.(check (option bool))
    "decoded coalesced" (Some false) r.Protocol.response_coalesced;
  (* v2 errors speak the unified taxonomy. *)
  let err = raw_response "{\"schema_version\":2,\"verb\":\"bogus\",\"params\":{}}" in
  Alcotest.(check bool) "v2 error code" true
    (contains err "\"code\":\"bad_request\"")

(* The reactor's framing: a request dribbled in 1-byte writes is
   assembled and answered; two requests in one write both answer. *)
let test_partial_writes () =
  with_conn @@ fun ic oc ->
  let line = Protocol.request_line ~id:(Json.Int 9) Protocol.Health [] ^ "\n" in
  String.iter
    (fun c ->
      output_char oc c;
      flush oc)
    line;
  (match (response (input_line ic)).Protocol.outcome with
  | Ok _ -> ()
  | Error (_, m) -> Alcotest.failf "byte-at-a-time request refused: %s" m);
  let a = Protocol.request_line ~id:(Json.Int 10) Protocol.Health [] in
  let b = Protocol.request_line ~id:(Json.Int 11) Protocol.Health [] in
  output_string oc (a ^ "\n" ^ b ^ "\n");
  flush oc;
  List.iter
    (fun expected ->
      let r = response (input_line ic) in
      Alcotest.(check string) "pipelined id" expected
        (Json.to_string r.Protocol.response_id))
    [ "10"; "11" ]

(* Pipelining under v2: a slow design ahead of cheap healths on one
   connection; ids match each completion to its request whatever the
   arrival order. *)
let test_pipelined_ids () =
  with_conn @@ fun ic oc ->
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Protocol.request_line ~id:(Json.Int 100) Protocol.Design
       (spec_params ()
       @ [ ("load", Json.Float 1000.); ("downtime_minutes", Json.Float 100.) ]
       ));
  Buffer.add_char buf '\n';
  for i = 101 to 104 do
    Buffer.add_string buf
      (Protocol.request_line ~id:(Json.Int i) Protocol.Health []);
    Buffer.add_char buf '\n'
  done;
  output_string oc (Buffer.contents buf);
  flush oc;
  let seen = ref [] in
  for _ = 0 to 4 do
    let r = response (input_line ic) in
    (match r.Protocol.outcome with
    | Ok _ -> ()
    | Error (_, m) -> Alcotest.failf "pipelined request failed: %s" m);
    match r.Protocol.response_id with
    | Json.Int i -> seen := i :: !seen
    | other ->
        Alcotest.failf "non-integer id echoed: %s" (Json.to_string other)
  done;
  Alcotest.(check (list int))
    "every id answered exactly once"
    [ 100; 101; 102; 103; 104 ]
    (List.sort compare !seen)

(* ------------------------------------------------------------------ *)
(* Coalescing against the live daemon *)

let connect_client () =
  let d = Lazy.force the_daemon in
  match connect_once d.socket with
  | Some fd -> (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  | None -> Alcotest.fail "could not connect to the server"

let close_client (fd, _, _) = try Unix.close fd with Unix.Unix_error _ -> ()

let send_only (_, _, oc) line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* Counters materialize in the stats [counters] object on first
   increment; a name that has never fired reads as zero. *)
let stats_counter name =
  let stats = server_result (Protocol.request_line Protocol.Stats []) in
  match stats with
  | Json.Obj fields -> (
      match List.assoc_opt "counters" fields with
      | Some (Json.Obj counters) -> (
          match List.assoc_opt name counters with
          | Some (Json.Int n) -> n
          | _ -> 0)
      | _ -> Alcotest.fail "stats lacks counters")
  | _ -> Alcotest.fail "stats result is not an object"

(* The [coalescing] stats object is always present, whatever has run. *)
let coalescing_stat field =
  let stats = server_result (Protocol.request_line Protocol.Stats []) in
  match stats with
  | Json.Obj fields -> (
      match List.assoc_opt "coalescing" fields with
      | Some (Json.Obj c) -> (
          match List.assoc_opt field c with
          | Some (Json.Int n) -> n
          | _ -> Alcotest.failf "coalescing.%s missing" field)
      | _ -> Alcotest.fail "stats lacks coalescing")
  | _ -> Alcotest.fail "stats result is not an object"

(* Park both dispatchers on distinct blocker designs so a subsequent
   herd's leader sits queued while its twins arrive and attach. *)
let with_parked_dispatchers ~blocker_load f =
  let blockers =
    Array.init 4 (fun j ->
        let c = connect_client () in
        send_only c
          (Protocol.request_line ~id:(Json.Int (-1 - j)) Protocol.Design
             (spec_params ()
             @ [
                 ("load", Json.Float (blocker_load +. float_of_int j));
                 ("downtime_minutes", Json.Float 123.);
               ]));
        c)
  in
  Fun.protect ~finally:(fun () -> Array.iter close_client blockers) @@ fun () ->
  let result = f () in
  (* Blockers must themselves complete fine. *)
  Array.iter
    (fun (_, ic, _) ->
      match (response (input_line ic)).Protocol.outcome with
      | Ok _ -> ()
      | Error (_, m) -> Alcotest.failf "blocker failed: %s" m)
    blockers;
  result

(* A herd of identical uncached requests runs one underlying search;
   every response carries its own id around byte-identical results. *)
let test_coalescing_herd () =
  let herd_size = 12 in
  let searches_before = stats_counter "server.requests.design" in
  let herd = Array.init herd_size (fun _ -> connect_client ()) in
  Fun.protect ~finally:(fun () -> Array.iter close_client herd) @@ fun () ->
  let coalesced, results =
    with_parked_dispatchers ~blocker_load:4200. @@ fun () ->
    Array.iteri
      (fun k c ->
        send_only c
          (Protocol.request_line ~id:(Json.Int k) Protocol.Design
             (spec_params ()
             @ [
                 ("load", Json.Float 4100.);
                 ("downtime_minutes", Json.Float 123.);
               ])))
      herd;
    let coalesced = ref 0 in
    let results = ref [] in
    Array.iteri
      (fun k (_, ic, _) ->
        let r = response (input_line ic) in
        Alcotest.(check string) "own id echoed" (string_of_int k)
          (Json.to_string r.Protocol.response_id);
        if r.Protocol.response_coalesced = Some true then incr coalesced;
        match r.Protocol.outcome with
        | Ok result -> results := Json.to_string result :: !results
        | Error (_, m) -> Alcotest.failf "herd request %d failed: %s" k m)
      herd;
    (!coalesced, !results)
  in
  Alcotest.(check int) "identical results across the herd" 1
    (List.length (List.sort_uniq compare results));
  Alcotest.(check bool)
    (Printf.sprintf "most of the herd coalesced (%d/%d)" coalesced herd_size)
    true
    (coalesced >= herd_size / 2);
  let searches =
    stats_counter "server.requests.design" - searches_before - 4 (* blockers *)
  in
  Alcotest.(check bool)
    (Printf.sprintf "few underlying searches (%d)" searches)
    true
    (searches >= 1 && searches <= herd_size / 2)

(* Waiters share the leader's fate: identical requests naming an
   unreadable spec all receive the leader's error broadcast. *)
let test_error_broadcast () =
  let herd_size = 6 in
  let coalesced_before = coalescing_stat "coalesced" in
  let herd = Array.init herd_size (fun _ -> connect_client ()) in
  Fun.protect ~finally:(fun () -> Array.iter close_client herd) @@ fun () ->
  let errors =
    with_parked_dispatchers ~blocker_load:4210. @@ fun () ->
    Array.iteri
      (fun k c ->
        send_only c
          (Protocol.request_line ~id:(Json.Int k) Protocol.Design
             [
               ("infra_file", Json.String "/nonexistent/broadcast.spec");
               ("service_file", Json.String (spec "ecommerce.spec"));
               ("load", Json.Float 1000.);
               ("downtime_minutes", Json.Float 100.);
             ]))
      herd;
    Array.to_list
      (Array.map
         (fun (_, ic, _) ->
           let r = response (input_line ic) in
           match r.Protocol.outcome with
           | Ok _ -> Alcotest.fail "bad spec was accepted"
           | Error (code, message) ->
               check_code "shared error code" Protocol.User_error code;
               message)
         herd)
  in
  Alcotest.(check int) "identical error message across the herd" 1
    (List.length (List.sort_uniq compare errors));
  Alcotest.(check bool) "waiters were coalesced" true
    (coalescing_stat "coalesced" > coalesced_before)

(* ------------------------------------------------------------------ *)
(* Backpressure and drain, each against a dedicated daemon *)

let with_private_daemon args f =
  let dir = Filename.temp_file "aved_srv_priv" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o700;
  let socket = Filename.concat dir "aved.sock" in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process aved
      (Array.append [| aved; "serve"; "--socket"; socket |] args)
      Unix.stdin devnull devnull
  in
  Unix.close devnull;
  let reaped = ref false in
  let cleanup () =
    if not !reaped then begin
      (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
      try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()
    end;
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (try Sys.readdir dir with Sys_error _ -> [||]);
    try Sys.rmdir dir with Sys_error _ -> ()
  in
  Fun.protect ~finally:cleanup @@ fun () ->
  let deadline = Unix.gettimeofday () +. 10. in
  let rec wait () =
    match connect_once socket with
    | Some fd -> Unix.close fd
    | None ->
        if Unix.gettimeofday () > deadline then
          Alcotest.fail "private daemon did not come up within 10s";
        Unix.sleepf 0.05;
        wait ()
  in
  wait ();
  let terminate () =
    Unix.kill pid Sys.sigterm;
    let _, status = Unix.waitpid [] pid in
    reaped := true;
    status
  in
  f ~socket ~terminate

let private_conn socket =
  match connect_once socket with
  | Some fd -> (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
  | None -> Alcotest.fail "could not connect to the private daemon"

(* A client that stops reading cannot buffer without bound or wedge
   the daemon: once its backlog makes no progress for --send-timeout,
   the connection is dropped and other clients are unaffected. *)
let test_slow_reader_dropped () =
  with_private_daemon
    [| "--jobs"; "1"; "--queue"; "1000"; "--send-timeout"; "1" |]
  @@ fun ~socket ~terminate ->
  let ((_, ic, oc) as slow) = private_conn socket in
  Fun.protect ~finally:(fun () -> close_client slow) @@ fun () ->
  (* Pipeline far more response bytes than the kernel buffers absorb,
     and read none of them. *)
  let requests = 800 in
  let buf = Buffer.create (requests * 64) in
  for i = 1 to requests do
    Buffer.add_string buf
      (Protocol.request_line ~id:(Json.Int i) Protocol.Stats []);
    Buffer.add_char buf '\n'
  done;
  output_string oc (Buffer.contents buf);
  flush oc;
  (* Sit unreading past the stall bound (plus the sweep cadence). *)
  Unix.sleepf 2.5;
  (* The daemon must have cut us loose: reading now finds whatever the
     kernel buffered, then EOF — never all of the responses. *)
  let received = ref 0 in
  (try
     while !received < requests do
       ignore (input_line ic);
       incr received
     done
   with End_of_file | Sys_error _ -> ());
  Alcotest.(check bool)
    (Printf.sprintf "connection dropped mid-stream (%d/%d)" !received requests)
    true
    (!received < requests);
  (* The loop is not wedged: a fresh connection still answers, and the
     drop is visible in the telemetry. *)
  let ((_, ic2, oc2) as probe) = private_conn socket in
  Fun.protect ~finally:(fun () -> close_client probe) @@ fun () ->
  let r = response (rpc ic2 oc2 (Protocol.request_line Protocol.Stats [])) in
  (match r.Protocol.outcome with
  | Ok (Json.Obj fields) -> (
      match List.assoc_opt "counters" fields with
      | Some (Json.Obj counters) -> (
          match List.assoc_opt "server.connections.send_timeout" counters with
          | Some (Json.Int n) ->
              Alcotest.(check bool) "send_timeout counted" true (n >= 1)
          | _ -> Alcotest.fail "no send_timeout counter")
      | _ -> Alcotest.fail "stats lacks counters")
  | Ok _ -> Alcotest.fail "stats result is not an object"
  | Error (_, m) -> Alcotest.failf "daemon wedged after slow reader: %s" m);
  match terminate () with
  | Unix.WEXITED 0 -> ()
  | _ -> Alcotest.fail "daemon did not drain cleanly after slow reader"

(* SIGTERM mid-herd: requests already admitted — the queued leader and
   every attached waiter — are answered before exit. *)
let test_drain_with_waiters () =
  with_private_daemon [| "--jobs"; "1"; "--dispatchers"; "1" |]
  @@ fun ~socket ~terminate ->
  let filler = private_conn socket in
  let herd = Array.init 6 (fun _ -> private_conn socket) in
  Fun.protect
    ~finally:(fun () ->
      close_client filler;
      Array.iter close_client herd)
  @@ fun () ->
  (* Five distinct designs pile onto the lone dispatcher first, so the
     herd's leader is still queued — waiters attached — when SIGTERM
     lands. *)
  for j = 0 to 4 do
    send_only filler
      (Protocol.request_line ~id:(Json.Int (-1 - j)) Protocol.Design
         (spec_params ()
         @ [
             ("load", Json.Float (4300. +. float_of_int j));
             ("downtime_minutes", Json.Float 9.);
           ]))
  done;
  Array.iteri
    (fun k c ->
      send_only c
        (Protocol.request_line ~id:(Json.Int k) Protocol.Design
           (spec_params ()
           @ [
               ("load", Json.Float 4444.); ("downtime_minutes", Json.Float 9.);
             ])))
    herd;
  (* Give the event loop a beat to admit everything, then pull the
     plug while the queue is still working. *)
  Unix.sleepf 0.05;
  (match terminate () with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "drain exited %d" n
  | _ -> Alcotest.fail "drain died on a signal");
  (* Every admitted request was answered before exit: the responses
     are sitting in our kernel buffers. *)
  let (_, fic, _) = filler in
  for _ = 0 to 4 do
    match (response (input_line fic)).Protocol.outcome with
    | Ok _ -> ()
    | Error (_, m) -> Alcotest.failf "filler dropped in drain: %s" m
  done;
  let results = ref [] in
  Array.iteri
    (fun k (_, ic, _) ->
      let r = response (input_line ic) in
      Alcotest.(check string) "waiter id" (string_of_int k)
        (Json.to_string r.Protocol.response_id);
      match r.Protocol.outcome with
      | Ok result -> results := Json.to_string result :: !results
      | Error (_, m) -> Alcotest.failf "waiter %d dropped in drain: %s" k m)
    herd;
  Alcotest.(check int) "waiters share one result" 1
    (List.length (List.sort_uniq compare !results));
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

(* ------------------------------------------------------------------ *)
(* Shutdown — must run last: it takes the shared daemon down *)

let test_sigterm_drains () =
  let d = Lazy.force the_daemon in
  Unix.kill d.pid Sys.sigterm;
  let _, status = Unix.waitpid [] d.pid in
  (match status with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED n -> Alcotest.failf "server exited %d" n
  | Unix.WSIGNALED n -> Alcotest.failf "server killed by signal %d" n
  | Unix.WSTOPPED n -> Alcotest.failf "server stopped by signal %d" n);
  Alcotest.(check bool)
    "socket unlinked" false (Sys.file_exists d.socket);
  (try Sys.rmdir d.dir with Sys_error _ -> ());
  daemon := None

(* Belt and braces: never leave the subprocess behind, even if the
   suite dies before the shutdown test. *)
let () =
  at_exit (fun () ->
      match !daemon with
      | Some d -> ( try Unix.kill d.pid Sys.sigkill with Unix.Unix_error _ -> ())
      | None -> ())

let () =
  Alcotest.run "server"
    [
      ( "parity",
        [
          Alcotest.test_case "design = CLI --json" `Quick test_design_parity;
          Alcotest.test_case "frontier = CLI --json" `Quick
            test_frontier_parity;
          Alcotest.test_case "explain = CLI --json" `Quick test_explain_parity;
          Alcotest.test_case "check = CLI --json" `Quick test_check_parity;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "health answers exact bytes" `Quick test_health;
          Alcotest.test_case "request ids echo back" `Quick test_id_echo;
          Alcotest.test_case "stats carries the observability surface" `Quick
            test_stats_shape;
          Alcotest.test_case "metrics verb speaks Prometheus" `Quick
            test_metrics_exposition;
          Alcotest.test_case "request log: every request exactly once" `Quick
            test_request_log;
          Alcotest.test_case "malformed JSON is a bad request" `Quick
            test_bad_json;
          Alcotest.test_case "unknown verb is a bad request" `Quick
            test_unknown_verb;
          Alcotest.test_case "foreign schema_version is a bad request" `Quick
            test_wrong_schema_version;
          Alcotest.test_case "missing params are a bad request" `Quick
            test_missing_params;
          Alcotest.test_case "unreadable spec is a user error" `Quick
            test_bad_spec_is_user_error;
          Alcotest.test_case "expired deadline is reported as such" `Quick
            test_expired_deadline;
          Alcotest.test_case "blank lines are skipped" `Quick
            test_blank_lines_skipped;
          Alcotest.test_case "connections are independent" `Quick
            test_concurrent_connections;
          Alcotest.test_case "nesting bomb is a bad request" `Quick
            test_deep_nesting_rejected;
          Alcotest.test_case "live socket path is refused" `Quick
            test_live_socket_refused;
        ] );
      ( "tracing",
        [
          Alcotest.test_case "sampled request yields a span tree" `Quick
            test_tracing_live;
          Alcotest.test_case "trace ids without sampling" `Quick
            test_trace_ids_without_sampling;
        ] );
      ( "units",
        [
          Alcotest.test_case "framing assembles incrementally" `Quick
            test_framing_incremental;
          Alcotest.test_case "framing bounds line length" `Quick
            test_framing_bound;
          Alcotest.test_case "inflight registry leads and broadcasts" `Quick
            test_inflight_registry;
          Alcotest.test_case "coalesce keys hash content, not envelope" `Quick
            test_coalesce_key_identity;
          Alcotest.test_case "envelope dialects v1/v2" `Quick
            test_envelope_dialects;
        ] );
      ( "wire-v2",
        [
          Alcotest.test_case "v1 requests get byte-identical v1 replies"
            `Quick test_v1_compat;
          Alcotest.test_case "v2 envelope carries id and coalesced" `Quick
            test_v2_envelope;
          Alcotest.test_case "byte-at-a-time and two-in-one-write framing"
            `Quick test_partial_writes;
          Alcotest.test_case "pipelined ids match out-of-order completion"
            `Quick test_pipelined_ids;
        ] );
      ( "coalescing",
        [
          Alcotest.test_case "identical herd shares one search" `Quick
            test_coalescing_herd;
          Alcotest.test_case "errors broadcast to waiters too" `Quick
            test_error_broadcast;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "slow reader is dropped, loop survives" `Quick
            test_slow_reader_dropped;
          Alcotest.test_case "drain answers queued waiters" `Quick
            test_drain_with_waiters;
        ] );
      ( "shutdown",
        [
          Alcotest.test_case "SIGTERM drains and exits 0" `Quick
            test_sigterm_drains;
        ] );
    ]
