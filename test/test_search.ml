module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Search_config = Aved_search.Search_config
module Candidate = Aved_search.Candidate
module Tier_search = Aved_search.Tier_search
module Job_search = Aved_search.Job_search
module Service_search = Aved_search.Service_search
open Aved_model

let config = Search_config.default
let infra () = Aved.Experiments.infrastructure ()
let app_tier () = Aved.Experiments.application_tier ()

(* ------------------------------------------------------------------ *)
(* Frontier structure *)

let test_frontier_is_pareto () =
  let frontier =
    Tier_search.frontier config (infra ()) ~tier:(app_tier ()) ~demand:1000.
  in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "cost increases" true
          Money.(a.Candidate.cost < b.Candidate.cost);
        Alcotest.(check bool) "downtime decreases" true
          (b.Candidate.downtime_fraction < a.Candidate.downtime_fraction);
        check_sorted rest
    | [ _ ] | [] -> ()
  in
  check_sorted frontier;
  (* No member dominates another. *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a != b then
            Alcotest.(check bool) "no dominance" false (Candidate.dominates a b))
        frontier)
    frontier

let test_machineb_never_selected () =
  (* Paper §5.1: with linear scaling, the low-end machine always wins
     over the practical downtime range (the paper plots 0.1 to 10^4
     minutes; below that the frontier is numerical noise). *)
  List.iter
    (fun demand ->
      let frontier =
        Tier_search.frontier config (infra ()) ~tier:(app_tier ()) ~demand
      in
      List.iter
        (fun (c : Candidate.t) ->
          if
            Duration.minutes (Candidate.downtime c) >= 0.05
            && (String.equal c.design.Design.resource "rE"
               || String.equal c.design.Design.resource "rF")
          then Alcotest.failf "machineB selected at demand %g" demand)
        frontier)
    [ 400.; 1000.; 3200. ]

let test_paper_headline_point () =
  (* Paper Fig. 6: at (load 1000, downtime 100 min) the optimal family
     is (machineA/linux/appserverA, bronze, 1 extra, 0 spares) with a
     predicted downtime around 50 minutes. *)
  match
    Tier_search.optimal config (infra ()) ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  with
  | None -> Alcotest.fail "expected a design"
  | Some c ->
      Alcotest.(check string) "family" "(rC, bronze, 1, 0)"
        (Candidate.family c ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min);
      let downtime = Duration.minutes (Candidate.downtime c) in
      Alcotest.(check bool)
        (Printf.sprintf "downtime %.1f in [20, 90]" downtime)
        true
        (downtime > 20. && downtime < 90.)

let test_optimal_meets_requirement () =
  List.iter
    (fun (demand, limit) ->
      match
        Tier_search.optimal config (infra ()) ~tier:(app_tier ()) ~demand
          ~max_downtime:(Duration.of_minutes limit)
      with
      | None -> Alcotest.failf "no design for (%g, %g)" demand limit
      | Some c ->
          Alcotest.(check bool) "feasible" true
            (Duration.minutes (Candidate.downtime c) <= limit);
          Alcotest.(check bool) "delivers demand" true
            (c.model.Aved_avail.Tier_model.effective_performance >= demand))
    [ (400., 1000.); (400., 10.); (2000., 100.); (5000., 1.) ]

let test_optimal_matches_frontier () =
  (* The single-design search must agree with reading the frontier. *)
  let frontier =
    Tier_search.frontier config (infra ()) ~tier:(app_tier ()) ~demand:800.
  in
  List.iter
    (fun limit ->
      let from_frontier =
        List.find_opt
          (fun (c : Candidate.t) ->
            Duration.minutes (Candidate.downtime c) <= limit)
          frontier
      in
      let from_search =
        Tier_search.optimal config (infra ()) ~tier:(app_tier ()) ~demand:800.
          ~max_downtime:(Duration.of_minutes limit)
      in
      match (from_frontier, from_search) with
      | None, None -> ()
      | Some f, Some s ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "cost at limit %g" limit)
            (Money.to_float f.cost) (Money.to_float s.cost)
      | Some _, None -> Alcotest.failf "search missed a design at %g" limit
      | None, Some _ -> Alcotest.failf "frontier missed a design at %g" limit)
    [ 5000.; 500.; 100.; 20.; 1. ]

let test_cost_monotone_in_requirement () =
  let cost limit =
    Tier_search.optimal config (infra ()) ~tier:(app_tier ()) ~demand:1600.
      ~max_downtime:(Duration.of_minutes limit)
    |> Option.map (fun c -> Money.to_float c.Candidate.cost)
  in
  let costs = List.filter_map cost [ 10000.; 1000.; 100.; 10.; 1. ] in
  let rec non_decreasing = function
    | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "tighter limit costs at least as much" true
    (non_decreasing costs)

let test_brute_force_equivalence () =
  (* Exhaustively enumerate the same bounded space and compare. *)
  let infra = infra () in
  let tier = app_tier () in
  let demand = 600. in
  let small =
    { config with max_extra_resources = 2; max_spares = 1 }
  in
  let all =
    List.concat_map
      (fun (option : Service.resource_option) ->
        let resource = Infrastructure.resource_exn infra option.resource in
        let settings = Tier_search.settings_product infra resource in
        match Tier_search.option_minimum ~option ~settings ~demand with
        | None -> []
        | Some start ->
            List.concat_map
              (fun total ->
                Tier_search.enumerate_total small infra ~tier_name:"application"
                  ~option ~demand ~total ())
              (List.init 4 (fun i -> start + i)))
      tier.options
  in
  List.iter
    (fun limit ->
      let feasible =
        List.filter
          (fun (c : Candidate.t) ->
            Duration.minutes (Candidate.downtime c) <= limit)
          all
      in
      let brute =
        List.fold_left
          (fun acc (c : Candidate.t) ->
            match acc with
            | None -> Some c
            | Some best ->
                if
                  Money.(c.cost < best.Candidate.cost)
                  || Money.equal c.cost best.Candidate.cost
                     && c.downtime_fraction < best.Candidate.downtime_fraction
                then Some c
                else acc)
          None feasible
      in
      let searched =
        Tier_search.optimal small infra ~tier ~demand
          ~max_downtime:(Duration.of_minutes limit)
      in
      match (brute, searched) with
      | None, None -> ()
      | Some b, Some s ->
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "limit %g" limit)
            (Money.to_float b.cost) (Money.to_float s.cost)
      | Some b, None ->
          Alcotest.failf "search missed %s at limit %g"
            (Candidate.family b ~n_min_nominal:0) limit
      | None, Some _ -> Alcotest.failf "search invented a design at %g" limit)
    [ 10000.; 2000.; 300.; 40.; 3.; 0.05 ]

let test_infeasible_demand () =
  (* nActive tops out at 1000 resources of 200 units each. *)
  Alcotest.(check bool) "absurd demand infeasible" true
    (Tier_search.optimal config (infra ()) ~tier:(app_tier ())
       ~demand:2_000_000. ~max_downtime:(Duration.of_minutes 100.)
    = None)

(* ------------------------------------------------------------------ *)
(* Job search *)

let sci_infra () = Aved.Experiments.infrastructure_bronze ()
let sci_tier () = Aved.Experiments.computation_tier ()
let job_size = Aved.Experiments.scientific_job_size
let job_config = Aved.Experiments.fig7_config

let test_job_optimal_basics () =
  List.iter
    (fun hours ->
      match
        Job_search.optimal job_config (sci_infra ()) ~tier:(sci_tier ())
          ~job_size ~max_time:(Duration.of_hours hours)
      with
      | None -> Alcotest.failf "no design for %gh" hours
      | Some c ->
          Alcotest.(check bool) "meets requirement" true
            (Duration.hours c.execution_time <= hours);
          Alcotest.(check bool) "has checkpoint setting" true
            (Design.setting_of c.design "checkpoint" <> None))
    [ 500.; 100.; 20. ]

let test_job_resource_crossover () =
  (* Paper Fig. 7: cheap machineA clusters for loose requirements, the
     16-way machineB for tight ones. *)
  let resource_at hours =
    match
      Job_search.optimal job_config (sci_infra ()) ~tier:(sci_tier ())
        ~job_size ~max_time:(Duration.of_hours hours)
    with
    | Some c -> c.design.Design.resource
    | None -> Alcotest.failf "no design for %gh" hours
  in
  Alcotest.(check string) "loose requirement uses machineA" "rH"
    (resource_at 500.);
  Alcotest.(check string) "tight requirement uses machineB" "rI"
    (resource_at 2.)

let test_job_n_decreases_with_relaxation () =
  let n_at hours =
    match
      Job_search.optimal job_config (sci_infra ()) ~tier:(sci_tier ())
        ~job_size ~max_time:(Duration.of_hours hours)
    with
    | Some c -> c.design.Design.n_active
    | None -> Alcotest.failf "no design for %gh" hours
  in
  let n100 = n_at 100. and n400 = n_at 400. in
  Alcotest.(check bool)
    (Printf.sprintf "n(100h)=%d > n(400h)=%d" n100 n400)
    true (n100 > n400)

let test_job_cost_monotone () =
  let cost_at hours =
    match
      Job_search.optimal job_config (sci_infra ()) ~tier:(sci_tier ())
        ~job_size ~max_time:(Duration.of_hours hours)
    with
    | Some c -> Money.to_float c.cost
    | None -> Float.infinity
  in
  Alcotest.(check bool) "tighter deadline costs more" true
    (cost_at 10. >= cost_at 100. && cost_at 100. >= cost_at 1000.)

let test_job_infeasible () =
  Alcotest.(check bool) "impossible deadline" true
    (Job_search.optimal job_config (sci_infra ()) ~tier:(sci_tier ())
       ~job_size
       ~max_time:(Duration.of_minutes 1.)
    = None)

let test_job_frontier () =
  let frontier =
    Job_search.frontier job_config (sci_infra ()) ~tier:(sci_tier ())
      ~job_size ~max_time:(Duration.of_hours 300.)
  in
  Alcotest.(check bool) "non-empty" true (frontier <> []);
  let rec check = function
    | a :: (b :: _ as rest) ->
        Alcotest.(check bool) "cost increases" true
          Money.(a.Job_search.cost < b.Job_search.cost);
        Alcotest.(check bool) "time decreases" true
          (Duration.compare b.Job_search.execution_time
             a.Job_search.execution_time
          < 0);
        check rest
    | [ _ ] | [] -> ()
  in
  check frontier

(* ------------------------------------------------------------------ *)
(* Service-level search *)

let test_service_design_feasible () =
  let service = Aved.Experiments.ecommerce () in
  match
    Service_search.design config (infra ()) service
      (Requirements.enterprise ~throughput:1000.
         ~max_annual_downtime:(Duration.of_minutes 60.))
  with
  | None -> Alcotest.fail "expected a design"
  | Some report ->
      Alcotest.(check int) "three tiers" 3
        (List.length report.design.Design.tiers);
      (match report.downtime with
      | Some d ->
          Alcotest.(check bool) "within budget" true
            (Duration.minutes d <= 60.)
      | None -> Alcotest.fail "expected downtime");
      Alcotest.(check bool) "cost positive" true
        (Money.to_float report.cost > 0.);
      Design.validate_against report.design (infra ())

let test_service_budget_monotone () =
  let service = Aved.Experiments.ecommerce () in
  let cost limit =
    Service_search.design config (infra ()) service
      (Requirements.enterprise ~throughput:800.
         ~max_annual_downtime:(Duration.of_minutes limit))
    |> Option.map (fun (r : Service_search.report) -> Money.to_float r.cost)
  in
  match (cost 2000., cost 150., cost 60.) with
  | Some loose, Some mid, Some tight ->
      Alcotest.(check bool) "loose <= mid" true (loose <= mid);
      Alcotest.(check bool) "mid <= tight" true (mid <= tight)
  | _ -> Alcotest.fail "expected all three designs"

let test_service_requirement_mismatch () =
  let service = Aved.Experiments.ecommerce () in
  Alcotest.(check bool) "job requirement on enterprise service" true
    (match
       Service_search.design config (infra ()) service
         (Requirements.finite_job ~max_execution_time:(Duration.of_hours 1.))
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let sci = Aved.Experiments.scientific () in
  Alcotest.(check bool) "enterprise requirement on job service" true
    (match
       Service_search.design config (sci_infra ()) sci
         (Requirements.enterprise ~throughput:1.
          ~max_annual_downtime:(Duration.of_hours 1.))
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_service_job_dispatch () =
  let sci = Aved.Experiments.scientific () in
  match
    Service_search.design job_config (sci_infra ()) sci
      (Requirements.finite_job ~max_execution_time:(Duration.of_hours 100.))
  with
  | None -> Alcotest.fail "expected a design"
  | Some report -> (
      match report.execution_time with
      | Some t ->
          Alcotest.(check bool) "meets deadline" true (Duration.hours t <= 100.)
      | None -> Alcotest.fail "expected execution time")

let test_series_downtime () =
  (* Hand-check the series composition formula on two synthetic tiers. *)
  let mk fraction =
    {
      Candidate.design =
        Design.tier_design ~tier_name:"t" ~resource:"rC" ~n_active:1 ();
      model =
        {
          Aved_avail.Tier_model.tier_name = "t";
          n_active = 1;
          n_min = 1;
          n_spare = 0;
          failure_scope = Service.Resource_scope;
          classes = [];
          loss_window = None;
          effective_performance = 1.;
        };
      cost = Money.zero;
      downtime_fraction = fraction;
    }
  in
  Alcotest.(check (float 1e-12))
    "series" (1. -. (0.9 *. 0.8))
    (Service_search.series_downtime_fraction [ mk 0.1; mk 0.2 ])

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

module Sensitivity = Aved_search.Sensitivity

let test_sensitivity_scaling () =
  let scaled =
    Sensitivity.scaled_infrastructure (infra ())
      { Sensitivity.mtbf_scale = 2.; mttr_scale = 0.5 }
  in
  let machine = Infrastructure.component_exn scaled "machineA" in
  (match machine.failure_modes with
  | hard :: _ ->
      Alcotest.(check (float 1e-9)) "mtbf doubled" 1300.
        (Duration.days hard.mtbf)
  | [] -> Alcotest.fail "no failure modes");
  let maint = Infrastructure.mechanism_exn scaled "maintenanceA" in
  (match Mechanism.mttr_of maint [ ("level", Mechanism.Enum_value "bronze") ] with
  | Some d -> Alcotest.(check (float 1e-9)) "mttr halved" 19. (Duration.hours d)
  | None -> Alcotest.fail "no mttr");
  Alcotest.(check bool) "bad scale rejected" true
    (match
       Sensitivity.scaled_infrastructure (infra ())
         { Sensitivity.mtbf_scale = 0.; mttr_scale = 1. }
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_sensitivity_improvement_direction () =
  (* Doubling MTBFs can only reduce the cost of the optimal design. *)
  let cost_with scale =
    let scaled =
      Sensitivity.scaled_infrastructure (infra ())
        { Sensitivity.nominal with mtbf_scale = scale }
    in
    Tier_search.optimal config scaled ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 30.)
    |> Option.map (fun c -> Money.to_float c.Candidate.cost)
  in
  match (cost_with 1., cost_with 4.) with
  | Some nominal, Some reliable ->
      Alcotest.(check bool)
        (Printf.sprintf "more reliable parts cost less (%g vs %g)" reliable
           nominal)
        true (reliable <= nominal)
  | _ -> Alcotest.fail "expected designs under both variations"

let test_sensitivity_monotone_ladder () =
  (* Optimal cost is non-increasing along an MTBF-scaling ladder: more
     reliable parts never force a more expensive design. *)
  let cost_at scale =
    let scaled =
      Sensitivity.scaled_infrastructure (infra ())
        { Sensitivity.nominal with mtbf_scale = scale }
    in
    Tier_search.optimal config scaled ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
    |> Option.fold ~none:Float.infinity ~some:(fun c ->
           Money.to_float c.Candidate.cost)
  in
  let ladder = List.map cost_at [ 0.5; 1.; 2.; 4. ] in
  Alcotest.(check bool) "nominal feasible" true
    (List.for_all Float.is_finite (List.tl ladder));
  let rec monotone = function
    | a :: (b :: _ as rest) -> b <= a && monotone rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool)
    (Printf.sprintf "costs non-increasing (%s)"
       (String.concat " >= " (List.map (Printf.sprintf "%g") ladder)))
    true (monotone ladder)

let test_sensitivity_outcomes () =
  let outcomes =
    Sensitivity.tier_sensitivity config (infra ()) ~tier:(app_tier ())
      ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
      ~variations:Sensitivity.default_variations
  in
  Alcotest.(check int) "five outcomes" 5 (List.length outcomes);
  List.iter
    (fun (o : Sensitivity.outcome) ->
      Alcotest.(check bool) "all feasible" true (o.candidate <> None))
    outcomes;
  (* The paper's headline design is robust to +-50%% data errors. *)
  match Sensitivity.stable_family outcomes with
  | Some family -> Alcotest.(check string) "stable" "(rC, bronze, 1, 0)" family
  | None ->
      (* Stability is scenario-dependent; at minimum the nominal family
         must be the headline one. *)
      (match outcomes with
      | { family = Some f; _ } :: _ ->
          Alcotest.(check string) "nominal family" "(rC, bronze, 1, 0)" f
      | _ -> Alcotest.fail "no nominal outcome")

(* ------------------------------------------------------------------ *)
(* Adaptive redesign *)

module Adaptive = Aved_search.Adaptive

let hour h = Duration.of_hours (float_of_int h)

let test_adaptive_replay () =
  let trace =
    [ (hour 0, 600.); (hour 1, 620.); (hour 2, 1500.); (hour 3, 1480.);
      (hour 4, 600.) ]
  in
  let replay =
    Adaptive.replay config (infra ()) ~tier:(app_tier ())
      ~max_downtime:(Duration.of_minutes 100.)
      ~trace ()
  in
  Alcotest.(check int) "steps" 5 (List.length replay.steps);
  (* 620 fits in the 600-design's risk envelope? No: loads above the
     sized-for demand force a redesign; 1480 within 1500's headroom. *)
  let flags = List.map (fun (s : Adaptive.step) -> s.redesigned) replay.steps in
  Alcotest.(check (list bool)) "redesign pattern"
    [ true; true; true; false; true ] flags;
  Alcotest.(check int) "redesign count" 3 replay.redesigns;
  Alcotest.(check bool) "average cost positive" true
    (Money.to_float replay.average_cost > 0.)

let test_adaptive_step_invariants () =
  let trace =
    [ (hour 0, 600.); (hour 1, 620.); (hour 2, 1500.); (hour 3, 1480.);
      (hour 4, 600.) ]
  in
  let replay =
    Adaptive.replay config (infra ()) ~tier:(app_tier ())
      ~max_downtime:(Duration.of_minutes 100.)
      ~trace ()
  in
  (* Every step's design in force delivers at least the step's load. *)
  List.iter
    (fun (s : Adaptive.step) ->
      Alcotest.(check bool)
        (Printf.sprintf "capacity %.0f covers load %.0f"
           s.candidate.Candidate.model.Aved_avail.Tier_model.effective_performance s.load)
        true
        (s.candidate.Candidate.model.Aved_avail.Tier_model.effective_performance
        >= s.load))
    replay.steps;
  (* A step without a redesign keeps the previous step's exact design. *)
  ignore
    (List.fold_left
       (fun prev (s : Adaptive.step) ->
         (match prev with
         | Some (p : Adaptive.step) when not s.redesigned ->
             Alcotest.(check int) "kept design" 0
               (Design.compare_tier s.candidate.Candidate.design
                  p.candidate.Candidate.design)
         | _ -> ());
         Some s)
       None replay.steps);
  (* Redesigns counts the [redesigned] steps after the initial one. *)
  let flagged =
    List.filteri (fun i (s : Adaptive.step) -> i > 0 && s.redesigned)
      replay.steps
  in
  Alcotest.(check int) "redesign count consistent" replay.redesigns
    (List.length flagged)

let test_adaptive_headroom_reduces_churn () =
  let trace =
    List.init 24 (fun h ->
        (hour h, 1000. +. (300. *. sin (float_of_int h /. 2.))))
  in
  let churn headroom =
    (Adaptive.replay config (infra ()) ~tier:(app_tier ())
       ~max_downtime:(Duration.of_minutes 100.)
       ~policy:{ Adaptive.headroom } ~trace ())
      .redesigns
  in
  Alcotest.(check bool) "more headroom, fewer redesigns" true
    (churn 1.0 <= churn 0.1)

let test_adaptive_validation () =
  let reject name trace =
    Alcotest.(check bool) name true
      (match
         Adaptive.replay config (infra ()) ~tier:(app_tier ())
           ~max_downtime:(Duration.of_minutes 100.)
           ~trace ()
       with
      | _ -> false
      | exception Invalid_argument _ -> true)
  in
  reject "empty trace" [];
  reject "unordered trace" [ (hour 2, 100.); (hour 1, 100.) ];
  reject "infeasible load" [ (hour 0, 2_000_000.) ]

(* ------------------------------------------------------------------ *)
(* Load traces *)

module Load_trace = Aved_search.Load_trace

let test_trace_diurnal () =
  let trace =
    Load_trace.diurnal ~days:7 ~samples_per_day:24 ~base:500. ~peak:2000. ()
  in
  Alcotest.(check int) "length" (7 * 24) (List.length trace);
  Alcotest.(check (float 1.)) "peak reached" 2000. (Load_trace.peak_load trace);
  List.iter
    (fun (_, load) ->
      Alcotest.(check bool) "within envelope" true
        (load >= 1e-6 && load <= 2000. +. 1e-6))
    trace;
  (* Weekends scaled down. *)
  let weekend =
    Load_trace.diurnal ~days:7 ~samples_per_day:24 ~base:500. ~peak:2000.
      ~weekend_factor:0.5 ()
  in
  let nth n t = List.nth t n in
  let _, weekday_peak = nth (15 + 24) trace in
  let _, weekend_peak = nth (15 + (24 * 5)) weekend in
  Alcotest.(check bool) "weekend halved" true
    (weekend_peak < weekday_peak *. 0.6);
  Alcotest.(check bool) "bad args" true
    (match Load_trace.diurnal ~days:0 ~samples_per_day:1 ~base:1. ~peak:2. () with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_trace_csv_roundtrip () =
  let trace =
    Load_trace.diurnal ~days:2 ~samples_per_day:6 ~base:100. ~peak:400. ()
  in
  let parsed = Load_trace.of_csv_string (Load_trace.to_csv_string trace) in
  Alcotest.(check int) "length" (List.length trace) (List.length parsed);
  List.iter2
    (fun (t1, l1) (t2, l2) ->
      Alcotest.(check (float 1e-3)) "time" (Duration.hours t1) (Duration.hours t2);
      Alcotest.(check (float 1e-3)) "load" l1 l2)
    trace parsed;
  Alcotest.(check (list (pair (float 1e-9) (float 1e-9))))
    "comments and blanks skipped"
    [ (1., 10.); (2., 20.) ]
    (List.map
       (fun (t, l) -> (Duration.hours t, l))
       (Load_trace.of_csv_string "# header\n1,10\n\n2,20\n"));
  List.iter
    (fun text ->
      Alcotest.(check bool) ("reject " ^ text) true
        (match Load_trace.of_csv_string text with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ "1,abc"; "1"; "2,5\n1,5"; "1,-4" ]

let test_trace_stats () =
  let trace =
    Load_trace.step ~levels:[ (1., 100.); (1., 300.) ] ~samples_per_level:2
  in
  Alcotest.(check int) "step samples" 4 (List.length trace);
  Alcotest.(check (float 1e-9)) "peak" 300. (Load_trace.peak_load trace);
  (* Time-weighted mean over [0, 1.5h): 100 for 1h, 300 for 0.5h. *)
  Alcotest.(check (float 1e-6)) "mean"
    ((100. +. 100. +. 300.) /. 3.)
    (Load_trace.mean_load trace)

let test_trace_feeds_adaptive () =
  let trace =
    Load_trace.diurnal ~days:1 ~samples_per_day:8 ~base:600. ~peak:1800. ()
  in
  let replay =
    Adaptive.replay config (infra ()) ~tier:(app_tier ())
      ~max_downtime:(Duration.of_minutes 100.)
      ~trace ()
  in
  Alcotest.(check int) "steps" 8 (List.length replay.steps)

(* ------------------------------------------------------------------ *)
(* Search_config composition *)

let test_config_with_jobs () =
  let c = Search_config.with_jobs 4 Search_config.default in
  Alcotest.(check int) "jobs set" 4 c.Search_config.jobs;
  (* Everything else is untouched. *)
  Alcotest.(check int) "max_spares preserved"
    Search_config.default.Search_config.max_spares c.Search_config.max_spares;
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d rejected" bad)
        true
        (match Search_config.with_jobs bad Search_config.default with
        | _ -> false
        | exception Invalid_argument _ -> true))
    [ 0; -1 ]

let test_config_with_memo () =
  let is_memoized c =
    match c.Search_config.engine with
    | Aved_avail.Evaluate.Memoized _ -> true
    | _ -> false
  in
  (* Analytic is swapped for Memoized; other fields survive. *)
  let base = Search_config.with_jobs 3 Search_config.default in
  let memo = Search_config.with_memo base in
  Alcotest.(check bool) "analytic becomes memoized" true (is_memoized memo);
  Alcotest.(check int) "jobs preserved" 3 memo.Search_config.jobs;
  (* Idempotent: an already-memoized engine is left alone (same cache). *)
  let again = Search_config.with_memo memo in
  Alcotest.(check bool) "memoized stays memoized" true (is_memoized again);
  (match (memo.Search_config.engine, again.Search_config.engine) with
  | Aved_avail.Evaluate.Memoized a, Aved_avail.Evaluate.Memoized b ->
      Alcotest.(check bool) "cache shared" true (a == b)
  | _ -> Alcotest.fail "expected memoized engines");
  (* No-op for the validation engines. *)
  List.iter
    (fun engine ->
      let c =
        Search_config.with_memo
          (Search_config.with_engine engine Search_config.default)
      in
      Alcotest.(check bool) "validation engine unchanged" true
        (c.Search_config.engine = engine))
    [
      Aved_avail.Evaluate.Exact { max_states = 1000 };
      Aved_avail.Evaluate.Monte_carlo
        {
          Aved_avail.Monte_carlo.replications = 2;
          horizon = Duration.of_years 1.;
          seed = 1;
        };
    ]

let () =
  Alcotest.run "search"
    [
      ( "tier",
        [
          Alcotest.test_case "frontier is a Pareto set" `Quick
            test_frontier_is_pareto;
          Alcotest.test_case "machineB never selected" `Quick
            test_machineb_never_selected;
          Alcotest.test_case "paper headline point" `Quick
            test_paper_headline_point;
          Alcotest.test_case "optimal meets requirements" `Quick
            test_optimal_meets_requirement;
          Alcotest.test_case "optimal matches frontier" `Quick
            test_optimal_matches_frontier;
          Alcotest.test_case "cost monotone in requirement" `Quick
            test_cost_monotone_in_requirement;
          Alcotest.test_case "brute-force equivalence" `Quick
            test_brute_force_equivalence;
          Alcotest.test_case "infeasible demand" `Quick test_infeasible_demand;
        ] );
      ( "job",
        [
          Alcotest.test_case "meets requirement" `Quick test_job_optimal_basics;
          Alcotest.test_case "resource crossover" `Quick
            test_job_resource_crossover;
          Alcotest.test_case "n decreases with relaxation" `Quick
            test_job_n_decreases_with_relaxation;
          Alcotest.test_case "cost monotone" `Quick test_job_cost_monotone;
          Alcotest.test_case "infeasible deadline" `Quick test_job_infeasible;
          Alcotest.test_case "frontier" `Quick test_job_frontier;
        ] );
      ( "sensitivity",
        [
          Alcotest.test_case "scaling" `Quick test_sensitivity_scaling;
          Alcotest.test_case "improvement direction" `Quick
            test_sensitivity_improvement_direction;
          Alcotest.test_case "monotone ladder" `Quick
            test_sensitivity_monotone_ladder;
          Alcotest.test_case "outcomes" `Quick test_sensitivity_outcomes;
        ] );
      ( "adaptive",
        [
          Alcotest.test_case "replay" `Quick test_adaptive_replay;
          Alcotest.test_case "step invariants" `Quick
            test_adaptive_step_invariants;
          Alcotest.test_case "headroom reduces churn" `Quick
            test_adaptive_headroom_reduces_churn;
          Alcotest.test_case "validation" `Quick test_adaptive_validation;
        ] );
      ( "load-trace",
        [
          Alcotest.test_case "diurnal" `Quick test_trace_diurnal;
          Alcotest.test_case "csv roundtrip" `Quick test_trace_csv_roundtrip;
          Alcotest.test_case "stats" `Quick test_trace_stats;
          Alcotest.test_case "feeds adaptive" `Quick test_trace_feeds_adaptive;
        ] );
      ( "config",
        [
          Alcotest.test_case "with_jobs" `Quick test_config_with_jobs;
          Alcotest.test_case "with_memo" `Quick test_config_with_memo;
        ] );
      ( "service",
        [
          Alcotest.test_case "feasible multi-tier design" `Quick
            test_service_design_feasible;
          Alcotest.test_case "budget monotone" `Quick
            test_service_budget_monotone;
          Alcotest.test_case "requirement mismatch" `Quick
            test_service_requirement_mismatch;
          Alcotest.test_case "finite job dispatch" `Quick
            test_service_job_dispatch;
          Alcotest.test_case "series composition" `Quick test_series_downtime;
        ] );
    ]
