(* Cross-module invariants as QCheck properties, registered as alcotest
   cases via QCheck_alcotest. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Expr = Aved_expr.Expr
module Availability = Aved_reliability.Availability
open Aved_model

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generators *)

let gen_duration =
  QCheck2.Gen.(map Duration.of_seconds (float_range 0. 1e8))

let gen_int_range =
  let open QCheck2.Gen in
  oneof
    [
      map Int_range.singleton (int_range 0 50);
      (let* lo = int_range 0 30 in
       let* span = int_range 0 40 in
       let* step = int_range 1 5 in
       return (Int_range.arithmetic ~lo ~hi:(lo + span) ~step));
      (let* lo = int_range 1 8 in
       let* hi = int_range 8 200 in
       let* factor = int_range 2 4 in
       return (Int_range.geometric ~lo ~hi:(Stdlib.max lo hi) ~factor));
      map Int_range.explicit (list_size (int_range 1 8) (int_range 0 100));
    ]

let gen_tier_model =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let* s = int_range 0 3 in
  let* m = int_range 1 n in
  let* class_count = int_range 1 3 in
  let* raw =
    list_repeat class_count
      (triple (float_range 2. 2000.) (* mtbf days *)
         (float_range 0.01 72.) (* mttr hours *)
         (float_range 0.5 30. (* failover minutes *)))
  in
  let* tier_scope = bool in
  let classes =
    List.mapi
      (fun i (mtbf_days, mttr_hours, failover_minutes) ->
        let mttr = Duration.of_hours mttr_hours in
        let failover = Duration.of_minutes failover_minutes in
        {
          Aved_avail.Tier_model.label = Printf.sprintf "c%d" i;
          rate = 1. /. Duration.seconds (Duration.of_days mtbf_days);
          mttr;
          failover_time = failover;
          failover_considered = s > 0 && Duration.compare mttr failover > 0;
          repair_mechanism = None;
        })
      raw
  in
  return
    {
      Aved_avail.Tier_model.tier_name = "prop";
      n_active = n;
      n_min = (if tier_scope then n else m);
      n_spare = s;
      failure_scope =
        (if tier_scope then Service.Tier_scope else Service.Resource_scope);
      classes;
      loss_window = None;
      effective_performance = 100.;
    }

(* ------------------------------------------------------------------ *)
(* Units *)

let duration_sub_saturates =
  QCheck2.Test.make ~name:"duration subtraction saturates at zero" ~count:300
    QCheck2.Gen.(pair gen_duration gen_duration)
    (fun (a, b) ->
      let d = Duration.sub a b in
      Duration.seconds d >= 0.
      && Duration.seconds d
         = Float.max 0. (Duration.seconds a -. Duration.seconds b))

let duration_add_commutes =
  QCheck2.Test.make ~name:"duration addition commutes" ~count:300
    QCheck2.Gen.(pair gen_duration gen_duration)
    (fun (a, b) -> Duration.equal (Duration.add a b) (Duration.add b a))

let money_sum_is_fold =
  QCheck2.Test.make ~name:"money sum equals fold" ~count:300
    QCheck2.Gen.(list_size (int_range 0 20) (float_range 0. 1e6))
    (fun amounts ->
      let monies = List.map Money.of_float amounts in
      Float.abs
        (Money.to_float (Money.sum monies)
        -. List.fold_left ( +. ) 0. amounts)
      < 1e-6)

(* ------------------------------------------------------------------ *)
(* Int_range *)

let int_range_mem_consistent =
  QCheck2.Test.make ~name:"Int_range.mem agrees with to_list" ~count:300
    QCheck2.Gen.(pair gen_int_range (int_range 0 250))
    (fun (r, n) -> Int_range.mem r n = List.mem n (Int_range.to_list r))

let int_range_sorted =
  QCheck2.Test.make ~name:"Int_range.to_list is strictly increasing"
    ~count:300 gen_int_range (fun r ->
      let rec increasing = function
        | a :: (b :: _ as rest) -> a < b && increasing rest
        | [ _ ] | [] -> true
      in
      increasing (Int_range.to_list r))

let int_range_next_above =
  QCheck2.Test.make ~name:"next_above returns the least member >= n"
    ~count:300
    QCheck2.Gen.(pair gen_int_range (int_range 0 250))
    (fun (r, n) ->
      match Int_range.next_above r n with
      | Some v ->
          v >= n && Int_range.mem r v
          && not (List.exists (fun x -> x >= n && x < v) (Int_range.to_list r))
      | None -> List.for_all (fun x -> x < n) (Int_range.to_list r))

(* ------------------------------------------------------------------ *)
(* Reliability *)

let k_out_of_n_monotone_in_k =
  QCheck2.Test.make ~name:"k-out-of-n availability decreases with k"
    ~count:300
    QCheck2.Gen.(
      let* n = int_range 1 10 in
      let* k = int_range 1 n in
      let* a = float_range 0.01 0.99 in
      return (n, k, a))
    (fun (n, k, a) ->
      let avail k =
        Availability.to_fraction
          (Availability.k_out_of_n ~k ~n (Availability.of_fraction a))
      in
      avail k >= avail (Stdlib.min n (k + 1)) -. 1e-12)

let series_bounded_by_weakest =
  QCheck2.Test.make ~name:"series availability below its weakest element"
    ~count:300
    QCheck2.Gen.(list_size (int_range 1 6) (float_range 0. 1.))
    (fun parts ->
      let availability =
        Availability.to_fraction
          (Availability.series (List.map Availability.of_fraction parts))
      in
      availability <= List.fold_left Float.min 1. parts +. 1e-12)

(* ------------------------------------------------------------------ *)
(* Engines *)

let analytic_downtime_bounded =
  QCheck2.Test.make ~name:"analytic downtime fraction within [0,1]"
    ~count:300 gen_tier_model (fun m ->
      let f = Aved_avail.Analytic.downtime_fraction m in
      f >= 0. && f <= 1.)

let analytic_breakdown_sums =
  QCheck2.Test.make ~name:"per-class breakdown sums to the total" ~count:300
    gen_tier_model (fun m ->
      let total = Aved_avail.Analytic.downtime_fraction m in
      let parts =
        List.fold_left
          (fun acc (_, f) -> acc +. f)
          0.
          (Aved_avail.Analytic.downtime_by_class m)
      in
      Float.abs (total -. parts) < 1e-12 +. (1e-9 *. total))

let analytic_spare_helps =
  (* Not exact monotonicity: the rate-times-outage transient term
     slightly overcounts in-place repairs that happen while a (useless)
     spare exists, a conservative second-order artifact of Engine A
     (see DESIGN.md). The regression is bounded; and whenever failover
     is actually considered the spare must strictly help. *)
  QCheck2.Test.make
    ~name:"adding a spare never hurts availability beyond the \
           transient-accounting bound"
    ~count:200 gen_tier_model (fun m ->
      (* Adding a spare re-enables failover for the modes it benefits,
         exactly as Tier_model.build would derive. *)
      let with_spare =
        {
          m with
          Aved_avail.Tier_model.n_spare = m.n_spare + 1;
          classes =
            List.map
              (fun (c : Aved_avail.Tier_model.failure_class) ->
                {
                  c with
                  failover_considered =
                    Duration.compare c.mttr c.failover_time > 0;
                })
              m.classes;
        }
      in
      let before = Aved_avail.Analytic.downtime_fraction m in
      let after = Aved_avail.Analytic.downtime_fraction with_spare in
      after <= (before *. 1.2) +. 1e-12
      &&
      (* A spare that enables failover for a slow-repair class helps. *)
      (m.Aved_avail.Tier_model.n_spare > 0
      || not
           (List.exists
              (fun (c : Aved_avail.Tier_model.failure_class) ->
                Duration.compare c.mttr c.failover_time > 0
                && Duration.hours c.mttr > 1.)
              m.classes)
      || after < before))

let exact_breakdown_sums =
  QCheck2.Test.make ~name:"exact per-class breakdown sums to the total"
    ~count:150 gen_tier_model (fun m ->
      let total = Aved_avail.Exact.downtime_fraction m in
      let parts =
        List.fold_left
          (fun acc (_, f) -> acc +. f)
          0.
          (Aved_avail.Exact.downtime_by_class m)
      in
      Float.abs (total -. parts) < 1e-12 +. (1e-9 *. total))

let decomposition_matches_by_class =
  (* Evaluate.tier_downtime_decomposition is the engines' per-class
     attribution re-labeled: the total must equal the engine's downtime
     fraction bit-for-bit and the per-class fractions must match the
     engine's own breakdown. *)
  QCheck2.Test.make ~name:"decomposition equals the engine breakdown"
    ~count:150 gen_tier_model (fun m ->
      let d =
        Aved_avail.Evaluate.tier_downtime_decomposition
          Aved_avail.Evaluate.Analytic m
      in
      d.Aved_avail.Evaluate.total = Aved_avail.Analytic.downtime_fraction m
      && List.for_all2
           (fun (c : Aved_avail.Evaluate.class_contribution) (label, f) ->
             String.equal c.label label && c.fraction = f)
           d.by_class
           (Aved_avail.Analytic.downtime_by_class m))

let exact_agrees_on_singleton_class =
  QCheck2.Test.make ~name:"exact engine equals analytic for one class"
    ~count:150
    QCheck2.Gen.(
      let* m = gen_tier_model in
      return
        { m with Aved_avail.Tier_model.classes = [ List.hd m.classes ] })
    (fun m ->
      let a = Aved_avail.Analytic.downtime_fraction m in
      let b = Aved_avail.Exact.downtime_fraction m in
      Float.abs (a -. b) <= 1e-10 +. (1e-8 *. a))

(* ------------------------------------------------------------------ *)
(* Candidates / Pareto *)

let dummy_model =
  {
    Aved_avail.Tier_model.tier_name = "p";
    n_active = 1;
    n_min = 1;
    n_spare = 0;
    failure_scope = Service.Resource_scope;
    classes = [];
    loss_window = None;
    effective_performance = 1.;
  }

let candidate cost downtime =
  {
    Aved_search.Candidate.design =
      Design.tier_design ~tier_name:"p" ~resource:"r" ~n_active:1 ();
    model = dummy_model;
    cost = Money.of_float cost;
    downtime_fraction = downtime;
  }

let pareto_no_dominance =
  QCheck2.Test.make ~name:"pareto frontier has no dominated members"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 0 40)
        (pair (float_range 0. 1000.) (float_range 0. 1.)))
    (fun points ->
      let candidates = List.map (fun (c, d) -> candidate c d) points in
      let frontier = Aved_search.Candidate.pareto candidates in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              a == b || not (Aved_search.Candidate.dominates a b))
            frontier)
        frontier)

let pareto_covers_input =
  QCheck2.Test.make
    ~name:"every input is dominated by or equal to a frontier point"
    ~count:300
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (float_range 0. 1000.) (float_range 0. 1.)))
    (fun points ->
      let candidates = List.map (fun (c, d) -> candidate c d) points in
      let frontier = Aved_search.Candidate.pareto candidates in
      List.for_all
        (fun (c : Aved_search.Candidate.t) ->
          List.exists
            (fun (f : Aved_search.Candidate.t) ->
              Money.(f.cost <= c.cost)
              && f.downtime_fraction <= c.downtime_fraction)
            frontier)
        candidates)

(* ------------------------------------------------------------------ *)
(* Mechanisms *)

let settings_product_size =
  QCheck2.Test.make ~name:"settings count is the product of range sizes"
    ~count:200
    QCheck2.Gen.(
      let* enum_sizes = list_size (int_range 0 3) (int_range 1 4) in
      return enum_sizes)
    (fun enum_sizes ->
      let parameters =
        List.mapi
          (fun i size ->
            {
              Mechanism.param_name = Printf.sprintf "p%d" i;
              range =
                Mechanism.Enum
                  (List.init size (fun v -> Printf.sprintf "v%d" v));
            })
          enum_sizes
      in
      let m =
        Mechanism.make ~name:"m" ~parameters
          ~cost:(Mechanism.Fixed Money.zero) ()
      in
      List.length (Mechanism.settings m)
      = List.fold_left ( * ) 1 enum_sizes)

let () =
  Alcotest.run "properties"
    [
      ( "units",
        [
          qtest duration_sub_saturates;
          qtest duration_add_commutes;
          qtest money_sum_is_fold;
        ] );
      ( "int-range",
        [
          qtest int_range_mem_consistent;
          qtest int_range_sorted;
          qtest int_range_next_above;
        ] );
      ( "reliability",
        [ qtest k_out_of_n_monotone_in_k; qtest series_bounded_by_weakest ] );
      ( "engines",
        [
          qtest analytic_downtime_bounded;
          qtest analytic_breakdown_sums;
          qtest analytic_spare_helps;
          qtest exact_breakdown_sums;
          qtest decomposition_matches_by_class;
          qtest exact_agrees_on_singleton_class;
        ] );
      ( "pareto",
        [ qtest pareto_no_dominance; qtest pareto_covers_input ] );
      ("mechanism", [ qtest settings_product_size ]);
    ]
