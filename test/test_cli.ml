(* End-to-end smoke tests of the aved executable: error paths must exit
   with status 1 and a single line on stderr, and the telemetry flags
   must produce a stats summary and a Chrome-loadable trace. The tests
   run from _build/default/test, next to ../bin/main.exe. *)

let aved = Filename.concat (Filename.concat ".." "bin") "main.exe"

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let content = really_input_string ic len in
  close_in ic;
  content

let write_file path content =
  let oc = open_out path in
  output_string oc content;
  close_out oc

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i =
    i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1))
  in
  scan 0

(* Run [aved args], capturing the exit status and both streams. *)
let run_aved args =
  let dir = Filename.temp_file "aved_cli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let out = Filename.concat dir "out" in
  let err = Filename.concat dir "err" in
  let status =
    Sys.command
      (Printf.sprintf "%s %s > %s 2> %s" (Filename.quote aved) args
         (Filename.quote out) (Filename.quote err))
  in
  let stdout = read_file out and stderr = read_file err in
  Sys.remove out;
  Sys.remove err;
  Sys.rmdir dir;
  (status, stdout, stderr)

(* A scratch directory holding the built-in specs, produced once via
   aved dump-specs. *)
let spec_dir =
  lazy
    (let dir = Filename.temp_file "aved_specs" "" in
     Sys.remove dir;
     let status, _, _ = run_aved (Printf.sprintf "dump-specs %s" dir) in
     if status <> 0 then Alcotest.failf "dump-specs failed with %d" status;
     dir)

let spec name = Filename.concat (Lazy.force spec_dir) name

let one_line s =
  match String.split_on_char '\n' (String.trim s) with
  | [ _ ] -> true
  | _ -> false

let test_bad_spec_file () =
  let bad = Filename.temp_file "aved_bad" ".spec" in
  write_file bad "this is not a spec\n";
  let status, _, stderr =
    run_aved
      (Printf.sprintf
         "design -i %s -s %s --load 1000 --downtime 100" bad
         (spec "ecommerce.spec"))
  in
  Sys.remove bad;
  Alcotest.(check int) "exit status" 1 status;
  Alcotest.(check bool) "one-line stderr" true (one_line stderr);
  Alcotest.(check bool) "names the parse error" true
    (contains stderr "spec error")

let test_missing_spec_file () =
  let status, _, stderr =
    run_aved
      (Printf.sprintf "design -i %s -s %s --load 1000 --downtime 100"
         "/nonexistent/infra.spec" (spec "ecommerce.spec"))
  in
  (* cmdliner rejects a missing `file`-typed argument before the command
     runs; any nonzero status with a diagnostic will do. *)
  Alcotest.(check bool) "nonzero exit" true (status <> 0);
  Alcotest.(check bool) "mentions the path" true
    (contains stderr "/nonexistent/infra.spec")

let test_jobs_zero () =
  let status, _, stderr =
    run_aved
      (Printf.sprintf
         "design -i %s -s %s --load 1000 --downtime 100 --jobs 0"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
  in
  Alcotest.(check int) "exit status" 1 status;
  Alcotest.(check bool) "one-line stderr" true (one_line stderr);
  Alcotest.(check bool) "names --jobs" true (contains stderr "--jobs")

let test_conflicting_requirements () =
  let status, _, stderr =
    run_aved
      (Printf.sprintf
         "design -i %s -s %s --load 1000 --downtime 100 --job-hours 5"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
  in
  Alcotest.(check int) "exit status" 1 status;
  Alcotest.(check bool) "one-line stderr" true (one_line stderr)

let test_stats_and_trace () =
  let trace = Filename.temp_file "aved_trace" ".json" in
  let status, stdout, stderr =
    run_aved
      (Printf.sprintf
         "design -i %s -s %s --load 400 --downtime 100 --jobs 2 --stats \
          --trace %s"
         (spec "infrastructure.spec") (spec "ecommerce.spec") trace)
  in
  let trace_content = read_file trace in
  Sys.remove trace;
  Alcotest.(check int) "exit status" 0 status;
  Alcotest.(check bool) "stdout has the design" true
    (contains stdout "cost");
  (* The summary lands on stderr, leaving stdout byte-identical to a
     run without --stats. *)
  Alcotest.(check bool) "stderr has the summary" true
    (contains stderr "telemetry summary");
  Alcotest.(check bool) "candidate counters present" true
    (contains stderr "search.candidates.evaluated");
  Alcotest.(check bool) "memo counters present" true
    (contains stderr "avail.memo.hits");
  Alcotest.(check bool) "engine histogram present" true
    (contains stderr "avail.engine.memoized.seconds");
  Alcotest.(check bool) "trace is chrome json" true
    (contains trace_content "\"traceEvents\"")

let test_stats_does_not_change_stdout () =
  let args =
    Printf.sprintf "design -i %s -s %s --load 400 --downtime 100 --jobs 1"
      (spec "infrastructure.spec") (spec "ecommerce.spec")
  in
  let s0, plain, _ = run_aved args in
  let s1, with_stats, _ = run_aved (args ^ " --stats") in
  Alcotest.(check int) "plain exit" 0 s0;
  Alcotest.(check int) "stats exit" 0 s1;
  Alcotest.(check string) "stdout byte-identical" plain with_stats

let test_explain_json () =
  let status, stdout, _ =
    run_aved
      (Printf.sprintf "explain -i %s -s %s --load 400 --downtime 100 --json"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
  in
  Alcotest.(check int) "exit status" 0 status;
  List.iter
    (fun key ->
      Alcotest.(check bool) ("has " ^ key) true
        (contains stdout (Printf.sprintf "\"%s\"" key)))
    [
      "service"; "engine"; "tiers"; "downtime_minutes_per_year"; "by_class";
      "runner_ups"; "fate"; "provenance";
    ];
  Alcotest.(check bool) "closes the object" true
    (String.length (String.trim stdout) > 2
    && (String.trim stdout).[0] = '{'
    && (String.trim stdout).[String.length (String.trim stdout) - 1] = '}')

let test_explain_human () =
  let status, stdout, _ =
    run_aved
      (Printf.sprintf "explain -i %s -s %s --load 400 --downtime 100 --top 3"
         (spec "infrastructure.spec") (spec "ecommerce.spec"))
  in
  Alcotest.(check int) "exit status" 0 status;
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("mentions " ^ needle) true
        (contains stdout needle))
    [ "by failure mode"; "runner-ups"; "nines"; "min/yr" ]

let test_frontier_explain_is_superset () =
  let args tail =
    Printf.sprintf "frontier -i %s -s %s --tier application --load 400%s"
      (spec "infrastructure.spec") (spec "ecommerce.spec") tail
  in
  let s0, plain, _ = run_aved (args "") in
  let s1, explained, _ = run_aved (args " --explain") in
  Alcotest.(check int) "plain exit" 0 s0;
  Alcotest.(check int) "explain exit" 0 s1;
  (* Annotation lines carry a distinctive prefix; dropping them must
     recover the plain output byte for byte. *)
  let without_annotations =
    String.split_on_char '\n' explained
    |> List.filter (fun line ->
           not
             (String.length line >= 6 && String.sub line 0 6 = "    ^ "))
    |> String.concat "\n"
  in
  Alcotest.(check string) "annotations are purely additive" plain
    without_annotations;
  Alcotest.(check bool) "has at least one annotation" true
    (contains explained "    ^ ")

let () =
  Alcotest.run "cli"
    [
      ( "errors",
        [
          Alcotest.test_case "bad spec file" `Quick test_bad_spec_file;
          Alcotest.test_case "missing spec file" `Quick
            test_missing_spec_file;
          Alcotest.test_case "--jobs 0" `Quick test_jobs_zero;
          Alcotest.test_case "conflicting requirements" `Quick
            test_conflicting_requirements;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "--stats and --trace" `Quick
            test_stats_and_trace;
          Alcotest.test_case "--stats leaves stdout unchanged" `Quick
            test_stats_does_not_change_stdout;
        ] );
      ( "explain",
        [
          Alcotest.test_case "explain --json" `Quick test_explain_json;
          Alcotest.test_case "explain human report" `Quick test_explain_human;
          Alcotest.test_case "frontier --explain is additive" `Quick
            test_frontier_explain_is_superset;
        ] );
    ]
