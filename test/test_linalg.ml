module Matrix = Aved_linalg.Matrix
module Vector = Aved_linalg.Vector
module Workspace = Aved_linalg.Workspace

let check_float = Alcotest.(check (float 1e-9))

let test_vector_ops () =
  let a = [| 1.; 2.; 3. |] and b = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vector.add a b);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vector.sub a b);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vector.scale 2. a);
  check_float "dot" 32. (Vector.dot a b);
  check_float "norm_inf" 3. (Vector.norm_inf a);
  check_float "norm_1" 6. (Vector.norm_1 a);
  check_float "norm_2" (sqrt 14.) (Vector.norm_2 a);
  Alcotest.(check (array (float 1e-12)))
    "normalize_1" [| 0.25; 0.75 |] (Vector.normalize_1 [| 1.; 3. |]);
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Vector: dimension mismatch (3 vs 2)") (fun () ->
      ignore (Vector.add a [| 1.; 2. |]))

let test_matrix_basics () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  check_float "get" 3. (Matrix.get m 1 0);
  Alcotest.(check int) "rows" 2 (Matrix.rows m);
  Alcotest.(check int) "cols" 2 (Matrix.cols m);
  let t = Matrix.transpose m in
  check_float "transpose" 2. (Matrix.get t 1 0);
  let i = Matrix.identity 2 in
  Alcotest.(check bool) "identity mul" true
    (Matrix.equal ~tol:1e-12 m (Matrix.mul m i));
  let sum = Matrix.add m m in
  check_float "add" 8. (Matrix.get sum 1 1);
  let diff = Matrix.sub sum m in
  Alcotest.(check bool) "sub" true (Matrix.equal ~tol:1e-12 m diff);
  let sc = Matrix.scale 3. i in
  check_float "scale" 3. (Matrix.get sc 0 0)

let test_mul_vec () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Alcotest.(check (array (float 1e-12)))
    "mul_vec" [| 5.; 11. |]
    (Matrix.mul_vec m [| 1.; 2. |]);
  Alcotest.(check (array (float 1e-12)))
    "vec_mul" [| 7.; 10. |]
    (Matrix.vec_mul [| 1.; 2. |] m)

let test_solve_known () =
  (* 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3. *)
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let x = Matrix.solve a [| 5.; 10. |] in
  Alcotest.(check (array (float 1e-9))) "solution" [| 1.; 3. |] x

let test_solve_requires_pivoting () =
  (* Leading zero pivot forces a row swap. *)
  let a = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  let x = Matrix.solve a [| 3.; 7. |] in
  Alcotest.(check (array (float 1e-12))) "swap" [| 7.; 3. |] x

let test_singular () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve a [| 1.; 1. |]));
  check_float "det 0" 0. (Matrix.determinant a)

let test_determinant () =
  let a = Matrix.of_rows [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "diag det" 6. (Matrix.determinant a);
  let b = Matrix.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "swap det" (-1.) (Matrix.determinant b)

let test_inverse () =
  let a = Matrix.of_rows [| [| 4.; 7. |]; [| 2.; 6. |] |] in
  let inv = Matrix.inverse a in
  Alcotest.(check bool) "a * a^-1 = I" true
    (Matrix.equal ~tol:1e-9 (Matrix.identity 2) (Matrix.mul a inv))

let gen_system =
  (* Diagonally dominant matrices are well conditioned, so residual
     checks are meaningful. *)
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* entries = array_repeat (n * n) (float_range (-1.) 1.) in
  let* rhs = array_repeat n (float_range (-10.) 10.) in
  let m =
    Matrix.init n n (fun i j ->
        let v = entries.((i * n) + j) in
        if i = j then v +. (2. *. float_of_int n) else v)
  in
  return (m, rhs)

let test_solve_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"LU solve residual" ~count:300 gen_system
       (fun (a, b) ->
         let x = Matrix.solve a b in
         Matrix.residual_inf a x b < 1e-8))

let test_inverse_property () =
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"inverse times matrix is identity" ~count:100
       gen_system (fun (a, _) ->
         let n = Matrix.rows a in
         Matrix.equal ~tol:1e-7 (Matrix.identity n)
           (Matrix.mul (Matrix.inverse a) a)))

let test_into_kernels () =
  let a = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Matrix.of_rows [| [| 10.; 20. |]; [| 30.; 40. |] |] in
  let dst = Matrix.create 2 2 0. in
  Matrix.add_into ~dst a b;
  Alcotest.(check bool) "add_into" true
    (Matrix.equal ~tol:0. dst (Matrix.add a b));
  Matrix.sub_into ~dst b a;
  Alcotest.(check bool) "sub_into" true
    (Matrix.equal ~tol:0. dst (Matrix.sub b a));
  Matrix.scale_into ~dst 3. a;
  Alcotest.(check bool) "scale_into" true
    (Matrix.equal ~tol:0. dst (Matrix.scale 3. a));
  (* Aliasing: dst is also an operand. *)
  let c = Matrix.copy a in
  Matrix.add_into ~dst:c c b;
  Alcotest.(check bool) "add_into aliased" true
    (Matrix.equal ~tol:0. c (Matrix.add a b));
  let d = Matrix.copy a in
  Matrix.scale_into ~dst:d 0.5 d;
  Alcotest.(check bool) "scale_into aliased" true
    (Matrix.equal ~tol:0. d (Matrix.scale 0.5 a))

let test_mul_vec_into_aliasing () =
  let m = Matrix.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let x = [| 1.; 2. |] in
  let expected = Matrix.mul_vec m x in
  let dst = [| 0.; 0. |] in
  Matrix.mul_vec_into m x ~dst;
  Alcotest.(check (array (float 0.))) "mul_vec_into" expected dst;
  (* dst == x must still read every x before overwriting it. *)
  let y = [| 1.; 2. |] in
  Matrix.mul_vec_into m y ~dst:y;
  Alcotest.(check (array (float 0.))) "mul_vec_into aliased" expected y

let test_lu_in_place_matches () =
  let a = Matrix.of_rows [| [| 0.; 1.; 4. |]; [| 2.; 7.; 1. |]; [| 5.; 3.; 2. |] |] in
  let b = [| 3.; 9.; 1. |] in
  let expected = Matrix.solve a b in
  let factors = Matrix.copy a in
  let pivots = Array.make 3 0 in
  Matrix.lu_factor_in_place factors ~pivots;
  let x = Vector.copy b in
  Matrix.lu_solve_in_place factors ~pivots x;
  (* In-place kernels replay the exact same arithmetic: bitwise equal. *)
  Alcotest.(check (array (float 0.))) "in-place solve" expected x

let test_solve_ws_reuse () =
  let ws = Workspace.create () in
  let a = Matrix.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  let b = [| 5.; 10. |] in
  let expected = Matrix.solve a b in
  Alcotest.(check (array (float 0.))) "solve_ws" expected
    (Matrix.solve_ws ws a b);
  (* A steady-state loop must not grow the workspace after warm-up. *)
  ignore (Matrix.solve_ws ws a b);
  let capacity = Workspace.floats_capacity ws in
  for _ = 1 to 50 do
    ignore (Matrix.solve_ws ws a b)
  done;
  Alcotest.(check int) "workspace capacity is stable" capacity
    (Workspace.floats_capacity ws);
  (* Scratch buffers hand out the same backing storage when it fits. *)
  let arr1 = Workspace.float_array ws 16 in
  let arr2 = Workspace.float_array ws 12 in
  Alcotest.(check bool) "float_array reuses its buffer" true (arr1 == arr2);
  let ints1 = Workspace.ints ws 8 in
  let ints2 = Workspace.ints ws 4 in
  Alcotest.(check bool) "ints reuses its buffer" true (ints1 == ints2)

let test_malformed_inputs_fail_cleanly () =
  (* NaN and infinite pivot columns must raise Singular, not return
     NaN-filled vectors. *)
  let nan_m = Matrix.of_rows [| [| Float.nan; 1. |]; [| Float.nan; 2. |] |] in
  Alcotest.check_raises "nan pivot" Matrix.Singular (fun () ->
      ignore (Matrix.solve nan_m [| 1.; 1. |]));
  let inf_m =
    Matrix.of_rows [| [| Float.infinity; 1. |]; [| Float.infinity; 2. |] |]
  in
  Alcotest.check_raises "infinite pivot" Matrix.Singular (fun () ->
      ignore (Matrix.solve inf_m [| 1.; 1. |]));
  (* The in-place and workspace variants share the contract. *)
  let pivots = Array.make 2 0 in
  Alcotest.check_raises "in-place nan pivot" Matrix.Singular (fun () ->
      Matrix.lu_factor_in_place (Matrix.copy nan_m) ~pivots);
  let singular = Matrix.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "solve_ws singular" Matrix.Singular (fun () ->
      ignore (Matrix.solve_ws (Workspace.create ()) singular [| 1.; 1. |]))

let gen_ws_system =
  let open QCheck2.Gen in
  let* n = int_range 1 10 in
  let* entries = array_repeat (n * n) (float_range (-1.) 1.) in
  let* rhs = array_repeat n (float_range (-10.) 10.) in
  let m =
    Matrix.init n n (fun i j ->
        let v = entries.((i * n) + j) in
        if i = j then v +. (2. *. float_of_int n) else v)
  in
  return (m, rhs)

let test_solve_ws_bitwise_property () =
  let ws = Workspace.create () in
  QCheck2.Test.check_exn
    (QCheck2.Test.make ~name:"solve_ws is bitwise solve" ~count:200
       gen_ws_system (fun (a, b) ->
         Matrix.solve_ws ws a b = Matrix.solve a b))

let test_solve_many () =
  let a = Matrix.of_rows [| [| 2.; 0. |]; [| 0.; 4. |] |] in
  match Matrix.solve_many a [ [| 2.; 4. |]; [| 6.; 8. |] ] with
  | [ x1; x2 ] ->
      Alcotest.(check (array (float 1e-12))) "first" [| 1.; 1. |] x1;
      Alcotest.(check (array (float 1e-12))) "second" [| 3.; 2. |] x2
  | _ -> Alcotest.fail "expected two solutions"

let () =
  Alcotest.run "linalg"
    [
      ( "vector",
        [ Alcotest.test_case "operations" `Quick test_vector_ops ] );
      ( "matrix",
        [
          Alcotest.test_case "basics" `Quick test_matrix_basics;
          Alcotest.test_case "matrix-vector" `Quick test_mul_vec;
          Alcotest.test_case "solve known system" `Quick test_solve_known;
          Alcotest.test_case "solve with pivoting" `Quick
            test_solve_requires_pivoting;
          Alcotest.test_case "singular detection" `Quick test_singular;
          Alcotest.test_case "determinant" `Quick test_determinant;
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "solve_many" `Quick test_solve_many;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "into kernels and aliasing" `Quick
            test_into_kernels;
          Alcotest.test_case "mul_vec_into aliasing" `Quick
            test_mul_vec_into_aliasing;
          Alcotest.test_case "in-place LU matches solve" `Quick
            test_lu_in_place_matches;
          Alcotest.test_case "workspace solve and reuse" `Quick
            test_solve_ws_reuse;
          Alcotest.test_case "malformed inputs fail cleanly" `Quick
            test_malformed_inputs_fail_cleanly;
        ] );
      ( "properties",
        [
          Alcotest.test_case "solve residual" `Quick test_solve_property;
          Alcotest.test_case "inverse identity" `Quick test_inverse_property;
          Alcotest.test_case "solve_ws bitwise" `Quick
            test_solve_ws_bitwise_property;
        ] );
    ]
