(* Cross-engine differential tests: random small tier models pushed
   through Engine A (aggregated birth-death chain), Engine B (exact
   multi-mode CTMC) and Engine C (Monte-Carlo simulation), asserting
   the documented agreement bounds. Models are kept small (n + s <= 4,
   at most 2 failure classes) so Engine B stays exact and cheap. *)

module Duration = Aved_units.Duration
module Service = Aved_model.Service
open Aved_avail

let qtest = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Generator: small random tier models *)

let gen_class ~max_mtbf_days =
  let open QCheck2.Gen in
  let* mtbf_days = float_range 2. max_mtbf_days in
  let* mttr_hours = float_range 0.05 48. in
  let* failover_minutes = float_range 0.5 30. in
  return (mtbf_days, mttr_hours, failover_minutes)

(* n_min = n_active: every failure takes the tier below its minimum, so
   downtime events are frequent enough for the simulation comparison to
   have signal on a modest horizon. [max_mtbf_days] bounds how rare
   failures may be: the chain comparisons take the full range, while
   the Monte-Carlo comparison stays in a frequent-failure regime —
   with a spare, real outages need a second failure inside a repair
   window, and when that compound event is too rare a 12-replication
   run can miss it entirely while the chains price it in. *)
let gen_model ?(max_mtbf_days = 600.) ~max_classes () =
  let open QCheck2.Gen in
  let* n = int_range 1 3 in
  let* s = int_range 0 (Stdlib.min 1 (4 - n)) in
  let* class_count = int_range 1 max_classes in
  let* raw = list_repeat class_count (gen_class ~max_mtbf_days) in
  let classes =
    List.mapi
      (fun i (mtbf_days, mttr_hours, failover_minutes) ->
        let mttr = Duration.of_hours mttr_hours in
        let failover = Duration.of_minutes failover_minutes in
        {
          Tier_model.label = Printf.sprintf "class%d" i;
          rate = 1. /. Duration.seconds (Duration.of_days mtbf_days);
          mttr;
          failover_time = failover;
          failover_considered = s > 0 && Duration.compare mttr failover > 0;
          repair_mechanism = None;
        })
      raw
  in
  return
    {
      Tier_model.tier_name = "differential";
      n_active = n;
      n_min = n;
      n_spare = s;
      failure_scope = Service.Resource_scope;
      classes;
      loss_window = None;
      effective_performance = 100.;
    }

let pp_model (m : Tier_model.t) =
  Printf.sprintf "n=%d s=%d classes=[%s]" m.n_active m.n_spare
    (String.concat "; "
       (List.map
          (fun (c : Tier_model.failure_class) ->
            Printf.sprintf "rate=%.3e mttr=%.1fh fo=%.1fm%s" c.rate
              (Duration.hours c.mttr)
              (Duration.minutes c.failover_time)
              (if c.failover_considered then "*" else ""))
          m.classes))

(* ------------------------------------------------------------------ *)
(* Engine A vs Engine B *)

let a_vs_b_single_class =
  QCheck2.Test.make
    ~name:"A equals B on single-class models (analytic identity)" ~count:300
    ~print:pp_model (gen_model ~max_classes:1 ()) (fun m ->
      let a = Analytic.downtime_fraction m in
      let b = Exact.downtime_fraction m in
      (* One failure class: the aggregated chain IS the exact chain. *)
      Float.abs (a -. b) <= 1e-12 +. (1e-9 *. a))

let a_vs_b_multi_class =
  QCheck2.Test.make
    ~name:"A within aggregation tolerance of B on two-class models"
    ~count:300 ~print:pp_model (gen_model ~max_classes:2 ()) (fun m ->
      let a = Analytic.downtime_fraction m in
      let b = Exact.downtime_fraction m in
      (* With unequal repair rates the single aggregate repair rate is
         an approximation; the documented envelope on small models is a
         modest relative error, plus an absolute floor for near-zero
         downtimes. *)
      Float.abs (a -. b) <= 1e-12 +. (0.35 *. Float.max a b))

(* ------------------------------------------------------------------ *)
(* Engine C vs A and B *)

let mc_config =
  { Monte_carlo.replications = 12; horizon = Duration.of_years 25.; seed = 11 }

(* The simulation must land inside its own confidence interval around
   each analytic engine, widened by the engines' modelling differences
   (the simulation applies failover delays deterministically event by
   event, the chains as rate x outage). *)
let mc_bound (summary : Aved_stats.Stats.summary) reference =
  (6. *. Aved_stats.Stats.standard_error summary)
  +. (0.25 *. reference) +. 1e-12

let c_vs_a_and_b =
  QCheck2.Test.make
    ~name:"C (fixed seed) within confidence interval of A and B" ~count:40
    ~print:pp_model
    (gen_model ~max_mtbf_days:90. ~max_classes:2 ())
    (fun m ->
      let a = Analytic.downtime_fraction m in
      let b = Exact.downtime_fraction m in
      let summary = Monte_carlo.downtime_fractions ~config:mc_config m in
      Float.abs (summary.mean -. a) <= mc_bound summary a
      && Float.abs (summary.mean -. b) <= mc_bound summary b)

(* ------------------------------------------------------------------ *)
(* The three engines through the common Evaluate dispatch *)

let evaluate_dispatch_consistent =
  QCheck2.Test.make
    ~name:"Evaluate dispatch agrees with direct engine calls" ~count:50
    ~print:pp_model (gen_model ~max_classes:2 ()) (fun m ->
      let direct = Analytic.downtime_fraction m in
      let via_analytic =
        Evaluate.tier_downtime_fraction Evaluate.Analytic m
      in
      let via_memo =
        Evaluate.tier_downtime_fraction (Evaluate.memoized ()) m
      in
      let via_exact =
        Evaluate.tier_downtime_fraction
          (Evaluate.Exact { max_states = 20000 })
          m
      in
      via_analytic = direct && via_memo = direct
      && Float.abs (via_exact -. Exact.downtime_fraction m) = 0.)

let () =
  Alcotest.run "differential"
    [
      ( "engines",
        [
          qtest a_vs_b_single_class;
          qtest a_vs_b_multi_class;
          qtest c_vs_a_and_b;
          qtest evaluate_dispatch_consistent;
        ] );
    ]
