(* The multicore search layer: work-pool semantics, shared-incumbent
   behavior, memoized evaluation, and — the load-bearing contract —
   bit-identical search results at any [jobs] setting. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Pool = Aved_parallel.Pool
module Incumbent = Aved_parallel.Incumbent
module Search_config = Aved_search.Search_config
module Candidate = Aved_search.Candidate
module Tier_search = Aved_search.Tier_search
module Job_search = Aved_search.Job_search
module Service_search = Aved_search.Service_search
open Aved_model

let infra () = Aved.Experiments.infrastructure ()
let app_tier () = Aved.Experiments.application_tier ()

(* ------------------------------------------------------------------ *)
(* Pool semantics *)

let test_map_preserves_order () =
  Pool.run ~jobs:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Pool.map pool (fun x -> x * x) xs)

let test_map_sequential_fallback () =
  Pool.run ~jobs:1 @@ fun pool ->
  Alcotest.(check int) "jobs" 1 (Pool.jobs pool);
  Alcotest.(check (list int))
    "plain map" [ 2; 4; 6 ]
    (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ])

let test_map_empty_and_singleton () =
  Pool.run ~jobs:3 @@ fun pool ->
  Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map pool Fun.id [ 7 ])

let test_nested_maps () =
  (* Tasks submitting sub-tasks to the same pool must not deadlock:
     workers (and the caller) run queued work while waiting. *)
  Pool.run ~jobs:4 @@ fun pool ->
  let rows =
    Pool.map pool
      (fun i -> Pool.map pool (fun j -> (10 * i) + j) [ 0; 1; 2 ])
      (List.init 8 Fun.id)
  in
  Alcotest.(check (list (list int)))
    "nested results"
    (List.init 8 (fun i -> List.map (fun j -> (10 * i) + j) [ 0; 1; 2 ]))
    rows

let test_exception_propagates () =
  Pool.run ~jobs:4 @@ fun pool ->
  match
    Pool.map pool
      (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x)
      (List.init 10 succ)
  with
  | _ -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
      (* The smallest-index failure wins, regardless of schedule. *)
      Alcotest.(check string) "first failing task" "3" msg

let test_pool_reusable_after_exception () =
  Pool.run ~jobs:2 @@ fun pool ->
  (try ignore (Pool.map pool (fun () -> failwith "boom") [ () ])
   with Failure _ -> ());
  Alcotest.(check (list int))
    "pool still works" [ 1; 2 ]
    (Pool.map pool Fun.id [ 1; 2 ])

let test_stress_many_small_tasks () =
  Pool.run ~jobs:4 @@ fun pool ->
  let n = 5000 in
  let total =
    List.fold_left ( + ) 0 (Pool.map pool Fun.id (List.init n Fun.id))
  in
  Alcotest.(check int) "sum" (n * (n - 1) / 2) total

let test_incumbent_monotone () =
  let inc = Incumbent.create () in
  Alcotest.(check bool) "starts at infinity" true (Incumbent.get inc = infinity);
  Incumbent.propose inc 10.;
  Incumbent.propose inc 12.;
  Alcotest.(check (float 0.)) "keeps the minimum" 10. (Incumbent.get inc);
  Incumbent.propose inc 7.;
  Alcotest.(check (float 0.)) "improves" 7. (Incumbent.get inc)

(* ------------------------------------------------------------------ *)
(* Memoized evaluation *)

let gen_small_model =
  let open QCheck2.Gen in
  let* n = int_range 1 4 in
  let* s = int_range 0 2 in
  let* m = int_range 1 n in
  let* tier_scope = bool in
  let* class_count = int_range 1 2 in
  let* raw =
    list_repeat class_count
      (triple (float_range 2. 800.) (float_range 0.05 48.)
         (float_range 0.5 30.))
  in
  let classes =
    List.mapi
      (fun i (mtbf_days, mttr_hours, failover_minutes) ->
        let mttr = Duration.of_hours mttr_hours in
        let failover = Duration.of_minutes failover_minutes in
        {
          Aved_avail.Tier_model.label = Printf.sprintf "c%d" i;
          rate = 1. /. Duration.seconds (Duration.of_days mtbf_days);
          mttr;
          failover_time = failover;
          failover_considered = s > 0 && Duration.compare mttr failover > 0;
          repair_mechanism = None;
        })
      raw
  in
  return
    {
      Aved_avail.Tier_model.tier_name = "memo";
      n_active = n;
      n_min = (if tier_scope then n else m);
      n_spare = s;
      failure_scope =
        (if tier_scope then Service.Tier_scope else Service.Resource_scope);
      classes;
      loss_window = None;
      effective_performance = 100.;
    }

let test_memo_equals_uncached () =
  let models =
    QCheck2.Gen.generate ~rand:(Random.State.make [| 2026 |]) ~n:1000
      gen_small_model
  in
  let cache = Aved_avail.Memo.create () in
  List.iter
    (fun m ->
      let direct = Aved_avail.Analytic.downtime_fraction m in
      let cached = Aved_avail.Memo.downtime_fraction cache m in
      if cached <> direct then
        Alcotest.failf "memo %.17e <> direct %.17e" cached direct)
    models

let test_memo_hits () =
  let cache = Aved_avail.Memo.create () in
  let m =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 7 |]) gen_small_model
  in
  ignore (Aved_avail.Memo.downtime_fraction cache m);
  ignore (Aved_avail.Memo.downtime_fraction cache m);
  (* The key ignores labels: a renamed model must still hit. *)
  ignore
    (Aved_avail.Memo.downtime_fraction cache
       { m with Aved_avail.Tier_model.tier_name = "renamed" });
  let hits, misses = Aved_avail.Memo.stats cache in
  Alcotest.(check int) "misses" 1 misses;
  Alcotest.(check int) "hits" 2 hits

(* The LRU bound: a capacity-k table holds at most k entries, evicts
   the least-recently-used key first, and recomputed evictees still
   agree with the uncached engine (eviction forgets, never corrupts). *)
let test_memo_lru_bound () =
  let models =
    QCheck2.Gen.generate ~rand:(Random.State.make [| 404 |]) ~n:64
      gen_small_model
  in
  let cache = Aved_avail.Memo.create ~capacity:16 () in
  List.iter (fun m -> ignore (Aved_avail.Memo.downtime_fraction cache m)) models;
  Alcotest.(check bool) "bounded" true (Aved_avail.Memo.length cache <= 16);
  Alcotest.(check int) "capacity" 16 (Aved_avail.Memo.capacity cache);
  Alcotest.(check bool) "evicted" true (Aved_avail.Memo.evictions cache > 0);
  List.iter
    (fun m ->
      Alcotest.(check (float 0.))
        "recompute agrees"
        (Aved_avail.Analytic.downtime_fraction m)
        (Aved_avail.Memo.downtime_fraction cache m))
    models

let test_memo_lru_order () =
  (* Distinct keys via n_active; capacity 2. Touching the older entry
     promotes it, so the untouched one is evicted first. *)
  let base =
    QCheck2.Gen.generate1 ~rand:(Random.State.make [| 11 |]) gen_small_model
  in
  let model n =
    {
      base with
      Aved_avail.Tier_model.n_active = n;
      n_min = 1;
      n_spare = 0;
      failure_scope = Service.Resource_scope;
    }
  in
  let cache = Aved_avail.Memo.create ~capacity:2 () in
  let touch n = ignore (Aved_avail.Memo.downtime_fraction cache (model n)) in
  touch 1;
  touch 2;
  touch 1 (* promote 1: LRU is now 2 *);
  touch 3 (* evicts 2 *);
  touch 1 (* still cached: hit *);
  let hits, misses = Aved_avail.Memo.stats cache in
  Alcotest.(check int) "misses" 3 misses;
  Alcotest.(check int) "hits" 2 hits;
  Alcotest.(check int) "one eviction" 1 (Aved_avail.Memo.evictions cache);
  touch 2 (* was evicted: a miss again *);
  let _, misses = Aved_avail.Memo.stats cache in
  Alcotest.(check int) "evicted key misses" 4 misses

(* ------------------------------------------------------------------ *)
(* The bounded admission queue *)

module Bounded_queue = Aved_parallel.Bounded_queue

let test_queue_fifo () =
  let q = Bounded_queue.create ~capacity:4 in
  List.iter
    (fun i -> Alcotest.(check bool) "push" true (Bounded_queue.try_push q i))
    [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Bounded_queue.length q);
  Alcotest.(check (option int)) "fifo 1" (Some 1) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "fifo 2" (Some 2) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "fifo 3" (Some 3) (Bounded_queue.pop q)

let test_queue_sheds_when_full () =
  let q = Bounded_queue.create ~capacity:2 in
  Alcotest.(check bool) "1 fits" true (Bounded_queue.try_push q 1);
  Alcotest.(check bool) "2 fits" true (Bounded_queue.try_push q 2);
  Alcotest.(check bool) "3 refused" false (Bounded_queue.try_push q 3);
  ignore (Bounded_queue.pop q);
  Alcotest.(check bool) "slot freed" true (Bounded_queue.try_push q 3)

let test_queue_close_drains () =
  let q = Bounded_queue.create ~capacity:4 in
  ignore (Bounded_queue.try_push q 1);
  ignore (Bounded_queue.try_push q 2);
  Bounded_queue.close q;
  Alcotest.(check bool) "closed refuses" false (Bounded_queue.try_push q 3);
  Alcotest.(check bool) "reports closed" true (Bounded_queue.closed q);
  Alcotest.(check (option int)) "delivers 1" (Some 1) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "delivers 2" (Some 2) (Bounded_queue.pop q);
  Alcotest.(check (option int)) "then none" None (Bounded_queue.pop q)

let test_queue_close_wakes_consumers () =
  let q : int Bounded_queue.t = Bounded_queue.create ~capacity:1 in
  let results = Array.make 2 (Some 0) in
  let consumers =
    Array.init 2 (fun i ->
        Thread.create (fun () -> results.(i) <- Bounded_queue.pop q) ())
  in
  Thread.delay 0.05;
  Bounded_queue.close q;
  Array.iter Thread.join consumers;
  Array.iter
    (fun r -> Alcotest.(check (option int)) "woken with None" None r)
    results

let test_memoized_engine_in_search () =
  let plain = Search_config.default in
  let memo = Search_config.with_memo Search_config.default in
  let a =
    Tier_search.optimal plain (infra ()) ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  in
  let b =
    Tier_search.optimal memo (infra ()) ~tier:(app_tier ()) ~demand:1000.
      ~max_downtime:(Duration.of_minutes 100.)
  in
  match (a, b) with
  | Some a, Some b ->
      Alcotest.(check bool) "same design" true
        (Design.compare_tier a.Candidate.design b.Candidate.design = 0);
      Alcotest.(check (float 0.))
        "same downtime" a.Candidate.downtime_fraction
        b.Candidate.downtime_fraction
  | _ -> Alcotest.fail "searches disagree on feasibility"

(* ------------------------------------------------------------------ *)
(* jobs=1 vs jobs=4 determinism *)

let config_with_jobs jobs = Search_config.with_jobs jobs Search_config.default

let check_candidate_equal what (a : Candidate.t) (b : Candidate.t) =
  Alcotest.(check bool)
    (what ^ ": same design")
    true
    (Design.compare_tier a.design b.design = 0);
  Alcotest.(check (float 0.))
    (what ^ ": same cost")
    (Money.to_float a.cost) (Money.to_float b.cost);
  Alcotest.(check (float 0.))
    (what ^ ": same downtime")
    a.downtime_fraction b.downtime_fraction

let test_tier_optimal_deterministic () =
  List.iter
    (fun demand ->
      let run jobs =
        Tier_search.optimal (config_with_jobs jobs) (infra ())
          ~tier:(app_tier ()) ~demand
          ~max_downtime:(Duration.of_minutes 100.)
      in
      match (run 1, run 4) with
      | Some a, Some b ->
          check_candidate_equal (Printf.sprintf "demand %g" demand) a b
      | None, None -> ()
      | _ -> Alcotest.failf "feasibility differs at demand %g" demand)
    [ 400.; 1000.; 2600. ]

let test_tier_frontier_deterministic () =
  List.iter
    (fun demand ->
      let run jobs =
        Tier_search.frontier (config_with_jobs jobs) (infra ())
          ~tier:(app_tier ()) ~demand
      in
      let a = run 1 and b = run 4 in
      Alcotest.(check int)
        (Printf.sprintf "frontier size at %g" demand)
        (List.length a) (List.length b);
      List.iter2
        (check_candidate_equal (Printf.sprintf "frontier point at %g" demand))
        a b)
    [ 400.; 1000. ]

let test_job_optimal_deterministic () =
  let infra = Aved.Experiments.infrastructure_bronze () in
  let tier = Aved.Experiments.computation_tier () in
  List.iter
    (fun hours ->
      let run jobs =
        Job_search.optimal
          (Search_config.with_jobs jobs Aved.Experiments.fig7_config)
          infra ~tier ~job_size:Aved.Experiments.scientific_job_size
          ~max_time:(Duration.of_hours hours)
      in
      match (run 1, run 4) with
      | Some a, Some b ->
          Alcotest.(check bool)
            (Printf.sprintf "same design at %gh" hours)
            true
            (Design.compare_tier a.Job_search.design b.Job_search.design = 0);
          Alcotest.(check (float 0.))
            (Printf.sprintf "same cost at %gh" hours)
            (Money.to_float a.Job_search.cost)
            (Money.to_float b.Job_search.cost);
          Alcotest.(check (float 0.))
            (Printf.sprintf "same time at %gh" hours)
            (Duration.seconds a.Job_search.execution_time)
            (Duration.seconds b.Job_search.execution_time)
      | None, None -> ()
      | _ -> Alcotest.failf "feasibility differs at %gh" hours)
    [ 24.; 100. ]

let test_service_design_deterministic () =
  let infra = infra () in
  let service = Aved.Experiments.ecommerce () in
  let requirements =
    Requirements.enterprise ~throughput:1000.
      ~max_annual_downtime:(Duration.of_minutes 100.)
  in
  let run jobs =
    Service_search.design (config_with_jobs jobs) infra service requirements
  in
  match (run 1, run 4) with
  | Some a, Some b ->
      Alcotest.(check (float 0.))
        "same cost"
        (Money.to_float a.Service_search.cost)
        (Money.to_float b.Service_search.cost);
      List.iter2
        (fun ta tb ->
          Alcotest.(check bool) "same tier design" true
            (Design.compare_tier ta tb = 0))
        a.Service_search.design.Design.tiers
        b.Service_search.design.Design.tiers
  | None, None -> Alcotest.fail "scenario unexpectedly infeasible"
  | _ -> Alcotest.fail "feasibility differs"

let test_fig6_subset_deterministic () =
  let run jobs =
    Aved.Figures.fig6
      ~config:(config_with_jobs jobs)
      ~loads:[ 600.; 1400. ] ()
  in
  let a = run 1 and b = run 4 in
  Alcotest.(check int) "same point count" (List.length a) (List.length b);
  List.iter2
    (fun (p : Aved.Figures.fig6_point) (q : Aved.Figures.fig6_point) ->
      Alcotest.(check string) "family" p.family q.family;
      Alcotest.(check (float 0.)) "downtime" p.downtime_minutes
        q.downtime_minutes;
      Alcotest.(check (float 0.)) "cost" p.annual_cost q.annual_cost)
    a b

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick
            test_map_preserves_order;
          Alcotest.test_case "jobs=1 falls back to plain map" `Quick
            test_map_sequential_fallback;
          Alcotest.test_case "empty and singleton" `Quick
            test_map_empty_and_singleton;
          Alcotest.test_case "nested maps do not deadlock" `Quick
            test_nested_maps;
          Alcotest.test_case "exceptions propagate deterministically" `Quick
            test_exception_propagates;
          Alcotest.test_case "pool usable after an exception" `Quick
            test_pool_reusable_after_exception;
          Alcotest.test_case "many small tasks" `Quick
            test_stress_many_small_tasks;
          Alcotest.test_case "incumbent keeps the minimum" `Quick
            test_incumbent_monotone;
        ] );
      ( "memo",
        [
          Alcotest.test_case "memoized equals uncached on 1000 random models"
            `Quick test_memo_equals_uncached;
          Alcotest.test_case "cache hits ignore labels" `Quick test_memo_hits;
          Alcotest.test_case "LRU bound holds and eviction never corrupts"
            `Quick test_memo_lru_bound;
          Alcotest.test_case "LRU evicts the least recently used" `Quick
            test_memo_lru_order;
          Alcotest.test_case "memoized engine reproduces the search" `Quick
            test_memoized_engine_in_search;
        ] );
      ( "bounded-queue",
        [
          Alcotest.test_case "fifo order" `Quick test_queue_fifo;
          Alcotest.test_case "refuses pushes at capacity" `Quick
            test_queue_sheds_when_full;
          Alcotest.test_case "close drains then ends" `Quick
            test_queue_close_drains;
          Alcotest.test_case "close wakes blocked consumers" `Quick
            test_queue_close_wakes_consumers;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "tier optimal: jobs 1 = jobs 4" `Quick
            test_tier_optimal_deterministic;
          Alcotest.test_case "tier frontier: jobs 1 = jobs 4" `Quick
            test_tier_frontier_deterministic;
          Alcotest.test_case "job optimal: jobs 1 = jobs 4" `Quick
            test_job_optimal_deterministic;
          Alcotest.test_case "service design: jobs 1 = jobs 4" `Quick
            test_service_design_deterministic;
          Alcotest.test_case "fig6 subset: jobs 1 = jobs 4" `Quick
            test_fig6_subset_deterministic;
        ] );
    ]
