type comparison = Le | Lt | Ge | Gt | Eq | Ne

type t =
  | Const of float
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Call of string * t list
  | If of comparison * t * t * t * t  (* cmp, lhs, rhs, then, else *)

let const v = Const v
let var name = Var name
let add a b = Add (a, b)
let sub a b = Sub (a, b)
let mul a b = Mul (a, b)
let div a b = Div (a, b)
let neg a = Neg a

let builtin_arity = function
  | "min" | "max" | "pow" -> Some 2
  | "exp" | "log" | "sqrt" | "floor" | "ceil" | "abs" -> Some 1
  | _ -> None

let apply fn args =
  match builtin_arity fn with
  | None -> invalid_arg (Printf.sprintf "Expr.apply: unknown function %S" fn)
  | Some arity when arity <> List.length args ->
      invalid_arg
        (Printf.sprintf "Expr.apply: %s expects %d argument(s), got %d" fn
           arity (List.length args))
  | Some _ -> Call (fn, args)

let min_ a b = apply "min" [ a; b ]
let max_ a b = apply "max" [ a; b ]
let if_ cmp a b ~then_ ~else_ = If (cmp, a, b, then_, else_)

(* ------------------------------------------------------------------ *)
(* Evaluation *)

exception Unbound_variable of string

let compare_holds cmp a b =
  match cmp with
  | Le -> a <= b
  | Lt -> a < b
  | Ge -> a >= b
  | Gt -> a > b
  | Eq -> a = b
  | Ne -> a <> b

(* Direct unary/binary application, so the evaluator's hot path never
   builds an argument list. The builtins are all arity 1 or 2 (checked
   at construction), so [eval_builtin] over a list survives only as the
   mismatched-arity error path. *)
let eval_builtin1 fn a =
  match fn with
  | "exp" -> Float.exp a
  | "log" -> Float.log a
  | "sqrt" -> Float.sqrt a
  | "floor" -> Float.floor a
  | "ceil" -> Float.ceil a
  | "abs" -> Float.abs a
  | fn -> invalid_arg (Printf.sprintf "Expr.eval: bad call %s/1" fn)

let eval_builtin2 fn a b =
  match fn with
  | "min" -> Float.min a b
  | "max" -> Float.max a b
  | "pow" -> Float.pow a b
  | fn -> invalid_arg (Printf.sprintf "Expr.eval: bad call %s/2" fn)

let eval_builtin fn args =
  match args with
  | [ a ] -> eval_builtin1 fn a
  | [ a; b ] -> eval_builtin2 fn a b
  | args ->
      invalid_arg
        (Printf.sprintf "Expr.eval: bad call %s/%d" fn (List.length args))

let rec eval expr lookup =
  match expr with
  | Const v -> v
  | Var name -> (
      match lookup name with
      | Some v -> v
      | None -> raise (Unbound_variable name))
  | Add (a, b) -> eval a lookup +. eval b lookup
  | Sub (a, b) -> eval a lookup -. eval b lookup
  | Mul (a, b) -> eval a lookup *. eval b lookup
  | Div (a, b) -> eval a lookup /. eval b lookup
  | Neg a -> -.eval a lookup
  | Call (fn, [ a ]) -> eval_builtin1 fn (eval a lookup)
  | Call (fn, [ a; b ]) ->
      let va = eval a lookup in
      let vb = eval b lookup in
      eval_builtin2 fn va vb
  | Call (fn, args) ->
      let values = List.map (fun arg -> eval arg lookup) args in
      eval_builtin fn values
  | If (cmp, a, b, then_, else_) ->
      if compare_holds cmp (eval a lookup) (eval b lookup) then
        eval then_ lookup
      else eval else_ lookup

let eval_alist expr bindings =
  eval expr (fun name -> List.assoc_opt name bindings)

(* Single-variable evaluation with the binding passed as arguments, so
   callers on hot paths (Perf_function.eval) allocate neither a binding
   list nor a lookup closure per call. *)
let rec eval1 expr ~var ~value =
  match expr with
  | Const v -> v
  | Var name ->
      if String.equal name var then value else raise (Unbound_variable name)
  | Add (a, b) -> eval1 a ~var ~value +. eval1 b ~var ~value
  | Sub (a, b) -> eval1 a ~var ~value -. eval1 b ~var ~value
  | Mul (a, b) -> eval1 a ~var ~value *. eval1 b ~var ~value
  | Div (a, b) -> eval1 a ~var ~value /. eval1 b ~var ~value
  | Neg a -> -.eval1 a ~var ~value
  | Call (fn, [ a ]) -> eval_builtin1 fn (eval1 a ~var ~value)
  | Call (fn, [ a; b ]) ->
      let va = eval1 a ~var ~value in
      let vb = eval1 b ~var ~value in
      eval_builtin2 fn va vb
  | Call (fn, args) ->
      eval_builtin fn (List.map (fun arg -> eval1 arg ~var ~value) args)
  | If (cmp, a, b, then_, else_) ->
      if compare_holds cmp (eval1 a ~var ~value) (eval1 b ~var ~value) then
        eval1 then_ ~var ~value
      else eval1 else_ ~var ~value

let const_value expr =
  match eval expr (fun _ -> None) with
  | v -> Some v
  | exception Unbound_variable _ -> None

let variables expr =
  let rec collect acc = function
    | Const _ -> acc
    | Var name -> name :: acc
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        collect (collect acc a) b
    | Neg a -> collect acc a
    | Call (_, args) -> List.fold_left collect acc args
    | If (_, a, b, then_, else_) ->
        collect (collect (collect (collect acc a) b) then_) else_
  in
  List.sort_uniq String.compare (collect [] expr)

(* ------------------------------------------------------------------ *)
(* Printing *)

let comparison_to_string = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "=="
  | Ne -> "!="

let float_to_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Precedence: 0 = if, 1 = sum, 2 = prod, 3 = unary/atom. *)
let rec render level expr =
  let paren needed body = if needed then "(" ^ body ^ ")" else body in
  match expr with
  | Const v ->
      if v < 0. then paren (level > 2) (float_to_string v)
      else float_to_string v
  | Var name -> name
  | Add (a, b) -> paren (level > 1) (render 1 a ^ " + " ^ render 2 b)
  | Sub (a, b) -> paren (level > 1) (render 1 a ^ " - " ^ render 2 b)
  | Mul (a, b) -> paren (level > 2) (render 2 a ^ " * " ^ render 3 b)
  | Div (a, b) -> paren (level > 2) (render 2 a ^ " / " ^ render 3 b)
  | Neg a -> paren (level > 2) ("-" ^ render 3 a)
  | Call (fn, args) ->
      fn ^ "(" ^ String.concat ", " (List.map (render 0) args) ^ ")"
  | If (cmp, a, b, then_, else_) ->
      paren (level > 0)
        (Printf.sprintf "if %s %s %s then %s else %s" (render 1 a)
           (comparison_to_string cmp) (render 1 b) (render 0 then_)
           (render 0 else_))

let to_string = render 0
let pp ppf expr = Format.pp_print_string ppf (to_string expr)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Var x, Var y -> String.equal x y
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Neg x, Neg y -> equal x y
  | Call (f, xs), Call (g, ys) ->
      String.equal f g
      && List.length xs = List.length ys
      && List.for_all2 equal xs ys
  | If (c1, a1, b1, t1, e1), If (c2, a2, b2, t2, e2) ->
      c1 = c2 && equal a1 a2 && equal b1 b2 && equal t1 t2 && equal e1 e2
  | (Const _ | Var _ | Add _ | Sub _ | Mul _ | Div _ | Neg _ | Call _ | If _), _
    ->
      false

(* ------------------------------------------------------------------ *)
(* Lexer *)

exception Parse_error of { message : string; position : int }

let fail position fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { message; position })) fmt

type token =
  | Tnum of float
  | Tpercent of float
  | Tident of string
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tlparen
  | Trparen
  | Tcomma
  | Tcmp of comparison
  | Tif
  | Tthen
  | Telse

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c

let tokenize source =
  let n = String.length source in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = source.[start] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || c = '.' then begin
      let j = ref start in
      while
        !j < n
        && (is_digit source.[!j] || source.[!j] = '.' || source.[!j] = 'e'
           || source.[!j] = 'E'
           || ((source.[!j] = '+' || source.[!j] = '-')
              && !j > start
              && (source.[!j - 1] = 'e' || source.[!j - 1] = 'E')))
      do
        incr j
      done;
      let text = String.sub source start (!j - start) in
      (match float_of_string_opt text with
      | None -> fail start "malformed number %S" text
      | Some v ->
          if !j < n && source.[!j] = '%' then begin
            emit start (Tpercent (v /. 100.));
            j := !j + 1
          end
          else emit start (Tnum v));
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref start in
      while !j < n && is_ident_char source.[!j] do
        incr j
      done;
      let text = String.sub source start (!j - start) in
      (match text with
      | "if" -> emit start Tif
      | "then" -> emit start Tthen
      | "else" -> emit start Telse
      | _ -> emit start (Tident text));
      i := !j
    end
    else begin
      let two =
        if start + 1 < n then Some (String.sub source start 2) else None
      in
      match two with
      | Some "<=" -> emit start (Tcmp Le); i := start + 2
      | Some ">=" -> emit start (Tcmp Ge); i := start + 2
      | Some "==" -> emit start (Tcmp Eq); i := start + 2
      | Some "!=" -> emit start (Tcmp Ne); i := start + 2
      | Some _ | None -> (
          (match c with
          | '+' -> emit start Tplus
          | '-' -> emit start Tminus
          | '*' -> emit start Tstar
          | '/' -> emit start Tslash
          | '(' -> emit start Tlparen
          | ')' -> emit start Trparen
          | ',' -> emit start Tcomma
          | '<' -> emit start (Tcmp Lt)
          | '>' -> emit start (Tcmp Gt)
          | '=' -> emit start (Tcmp Eq)
          | _ -> fail start "unexpected character %C" c);
          incr i)
    end
  done;
  List.rev !tokens

(* ------------------------------------------------------------------ *)
(* Parser: recursive descent over the token list. *)

type parser_state = { mutable rest : (token * int) list; length : int }

let peek state = match state.rest with [] -> None | tok :: _ -> Some tok

let advance state =
  match state.rest with [] -> () | _ :: rest -> state.rest <- rest

let expect state tok what =
  match peek state with
  | Some (t, _) when t = tok -> advance state
  | Some (_, pos) -> fail pos "expected %s" what
  | None -> fail state.length "expected %s, got end of input" what

let rec parse_expr state =
  match peek state with
  | Some (Tif, _) ->
      advance state;
      let lhs = parse_sum state in
      let cmp =
        match peek state with
        | Some (Tcmp c, _) ->
            advance state;
            c
        | Some (_, pos) -> fail pos "expected a comparison operator"
        | None -> fail state.length "expected a comparison operator"
      in
      let rhs = parse_sum state in
      expect state Tthen "'then'";
      let then_ = parse_expr state in
      expect state Telse "'else'";
      let else_ = parse_expr state in
      If (cmp, lhs, rhs, then_, else_)
  | Some _ | None -> parse_sum state

and parse_sum state =
  let rec loop acc =
    match peek state with
    | Some (Tplus, _) ->
        advance state;
        loop (Add (acc, parse_prod state))
    | Some (Tminus, _) ->
        advance state;
        loop (Sub (acc, parse_prod state))
    | Some (_, _) | None -> acc
  in
  loop (parse_prod state)

and parse_prod state =
  let rec loop acc =
    match peek state with
    | Some (Tstar, _) ->
        advance state;
        loop (Mul (acc, parse_unary state))
    | Some (Tslash, _) ->
        advance state;
        loop (Div (acc, parse_unary state))
    | Some (_, _) | None -> acc
  in
  loop (parse_unary state)

and parse_unary state =
  match peek state with
  | Some (Tminus, _) ->
      advance state;
      Neg (parse_unary state)
  | Some (_, _) | None -> parse_atom state

and parse_atom state =
  match peek state with
  | Some (Tnum v, _) ->
      advance state;
      Const v
  | Some (Tpercent v, _) ->
      advance state;
      Const v
  | Some (Tident name, pos) -> (
      advance state;
      match peek state with
      | Some (Tlparen, _) ->
          advance state;
          let args = parse_args state in
          expect state Trparen "')'";
          (match builtin_arity name with
          | None -> fail pos "unknown function %S" name
          | Some arity when arity <> List.length args ->
              fail pos "%s expects %d argument(s), got %d" name arity
                (List.length args)
          | Some _ -> Call (name, args))
      | Some (_, _) | None -> Var name)
  | Some (Tlparen, _) ->
      advance state;
      let inner = parse_expr state in
      expect state Trparen "')'";
      inner
  | Some (_, pos) -> fail pos "expected a number, variable or '('"
  | None -> fail state.length "unexpected end of input"

and parse_args state =
  let first = parse_expr state in
  let rec loop acc =
    match peek state with
    | Some (Tcomma, _) ->
        advance state;
        loop (parse_expr state :: acc)
    | Some (_, _) | None -> List.rev acc
  in
  loop [ first ]

let of_string source =
  let tokens = tokenize source in
  let state = { rest = tokens; length = String.length source } in
  let expr = parse_expr state in
  match peek state with
  | None -> expr
  | Some (_, pos) -> fail pos "trailing input"

let of_string_opt source =
  match of_string source with
  | expr -> Some expr
  | exception Parse_error _ -> None
