(** A small arithmetic expression language.

    The paper's Table 1 defines performance and mechanism-impact functions
    as closed-form expressions over named variables, e.g.
    [200*n], [(10*n)/(1+0.004*n)], or the piecewise
    [if n <= 30 then max(10/cpi, 100%) else max(n/(3*cpi), 100%)].
    This module provides the abstract syntax, a parser and an evaluator
    for exactly that class of expressions.

    Grammar (precedence climbing):
    {v
      expr   ::= "if" comparison "then" expr "else" expr | sum
      comparison ::= sum ("<=" | "<" | ">=" | ">" | "==" | "!=") sum
      sum    ::= prod (("+" | "-") prod)*
      prod   ::= unary (("*" | "/") unary)*
      unary  ::= "-" unary | atom
      atom   ::= number | number "%" | var | fn "(" expr ("," expr)* ")"
               | "(" expr ")"
    v}

    A percent literal [100%] denotes the fraction [1.0]. Built-in
    functions: [min], [max], [exp], [log], [sqrt], [floor], [ceil],
    [abs], [pow]. *)

type comparison = Le | Lt | Ge | Gt | Eq | Ne

type t =
  | Const of float
  | Var of string
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Call of string * t list
  | If of comparison * t * t * t * t  (** cmp, lhs, rhs, then, else *)

(** The representation is exposed so that external analyses (the static
    checker in [lib/check]) can walk the syntax; construct values through
    the functions below, which validate arities. *)

(** Constructors, for building expressions programmatically. *)

val const : float -> t
val var : string -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t
val if_ : comparison -> t -> t -> then_:t -> else_:t -> t
(** [if_ cmp a b ~then_ ~else_] evaluates [then_] when [a cmp b] holds. *)

val apply : string -> t list -> t
(** [apply fn args] applies a built-in function by name. Raises
    [Invalid_argument] for an unknown function or wrong arity. *)

exception Parse_error of { message : string; position : int }
(** Raised by {!of_string}; [position] is a 0-based byte offset. *)

val of_string : string -> t
val of_string_opt : string -> t option

exception Unbound_variable of string

val eval : t -> (string -> float option) -> float
(** [eval e lookup] evaluates [e], resolving variables through [lookup].
    Raises {!Unbound_variable} when [lookup] returns [None]. *)

val eval_alist : t -> (string * float) list -> float

val eval1 : t -> var:string -> value:float -> float
(** [eval1 e ~var ~value] is [eval_alist e [ (var, value) ]] without
    the per-call binding-list and closure allocation. *)

val variables : t -> string list
(** Free variables, sorted, without duplicates. *)

val const_value : t -> float option
(** [const_value e] evaluates [e] when it contains no variables, [None]
    otherwise. Used by the static checker to fold constant subterms. *)

val compare_holds : comparison -> float -> float -> bool
(** Whether [a cmp b] holds, with the evaluator's exact semantics. *)

val to_string : t -> string
(** Prints a form that {!of_string} parses back to an equal expression. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
