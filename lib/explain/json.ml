type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Shortest representation that round-trips: try 15 significant digits,
   fall back to 17. *)
let float_repr f =
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let rec add_to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | String s -> add_escaped buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          add_to_buffer buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf key;
          Buffer.add_char buf ':';
          add_to_buffer buf value)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 1024 in
  add_to_buffer buf json;
  Buffer.contents buf

let of_float_option = function Some f -> Float f | None -> Null
let of_string_option = function Some s -> String s | None -> Null
