module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Availability = Aved_reliability.Availability
module Design = Aved_model.Design
module Mechanism = Aved_model.Mechanism
module Tier_model = Aved_avail.Tier_model
module Analytic = Aved_avail.Analytic
module Evaluate = Aved_avail.Evaluate
module Provenance = Aved_search.Provenance
module Candidate = Aved_search.Candidate

type runner_up = {
  record : Provenance.record;
  cost_delta : float;
  downtime_delta : float option;
  execution_time_delta : float option;
}

type tier_explanation = {
  tier_name : string;
  design : Design.tier_design;
  cost : Money.t;
  decomposition : Evaluate.decomposition;
  by_mechanism : (string option * float) list;
  mean_failed_resources : float option;
  runner_ups : runner_up list;
  considered : int;
}

type t = {
  service_name : string;
  engine : string;
  cost : Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
  tiers : tier_explanation list;
  noted : int;
  dropped : int;
}

let engine_label : Evaluate.engine -> string = function
  | Analytic | Memoized _ -> "analytic"
  | Exact _ -> "exact"
  | Monte_carlo _ -> "monte-carlo"

let minutes_of_fraction f = Duration.minutes (Duration.of_years f)

(* One record per design, each design keeping its latest (= final) fate.
   Records arrive oldest-first; quadratic in the ring size, which is
   bounded. *)
let latest_by_design records =
  List.fold_left
    (fun acc (r : Provenance.record) ->
      r
      :: List.filter
           (fun (r' : Provenance.record) ->
             Design.compare_tier r'.design r.design <> 0)
           acc)
    [] records

(* Deterministic presentation order, independent of the trail's append
   order under parallel search: cheapest first, then least downtime (or
   execution time), then the rendered design. *)
let runner_order (a : Provenance.record) (b : Provenance.record) =
  let metric (r : Provenance.record) =
    match (r.downtime, r.execution_time) with
    | Some d, _ -> Duration.seconds d
    | None, Some e -> Duration.seconds e
    | None, None -> Float.infinity
  in
  match Money.compare a.cost b.cost with
  | 0 -> (
      match Float.compare (metric a) (metric b) with
      | 0 -> String.compare (Provenance.describe a.design) (Provenance.describe b.design)
      | c -> c)
  | c -> c

let take n l = List.filteri (fun i _ -> i < n) l

let runner_ups_of_trail ~top ~trail ~tier_name ~design ~cost
    ~(decomposition : Evaluate.decomposition) =
  let records = Provenance.records trail ~tier:tier_name in
  let latest = latest_by_design records in
  let considered = List.length latest in
  let losers =
    List.filter
      (fun (r : Provenance.record) -> Design.compare_tier r.design design <> 0)
      latest
  in
  let winner_minutes = minutes_of_fraction decomposition.total in
  let runner_ups =
    List.stable_sort runner_order losers |> take top
    |> List.map (fun (r : Provenance.record) ->
           {
             record = r;
             cost_delta = Money.to_float r.cost -. Money.to_float cost;
             downtime_delta =
               Option.map
                 (fun d -> Duration.minutes d -. winner_minutes)
                 r.downtime;
             execution_time_delta =
               Option.map Duration.seconds r.execution_time;
           })
  in
  (runner_ups, considered)

let explain_tier ?(top = 5) ?trail ~engine ~design ~cost ~model () =
  let decomposition = Evaluate.tier_downtime_decomposition engine model in
  let by_mechanism = Evaluate.by_mechanism decomposition in
  let mean_failed_resources =
    match (engine : Evaluate.engine) with
    | Analytic | Memoized _ -> Some (Analytic.mean_failed_resources model)
    | Exact _ | Monte_carlo _ -> None
  in
  let runner_ups, considered =
    match trail with
    | None -> ([], 0)
    | Some trail ->
        runner_ups_of_trail ~top ~trail
          ~tier_name:design.Design.tier_name ~design ~cost ~decomposition
  in
  {
    tier_name = design.Design.tier_name;
    design;
    cost;
    decomposition;
    by_mechanism;
    mean_failed_resources;
    runner_ups;
    considered;
  }

let winner_downtime e = Duration.of_years e.decomposition.Evaluate.total

let fate_sentence (r : Provenance.record) =
  match r.fate with
  | Incumbent -> "incumbent"
  | Dominated { by } -> "dominated by " ^ by
  | Over_downtime_budget { excess } ->
      if r.execution_time <> None then
        Printf.sprintf "over time budget by %.2fh" (Duration.hours excess)
      else
        Printf.sprintf "over downtime budget by %.3f min/yr"
          (Duration.minutes excess)
  | Over_cost_cap { excess } ->
      "over cost cap by " ^ Money.to_string excess ^ "/yr"
  | Rejected_by_model { reason } -> "rejected: " ^ reason
  | Pruned_by_bound { certificate } ->
      "pruned by bound: " ^ Aved_check.Certificate.summary certificate

(* Availability implied by a downtime fraction, as nines. *)
let nines_of_fraction f =
  Availability.nines (Availability.of_fraction (1. -. Float.min 1. f))

let pp_nines_of_fraction ppf f =
  Availability.pp_nines ppf (Availability.of_fraction (1. -. Float.min 1. f))

let pp_money_delta ppf delta =
  if Float.is_integer delta then Format.fprintf ppf "%+.0f" delta
  else Format.fprintf ppf "%+.2f" delta

let pp_share ppf (fraction, total) =
  if total > 0. then Format.fprintf ppf "%5.1f%%" (100. *. fraction /. total)
  else Format.pp_print_string ppf "    -%%"

let pp_runner_up ppf i r =
  Format.fprintf ppf "@,  %d. %a" (i + 1) Design.pp_tier r.record.design;
  Format.fprintf ppf "@,     cost %a/yr (%a)" Money.pp r.record.cost
    pp_money_delta r.cost_delta;
  (match (r.record.downtime, r.downtime_delta) with
  | Some d, Some delta ->
      Format.fprintf ppf ", downtime %.3f min/yr (%+.3f)" (Duration.minutes d)
        delta
  | _ -> ());
  (match r.record.execution_time with
  | Some e -> Format.fprintf ppf ", execution time %.2fh" (Duration.hours e)
  | None -> ());
  Format.fprintf ppf " -- %s" (fate_sentence r.record)

let pp_tier_explanation ppf e =
  let total = e.decomposition.Evaluate.total in
  Format.fprintf ppf "@[<v>%a@," Design.pp_tier e.design;
  Format.fprintf ppf "  cost %a/yr@," Money.pp e.cost;
  Format.fprintf ppf "  downtime %.3f min/yr (%a nines)"
    (minutes_of_fraction total) pp_nines_of_fraction total;
  if e.decomposition.by_class <> [] then begin
    Format.fprintf ppf "@,  by failure mode:";
    List.iter
      (fun (c : Evaluate.class_contribution) ->
        Format.fprintf ppf "@,    %-24s %10.3f min/yr  %a  %a nines%s"
          c.label
          (minutes_of_fraction c.fraction)
          pp_share (c.fraction, total) pp_nines_of_fraction c.fraction
          (match c.repair_mechanism with
          | Some m -> "  [repair: " ^ m ^ "]"
          | None -> ""))
      e.decomposition.by_class
  end;
  (match e.by_mechanism with
  | [] | [ (None, _) ] -> ()
  | groups ->
      Format.fprintf ppf "@,  by repair mechanism:";
      List.iter
        (fun (mech, fraction) ->
          Format.fprintf ppf "@,    %-24s %10.3f min/yr  %a"
            (match mech with Some m -> m | None -> "(fixed repair)")
            (minutes_of_fraction fraction)
            pp_share (fraction, total))
        groups);
  (match e.mean_failed_resources with
  | Some m -> Format.fprintf ppf "@,  mean failed resources %.6g" m
  | None -> ());
  (match e.runner_ups with
  | [] -> ()
  | runner_ups ->
      Format.fprintf ppf "@,  runner-ups (top %d of %d designs considered):"
        (List.length runner_ups) e.considered;
      List.iteri (fun i r -> pp_runner_up ppf i r) runner_ups);
  Format.fprintf ppf "@]"

let pp ppf t =
  Format.fprintf ppf "@[<v>explain %s -- engine %s@," t.service_name t.engine;
  Format.fprintf ppf "cost %a/yr" Money.pp t.cost;
  (match t.downtime with
  | Some d ->
      Format.fprintf ppf ", downtime %.3f min/yr (%a nines)"
        (Duration.minutes d) Availability.pp_nines
        (Availability.of_annual_downtime d)
  | None -> ());
  (match t.execution_time with
  | Some e -> Format.fprintf ppf ", execution time %.2fh" (Duration.hours e)
  | None -> ());
  List.iter (fun e -> Format.fprintf ppf "@,@,%a" pp_tier_explanation e) t.tiers;
  if t.dropped > 0 then
    Format.fprintf ppf
      "@,@,note: trail ring dropped %d of %d records; oldest fates may be \
       missing"
      t.dropped t.noted;
  Format.fprintf ppf "@]"

let fate_detail : Provenance.fate -> Json.t = function
  | Incumbent -> Json.Null
  | Dominated { by } -> Json.String by
  | Over_downtime_budget { excess } -> Json.Float (Duration.minutes excess)
  | Over_cost_cap { excess } -> Json.Float (Money.to_float excess)
  | Rejected_by_model { reason } -> Json.String reason
  | Pruned_by_bound { certificate } ->
      Json.String (Aved_check.Certificate.summary certificate)

let runner_up_to_json r =
  Json.Obj
    [
      ("design", Json.String (Provenance.describe r.record.design));
      ("fate", Json.String (Provenance.fate_label r.record.fate));
      ("fate_detail", fate_detail r.record.fate);
      ("cost", Json.Float (Money.to_float r.record.cost));
      ("cost_delta", Json.Float r.cost_delta);
      ( "downtime_minutes_per_year",
        Json.of_float_option (Option.map Duration.minutes r.record.downtime) );
      ("downtime_delta_minutes", Json.of_float_option r.downtime_delta);
      ( "execution_time_seconds",
        Json.of_float_option
          (Option.map Duration.seconds r.record.execution_time) );
    ]

let contribution_to_json (c : Evaluate.class_contribution) =
  Json.Obj
    [
      ("label", Json.String c.label);
      ("repair_mechanism", Json.of_string_option c.repair_mechanism);
      ("fraction", Json.Float c.fraction);
      ("minutes_per_year", Json.Float (minutes_of_fraction c.fraction));
      ("nines", Json.Float (nines_of_fraction c.fraction));
    ]

let mechanism_to_json (mech, fraction) =
  Json.Obj
    [
      ("mechanism", Json.of_string_option mech);
      ("fraction", Json.Float fraction);
      ("minutes_per_year", Json.Float (minutes_of_fraction fraction));
    ]

let tier_to_json e =
  let total = e.decomposition.Evaluate.total in
  Json.Obj
    [
      ("tier", Json.String e.tier_name);
      ("design", Json.String (Provenance.describe e.design));
      ("resource", Json.String e.design.Design.resource);
      ("n_active", Json.Int e.design.Design.n_active);
      ("n_spare", Json.Int e.design.Design.n_spare);
      ("cost", Json.Float (Money.to_float e.cost));
      ( "downtime",
        Json.Obj
          [
            ("fraction", Json.Float total);
            ("minutes_per_year", Json.Float (minutes_of_fraction total));
            ("nines", Json.Float (nines_of_fraction total));
            ( "by_class",
              Json.List
                (List.map contribution_to_json e.decomposition.by_class) );
            ( "by_mechanism",
              Json.List (List.map mechanism_to_json e.by_mechanism) );
          ] );
      ("mean_failed_resources", Json.of_float_option e.mean_failed_resources);
      ("designs_considered", Json.Int e.considered);
      ("runner_ups", Json.List (List.map runner_up_to_json e.runner_ups));
    ]

let to_json t =
  Json.Obj
    [
      ("service", Json.String t.service_name);
      ("engine", Json.String t.engine);
      ("cost", Json.Float (Money.to_float t.cost));
      ( "downtime_minutes_per_year",
        Json.of_float_option (Option.map Duration.minutes t.downtime) );
      ( "execution_time_seconds",
        Json.of_float_option (Option.map Duration.seconds t.execution_time) );
      ( "provenance",
        Json.Obj [ ("noted", Json.Int t.noted); ("dropped", Json.Int t.dropped) ]
      );
      ("tiers", Json.List (List.map tier_to_json t.tiers));
    ]

(* What changed between two adjacent frontier designs. *)
let design_diff (a : Design.tier_design) (b : Design.tier_design) =
  let changes = ref [] in
  let add fmt = Printf.ksprintf (fun s -> changes := s :: !changes) fmt in
  if a.resource <> b.resource then add "resource %s->%s" a.resource b.resource;
  if a.n_active <> b.n_active then add "n_active %d->%d" a.n_active b.n_active;
  if a.n_spare <> b.n_spare then add "n_spare %d->%d" a.n_spare b.n_spare;
  if a.spare_active_components <> b.spare_active_components then
    add "spare-active {%s}->{%s}"
      (String.concat "," a.spare_active_components)
      (String.concat "," b.spare_active_components);
  List.iter
    (fun (name, setting) ->
      match Design.setting_of a name with
      | Some prev when prev <> setting ->
          add "%s %s->%s" name
            (Mechanism.setting_to_string prev)
            (Mechanism.setting_to_string setting)
      | Some _ -> ()
      | None -> add "%s %s" name (Mechanism.setting_to_string setting))
    b.mechanism_settings;
  List.rev !changes

let annotate_step ~(prev : Candidate.t) ~(next : Candidate.t) =
  let changes =
    match design_diff prev.design next.design with
    | [] -> "same configuration"
    | l -> String.concat ", " l
  in
  let delta = Money.to_float next.cost -. Money.to_float prev.cost in
  Format.asprintf "%s: %a/yr buys %.3f->%.3f min/yr (%a->%a nines)" changes
    pp_money_delta delta
    (Duration.minutes (Candidate.downtime prev))
    (Duration.minutes (Candidate.downtime next))
    Candidate.pp_nines prev Candidate.pp_nines next
