(** Decision provenance reports (the [aved explain] subsystem).

    Assembles, for a chosen design, {e why this one}: the per-failure-mode
    downtime attribution computed by the evaluation engines
    ({!Aved_avail.Evaluate.tier_downtime_decomposition}), and {e why not
    the others}: the top runner-up candidates recovered from the search's
    {!Aved_search.Provenance} trail with their typed fates and their
    cost/downtime deltas against the winner. Renders both as human output
    and as JSON ([aved explain --json]); also annotates the cost steps of
    an availability–cost frontier ([aved frontier --explain]). *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Availability = Aved_reliability.Availability
module Design = Aved_model.Design
module Tier_model = Aved_avail.Tier_model
module Evaluate = Aved_avail.Evaluate
module Provenance = Aved_search.Provenance
module Candidate = Aved_search.Candidate

type runner_up = {
  record : Provenance.record;  (** The candidate's latest trail record. *)
  cost_delta : float;
      (** Runner-up cost minus winner cost, currency units per year;
          negative for candidates cheaper than the winner (those lost on
          feasibility, not on cost). *)
  downtime_delta : float option;
      (** Runner-up annual downtime minus the winner's, min/yr, when the
          runner-up was evaluated by an enterprise search. *)
  execution_time_delta : float option;
      (** Runner-up expected job time minus the winner's, seconds, when
          evaluated by a job search. *)
}

type tier_explanation = {
  tier_name : string;
  design : Design.tier_design;
  cost : Money.t;
  decomposition : Evaluate.decomposition;
  by_mechanism : (string option * float) list;
      (** {!Evaluate.by_mechanism} of the decomposition. *)
  mean_failed_resources : float option;
      (** Stationary mean of the failed-resource count; only the
          analytic engine exposes it. *)
  runner_ups : runner_up list;
  considered : int;
      (** Distinct designs surviving in this tier's trail ring
          (including the winner, when recorded). *)
}

type t = {
  service_name : string;
  engine : string;  (** {!engine_label} of the evaluating engine. *)
  cost : Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
  tiers : tier_explanation list;
  noted : int;  (** {!Provenance.noted} of the trail, 0 without one. *)
  dropped : int;  (** {!Provenance.dropped} of the trail. *)
}

val engine_label : Evaluate.engine -> string
(** ["analytic"] (also for the memoized variant, which is bit-identical
    engine A), ["exact"], or ["monte-carlo"]. *)

val explain_tier :
  ?top:int ->
  ?trail:Provenance.t ->
  engine:Evaluate.engine ->
  design:Design.tier_design ->
  cost:Money.t ->
  model:Tier_model.t ->
  unit ->
  tier_explanation
(** Decompose the tier's downtime through [engine] and, when a [trail]
    is given, recover its top-[top] (default 5) runner-ups: the trail's
    records for this tier are deduplicated by design keeping each
    design's latest record (its final fate), the winner itself is
    dropped, and the rest are ordered by (cost, downtime or execution
    time, description) — a deterministic order even though parallel
    searches append trail records in schedule-dependent order. *)

val winner_downtime : tier_explanation -> Duration.t
(** Annual downtime of the explained tier ([decomposition.total]). *)

val fate_sentence : Provenance.record -> string
(** Human rendering of the record's fate, e.g.
    ["dominated by tier db: ..."], ["over downtime budget by 116.880
    min/yr"]. Takes the whole record so a budget overrun can be worded
    (and unit-ed) as downtime or as execution time, whichever the record
    carries. *)

val pp : Format.formatter -> t -> unit
(** The human report: winner with per-failure-mode breakdown (min/yr,
    share, nines) and per-mechanism grouping, then runner-ups with
    fates and deltas. *)

val to_json : t -> Json.t
(** Machine form. Downtime fractions are emitted verbatim
    (round-tripping floats) so consumers can check that per-class
    contributions sum to the total within 1e-9. *)

val annotate_step : prev:Candidate.t -> next:Candidate.t -> string
(** One-line narration of a frontier step: what changed between the two
    adjacent frontier designs (resource, counts, mechanism settings) and
    what the extra spend buys, e.g.
    ["n_spare 1->2: +1300/yr buys 12.614->3.204 min/yr (4.6->5.2 nines)"].
    The previous design is the cheapest of its shape still over the
    downtime reached by [next]. *)
