(** Minimal JSON values and serializer for the machine-readable explain
    export ([aved explain --json]). Hand-rolled on purpose: the repo
    carries no JSON dependency, and emission is all the explain layer
    needs. Floats are printed with enough digits to round-trip (so
    downstream validators can check contribution sums to 1e-9);
    non-finite floats serialize as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact serialization (no insignificant whitespace). *)

val add_to_buffer : Buffer.t -> t -> unit

val of_float_option : float option -> t
(** [Float f] or [Null]. *)

val of_string_option : string option -> t
