(** Shared helpers for the specification parsers. *)

val fail : int -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Line_lexer.Error} at the given line. *)

val fail_at : Line_lexer.line -> col:int -> ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Line_lexer.Error} at a 1-based column of the given line,
    appending a caret snippet of the offending source line. *)

val duration : int -> string -> Aved_units.Duration.t
(** Parse a duration value ([650d], [2m], [0]) or fail at the line. *)

val money : int -> string -> Aved_units.Money.t
val int_value : int -> string -> int
val float_value : int -> string -> float

val mechanism_ref : string -> string option
(** [mechanism_ref "<maintenanceA>"] is [Some "maintenanceA"]. *)

val bracket_items : int -> string -> string list
(** Splits a bracketed list on commas and whitespace:
    [\[2400 2640\]] → [["2400"; "2640"]];
    [\[bronze,silver\]] → [["bronze"; "silver"]]. Fails when the value
    is not bracketed or the list is empty. *)

val guard_list : int -> string -> (string * string) list
(** Parses [k1=v1,k2=v2] argument text (used by [mperformance]). An
    empty string yields []. *)
