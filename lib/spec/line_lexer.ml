exception Error of { line : int; col : int; message : string }
(* [col] is a 1-based column; 0 means "unknown" and is omitted when the
   error is printed. *)

type attr = {
  key : string;
  key_col : int;
  args : string option;
  value : string;
  value_col : int;
}

type line = { lineno : int; text : string; attrs : attr list }

let fail lineno fmt =
  Printf.ksprintf
    (fun message -> raise (Error { line = lineno; col = 0; message }))
    fmt

let strip_comment text =
  let n = String.length text in
  let rec find i =
    if i >= n then n
    else if text.[i] = '#' then i
    else if i + 1 < n && text.[i] = '\\' && text.[i + 1] = '\\' then i
    else find (i + 1)
  in
  String.sub text 0 (find 0)

let rest_of_line_keys = [ "performance"; "mperformance" ]

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Scan one attribute starting at [i]; returns (attr, next position).
   Columns are 1-based offsets into the line as written (comments are a
   strict suffix, so offsets into the stripped text agree). *)
let scan_attr lineno text i =
  let n = String.length text in
  (* Key: up to '(' or '='. *)
  let rec key_end j =
    if j >= n then fail lineno "attribute %S lacks '='" (String.sub text i (n - i))
    else
      match text.[j] with
      | '(' | '=' -> j
      | c when is_space c ->
          fail lineno "unexpected space in attribute key near %S"
            (String.sub text i (j - i))
      | _ -> key_end (j + 1)
  in
  let ke = key_end i in
  let key = String.sub text i (ke - i) in
  if key = "" then fail lineno "empty attribute key";
  let args, eq_pos =
    if text.[ke] = '(' then begin
      (* Args: to the matching ')'. *)
      let rec close j depth =
        if j >= n then fail lineno "unterminated '(' in attribute %s" key
        else
          match text.[j] with
          | '(' -> close (j + 1) (depth + 1)
          | ')' -> if depth = 1 then j else close (j + 1) (depth - 1)
          | _ -> close (j + 1) depth
      in
      let cp = close ke 0 in
      if cp + 1 >= n || text.[cp + 1] <> '=' then
        fail lineno "expected '=' after arguments of %s" key;
      (Some (String.sub text (ke + 1) (cp - ke - 1)), cp + 1)
    end
    else (None, ke)
  in
  let vstart = eq_pos + 1 in
  if vstart > n then fail lineno "attribute %s lacks a value" key;
  let vend =
    if vstart < n && text.[vstart] = '[' then begin
      (* Bracket-balanced value. *)
      let rec close j depth =
        if j >= n then fail lineno "unterminated '[' in value of %s" key
        else
          match text.[j] with
          | '[' -> close (j + 1) (depth + 1)
          | ']' -> if depth = 1 then j + 1 else close (j + 1) (depth - 1)
          | _ -> close (j + 1) depth
      in
      close vstart 0
    end
    else if List.mem key rest_of_line_keys then n
    else begin
      let rec scan j = if j < n && not (is_space text.[j]) then scan (j + 1) else j in
      scan vstart
    end
  in
  let value = String.trim (String.sub text vstart (vend - vstart)) in
  let value_col =
    (* Column of the first significant byte of the (trimmed) value. *)
    let rec skip j = if j < vend && is_space text.[j] then skip (j + 1) else j in
    skip vstart + 1
  in
  ({ key; key_col = i + 1; args; value; value_col }, vend)

let tokenize_line lineno text =
  let n = String.length text in
  let rec loop i acc =
    if i >= n then List.rev acc
    else if is_space text.[i] then loop (i + 1) acc
    else
      let attr, next = scan_attr lineno text i in
      loop next (attr :: acc)
  in
  loop 0 []

let tokenize source =
  let raw_lines = String.split_on_char '\n' source in
  List.filteri (fun _ _ -> true) raw_lines
  |> List.mapi (fun idx text -> (idx + 1, text, strip_comment text))
  |> List.filter_map (fun (lineno, raw, text) ->
         if String.trim text = "" then None
         else Some { lineno; text = raw; attrs = tokenize_line lineno text })

let find line key = List.find_opt (fun a -> String.equal a.key key) line.attrs
let find_value line key = Option.map (fun a -> a.value) (find line key)

let leading_key line =
  match line.attrs with
  | [] -> ""
  | attr :: _ -> attr.key
