(** Lexer for the paper's attribute-value specification language.

    A specification is line-oriented. Each non-blank, non-comment line
    is a sequence of attributes:

    {v key=value   key(args)=value v}

    Comments start with [\\] (the paper's convention) or [#] and run to
    the end of the line. A value is delimited as follows: values
    starting with [\[] extend to the matching unnested [\]] (so
    [cost([inactive,active])=[2400 2640]] works); values of the
    rest-of-line keys [performance] and [mperformance] extend to the end
    of the line (so unquoted expressions work); any other value extends
    to the next whitespace. *)

exception Error of { line : int; col : int; message : string }
(** [col] is a 1-based column into the offending line, or [0] when no
    column is known (pre-existing call sites and whole-model errors). *)

type attr = {
  key : string;
  key_col : int;  (** 1-based column of the first byte of the key. *)
  args : string option;  (** The text between the parentheses, if any. *)
  value : string;
  value_col : int;
      (** 1-based column of the first significant byte of the value. *)
}

type line = {
  lineno : int;
  text : string;  (** The raw line as written, for caret snippets. *)
  attrs : attr list;
}

val tokenize : string -> line list
(** Lexes a whole specification text. Line numbers are 1-based. Raises
    {!Error} on malformed lines. *)

val find : line -> string -> attr option
(** First attribute with the given key. *)

val find_value : line -> string -> string option
val leading_key : line -> string
(** Key of the first attribute (lines are classified by it). *)
