exception Error = Line_lexer.Error

let infrastructure_of_string = Infra_parser.parse
let infrastructure_of_file = Infra_parser.parse_file
let service_of_string = Service_parser.parse
let service_of_file = Service_parser.parse_file

let load ~infra_file ~service_file =
  let infra = infrastructure_of_file infra_file in
  let service = service_of_file service_file in
  (match Aved_model.Service.validate_against service infra with
  | () -> ()
  | exception Invalid_argument message ->
      raise (Error { line = 0; col = 0; message }));
  (infra, service)

let error_to_string = function
  | Error { line; col; message } ->
      Some
        (if line = 0 then Printf.sprintf "spec error: %s" message
         else if col = 0 then
           Printf.sprintf "spec error at line %d: %s" line message
         else
           Printf.sprintf "spec error at line %d, column %d: %s" line col
             message)
  | _ -> None
