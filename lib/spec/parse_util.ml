module Duration = Aved_units.Duration
module Money = Aved_units.Money

let fail lineno fmt =
  Printf.ksprintf
    (fun message -> raise (Line_lexer.Error { line = lineno; col = 0; message }))
    fmt

(* Error with a caret snippet pointing at column [col] of the raw line.
   Used when a position inside an embedded expression is known. *)
let fail_at (line : Line_lexer.line) ~col fmt =
  Printf.ksprintf
    (fun message ->
      let text = line.text in
      let col = max 1 (min col (String.length text + 1)) in
      let message =
        Printf.sprintf "%s\n  %s\n  %s^" message text (String.make (col - 1) ' ')
      in
      raise (Line_lexer.Error { line = line.lineno; col; message }))
    fmt

let duration lineno text =
  match Duration.of_string_opt text with
  | Some d -> d
  | None -> fail lineno "expected a duration, got %S" text

let money lineno text =
  match float_of_string_opt text with
  | Some v when Float.is_finite v && v >= 0. -> Money.of_float v
  | Some _ | None -> fail lineno "expected a non-negative cost, got %S" text

let int_value lineno text =
  match int_of_string_opt text with
  | Some v -> v
  | None -> fail lineno "expected an integer, got %S" text

let float_value lineno text =
  match float_of_string_opt text with
  | Some v when Float.is_finite v -> v
  | Some _ | None -> fail lineno "expected a number, got %S" text

let mechanism_ref text =
  let n = String.length text in
  if n >= 3 && text.[0] = '<' && text.[n - 1] = '>' then
    Some (String.sub text 1 (n - 2))
  else None

let bracket_items lineno text =
  let n = String.length text in
  if n < 2 || text.[0] <> '[' || text.[n - 1] <> ']' then
    fail lineno "expected a bracketed list, got %S" text;
  let body = String.sub text 1 (n - 2) in
  let items =
    String.split_on_char ',' body
    |> List.concat_map (String.split_on_char ' ')
    |> List.concat_map (String.split_on_char '\t')
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  if items = [] then fail lineno "empty list %S" text;
  items

let guard_list lineno text =
  let text = String.trim text in
  if text = "" then []
  else
    String.split_on_char ',' text
    |> List.map (fun entry ->
           match String.index_opt entry '=' with
           | None -> fail lineno "expected key=value in guard, got %S" entry
           | Some i ->
               ( String.trim (String.sub entry 0 i),
                 String.trim
                   (String.sub entry (i + 1) (String.length entry - i - 1)) ))
