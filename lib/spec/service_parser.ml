module Model = Aved_model
module Perf_function = Aved_perf.Perf_function
module Slowdown = Aved_perf.Slowdown
open Parse_util

type option_builder = {
  o_line : int;
  o_resource : string;
  o_sizing : Model.Service.sizing;
  o_failure_scope : Model.Service.failure_scope;
  mutable o_n_active : Model.Int_range.t option;
  mutable o_performance : Perf_function.t option;
  mutable o_mechs : (string * Model.Mech_impact.case list) list; (* reversed cases *)
  mutable o_current_mech : string option;
}

type tier_builder = {
  t_name : string;
  mutable t_options : Model.Service.resource_option list; (* reversed *)
  mutable t_current : option_builder option;
}

type state = {
  mutable app_name : string option;
  mutable job_size : float option;
  mutable tiers : Model.Service.tier list; (* reversed *)
  mutable current_tier : tier_builder option;
}

let wrap_invalid lineno f =
  match f () with
  | v -> v
  | exception Invalid_argument message -> fail lineno "%s" message

let finalize_option (t : tier_builder) =
  match t.t_current with
  | None -> ()
  | Some b ->
      let n_active =
        match b.o_n_active with
        | Some r -> r
        | None -> fail b.o_line "resource option %s lacks nActive" b.o_resource
      in
      let performance =
        match b.o_performance with
        | Some p -> p
        | None ->
            fail b.o_line "resource option %s lacks performance" b.o_resource
      in
      let mech_performance =
        List.rev_map (fun (name, cases) -> (name, List.rev cases)) b.o_mechs
      in
      let option =
        wrap_invalid b.o_line (fun () ->
            Model.Service.resource_option ~resource:b.o_resource
              ~sizing:b.o_sizing ~failure_scope:b.o_failure_scope ~n_active
              ~performance ~mech_performance ())
      in
      t.t_options <- option :: t.t_options;
      t.t_current <- None

let finalize_tier state =
  match state.current_tier with
  | None -> ()
  | Some t ->
      finalize_option t;
      let tier =
        wrap_invalid 0 (fun () ->
            Model.Service.tier ~name:t.t_name ~options:(List.rev t.t_options))
      in
      state.tiers <- tier :: state.tiers;
      state.current_tier <- None

let parse_sizing lineno = function
  | "dynamic" -> Model.Service.Dynamic
  | "static" -> Model.Service.Static
  | other -> fail lineno "unknown sizing %S" other

let parse_scope lineno = function
  | "resource" -> Model.Service.Resource_scope
  | "tier" -> Model.Service.Tier_scope
  | other -> fail lineno "unknown failurescope %S" other

let parse_performance (line : Line_lexer.line) (attr : Line_lexer.attr) =
  match Perf_function.of_string_located attr.value with
  | Ok perf -> perf
  | Error { message; position = Some p } ->
      fail_at line ~col:(attr.value_col + p) "bad performance function: %s"
        message
  | Error { message; position = None } ->
      fail line.lineno "bad performance function: %s" message

let parse_slowdown (line : Line_lexer.line) (attr : Line_lexer.attr) =
  match Slowdown.of_string_located attr.value with
  | Ok s -> s
  | Error { message; position } ->
      fail_at line ~col:(attr.value_col + position) "bad mperformance: %s"
        message

let option_attr (b : option_builder) (line : Line_lexer.line)
    (attr : Line_lexer.attr) =
  match (attr.key, attr.args) with
  | "resource", _ | "sizing", _ | "failurescope", _ -> ()
  | "nActive", None -> (
      match Model.Int_range.of_string attr.value with
      | r -> b.o_n_active <- Some r
      | exception Invalid_argument message -> fail line.lineno "%s" message)
  | "performance", _ ->
      (* Arguments like (nActive) are decorative, as in the paper. *)
      b.o_performance <- Some (parse_performance line attr)
  | "mechanism", None ->
      b.o_current_mech <- Some attr.value;
      if not (List.mem_assoc attr.value b.o_mechs) then
        b.o_mechs <- (attr.value, []) :: b.o_mechs
  | "mperformance", args -> (
      match b.o_current_mech with
      | None -> fail line.lineno "mperformance before any mechanism line"
      | Some mech ->
          let guards =
            match args with
            | None -> []
            | Some text -> guard_list line.lineno text
          in
          let slowdown = parse_slowdown line attr in
          let case = Model.Mech_impact.case ~guards slowdown in
          b.o_mechs <-
            List.map
              (fun (name, cases) ->
                if String.equal name mech then (name, case :: cases)
                else (name, cases))
              b.o_mechs)
  | key, _ -> fail line.lineno "unexpected attribute %s in resource option" key

let handle_line state (line : Line_lexer.line) =
  match Line_lexer.leading_key line with
  | "application" ->
      if state.app_name <> None then
        fail line.lineno "multiple application lines";
      state.app_name <- Line_lexer.find_value line "application";
      state.job_size <-
        Option.map (float_value line.lineno)
          (Line_lexer.find_value line "jobsize")
  | "tier" ->
      finalize_tier state;
      let name =
        match Line_lexer.find_value line "tier" with
        | Some v -> v
        | None -> assert false
      in
      state.current_tier <-
        Some { t_name = name; t_options = []; t_current = None }
  | "resource" -> (
      match state.current_tier with
      | None -> fail line.lineno "resource line outside a tier"
      | Some t ->
          finalize_option t;
          let name =
            match Line_lexer.find_value line "resource" with
            | Some v -> v
            | None -> assert false
          in
          let b =
            {
              o_line = line.lineno;
              o_resource = name;
              o_sizing =
                (match Line_lexer.find_value line "sizing" with
                | Some v -> parse_sizing line.lineno v
                | None -> Model.Service.Dynamic);
              o_failure_scope =
                (match Line_lexer.find_value line "failurescope" with
                | Some v -> parse_scope line.lineno v
                | None -> Model.Service.Resource_scope);
              o_n_active = None;
              o_performance = None;
              o_mechs = [];
              o_current_mech = None;
            }
          in
          (* nActive / performance may sit on the resource line itself. *)
          List.iter (option_attr b line) line.attrs;
          t.t_current <- Some b)
  | "nActive" | "performance" | "mechanism" | "mperformance" -> (
      match state.current_tier with
      | Some { t_current = Some b; _ } ->
          List.iter (option_attr b line) line.attrs
      | Some { t_current = None; _ } | None ->
          fail line.lineno "%s line outside a resource option"
            (Line_lexer.leading_key line))
  | key -> fail line.lineno "unexpected line starting with %s" key

let parse source =
  let lines = Line_lexer.tokenize source in
  let state =
    { app_name = None; job_size = None; tiers = []; current_tier = None }
  in
  List.iter (handle_line state) lines;
  finalize_tier state;
  let name =
    match state.app_name with
    | Some n -> n
    | None ->
        raise
          (Line_lexer.Error { line = 0; col = 0; message = "no application line" })
  in
  match
    Model.Service.make ~name ?job_size:state.job_size
      ~tiers:(List.rev state.tiers) ()
  with
  | service -> service
  | exception Invalid_argument message ->
      raise (Line_lexer.Error { line = 0; col = 0; message })

let parse_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse content
