(** Facade for the specification language. *)

exception Error of { line : int; col : int; message : string }
(** Re-export of {!Line_lexer.Error} under a friendlier name. [col] is
    a 1-based column, or [0] when no column is known. *)

val infrastructure_of_string : string -> Aved_model.Infrastructure.t
val infrastructure_of_file : string -> Aved_model.Infrastructure.t
val service_of_string : string -> Aved_model.Service.t
val service_of_file : string -> Aved_model.Service.t

val load :
  infra_file:string ->
  service_file:string ->
  Aved_model.Infrastructure.t * Aved_model.Service.t
(** Parses both files and cross-validates the service against the
    infrastructure ({!Aved_model.Service.validate_against}). *)

val error_to_string : exn -> string option
(** Human-readable rendering of {!Error}; [None] for other exceptions. *)
