module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
open Parse_util

(* Builders accumulate attributes of the block being parsed. *)

type component_builder = {
  c_line : int;
  c_name : string;
  c_cost_inactive : Money.t;
  c_cost_active : Money.t;
  c_max_instances : int option;
  c_loss_window : Model.Component.loss_window_spec;
  mutable c_failures : Model.Component.failure_mode list; (* reversed *)
}

type mechanism_builder = {
  m_line : int;
  m_name : string;
  mutable m_params : Model.Mechanism.parameter list; (* reversed *)
  mutable m_cost : Money.t Model.Mechanism.binding option;
  mutable m_mttr : Duration.t Model.Mechanism.binding option;
  mutable m_loss_window : Duration.t Model.Mechanism.binding option;
}

type resource_builder = {
  r_line : int;
  r_name : string;
  r_reconfig : Duration.t;
  mutable r_elements : Model.Resource.element list; (* reversed *)
}

type block =
  | Top
  | In_component of component_builder
  | In_mechanism of mechanism_builder
  | In_resource of resource_builder

type state = {
  mutable block : block;
  mutable components : Model.Component.t list; (* reversed *)
  mutable mechanisms : Model.Mechanism.t list; (* reversed *)
  mutable resources : Model.Resource.t list; (* reversed *)
}

let wrap_invalid lineno f =
  match f () with
  | v -> v
  | exception Invalid_argument message -> fail lineno "%s" message

let finalize state =
  match state.block with
  | Top -> ()
  | In_component b ->
      let component =
        wrap_invalid b.c_line (fun () ->
            Model.Component.make ~name:b.c_name
              ~cost_inactive:b.c_cost_inactive ~cost_active:b.c_cost_active
              ?max_instances:b.c_max_instances
              ~failure_modes:(List.rev b.c_failures)
              ~loss_window:b.c_loss_window ())
      in
      state.components <- component :: state.components;
      state.block <- Top
  | In_mechanism b ->
      let cost =
        match b.m_cost with
        | Some c -> c
        | None -> fail b.m_line "mechanism %s lacks a cost" b.m_name
      in
      let mechanism =
        wrap_invalid b.m_line (fun () ->
            Model.Mechanism.make ~name:b.m_name
              ~parameters:(List.rev b.m_params) ~cost ?mttr:b.m_mttr
              ?loss_window:b.m_loss_window ())
      in
      state.mechanisms <- mechanism :: state.mechanisms;
      state.block <- Top
  | In_resource b ->
      let resource =
        wrap_invalid b.r_line (fun () ->
            Model.Resource.make ~name:b.r_name ~reconfig_time:b.r_reconfig
              ~elements:(List.rev b.r_elements) ())
      in
      state.resources <- resource :: state.resources;
      state.block <- Top

(* --- component lines ------------------------------------------------ *)

let parse_component_costs (line : Line_lexer.line) =
  match Line_lexer.find line "cost" with
  | None -> fail line.lineno "component lacks a cost attribute"
  | Some { args = None; value; _ } ->
      let c = money line.lineno value in
      (c, c)
  | Some { args = Some args; value; _ } ->
      let normalized =
        String.concat ""
          (String.split_on_char ' ' (String.lowercase_ascii args))
      in
      if normalized <> "[inactive,active]" then
        fail line.lineno "unsupported cost argument %S" args;
      (match bracket_items line.lineno value with
      | [ inactive; active ] ->
          (money line.lineno inactive, money line.lineno active)
      | items ->
          fail line.lineno "cost([inactive,active]) expects 2 values, got %d"
            (List.length items))

let parse_loss_window_spec lineno value =
  match mechanism_ref value with
  | Some mech -> Model.Component.Loss_window_by_mechanism mech
  | None -> Model.Component.Fixed_loss_window (duration lineno value)

let start_component (line : Line_lexer.line) name =
  let cost_inactive, cost_active = parse_component_costs line in
  {
    c_line = line.lineno;
    c_name = name;
    c_cost_inactive = cost_inactive;
    c_cost_active = cost_active;
    c_max_instances =
      Option.map (int_value line.lineno)
        (Line_lexer.find_value line "max_instances");
    c_loss_window =
      (match Line_lexer.find_value line "loss_window" with
      | Some value -> parse_loss_window_spec line.lineno value
      | None -> Model.Component.No_loss_window);
    c_failures = [];
  }

let parse_failure (line : Line_lexer.line) mode_name =
  let require key =
    match Line_lexer.find_value line key with
    | Some v -> v
    | None -> fail line.lineno "failure mode lacks %s" key
  in
  let repair =
    let text = require "mttr" in
    match mechanism_ref text with
    | Some mech -> Model.Component.Repair_by_mechanism mech
    | None -> Model.Component.Fixed_repair (duration line.lineno text)
  in
  wrap_invalid line.lineno (fun () ->
      Model.Component.failure_mode ~name:mode_name
        ~mtbf:(duration line.lineno (require "mtbf"))
        ~repair
        ~detect_time:
          (match Line_lexer.find_value line "detect_time" with
          | Some v -> duration line.lineno v
          | None -> Duration.zero)
        ())

(* --- mechanism lines ------------------------------------------------ *)

let parse_param (line : Line_lexer.line) pname =
  let range_text =
    match Line_lexer.find_value line "range" with
    | Some v -> v
    | None -> fail line.lineno "param %s lacks a range" pname
  in
  let range =
    (* Geometric duration range [LO-HI;*FACTOR], else an enum list. *)
    match String.index_opt range_text ';' with
    | Some _ -> (
        let n = String.length range_text in
        if n < 2 || range_text.[0] <> '[' || range_text.[n - 1] <> ']' then
          fail line.lineno "expected a bracketed range, got %S" range_text;
        let body = String.sub range_text 1 (n - 2) in
        match String.split_on_char ';' body with
        | [ bounds; step ] -> (
            let step = String.trim step in
            if String.length step < 2 || step.[0] <> '*' then
              fail line.lineno "expected a *FACTOR step, got %S" step;
            let factor =
              float_value line.lineno
                (String.sub step 1 (String.length step - 1))
            in
            match String.index_opt bounds '-' with
            | None -> fail line.lineno "expected LO-HI bounds, got %S" bounds
            | Some i ->
                let lo = duration line.lineno (String.sub bounds 0 i) in
                let hi =
                  duration line.lineno
                    (String.sub bounds (i + 1) (String.length bounds - i - 1))
                in
                Model.Mechanism.Duration_geometric { lo; hi; factor })
        | _ -> fail line.lineno "malformed geometric range %S" range_text)
    | None -> Model.Mechanism.Enum (bracket_items line.lineno range_text)
  in
  { Model.Mechanism.param_name = pname; range }

let enum_range_of (b : mechanism_builder) lineno pname =
  match
    List.find_opt
      (fun (p : Model.Mechanism.parameter) -> String.equal p.param_name pname)
      b.m_params
  with
  | Some { range = Model.Mechanism.Enum values; _ } -> values
  | Some { range = Model.Mechanism.Duration_geometric _; _ } ->
      fail lineno "parameter %s is not an enum" pname
  | None -> fail lineno "unknown parameter %s (declare params first)" pname

let parse_tabular_binding b (line : Line_lexer.line) pname value ~convert =
  let values = enum_range_of b line.lineno pname in
  let items = bracket_items line.lineno value in
  if List.length items <> List.length values then
    fail line.lineno "table for %s has %d entries but the range has %d" pname
      (List.length items) (List.length values);
  Model.Mechanism.By_enum
    { param = pname; table = List.combine values (List.map convert items) }

let mechanism_line (b : mechanism_builder) (line : Line_lexer.line) =
  List.iter
    (fun (attr : Line_lexer.attr) ->
      match (attr.key, attr.args) with
      | "param", None -> b.m_params <- parse_param line attr.value :: b.m_params
      | "range", None -> () (* consumed by parse_param *)
      | "cost", None ->
          b.m_cost <- Some (Model.Mechanism.Fixed (money line.lineno attr.value))
      | "cost", Some pname ->
          b.m_cost <-
            Some
              (parse_tabular_binding b line pname attr.value
                 ~convert:(money line.lineno))
      | "mttr", None ->
          b.m_mttr <-
            Some (Model.Mechanism.Fixed (duration line.lineno attr.value))
      | "mttr", Some pname ->
          b.m_mttr <-
            Some
              (parse_tabular_binding b line pname attr.value
                 ~convert:(duration line.lineno))
      | "loss_window", None -> (
          (* Either a literal duration or a parameter name. *)
          match Duration.of_string_opt attr.value with
          | Some d -> b.m_loss_window <- Some (Model.Mechanism.Fixed d)
          | None ->
              b.m_loss_window <- Some (Model.Mechanism.Of_param attr.value))
      | key, _ -> fail line.lineno "unexpected attribute %s in mechanism" key)
    line.attrs

(* --- driver --------------------------------------------------------- *)

let handle_line state (line : Line_lexer.line) =
  match Line_lexer.leading_key line with
  | "component" -> (
      let name =
        match Line_lexer.find_value line "component" with
        | Some v -> v
        | None -> assert false
      in
      match state.block with
      | In_resource b ->
          let depends_on =
            match Line_lexer.find_value line "depend" with
            | Some "null" | None -> None
            | Some other -> Some other
          in
          let startup =
            match Line_lexer.find_value line "startup" with
            | Some v -> duration line.lineno v
            | None -> Duration.zero
          in
          b.r_elements <-
            Model.Resource.element ~component:name ?depends_on ~startup ()
            :: b.r_elements
      | Top | In_component _ | In_mechanism _ ->
          finalize state;
          state.block <- In_component (start_component line name))
  | "failure" -> (
      match state.block with
      | In_component b ->
          let mode =
            match Line_lexer.find_value line "failure" with
            | Some v -> v
            | None -> assert false
          in
          b.c_failures <- parse_failure line mode :: b.c_failures
      | Top | In_mechanism _ | In_resource _ ->
          fail line.lineno "failure line outside a component block")
  | "mechanism" ->
      finalize state;
      let name =
        match Line_lexer.find_value line "mechanism" with
        | Some v -> v
        | None -> assert false
      in
      state.block <-
        In_mechanism
          {
            m_line = line.lineno;
            m_name = name;
            m_params = [];
            m_cost = None;
            m_mttr = None;
            m_loss_window = None;
          }
  | "resource" ->
      finalize state;
      let name =
        match Line_lexer.find_value line "resource" with
        | Some v -> v
        | None -> assert false
      in
      let reconfig =
        match Line_lexer.find_value line "reconfig_time" with
        | Some v -> duration line.lineno v
        | None -> Duration.zero
      in
      state.block <-
        In_resource
          { r_line = line.lineno; r_name = name; r_reconfig = reconfig;
            r_elements = [] }
  | "param" | "cost" | "mttr" | "loss_window" -> (
      match state.block with
      | In_mechanism b -> mechanism_line b line
      | Top | In_component _ | In_resource _ ->
          fail line.lineno "%s line outside a mechanism block"
            (Line_lexer.leading_key line))
  | key -> fail line.lineno "unexpected line starting with %s" key

let parse source =
  let lines = Line_lexer.tokenize source in
  let state = { block = Top; components = []; mechanisms = []; resources = [] } in
  List.iter (handle_line state) lines;
  finalize state;
  match
    Model.Infrastructure.make
      ~components:(List.rev state.components)
      ~mechanisms:(List.rev state.mechanisms)
      ~resources:(List.rev state.resources)
  with
  | infra -> infra
  | exception Invalid_argument message ->
      raise (Line_lexer.Error { line = 0; col = 0; message })

let parse_file path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse content
