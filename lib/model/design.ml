module Duration = Aved_units.Duration
module Money = Aved_units.Money

type tier_design = {
  tier_name : string;
  resource : string;
  n_active : int;
  n_spare : int;
  spare_active_components : string list;
  mechanism_settings : (string * Mechanism.setting) list;
}

type t = { service_name : string; tiers : tier_design list }

let tier_design ~tier_name ~resource ~n_active ?(n_spare = 0)
    ?(spare_active_components = []) ?(mechanism_settings = []) () =
  if n_active <= 0 then
    invalid_arg (Printf.sprintf "design %s: n_active=%d" tier_name n_active);
  if n_spare < 0 then
    invalid_arg (Printf.sprintf "design %s: n_spare=%d" tier_name n_spare);
  {
    tier_name;
    resource;
    n_active;
    n_spare;
    spare_active_components;
    mechanism_settings;
  }

let make ~service_name ~tiers = { service_name; tiers }

let validate_tier infra td =
  let resource = Infrastructure.resource_exn infra td.resource in
  let component_names = Resource.component_names resource in
  (* Spare modes: members exist and the set is downward-closed. *)
  List.iter
    (fun c ->
      if not (List.mem c component_names) then
        invalid_arg
          (Printf.sprintf "design %s: spare-active component %S not in %s"
             td.tier_name c td.resource))
    td.spare_active_components;
  if
    not
      (List.mem td.spare_active_components
         (Resource.downward_closed_subsets resource))
  then
    invalid_arg
      (Printf.sprintf
         "design %s: spare-active set violates dependencies of %s"
         td.tier_name td.resource);
  (* Component instance limits. *)
  let instances = td.n_active + td.n_spare in
  List.iter
    (fun (c : Component.t) ->
      match c.max_instances with
      | Some limit when instances > limit ->
          invalid_arg
            (Printf.sprintf
               "design %s: %d instances of component %s exceed limit %d"
               td.tier_name instances c.name limit)
      | Some _ | None -> ())
    (Infrastructure.resource_components infra resource);
  (* Mechanism settings: exactly the referenced mechanisms, with
     well-formed settings (checked by evaluating every bound attribute). *)
  let referenced = Infrastructure.resource_mechanisms infra resource in
  List.iter
    (fun (m : Mechanism.t) ->
      match List.assoc_opt m.name td.mechanism_settings with
      | None ->
          invalid_arg
            (Printf.sprintf "design %s: missing setting for mechanism %s"
               td.tier_name m.name)
      | Some setting ->
          ignore (Mechanism.cost_of m setting);
          ignore (Mechanism.mttr_of m setting);
          ignore (Mechanism.loss_window_of m setting))
    referenced;
  List.iter
    (fun (name, _) ->
      if
        not
          (List.exists (fun (m : Mechanism.t) -> String.equal m.name name)
             referenced)
      then
        invalid_arg
          (Printf.sprintf
             "design %s: setting for mechanism %s, which resource %s does \
              not reference"
             td.tier_name name td.resource))
    td.mechanism_settings

let validate_against t infra = List.iter (validate_tier infra) t.tiers

let setting_of td name = List.assoc_opt name td.mechanism_settings

let compare_tier a b =
  let ( <?> ) c next = if c <> 0 then c else next () in
  String.compare a.tier_name b.tier_name <?> fun () ->
  String.compare a.resource b.resource <?> fun () ->
  Int.compare a.n_active b.n_active <?> fun () ->
  Int.compare a.n_spare b.n_spare <?> fun () ->
  List.compare String.compare a.spare_active_components
    b.spare_active_components
  <?> fun () ->
  (* Settings hold strings and durations (floats): structural compare
     is total on them. *)
  Stdlib.compare a.mechanism_settings b.mechanism_settings

let resource_costs infra ~tier_name ~resource:resource_name
    ~mechanism_settings ~spare_active_components =
  let resource = Infrastructure.resource_exn infra resource_name in
  let components = Infrastructure.resource_components infra resource in
  let mechanism_cost (c : Component.t) =
    Money.sum
      (List.map
         (fun mech_name ->
           let mech = Infrastructure.mechanism_exn infra mech_name in
           match List.assoc_opt mech_name mechanism_settings with
           | Some setting -> Mechanism.cost_of mech setting
           | None ->
               invalid_arg
                 (Printf.sprintf "design %s: missing setting for mechanism %s"
                    tier_name mech_name))
         (Component.mechanism_references c))
  in
  let active_resource_cost =
    Money.sum
      (List.map
         (fun c -> Money.add (Component.cost c Component.Active) (mechanism_cost c))
         components)
  in
  let spare_resource_cost =
    Money.sum
      (List.map
         (fun (c : Component.t) ->
           let mode =
             if List.mem c.name spare_active_components then
               Component.Active
             else Component.Inactive
           in
           Money.add (Component.cost c mode) (mechanism_cost c))
         components)
  in
  (active_resource_cost, spare_resource_cost)

let tier_cost infra td =
  let active_resource_cost, spare_resource_cost =
    resource_costs infra ~tier_name:td.tier_name ~resource:td.resource
      ~mechanism_settings:td.mechanism_settings
      ~spare_active_components:td.spare_active_components
  in
  Money.add
    (Money.scale (float_of_int td.n_active) active_resource_cost)
    (Money.scale (float_of_int td.n_spare) spare_resource_cost)

let cost infra t = Money.sum (List.map (tier_cost infra) t.tiers)

let total_resources td = td.n_active + td.n_spare

let pp_tier ppf td =
  Format.fprintf ppf "tier %s: %s x%d active, %d spare%s%s" td.tier_name
    td.resource td.n_active td.n_spare
    (match td.spare_active_components with
    | [] -> ""
    | l -> " (spare-active: " ^ String.concat "," l ^ ")")
    (match td.mechanism_settings with
    | [] -> ""
    | l ->
        " "
        ^ String.concat " "
            (List.map
               (fun (name, setting) ->
                 name ^ Mechanism.setting_to_string setting)
               l))

let pp ppf t =
  Format.fprintf ppf "@[<v 2>design for %s" t.service_name;
  List.iter (fun td -> Format.fprintf ppf "@,%a" pp_tier td) t.tiers;
  Format.fprintf ppf "@]"
