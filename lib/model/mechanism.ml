module Duration = Aved_units.Duration
module Money = Aved_units.Money

type param_range =
  | Enum of string list
  | Duration_geometric of { lo : Duration.t; hi : Duration.t; factor : float }

type parameter = { param_name : string; range : param_range }
type value = Enum_value of string | Duration_value of Duration.t
type setting = (string * value) list

type 'a binding =
  | Fixed of 'a
  | By_enum of { param : string; table : (string * 'a) list }
  | Of_param of string

type t = {
  name : string;
  parameters : parameter list;
  cost : Money.t binding;
  mttr : Duration.t binding option;
  loss_window : Duration.t binding option;
}

let find_parameter parameters name =
  List.find_opt (fun p -> String.equal p.param_name name) parameters

let validate_binding ~mech ~attr parameters = function
  | Fixed _ -> ()
  | By_enum { param; table } -> (
      match find_parameter parameters param with
      | None ->
          invalid_arg
            (Printf.sprintf "mechanism %s: %s references unknown parameter %s"
               mech attr param)
      | Some { range = Duration_geometric _; _ } ->
          invalid_arg
            (Printf.sprintf
               "mechanism %s: %s indexes non-enum parameter %s by value" mech
               attr param)
      | Some { range = Enum values; _ } ->
          List.iter
            (fun v ->
              if not (List.mem_assoc v table) then
                invalid_arg
                  (Printf.sprintf
                     "mechanism %s: %s table misses value %s of parameter %s"
                     mech attr v param))
            values)
  | Of_param param -> (
      match find_parameter parameters param with
      | None ->
          invalid_arg
            (Printf.sprintf "mechanism %s: %s references unknown parameter %s"
               mech attr param)
      | Some { range = Enum _; _ } ->
          invalid_arg
            (Printf.sprintf
               "mechanism %s: %s equates a non-duration parameter %s" mech attr
               param)
      | Some { range = Duration_geometric _; _ } -> ())

let make ~name ~parameters ~cost ?mttr ?loss_window () =
  let names = List.map (fun p -> p.param_name) parameters in
  if List.length (List.sort_uniq String.compare names) <> List.length names
  then invalid_arg (Printf.sprintf "mechanism %s: duplicate parameter" name);
  List.iter
    (fun p ->
      match p.range with
      | Enum [] ->
          invalid_arg
            (Printf.sprintf "mechanism %s: parameter %s has empty range" name
               p.param_name)
      | Enum _ -> ()
      | Duration_geometric { lo; hi; factor } ->
          if
            Duration.is_zero lo
            || Duration.compare lo hi > 0
            || factor <= 1.
          then
            invalid_arg
              (Printf.sprintf "mechanism %s: parameter %s has bad range" name
                 p.param_name))
    parameters;
  (match cost with
  | Of_param _ ->
      invalid_arg
        (Printf.sprintf "mechanism %s: cost cannot equal a duration parameter"
           name)
  | Fixed _ | By_enum _ -> ());
  validate_binding ~mech:name ~attr:"cost" parameters cost;
  Option.iter (validate_binding ~mech:name ~attr:"mttr" parameters) mttr;
  Option.iter
    (validate_binding ~mech:name ~attr:"loss_window" parameters)
    loss_window;
  { name; parameters; cost; mttr; loss_window }

let param_values p =
  match p.range with
  | Enum values -> List.map (fun v -> Enum_value v) values
  | Duration_geometric { lo; hi; factor } ->
      let hi_s = Duration.seconds hi in
      let rec loop v acc =
        if Duration.seconds v >= hi_s then List.rev (Duration_value hi :: acc)
        else loop (Duration.scale factor v) (Duration_value v :: acc)
      in
      loop lo []

let duration_parameters t =
  List.filter
    (fun p ->
      match p.range with Duration_geometric _ -> true | Enum _ -> false)
    t.parameters

let enum_parameters t =
  List.filter
    (fun p -> match p.range with Enum _ -> true | Duration_geometric _ -> false)
    t.parameters

let first_setting t =
  List.map
    (fun p ->
      match param_values p with
      | v :: _ -> (p.param_name, v)
      | [] -> invalid_arg (Printf.sprintf "mechanism %s: empty range" t.name))
    t.parameters

let settings t =
  let rec product = function
    | [] -> [ [] ]
    | p :: rest ->
        let tails = product rest in
        List.concat_map
          (fun v -> List.map (fun tail -> (p.param_name, v) :: tail) tails)
          (param_values p)
  in
  product t.parameters

let lookup_value t setting param =
  match List.assoc_opt param setting with
  | Some v -> v
  | None ->
      invalid_arg
        (Printf.sprintf "mechanism %s: setting misses parameter %s" t.name
           param)

let eval_binding t setting = function
  | Fixed v -> v
  | By_enum { param; table } -> (
      match lookup_value t setting param with
      | Enum_value v -> (
          match List.assoc_opt v table with
          | Some r -> r
          | None ->
              invalid_arg
                (Printf.sprintf "mechanism %s: no table entry for %s=%s" t.name
                   param v))
      | Duration_value _ ->
          invalid_arg
            (Printf.sprintf "mechanism %s: parameter %s is not an enum" t.name
               param))
  | Of_param _ -> assert false (* handled by the duration-specific path *)

let eval_duration_binding t setting = function
  | Of_param param -> (
      match lookup_value t setting param with
      | Duration_value d -> d
      | Enum_value v ->
          invalid_arg
            (Printf.sprintf "mechanism %s: parameter %s=%s is not a duration"
               t.name param v))
  | (Fixed _ | By_enum _) as binding -> eval_binding t setting binding

let cost_of t setting =
  match t.cost with
  | Of_param _ ->
      invalid_arg (Printf.sprintf "mechanism %s: cost cannot be Of_param" t.name)
  | binding -> eval_binding t setting binding

let mttr_of t setting =
  Option.map (eval_duration_binding t setting) t.mttr

let loss_window_of t setting =
  Option.map (eval_duration_binding t setting) t.loss_window

let value_to_string = function
  | Enum_value v -> v
  | Duration_value d -> Duration.to_string d

let setting_to_string setting =
  match setting with
  | [] -> "()"
  | _ ->
      "("
      ^ String.concat ", "
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%s" k (value_to_string v))
             setting)
      ^ ")"

let pp_setting ppf setting =
  Format.pp_print_string ppf (setting_to_string setting)
