(** Availability mechanisms (paper §3.1.2).

    A mechanism is a configurable operator that sets or modifies other
    attributes of the design — e.g. a maintenance contract whose [level]
    parameter determines component repair times, or a checkpoint-restart
    mechanism whose [checkpoint_interval] parameter determines the loss
    window. Mechanisms are described separately from components and bound
    to them at design time. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

(** The domain of one configuration parameter. *)
type param_range =
  | Enum of string list
      (** e.g. [level] in {bronze, silver, gold, platinum}, or
          [storage_location] in {central, peer}. *)
  | Duration_geometric of {
      lo : Duration.t;
      hi : Duration.t;
      factor : float;
    }
      (** e.g. [checkpoint_interval] in [[1m, 24h; *1.05]]: the values
          lo, lo·f, lo·f², … up to hi (hi always included). *)

type parameter = { param_name : string; range : param_range }

(** The chosen value of one parameter. *)
type value = Enum_value of string | Duration_value of Duration.t

type setting = (string * value) list
(** One chosen value per parameter, in declaration order. *)

(** How an attribute of the mechanism depends on its parameters. *)
type 'a binding =
  | Fixed of 'a
  | By_enum of { param : string; table : (string * 'a) list }
      (** Table indexed by an enum parameter, e.g.
          [mttr(level)=[38h 15h 8h 6h]]. *)
  | Of_param of string
      (** The attribute equals a duration parameter, e.g.
          [loss_window=checkpoint_interval]. *)

type t = {
  name : string;
  parameters : parameter list;
  cost : Money.t binding;  (** Annual cost per component instance covered. *)
  mttr : Duration.t binding option;
      (** Present when the mechanism determines repair time. *)
  loss_window : Duration.t binding option;
      (** Present when the mechanism determines the loss window. *)
}

val make :
  name:string ->
  parameters:parameter list ->
  cost:Money.t binding ->
  ?mttr:Duration.t binding ->
  ?loss_window:Duration.t binding ->
  unit ->
  t
(** Validates that every [By_enum]/[Of_param] binding references a
    declared parameter of the right kind and covers its whole range.
    Raises [Invalid_argument] otherwise. *)

val param_values : parameter -> value list
(** All values of a parameter (a geometric duration range is enumerated,
    endpoint included). *)

val duration_parameters : t -> parameter list
(** The duration-valued parameters, in declaration order. Their names
    are the variables an [mperformance] expression may use (bound in
    minutes — the paper's [cpi] convention). *)

val enum_parameters : t -> parameter list
(** The enum-valued parameters, in declaration order. Their names are
    the legal [mperformance] guard keys. *)

val first_setting : t -> setting
(** The first value of every parameter — a canonical configuration,
    used by the static checker to instantiate one representative CTMC
    per design option. *)

val settings : t -> setting list
(** The cartesian product of all parameter ranges — every configuration
    of the mechanism. Singleton [[]] for a parameterless mechanism. *)

val cost_of : t -> setting -> Money.t
(** Raises [Invalid_argument] when the setting does not match the
    mechanism's parameters. *)

val mttr_of : t -> setting -> Duration.t option
val loss_window_of : t -> setting -> Duration.t option

val setting_to_string : setting -> string
val pp_setting : Format.formatter -> setting -> unit
