(** A fully resolved design (paper §4): every choice in the design space
    is fixed, so cost and availability can be evaluated. *)

module Duration = Aved_units.Duration
module Money = Aved_units.Money

type tier_design = {
  tier_name : string;
  resource : string;  (** Chosen resource type. *)
  n_active : int;
  n_spare : int;
  spare_active_components : string list;
      (** Components kept in [Active] operational mode in each spare
          resource; must be downward-closed under the resource's
          dependencies. Everything else in a spare is [Inactive]. *)
  mechanism_settings : (string * Mechanism.setting) list;
      (** One setting per mechanism referenced by the resource's
          components. *)
}

type t = { service_name : string; tiers : tier_design list }

val tier_design :
  tier_name:string ->
  resource:string ->
  n_active:int ->
  ?n_spare:int ->
  ?spare_active_components:string list ->
  ?mechanism_settings:(string * Mechanism.setting) list ->
  unit ->
  tier_design
(** Raises [Invalid_argument] when [n_active <= 0] or [n_spare < 0]. *)

val make : service_name:string -> tiers:tier_design list -> t

val validate_against : t -> Infrastructure.t -> unit
(** Checks resource existence, spare-mode downward-closure, component
    [max_instances] bounds, and that mechanism settings cover exactly
    the mechanisms the resource references with values in range.
    Raises [Invalid_argument] otherwise. *)

val resource_costs :
  Infrastructure.t ->
  tier_name:string ->
  resource:string ->
  mechanism_settings:(string * Mechanism.setting) list ->
  spare_active_components:string list ->
  Money.t * Money.t
(** Per-resource annual cost of one active resource and of one spare
    resource, under the given mechanism settings and spare-active set.
    [tier_cost] is [n_active] × the first plus [n_spare] × the second;
    exposed so the search can price a candidate without materializing a
    [tier_design]. Raises [Invalid_argument] on a missing mechanism
    setting, naming [tier_name]. *)

val tier_cost : Infrastructure.t -> tier_design -> Money.t
(** Annual cost of the tier: active resources at active component costs,
    spares at their per-component operational modes, plus mechanism
    costs once per component instance referencing the mechanism
    (so a maintenance contract scales with the number of machines it
    covers, spares included — the paper's proportionality). *)

val cost : Infrastructure.t -> t -> Money.t

val setting_of : tier_design -> string -> Mechanism.setting option
(** The chosen setting of the named mechanism, if any. *)

val compare_tier : tier_design -> tier_design -> int
(** A total order on tier designs (structural, by field). The search
    uses it as the final tie-break after cost and downtime so that
    parallel and sequential runs select the same design when several
    candidates are otherwise indistinguishable. *)

val total_resources : tier_design -> int
val pp_tier : Format.formatter -> tier_design -> unit
val pp : Format.formatter -> t -> unit
