(** A shared best-cost bound for pruning parallel searches.

    The incumbent holds a monotonically decreasing float (the cost of
    the best feasible design any worker has found so far, [infinity]
    initially) behind an [Atomic.t] updated with a compare-and-set
    loop. Workers prune work that cannot beat the bound.

    Determinism contract: because proposals only ever lower the bound
    and every proposal is the cost of a real feasible design, the bound
    observed by any worker at any time is an upper bound on the final
    optimum's cost. Pruning strictly-costlier work against it therefore
    never removes a potential optimum, whatever the interleaving —
    searches that keep candidates costing [<=] the bound and break ties
    with a total order return schedule-independent results. *)

type t

val create : unit -> t
(** A fresh bound at [infinity]. *)

val get : t -> float
(** The current bound. *)

val propose : t -> float -> unit
(** [propose t c] lowers the bound to [c] if [c] is smaller; no-op
    otherwise. Lock-free. *)
