(** A hand-rolled work pool on OCaml 5 domains.

    The pool owns [jobs - 1] worker domains draining a bounded FIFO work
    queue (Mutex/Condition); the caller of {!map} participates as the
    [jobs]-th worker, so a pool with [jobs = 1] degenerates to plain
    sequential iteration and never spawns a domain.

    {!map} is deterministic by construction: results land in a slot
    array indexed by input position and are returned in input order, no
    matter which domain computed them or when ("deterministic result
    merge"). Tasks therefore must not rely on evaluation order; shared
    state is restricted to monotone pruning hints (see {!Incumbent}).

    Nested calls are supported: a task running on a worker may itself
    call {!map} on the same pool. The inner call pushes its sub-tasks
    and then helps drain the queue until they complete, so progress is
    guaranteed even when every worker is busy. When the queue is full,
    {!map} runs tasks inline instead of blocking, which bounds the
    queue without risking deadlock. *)

type t

val create : jobs:int -> t
(** [create ~jobs] spawns [jobs - 1] worker domains ([jobs >= 1];
    raises [Invalid_argument] otherwise). *)

val jobs : t -> int
(** The degree of parallelism the pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs], distributing the
    calls over the pool's domains, and returns the results in input
    order. With [jobs t = 1] this is exactly [List.map f xs]. If one or
    more applications raise, the exception of the smallest input index
    is re-raised after the whole batch has settled. *)

val shutdown : t -> unit
(** Signals the workers to exit once the queue drains and joins them.
    The pool must not be used afterwards. Idempotent. *)

val run : jobs:int -> (t -> 'a) -> 'a
(** [run ~jobs f] creates a pool, applies [f], and always shuts the
    pool down, even when [f] raises. *)
