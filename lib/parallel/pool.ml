module Telemetry = Aved_telemetry.Telemetry

let tasks_queued = Telemetry.Counter.make "parallel.tasks.queued"
let tasks_inline = Telemetry.Counter.make "parallel.tasks.inline"
let tasks_executed = Telemetry.Counter.make "parallel.tasks.executed"

type task = unit -> unit

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  queue : task Queue.t;
  capacity : int;
  jobs : int;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.jobs

(* Worker loop: drain the queue until the pool closes. Tasks never
   raise — {!map} wraps user functions in a result capture — so a
   worker cannot die early and strand a batch. *)
let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.not_empty t.mutex
  done;
  match Queue.take_opt t.queue with
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t
  | None ->
      (* Empty and closed. *)
      Mutex.unlock t.mutex

let create ~jobs =
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      queue = Queue.create ();
      capacity = Stdlib.max 64 (jobs * 16);
      jobs;
      closed = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let run ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Push a task; when the queue is at capacity, run the task inline
   rather than blocking — the caller is itself a worker, so blocking on
   a full queue could deadlock a nested [map]. *)
let push t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is shut down"
  end
  else if Queue.length t.queue < t.capacity then begin
    Queue.push task t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    Telemetry.Counter.incr tasks_queued
  end
  else begin
    Mutex.unlock t.mutex;
    Telemetry.Counter.incr tasks_inline;
    task ()
  end

let map t f xs =
  if t.jobs <= 1 then List.map f xs
  else
    match xs with
    | [] -> []
    | [ x ] -> [ f x ]
    | _ ->
        let inputs = Array.of_list xs in
        let n = Array.length inputs in
        let results = Array.make n None in
        let remaining = Atomic.make n in
        let batch_mutex = Mutex.create () in
        let batch_done = Condition.create () in
        (* Tasks adopt the spawning request's trace context: whatever
           domain (or helping caller from another batch) executes a
           slot installs this batch's context for the task's duration,
           so spans recorded inside land in the right request's tree. *)
        let trace_ctx = Telemetry.Trace.current () in
        let run_slot i =
          (* Sharded by the executing domain, so the per-shard readout
             of this counter is the pool's per-domain utilization. *)
          Telemetry.Counter.incr tasks_executed;
          let r =
            try
              Ok (Telemetry.Trace.with_context trace_ctx (fun () -> f inputs.(i)))
            with e -> Error e
          in
          results.(i) <- Some r;
          if Atomic.fetch_and_add remaining (-1) = 1 then begin
            Mutex.lock batch_mutex;
            Condition.broadcast batch_done;
            Mutex.unlock batch_mutex
          end
        in
        for i = 1 to n - 1 do
          push t (fun () -> run_slot i)
        done;
        run_slot 0;
        (* Participate: drain queued tasks (ours or another batch's)
           until every slot of this batch has settled, then wait out any
           straggler still running on a worker. *)
        let rec help () =
          if Atomic.get remaining > 0 then begin
            Mutex.lock t.mutex;
            match Queue.take_opt t.queue with
            | Some task ->
                Mutex.unlock t.mutex;
                task ();
                help ()
            | None ->
                Mutex.unlock t.mutex;
                Mutex.lock batch_mutex;
                while Atomic.get remaining > 0 do
                  Condition.wait batch_done batch_mutex
                done;
                Mutex.unlock batch_mutex
          end
        in
        help ();
        Array.to_list
          (Array.map
             (function
               | Some (Ok v) -> v
               | Some (Error e) -> raise e
               | None -> assert false)
             results)
