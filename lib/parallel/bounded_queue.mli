(** A bounded multi-producer/multi-consumer FIFO queue.

    The server's admission queue: connection readers push requests with
    {!try_push}, which never blocks — when the queue is at capacity the
    push is refused and the caller sheds the request with an explicit
    backpressure response instead of stalling the socket. Dispatcher
    threads block in {!pop} until an element or {!close} arrives.

    Safe across systhreads and domains (a single [Mutex]/[Condition]
    pair guards the queue; the hot path is one lock acquisition). *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty queue holding at most [capacity]
    elements ([capacity >= 1]; raises [Invalid_argument] otherwise). *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Current depth (racy by nature; exact at the instant of the read). *)

val try_push : 'a t -> 'a -> bool
(** [try_push t x] enqueues [x] and returns [true], or returns [false]
    without blocking when the queue is full or closed. *)

val pop : 'a t -> 'a option
(** Blocks until an element is available and dequeues it. Returns
    [None] once the queue is closed {e and} drained — elements pushed
    before {!close} are still delivered. *)

val close : 'a t -> unit
(** Refuse further pushes and wake every blocked {!pop}. Idempotent. *)

val closed : 'a t -> bool
