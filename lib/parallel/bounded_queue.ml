type 'a t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  queue : 'a Queue.t;
  capacity : int;
  mutable is_closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    not_empty = Condition.create ();
    queue = Queue.create ();
    capacity;
    is_closed = false;
  }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let try_push t x =
  Mutex.lock t.mutex;
  let accepted =
    (not t.is_closed) && Queue.length t.queue < t.capacity
  in
  if accepted then begin
    Queue.push x t.queue;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.mutex;
  accepted

let pop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.is_closed do
    Condition.wait t.not_empty t.mutex
  done;
  let x = Queue.take_opt t.queue in
  Mutex.unlock t.mutex;
  x

let close t =
  Mutex.lock t.mutex;
  t.is_closed <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex

let closed t =
  Mutex.lock t.mutex;
  let c = t.is_closed in
  Mutex.unlock t.mutex;
  c
