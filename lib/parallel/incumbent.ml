module Telemetry = Aved_telemetry.Telemetry

let proposals = Telemetry.Counter.make "parallel.incumbent.proposals"
let improvements = Telemetry.Counter.make "parallel.incumbent.improvements"
let cas_retries = Telemetry.Counter.make "parallel.incumbent.cas_retries"

type t = float Atomic.t

let create () = Atomic.make Float.infinity
let get = Atomic.get

let propose t c =
  Telemetry.Counter.incr proposals;
  let rec attempt () =
    let current = Atomic.get t in
    if c < current then
      if Atomic.compare_and_set t current c then
        Telemetry.Counter.incr improvements
      else begin
        Telemetry.Counter.incr cas_retries;
        attempt ()
      end
  in
  attempt ()
