type t = float Atomic.t

let create () = Atomic.make Float.infinity
let get = Atomic.get

let rec propose t c =
  let current = Atomic.get t in
  if c < current && not (Atomic.compare_and_set t current c) then propose t c
