module Duration = Aved_units.Duration
module Money = Aved_units.Money
module Model = Aved_model
module Search = Aved_search
module Pool = Aved_parallel.Pool
module Telemetry = Aved_telemetry.Telemetry

(* Per-point spans are labelled by load/requirement so a Chrome trace
   shows which sweep points dominate; the label is only built when a
   registry is recording. *)
let with_point_span fmt value body =
  if Telemetry.enabled () then
    Telemetry.with_span (Printf.sprintf fmt value) body
  else body ()

type fig6_point = {
  load : float;
  family : string;
  downtime_minutes : float;
  annual_cost : float;
  n_active : int;
}

type fig7_point = {
  requirement_hours : float;
  resource : string;
  n_resources : int;
  n_spares : int;
  checkpoint_interval_hours : float;
  storage_location : string;
  predicted_hours : float;
  annual_cost : float;
}

type fig8_point = {
  load : float;
  downtime_requirement_minutes : float;
  extra_annual_cost : float;
}

let log_spaced ~lo ~hi ~count =
  if count < 2 || lo <= 0. || hi < lo then
    invalid_arg "Figures.log_spaced: bad arguments";
  let ratio = Float.pow (hi /. lo) (1. /. float_of_int (count - 1)) in
  List.init count (fun i -> lo *. Float.pow ratio (float_of_int i))

let default_fig6_loads = List.init 24 (fun i -> 400. +. (200. *. float_of_int i))
let default_fig7_requirements = log_spaced ~lo:1. ~hi:1000. ~count:24
let default_fig8_loads = [ 400.; 800.; 1600.; 3200. ]
let default_fig8_downtimes = log_spaced ~lo:0.1 ~hi:100. ~count:16

(* ------------------------------------------------------------------ *)
(* Fig. 6 *)

let fig6 ?(config = Search.Search_config.default)
    ?(loads = default_fig6_loads) () =
  Telemetry.with_span "figures.fig6" @@ fun () ->
  let infra = Experiments.infrastructure () in
  let tier = Experiments.application_tier () in
  Pool.run ~jobs:config.Search.Search_config.jobs @@ fun pool ->
  List.concat
    (Pool.map pool
       (fun load ->
         let frontier =
           with_point_span "fig6.load:%.0f" load @@ fun () ->
           Search.Tier_search.frontier ~pool config infra ~tier ~demand:load
         in
         List.map
           (fun (c : Search.Candidate.t) ->
             {
               load;
               family =
                 Search.Candidate.family c
                   ~n_min_nominal:c.model.Aved_avail.Tier_model.n_min;
               downtime_minutes =
                 Duration.minutes (Search.Candidate.downtime c);
               annual_cost = Money.to_float c.cost;
               n_active = c.design.Model.Design.n_active;
             })
           frontier)
       loads)

(* ------------------------------------------------------------------ *)
(* Fig. 7 *)

let checkpoint_choice (design : Model.Design.tier_design) =
  match Model.Design.setting_of design "checkpoint" with
  | None -> (Duration.zero, "-")
  | Some setting ->
      let interval =
        match List.assoc_opt "checkpoint_interval" setting with
        | Some (Model.Mechanism.Duration_value d) -> d
        | Some (Model.Mechanism.Enum_value _) | None -> Duration.zero
      in
      let location =
        match List.assoc_opt "storage_location" setting with
        | Some (Model.Mechanism.Enum_value v) -> v
        | Some (Model.Mechanism.Duration_value _) | None -> "-"
      in
      (interval, location)

let fig7 ?(config = Experiments.fig7_config)
    ?(requirements_hours = default_fig7_requirements) () =
  Telemetry.with_span "figures.fig7" @@ fun () ->
  let infra = Experiments.infrastructure_bronze () in
  let tier = Experiments.computation_tier () in
  Pool.run ~jobs:config.Search.Search_config.jobs @@ fun pool ->
  List.filter_map Fun.id
  @@ Pool.map pool
       (fun requirement_hours ->
         let max_time = Duration.of_hours requirement_hours in
         match
           with_point_span "fig7.req:%.2fh" requirement_hours @@ fun () ->
           Search.Job_search.optimal ~pool config infra ~tier
             ~job_size:Experiments.scientific_job_size ~max_time
         with
         | None -> None
         | Some c ->
             let interval, location = checkpoint_choice c.design in
             Some
               {
                 requirement_hours;
                 resource = c.design.Model.Design.resource;
                 n_resources = c.design.Model.Design.n_active;
                 n_spares = c.design.Model.Design.n_spare;
                 checkpoint_interval_hours = Duration.hours interval;
                 storage_location = location;
                 predicted_hours = Duration.hours c.execution_time;
                 annual_cost = Money.to_float c.cost;
               })
       requirements_hours

(* ------------------------------------------------------------------ *)
(* Fig. 8 *)

let fig8 ?(config = Search.Search_config.default)
    ?(loads = default_fig8_loads)
    ?(downtimes_minutes = default_fig8_downtimes) () =
  Telemetry.with_span "figures.fig8" @@ fun () ->
  let infra = Experiments.infrastructure () in
  let tier = Experiments.application_tier () in
  Pool.run ~jobs:config.Search.Search_config.jobs @@ fun pool ->
  List.concat
  @@ Pool.map pool
       (fun load ->
         let frontier =
           with_point_span "fig8.load:%.0f" load @@ fun () ->
           Search.Tier_search.frontier ~pool config infra ~tier ~demand:load
         in
         match frontier with
         | [] -> []
         | cheapest :: _ ->
             let baseline = Money.to_float cheapest.Search.Candidate.cost in
             List.filter_map
               (fun req_minutes ->
                 let limit =
                   Duration.minutes (Duration.of_minutes req_minutes)
                 in
                 (* Frontier is sorted by increasing cost and decreasing
                    downtime: the first point within the limit is optimal. *)
                 List.find_opt
                   (fun (c : Search.Candidate.t) ->
                     Duration.minutes (Search.Candidate.downtime c) <= limit)
                   frontier
                 |> Option.map (fun (c : Search.Candidate.t) ->
                        {
                          load;
                          downtime_requirement_minutes = req_minutes;
                          extra_annual_cost =
                            Money.to_float c.cost -. baseline;
                        }))
               downtimes_minutes)
       loads

(* ------------------------------------------------------------------ *)
(* Printing *)

let print_table1 ppf =
  Format.fprintf ppf "@[<v>Table 1: performance functions@,%s@," (String.make 72 '-');
  List.iter
    (fun (where, attr, fn) ->
      Format.fprintf ppf "%-18s %-28s %s@," where attr fn)
    Experiments.table1;
  Format.fprintf ppf "@]"

let print_fig6 ppf points =
  Format.fprintf ppf
    "@[<v>Fig. 6: optimal design families (load, family, downtime min/yr, \
     cost/yr)@,%s@,"
    (String.make 84 '-');
  List.iter
    (fun (p : fig6_point) ->
      Format.fprintf ppf "load=%5.0f  %-44s  %10.3f  %10.0f@," p.load p.family
        p.downtime_minutes p.annual_cost)
    points;
  Format.fprintf ppf "@]"

let print_fig7 ppf points =
  Format.fprintf ppf
    "@[<v>Fig. 7: scientific application optimal design vs execution-time \
     requirement@,%s@,"
    (String.make 96 '-');
  Format.fprintf ppf
    "%12s %-9s %5s %7s %12s %9s %11s %11s@," "req (h)" "resource" "n"
    "spares" "ckpt (h)" "storage" "pred (h)" "cost/yr";
  List.iter
    (fun (p : fig7_point) ->
      Format.fprintf ppf
        "%12.2f %-9s %5d %7d %12.3f %9s %11.2f %11.0f@," p.requirement_hours
        p.resource p.n_resources p.n_spares p.checkpoint_interval_hours
        p.storage_location p.predicted_hours p.annual_cost)
    points;
  Format.fprintf ppf "@]"

let print_fig8 ppf points =
  Format.fprintf ppf
    "@[<v>Fig. 8: extra annual cost of availability vs downtime requirement@,%s@,"
    (String.make 64 '-');
  Format.fprintf ppf "%10s %18s %18s@," "load" "downtime req (min)"
    "extra cost/yr";
  List.iter
    (fun (p : fig8_point) ->
      Format.fprintf ppf "%10.0f %18.2f %18.0f@," p.load
        p.downtime_requirement_minutes p.extra_annual_cost)
    points;
  Format.fprintf ppf "@]"
