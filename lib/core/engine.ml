module Duration = Aved_units.Duration
module Model = Aved_model
module Search = Aved_search

type report = Search.Service_search.report = {
  design : Model.Design.t;
  cost : Aved_units.Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
}

let design ?(config = Search.Search_config.default) ?jobs ?pool infra service
    requirements =
  let config =
    match jobs with
    | None -> config
    | Some jobs -> Search.Search_config.with_jobs jobs config
  in
  Model.Service.validate_against service infra;
  Search.Service_search.design ?pool config infra service requirements

let design_from_files ?config ?jobs ~infra_file ~service_file requirements =
  let infra, service = Aved_spec.Spec.load ~infra_file ~service_file in
  design ?config ?jobs infra service requirements

let evaluate_design infra service (d : Model.Design.t) ~demand =
  List.map
    (fun (td : Model.Design.tier_design) ->
      match Model.Service.find_tier service td.tier_name with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine.evaluate_design: unknown tier %s"
               td.tier_name)
      | Some tier -> (
          match
            List.find_opt
              (fun (o : Model.Service.resource_option) ->
                String.equal o.resource td.resource)
              tier.options
          with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Engine.evaluate_design: tier %s offers no resource %s"
                   td.tier_name td.resource)
          | Some option -> Aved_avail.Tier_model.build ~infra ~option ~design:td ~demand))
    d.tiers

(* Assemble the decision-provenance explanation for a finished design
   run. Shared by [aved explain --json], the human explain report and
   the server's [explain] verb, so every front end attributes downtime
   identically. *)
let explain ?top ?trail ~config infra (service : Model.Service.t) requirements
    (report : report) =
  let demand =
    match requirements with
    | Model.Requirements.Enterprise { throughput; _ } -> Some throughput
    | Model.Requirements.Finite_job _ -> None
  in
  let models = evaluate_design infra service report.design ~demand in
  let engine = config.Search.Search_config.engine in
  {
    Aved_explain.Explain.service_name = service.Model.Service.service_name;
    engine = Aved_explain.Explain.engine_label engine;
    cost = report.cost;
    downtime = report.downtime;
    execution_time = report.execution_time;
    tiers =
      List.map2
        (fun (td : Model.Design.tier_design) model ->
          Aved_explain.Explain.explain_tier ?top ?trail ~engine ~design:td
            ~cost:(Model.Design.tier_cost infra td)
            ~model ())
        report.design.Model.Design.tiers models;
    noted =
      (match trail with Some t -> Search.Provenance.noted t | None -> 0);
    dropped =
      (match trail with Some t -> Search.Provenance.dropped t | None -> 0);
  }

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>%a@,annual cost: %a" Model.Design.pp r.design
    Aved_units.Money.pp r.cost;
  (match r.downtime with
  | Some d ->
      Format.fprintf ppf "@,predicted annual downtime: %.2f min"
        (Duration.minutes d)
  | None -> ());
  (match r.execution_time with
  | Some t ->
      Format.fprintf ppf "@,predicted job completion: %.2f h"
        (Duration.hours t)
  | None -> ());
  Format.fprintf ppf "@]"
