module Duration = Aved_units.Duration
module Model = Aved_model
module Search = Aved_search

type report = Search.Service_search.report = {
  design : Model.Design.t;
  cost : Aved_units.Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
}

let design ?(config = Search.Search_config.default) ?jobs infra service
    requirements =
  let config =
    match jobs with
    | None -> config
    | Some jobs -> Search.Search_config.with_jobs jobs config
  in
  Model.Service.validate_against service infra;
  Search.Service_search.design config infra service requirements

let design_from_files ?config ?jobs ~infra_file ~service_file requirements =
  let infra, service = Aved_spec.Spec.load ~infra_file ~service_file in
  design ?config ?jobs infra service requirements

let evaluate_design infra service (d : Model.Design.t) ~demand =
  List.map
    (fun (td : Model.Design.tier_design) ->
      match Model.Service.find_tier service td.tier_name with
      | None ->
          invalid_arg
            (Printf.sprintf "Engine.evaluate_design: unknown tier %s"
               td.tier_name)
      | Some tier -> (
          match
            List.find_opt
              (fun (o : Model.Service.resource_option) ->
                String.equal o.resource td.resource)
              tier.options
          with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Engine.evaluate_design: tier %s offers no resource %s"
                   td.tier_name td.resource)
          | Some option -> Aved_avail.Tier_model.build ~infra ~option ~design:td ~demand))
    d.tiers

let pp_report ppf (r : report) =
  Format.fprintf ppf "@[<v>%a@,annual cost: %a" Model.Design.pp r.design
    Aved_units.Money.pp r.cost;
  (match r.downtime with
  | Some d ->
      Format.fprintf ppf "@,predicted annual downtime: %.2f min"
        (Duration.minutes d)
  | None -> ());
  (match r.execution_time with
  | Some t ->
      Format.fprintf ppf "@,predicted job completion: %.2f h"
        (Duration.hours t)
  | None -> ());
  Format.fprintf ppf "@]"
