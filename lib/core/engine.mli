(** The Aved engine: the top-level entry points of the library.

    Takes a design-space model (infrastructure + service) and service
    requirements, searches the design space, and returns the
    minimum-cost design that satisfies the requirements together with
    its predicted cost and availability (paper Fig. 1). *)

module Duration = Aved_units.Duration

type report = Aved_search.Service_search.report = {
  design : Aved_model.Design.t;
  cost : Aved_units.Money.t;
  downtime : Duration.t option;
  execution_time : Duration.t option;
}

val design :
  ?config:Aved_search.Search_config.t ->
  ?jobs:int ->
  ?pool:Aved_parallel.Pool.t ->
  Aved_model.Infrastructure.t ->
  Aved_model.Service.t ->
  Aved_model.Requirements.t ->
  report option
(** Minimum-cost design meeting the requirements, or [None]. [jobs]
    overrides [config.jobs] (number of search domains; the result is
    bit-identical for every value). [pool] reuses an existing domain
    pool instead of spawning one per call — the serving daemon passes
    its long-lived pool here. *)

val design_from_files :
  ?config:Aved_search.Search_config.t ->
  ?jobs:int ->
  infra_file:string ->
  service_file:string ->
  Aved_model.Requirements.t ->
  report option
(** Parses and cross-validates the two specification files first.
    Raises {!Aved_spec.Spec.Error} on malformed specifications. *)

val evaluate_design :
  Aved_model.Infrastructure.t ->
  Aved_model.Service.t ->
  Aved_model.Design.t ->
  demand:float option ->
  Aved_avail.Tier_model.t list
(** Re-evaluates a resolved design (e.g. one proposed by hand): builds
    every tier's availability model. Raises [Invalid_argument] when the
    design references tiers or resources the service does not offer. *)

val explain :
  ?top:int ->
  ?trail:Aved_search.Provenance.t ->
  config:Aved_search.Search_config.t ->
  Aved_model.Infrastructure.t ->
  Aved_model.Service.t ->
  Aved_model.Requirements.t ->
  report ->
  Aved_explain.Explain.t
(** Decision-provenance explanation of a finished design run:
    re-evaluates the chosen design's tier models, decomposes their
    downtime through [config]'s engine and recovers the top-[top]
    runner-ups from [trail] when one was installed around the search.
    Shared by the CLI and the server so both attribute identically. *)

val pp_report : Format.formatter -> report -> unit
