(** Mechanism performance-impact functions.

    The service model describes the performance impact of an availability
    mechanism (paper §3.2: the [mperformance] attribute) as a function of
    the mechanism's configuration parameters and the number of active
    resources. Following Table 1 we interpret the value as a
    multiplicative slowdown factor, at least 1 (written [100%] in the
    paper): effective throughput = nominal throughput / slowdown. *)

type t

val none : t
(** The identity slowdown (factor 1). *)

val of_expr : Aved_expr.Expr.t -> t
(** An expression over any variables; values below 1 are clamped to 1
    at evaluation time. *)

val of_string : string -> t
(** Parses an expression, e.g.
    [if n <= 30 then max(10/cpi, 100%) else max(n/(3*cpi), 100%)].
    Raises [Invalid_argument] on malformed input. *)

type parse_error = { message : string; position : int }
(** [position] is a 0-based byte offset into the parsed string. *)

val of_string_located : string -> (t, parse_error) result
(** Like {!of_string}, but returns malformed input as a value carrying
    the error position, for source-located spec diagnostics. *)

val as_expr : t -> Aved_expr.Expr.t option
(** The underlying expression ([None] for the identity slowdown). *)

val eval : t -> (string * float) list -> float
(** The slowdown factor (>= 1) under the given variable bindings.
    Raises [Aved_expr.Expr.Unbound_variable] if a variable is missing. *)

val variables : t -> string list
val to_string : t -> string
val pp : Format.formatter -> t -> unit
