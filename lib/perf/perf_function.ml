module Expr = Aved_expr.Expr

(* Compiled evaluation forms. [Affine] is only produced for expression
   shapes whose straight-line evaluation [k0 +. k1 *. n] is bit-exact
   against walking the tree: a sum or difference of at most one
   constant term and at most one [k*n] term (IEEE addition commutes
   and negation is exact, so reassociating those is safe). Anything
   else stays [General] and is interpreted — never risking a one-ulp
   drift against the tree the checker and printers see. *)
type compiled = Affine of { k0 : float; k1 : float } | General

type t =
  | Const of float
  | Expression of Expr.t * compiled
  | Table of (int * float) array (* sorted by n, distinct *)

let term = function
  | Expr.Const v -> Some (`C v)
  | Expr.Var _ -> Some (`N 1.)
  | Expr.Mul (Expr.Const k, Expr.Var _) | Expr.Mul (Expr.Var _, Expr.Const k)
    ->
      Some (`N k)
  | _ -> None

let compile expr =
  match expr with
  | Expr.Add (a, b) -> (
      match (term a, term b) with
      | Some (`C c), Some (`N k) | Some (`N k), Some (`C c) ->
          Affine { k0 = c; k1 = k }
      | Some (`N j), Some (`N k) when j = 0. || k = 0. ->
          Affine { k0 = 0.; k1 = j +. k }
      | _ -> General)
  | Expr.Sub (a, b) -> (
      match (term a, term b) with
      | Some (`C c), Some (`N k) -> Affine { k0 = c; k1 = -.k }
      | Some (`N k), Some (`C c) -> Affine { k0 = -.c; k1 = k }
      | _ -> General)
  | e -> (
      match term e with
      | Some (`C v) -> Affine { k0 = v; k1 = 0. }
      | Some (`N k) -> Affine { k0 = 0.; k1 = k }
      | None -> General)

let of_const v =
  if not (Float.is_finite v) || v < 0. then
    invalid_arg (Printf.sprintf "Perf_function.of_const: %g" v);
  Const v

let of_expr expr =
  match Expr.variables expr with
  | [] | [ "n" ] -> Expression (expr, compile expr)
  | vars ->
      invalid_arg
        (Printf.sprintf "Perf_function.of_expr: unexpected variables %s"
           (String.concat ", " vars))

let of_table points =
  if points = [] then invalid_arg "Perf_function.of_table: empty";
  let sorted =
    List.sort (fun (n1, _) (n2, _) -> Int.compare n1 n2) points
  in
  let rec check = function
    | (n1, _) :: ((n2, _) :: _ as rest) ->
        if n1 = n2 then
          invalid_arg
            (Printf.sprintf "Perf_function.of_table: duplicate n=%d" n1);
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  Table (Array.of_list sorted)

let parse_table body =
  let entries = String.split_on_char ',' body in
  let parse_entry entry =
    match String.index_opt entry '=' with
    | None ->
        invalid_arg
          (Printf.sprintf "Perf_function.of_string: bad table entry %S" entry)
    | Some i -> (
        let n_text = String.trim (String.sub entry 0 i) in
        let v_text =
          String.trim (String.sub entry (i + 1) (String.length entry - i - 1))
        in
        match (int_of_string_opt n_text, float_of_string_opt v_text) with
        | Some n, Some v -> (n, v)
        | _ ->
            invalid_arg
              (Printf.sprintf "Perf_function.of_string: bad table entry %S"
                 entry))
  in
  of_table (List.map parse_entry entries)

type parse_error = { message : string; position : int option }

let of_string_located text0 =
  (* [position]s are byte offsets into [text0] as given, so callers can
     map them to source columns. *)
  let leading =
    let n = String.length text0 in
    let rec skip i =
      if i < n && (text0.[i] = ' ' || text0.[i] = '\t') then skip (i + 1)
      else i
    in
    skip 0
  in
  let text = String.trim text0 in
  let with_prefix prefix =
    let pl = String.length prefix in
    if String.length text > pl && String.sub text 0 pl = prefix then
      Some (String.sub text pl (String.length text - pl))
    else None
  in
  let wrap f =
    match f () with
    | v -> Ok v
    | exception Invalid_argument message -> Error { message; position = None }
  in
  match with_prefix "const:" with
  | Some body -> (
      match float_of_string_opt (String.trim body) with
      | Some v -> wrap (fun () -> of_const v)
      | None ->
          Error
            {
              message = Printf.sprintf "bad constant %S" (String.trim body);
              position = Some leading;
            })
  | None -> (
      match with_prefix "table:" with
      | Some body -> wrap (fun () -> parse_table body)
      | None -> (
          let body, offset =
            match with_prefix "expr:" with
            | Some b -> (b, leading + 5)
            | None -> (text, leading)
          in
          match Expr.of_string body with
          | expr -> wrap (fun () -> of_expr expr)
          | exception Expr.Parse_error { message; position } ->
              Error { message; position = Some (offset + position) }))

let of_string text =
  match of_string_located text with
  | Ok t -> t
  | Error { message; position = Some p } ->
      invalid_arg
        (Printf.sprintf "Perf_function.of_string: %s at offset %d in %S"
           message p (String.trim text))
  | Error { message; position = None } ->
      invalid_arg (Printf.sprintf "Perf_function.of_string: %s" message)

let as_expr = function
  | Expression (expr, _) -> Some expr
  | Const _ | Table _ -> None

let classify = function
  | Const v -> `Const v
  | Expression (expr, _) -> `Expression expr
  | Table points -> `Table (Array.to_list points)

let table_eval points n =
  let len = Array.length points in
  let nf = float_of_int n in
  let first_n, first_v = points.(0) in
  let last_n, last_v = points.(len - 1) in
  if n <= first_n then first_v
  else if n >= last_n then last_v
  else begin
    (* Binary search for the bracketing segment. *)
    let lo = ref 0 and hi = ref (len - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if fst points.(mid) <= n then lo := mid else hi := mid
    done;
    let n0, v0 = points.(!lo) and n1, v1 = points.(!hi) in
    if n = n0 then v0
    else
      v0
      +. ((nf -. float_of_int n0) /. float_of_int (n1 - n0) *. (v1 -. v0))
  end

let eval t ~n =
  if n < 0 then invalid_arg (Printf.sprintf "Perf_function.eval: n=%d" n);
  match t with
  | Const v -> v
  | Expression _ when n = 0 -> 0.
  | Expression (_, Affine { k0; k1 }) -> k0 +. (k1 *. float_of_int n)
  | Expression (expr, General) ->
      Expr.eval1 expr ~var:"n" ~value:(float_of_int n)
  | Table _ when n = 0 -> 0.
  | Table points -> table_eval points n

let min_resources t ~demand ~candidates =
  let sorted = List.sort_uniq Int.compare candidates in
  List.find_opt (fun n -> n >= 0 && eval t ~n >= demand) sorted

let is_scalable = function
  | Const _ -> false
  | Expression _ | Table _ -> true

let to_string = function
  | Const v -> Printf.sprintf "const:%g" v
  | Expression (expr, _) -> "expr:" ^ Expr.to_string expr
  | Table points ->
      "table:"
      ^ String.concat ","
          (Array.to_list
             (Array.map (fun (n, v) -> Printf.sprintf "%d=%g" n v) points))

let pp ppf t = Format.pp_print_string ppf (to_string t)
