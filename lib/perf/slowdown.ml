module Expr = Aved_expr.Expr

type t = Identity | Expression of Expr.t

let none = Identity
let of_expr expr = Expression expr

type parse_error = { message : string; position : int }

let of_string_located text =
  match Expr.of_string text with
  | expr -> Ok (of_expr expr)
  | exception Expr.Parse_error { message; position } ->
      Error { message; position }

let of_string text =
  match of_string_located text with
  | Ok t -> t
  | Error { message; position } ->
      invalid_arg
        (Printf.sprintf "Slowdown.of_string: %s at offset %d in %S" message
           position text)

let as_expr = function Identity -> None | Expression expr -> Some expr

let eval t bindings =
  match t with
  | Identity -> 1.
  | Expression expr -> Float.max 1. (Expr.eval_alist expr bindings)

let variables = function
  | Identity -> []
  | Expression expr -> Expr.variables expr

let to_string = function
  | Identity -> "1"
  | Expression expr -> Expr.to_string expr

let pp ppf t = Format.pp_print_string ppf (to_string t)
