(** Tier performance models.

    The service model attaches to each (tier, resource) option a function
    from the number of active resources to deliverable throughput, in
    service-specific units of work per unit time (paper §3.2 and
    Table 1). The paper reads these from tabulated [.dat] files; here
    they are closed-form expressions, explicit tables, or constants. *)

type t

val of_const : float -> t
(** A fixed throughput independent of [n] (e.g. the database tier's
    [performance=10000]). *)

val of_expr : Aved_expr.Expr.t -> t
(** An expression over the single variable [n]. Raises
    [Invalid_argument] if it mentions any other variable. *)

val of_table : (int * float) list -> t
(** Explicit [(n, throughput)] points. Lookup is exact on the given
    points and linearly interpolated between them; queries outside the
    table range are clamped to the nearest endpoint (except [n = 0],
    which always yields 0). The list must be non-empty with distinct
    [n]. *)

val of_string : string -> t
(** Parses [const:<v>], [expr:<expression in n>], or
    [table:n1=v1,n2=v2,...]. A bare expression (no prefix) is accepted
    as [expr:]. Raises [Invalid_argument] on malformed input. *)

type parse_error = { message : string; position : int option }
(** [position] is a 0-based byte offset into the string handed to
    {!of_string_located} (prefix included), when one is known. *)

val of_string_located : string -> (t, parse_error) result
(** Like {!of_string}, but returns malformed input as a value carrying
    the error position, for source-located spec diagnostics. *)

val as_expr : t -> Aved_expr.Expr.t option
(** The underlying expression, for expression-backed models. *)

val classify :
  t ->
  [ `Const of float
  | `Expression of Aved_expr.Expr.t
  | `Table of (int * float) list ]
(** Structural view for external analyses (the static checker). *)

val eval : t -> n:int -> float
(** Throughput with [n] active resources. [n] must be non-negative;
    [eval t ~n:0] is 0 for expression and table models. *)

val min_resources :
  t -> demand:float -> candidates:int list -> int option
(** The smallest candidate [n] whose throughput meets [demand]. The
    candidate list need not be sorted; it is scanned in increasing
    order. Returns [None] when no candidate suffices. *)

val is_scalable : t -> bool
(** Whether throughput varies with [n] (false for constants). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
