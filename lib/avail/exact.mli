(** Engine B: exact multi-mode CTMC.

    Unlike Engine A, which aggregates all failure modes into a single
    repair rate, this engine tracks the number of failed resources per
    failure class — state (c₁, …, c_j), Σcᵢ ≤ N — so each class repairs
    at its own rate 1/MTTRᵢ. The state space is C(N+j, j); the engine is
    exponential in the class count and exists to validate Engine A on
    small configurations, not to run inside the search loop.

    Classes with zero MTTR never occupy the chain (their repairs are
    instantaneous) and contribute only transient outages. Failover and
    restart transients use the same rate × outage accounting as
    Engine A, evaluated state by state. *)

val num_states : Tier_model.t -> int
(** Size of the state space this model would need. *)

val chain : ?max_states:int -> Tier_model.t -> Aved_markov.Ctmc.t
(** The multi-mode CTMC itself, without solving it — the static checker
    audits its structure via {!Aved_markov.Ctmc.well_formedness}. State
    0 is the all-up state. Raises [Invalid_argument] when the state
    space exceeds [max_states] (default 20000). *)

val downtime_fraction : ?max_states:int -> Tier_model.t -> float
(** Raises [Invalid_argument] when the state space exceeds
    [max_states] (default 20000). *)

val downtime_by_class :
  ?max_states:int -> Tier_model.t -> (string * float) list
(** Attribution of {!downtime_fraction} to the failure classes, in
    model order, from the same stationary solve. Down-state mass π(s)
    is split over the classes with failed resources in [s] in
    proportion to their failed counts — exact, unlike Engine A's
    first-order split — and transients are per class by construction.
    Sums to {!downtime_fraction} (up to the cap rescale). *)

val availability :
  ?max_states:int -> Tier_model.t -> Aved_reliability.Availability.t

val annual_downtime : ?max_states:int -> Tier_model.t -> Aved_units.Duration.t

(** {2 Incremental solving}

    The transition structure of the multi-mode chain depends only on the
    class count and the total resource count, so the engine caches the
    state enumeration and compiled sparse chain per (j, N) in
    domain-local storage. A model that reuses a cached shape only
    rewrites rates in place and re-solves warm-started from the previous
    stationary vector ({!Aved_markov.Ctmc.Solver}). *)

type solver_counters = {
  fresh : int;  (** solves that built and compiled a new state space *)
  incremental : int;  (** solves that reused a cached skeleton *)
}

val solver_counters : unit -> solver_counters
(** Process-wide totals, also exported as telemetry counters
    [avail.exact.solve.fresh] / [avail.exact.solve.incremental]. *)

val reset_solver_cache : unit -> unit
(** Drops the calling domain's skeleton cache and zeroes the counters —
    the differential tests use it to compare incremental against
    from-scratch solves. *)
