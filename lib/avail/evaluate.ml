module Duration = Aved_units.Duration
module Availability = Aved_reliability.Availability
module Loss_window = Aved_reliability.Loss_window

type engine =
  | Analytic
  | Memoized of Memo.t
  | Exact of { max_states : int }
  | Monte_carlo of Monte_carlo.config

let default_engine = Analytic
let memoized () = Memoized (Memo.create ())

let tier_downtime_fraction engine model =
  match engine with
  | Analytic -> Analytic.downtime_fraction model
  | Memoized cache -> Memo.downtime_fraction cache model
  | Exact { max_states } -> Exact.downtime_fraction ~max_states model
  | Monte_carlo config -> Monte_carlo.downtime_fraction ~config model

let tier_availability engine model =
  Availability.of_fraction (1. -. tier_downtime_fraction engine model)

let tier_annual_downtime engine model =
  Duration.of_years (tier_downtime_fraction engine model)

let service_availability engine models =
  Availability.series (List.map (tier_availability engine) models)

let service_annual_downtime engine models =
  Availability.annual_downtime (service_availability engine models)

let analytic_job_time engine (model : Tier_model.t) ~job_size =
  let rate_per_hour = model.effective_performance in
  if rate_per_hour <= 0. then
    invalid_arg "Evaluate.job_completion_time: no throughput";
  let ideal = Duration.of_hours (job_size /. rate_per_hour) in
  let availability = tier_availability engine model in
  let mtbf = Tier_model.tier_mtbf model in
  (* Without checkpoints a failure loses the whole remaining job, so the
     loss window is the job itself; a configured window larger than the
     job is equally capped. *)
  let lw =
    match model.loss_window with
    | Some lw -> Duration.min lw ideal
    | None -> ideal
  in
  Loss_window.expected_job_time
    ~work_seconds:(Duration.seconds ideal)
    ~availability ~mtbf ~lw

let job_completion_time engine model ~job_size =
  match engine with
  | Analytic | Memoized _ | Exact _ -> analytic_job_time engine model ~job_size
  | Monte_carlo config ->
      let summary = Monte_carlo.job_completion_times ~config model ~job_size in
      Duration.of_hours summary.Aved_stats.Stats.mean
