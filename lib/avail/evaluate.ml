module Duration = Aved_units.Duration
module Availability = Aved_reliability.Availability
module Loss_window = Aved_reliability.Loss_window
module Telemetry = Aved_telemetry.Telemetry

type engine =
  | Analytic
  | Memoized of Memo.t
  | Exact of { max_states : int }
  | Monte_carlo of Monte_carlo.config

let default_engine = Analytic
let memoized ?capacity () = Memoized (Memo.create ?capacity ())

(* Per-engine invocation counters and solve-latency histograms. The
   disabled path pays one branch and stays allocation-free. *)
let analytic_calls = Telemetry.Counter.make "avail.engine.analytic.calls"
let analytic_seconds = Telemetry.Histogram.make "avail.engine.analytic.seconds"
let memoized_calls = Telemetry.Counter.make "avail.engine.memoized.calls"
let memoized_seconds = Telemetry.Histogram.make "avail.engine.memoized.seconds"
let exact_calls = Telemetry.Counter.make "avail.engine.exact.calls"
let exact_seconds = Telemetry.Histogram.make "avail.engine.exact.seconds"
let exact_states = Telemetry.Histogram.make "avail.engine.exact.states"
let mc_calls = Telemetry.Counter.make "avail.engine.monte_carlo.calls"
let mc_seconds = Telemetry.Histogram.make "avail.engine.monte_carlo.seconds"

let tier_downtime_fraction engine model =
  match engine with
  | Analytic ->
      Telemetry.with_trace_span "avail.engine.analytic" @@ fun () ->
      if Telemetry.enabled () then begin
        Telemetry.Counter.incr analytic_calls;
        Telemetry.Histogram.time analytic_seconds (fun () ->
            Analytic.downtime_fraction model)
      end
      else Analytic.downtime_fraction model
  | Memoized cache ->
      Telemetry.with_trace_span "avail.engine.memoized" @@ fun () ->
      if Telemetry.enabled () then begin
        Telemetry.Counter.incr memoized_calls;
        Telemetry.Histogram.time memoized_seconds (fun () ->
            Memo.downtime_fraction cache model)
      end
      else Memo.downtime_fraction cache model
  | Exact { max_states } ->
      Telemetry.with_trace_span "avail.engine.exact" @@ fun () ->
      if Telemetry.enabled () then begin
        Telemetry.Counter.incr exact_calls;
        Telemetry.Histogram.observe exact_states
          (float_of_int (Exact.num_states model));
        Telemetry.Histogram.time exact_seconds (fun () ->
            Exact.downtime_fraction ~max_states model)
      end
      else Exact.downtime_fraction ~max_states model
  | Monte_carlo config ->
      Telemetry.with_trace_span "avail.engine.monte_carlo" @@ fun () ->
      if Telemetry.enabled () then begin
        Telemetry.Counter.incr mc_calls;
        Telemetry.Histogram.time mc_seconds (fun () ->
            Monte_carlo.downtime_fraction ~config model)
      end
      else Monte_carlo.downtime_fraction ~config model

(* ----- downtime decomposition (the explain layer's data source) ----- *)

type class_contribution = {
  label : string;
  repair_mechanism : string option;
  fraction : float;
}

type decomposition = {
  total : float;
  by_class : class_contribution list;
}

let decompose_calls = Telemetry.Counter.make "avail.engine.decompose.calls"

let tier_downtime_decomposition engine (model : Tier_model.t) =
  Telemetry.Counter.incr decompose_calls;
  let total, by_class =
    match engine with
    | Analytic | Memoized _ ->
        (Analytic.downtime_fraction model, Analytic.downtime_by_class model)
    | Exact { max_states } ->
        ( Exact.downtime_fraction ~max_states model,
          Exact.downtime_by_class ~max_states model )
    | Monte_carlo config ->
        ( Monte_carlo.downtime_fraction ~config model,
          Monte_carlo.downtime_by_class ~config model )
  in
  (* by_class is in model order for every engine, so zip positionally
     (labels need not be unique when two elements share a component). *)
  let by_class =
    List.map2
      (fun (c : Tier_model.failure_class) (label, fraction) ->
        { label; repair_mechanism = c.repair_mechanism; fraction })
      model.classes by_class
  in
  { total; by_class }

let by_mechanism decomposition =
  let order = ref [] in
  let sums = Hashtbl.create 8 in
  List.iter
    (fun { repair_mechanism; fraction; _ } ->
      (match Hashtbl.find_opt sums repair_mechanism with
      | None ->
          order := repair_mechanism :: !order;
          Hashtbl.add sums repair_mechanism fraction
      | Some acc -> Hashtbl.replace sums repair_mechanism (acc +. fraction)))
    decomposition.by_class;
  List.rev_map (fun m -> (m, Hashtbl.find sums m)) !order

let tier_availability engine model =
  Availability.of_fraction (1. -. tier_downtime_fraction engine model)

let tier_annual_downtime engine model =
  Duration.of_years (tier_downtime_fraction engine model)

let service_availability engine models =
  Availability.series (List.map (tier_availability engine) models)

let service_annual_downtime engine models =
  Availability.annual_downtime (service_availability engine models)

let job_completion_time_of ~downtime_fraction (model : Tier_model.t)
    ~job_size =
  let rate_per_hour = model.effective_performance in
  if rate_per_hour <= 0. then
    raise (Tier_model.Rejected "Evaluate.job_completion_time: no throughput");
  let ideal = Duration.of_hours (job_size /. rate_per_hour) in
  let availability = Availability.of_fraction (1. -. downtime_fraction) in
  let mtbf = Tier_model.tier_mtbf model in
  (* Without checkpoints a failure loses the whole remaining job, so the
     loss window is the job itself; a configured window larger than the
     job is equally capped. *)
  let lw =
    match model.loss_window with
    | Some lw -> Duration.min lw ideal
    | None -> ideal
  in
  Loss_window.expected_job_time
    ~work_seconds:(Duration.seconds ideal)
    ~availability ~mtbf ~lw

let analytic_job_time engine (model : Tier_model.t) ~job_size =
  job_completion_time_of
    ~downtime_fraction:(tier_downtime_fraction engine model)
    model ~job_size

let job_completion_time engine model ~job_size =
  match engine with
  | Analytic | Memoized _ | Exact _ -> analytic_job_time engine model ~job_size
  | Monte_carlo config ->
      let summary = Monte_carlo.job_completion_times ~config model ~job_size in
      Duration.of_hours summary.Aved_stats.Stats.mean
