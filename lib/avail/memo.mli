(** A domain-safe memo table for Engine A evaluations.

    The search evaluates the same availability model thousands of times
    across cost-distinct designs: different mechanism settings (e.g.
    checkpoint intervals), demands and loads frequently resolve to the
    same [(n, m, s, failure classes)] tuple, and the figure sweeps
    re-enumerate the same designs at every load point. The cache keys on
    exactly the fields {!Analytic.downtime_fraction} reads — the counts,
    the failure scope, and each class's [(rate, MTTR, failover time,
    failover considered)] — so a hit is guaranteed to return the very
    float the uncached computation would produce (the computation is
    pure), keeping memoized runs bit-identical to unmemoized ones.

    A single [Mutex] guards the table, making one cache shareable by
    every worker domain of a parallel search. *)

type t

val create : unit -> t

val downtime_fraction : t -> Tier_model.t -> float
(** [Analytic.downtime_fraction], memoized. *)

val stats : t -> int * int
(** [(hits, misses)] since creation. *)
