(** A domain-safe, bounded LRU memo table for Engine A evaluations.

    The search evaluates the same availability model thousands of times
    across cost-distinct designs: different mechanism settings (e.g.
    checkpoint intervals), demands and loads frequently resolve to the
    same [(n, m, s, failure classes)] tuple, and the figure sweeps
    re-enumerate the same designs at every load point. The cache keys on
    exactly the fields {!Analytic.downtime_fraction} reads — the counts,
    the failure scope, and each class's [(rate, MTTR, failover time,
    failover considered)] — so a hit is guaranteed to return the very
    float the uncached computation would produce (the computation is
    pure), keeping memoized runs bit-identical to unmemoized ones.

    The table is bounded: it holds at most [capacity] entries and evicts
    the least-recently-used entry when a new one would exceed the bound,
    so a long-lived process (the [aved serve] daemon shares one table
    across every request) cannot grow without bound. Eviction only ever
    forgets values, never changes them, so results stay bit-identical at
    any capacity. The default capacity ({!default_capacity}) is far
    above what a figure sweep inserts; one-shot runs never evict.

    A single [Mutex] guards the table, making one cache shareable by
    every worker domain of a parallel search and every dispatcher
    thread of the server. *)

type t

val default_capacity : int
(** 1,048,576 entries — at roughly a hundred bytes per entry, a bound
    of ~100 MB; orders of magnitude above a figure sweep's footprint. *)

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the entry count (default {!default_capacity};
    raises [Invalid_argument] when [< 1]). *)

val capacity : t -> int

val length : t -> int
(** Entries currently cached; always [<= capacity t]. *)

val downtime_fraction : t -> Tier_model.t -> float
(** [Analytic.downtime_fraction], memoized. *)

val stats : t -> int * int
(** [(hits, misses)] since creation. *)

val evictions : t -> int
(** Entries evicted by the LRU bound since creation. *)
