module Duration = Aved_units.Duration
module Service = Aved_model.Service
module Telemetry = Aved_telemetry.Telemetry

let memo_hits = Telemetry.Counter.make "avail.memo.hits"
let memo_misses = Telemetry.Counter.make "avail.memo.misses"
let memo_evictions = Telemetry.Counter.make "avail.memo.evictions"

(* The key carries every input Analytic.downtime_fraction reads.
   tier_name, labels, loss_window and effective_performance do not
   influence the downtime fraction and are deliberately left out so
   that designs differing only in those collapse to one entry. *)
type key = {
  n_active : int;
  n_min : int;
  n_spare : int;
  tier_scope : bool;
  classes : (float * float * float * bool) array;
}

(* Intrusive doubly-linked LRU list node. [prev] points toward the
   most-recently-used end, [next] toward the eviction end. *)
type node = {
  key : key;
  value : float;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  mutex : Mutex.t;
  table : (key, node) Hashtbl.t;
  capacity : int;
  mutable head : node option;  (** Most recently used. *)
  mutable tail : node option;  (** Least recently used; next to evict. *)
  mutable hits : int;
  mutable misses : int;
  mutable evicted : int;
}

let default_capacity = 1 lsl 20

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Memo.create: capacity must be >= 1";
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 1024;
    capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evicted = 0;
  }

let capacity t = t.capacity

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

(* List surgery; all callers hold [t.mutex]. *)

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

(* Compare payloads physically: [t.head != Some node] is always true
   because [Some node] is a fresh allocation. *)
let touch t node =
  match t.head with
  | Some h when h == node -> ()
  | _ ->
      unlink t node;
      push_front t node

let evict_over_capacity t =
  while Hashtbl.length t.table > t.capacity do
    match t.tail with
    | None -> assert false
    | Some lru ->
        unlink t lru;
        Hashtbl.remove t.table lru.key;
        t.evicted <- t.evicted + 1;
        Telemetry.Counter.incr memo_evictions
  done

let key_of (model : Tier_model.t) =
  {
    n_active = model.n_active;
    n_min = model.n_min;
    n_spare = model.n_spare;
    tier_scope =
      (match model.failure_scope with
      | Service.Tier_scope -> true
      | Service.Resource_scope -> false);
    classes =
      Array.of_list
        (List.map
           (fun (c : Tier_model.failure_class) ->
             ( c.rate,
               Duration.seconds c.mttr,
               Duration.seconds c.failover_time,
               c.failover_considered ))
           model.classes);
  }

let downtime_fraction t model =
  let key = key_of model in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some node ->
      t.hits <- t.hits + 1;
      touch t node;
      Mutex.unlock t.mutex;
      Telemetry.Counter.incr memo_hits;
      node.value
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.mutex;
      Telemetry.Counter.incr memo_misses;
      (* Compute outside the lock: evaluations dominate the search, and
         recomputing a racing duplicate yields the same pure value. *)
      let v = Analytic.downtime_fraction model in
      Mutex.lock t.mutex;
      if not (Hashtbl.mem t.table key) then begin
        let node = { key; value = v; prev = None; next = None } in
        Hashtbl.add t.table key node;
        push_front t node;
        evict_over_capacity t
      end;
      Mutex.unlock t.mutex;
      v

let stats t =
  Mutex.lock t.mutex;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  s

let evictions t =
  Mutex.lock t.mutex;
  let e = t.evicted in
  Mutex.unlock t.mutex;
  e
