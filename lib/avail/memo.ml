module Duration = Aved_units.Duration
module Service = Aved_model.Service
module Telemetry = Aved_telemetry.Telemetry

let memo_hits = Telemetry.Counter.make "avail.memo.hits"
let memo_misses = Telemetry.Counter.make "avail.memo.misses"

(* The key carries every input Analytic.downtime_fraction reads.
   tier_name, labels, loss_window and effective_performance do not
   influence the downtime fraction and are deliberately left out so
   that designs differing only in those collapse to one entry. *)
type key = {
  n_active : int;
  n_min : int;
  n_spare : int;
  tier_scope : bool;
  classes : (float * float * float * bool) array;
}

type t = {
  mutex : Mutex.t;
  table : (key, float) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create 1024;
    hits = 0;
    misses = 0;
  }

let key_of (model : Tier_model.t) =
  {
    n_active = model.n_active;
    n_min = model.n_min;
    n_spare = model.n_spare;
    tier_scope =
      (match model.failure_scope with
      | Service.Tier_scope -> true
      | Service.Resource_scope -> false);
    classes =
      Array.of_list
        (List.map
           (fun (c : Tier_model.failure_class) ->
             ( c.rate,
               Duration.seconds c.mttr,
               Duration.seconds c.failover_time,
               c.failover_considered ))
           model.classes);
  }

let downtime_fraction t model =
  let key = key_of model in
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some v ->
      t.hits <- t.hits + 1;
      Mutex.unlock t.mutex;
      Telemetry.Counter.incr memo_hits;
      v
  | None ->
      t.misses <- t.misses + 1;
      Mutex.unlock t.mutex;
      Telemetry.Counter.incr memo_misses;
      (* Compute outside the lock: evaluations dominate the search, and
         recomputing a racing duplicate yields the same pure value. *)
      let v = Analytic.downtime_fraction model in
      Mutex.lock t.mutex;
      if not (Hashtbl.mem t.table key) then Hashtbl.add t.table key v;
      Mutex.unlock t.mutex;
      v

let stats t =
  Mutex.lock t.mutex;
  let s = (t.hits, t.misses) in
  Mutex.unlock t.mutex;
  s
