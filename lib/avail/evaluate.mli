(** Design evaluation (paper §4.2): cost is evaluated by the model
    layer; this module evaluates availability and expected job
    completion time, through a chosen engine. *)

module Duration = Aved_units.Duration
module Availability = Aved_reliability.Availability

type engine =
  | Analytic  (** Engine A — used inside the search loop. *)
  | Memoized of Memo.t
      (** Engine A behind a shared memo table; bit-identical to
          [Analytic] (see {!Memo}) but amortizes repeated evaluations
          of identical resolved tier models across the search. *)
  | Exact of { max_states : int }  (** Engine B — validation. *)
  | Monte_carlo of Monte_carlo.config  (** Engine C — validation. *)

val default_engine : engine

val memoized : ?capacity:int -> unit -> engine
(** [Memoized] with a fresh cache bounded at [capacity] entries
    (default {!Memo.default_capacity}); see {!Memo} for the LRU
    eviction contract. *)

val tier_downtime_fraction : engine -> Tier_model.t -> float

type class_contribution = {
  label : string;  (** The failure class, e.g. ["machineA/hard"]. *)
  repair_mechanism : string option;
      (** The mechanism the mode delegates repair to, when any. *)
  fraction : float;  (** Long-run downtime fraction attributed to it. *)
}

type decomposition = {
  total : float;  (** The engine's downtime fraction for the tier. *)
  by_class : class_contribution list;
      (** One entry per failure class, in model order; the fractions
          sum to [total] (within float accumulation error). *)
}

val tier_downtime_decomposition : engine -> Tier_model.t -> decomposition
(** Per-failure-mode downtime attribution through the chosen engine:
    Markov steady-state occupancy for [Analytic]/[Memoized] (first-order
    split of the chain mass) and [Exact] (exact per-state split), the
    empirical charge-to-cause attribution for [Monte_carlo]. *)

val by_mechanism : decomposition -> (string option * float) list
(** Contributions grouped by repair mechanism, in first-appearance
    order; [None] collects the fixed-repair modes. *)

val tier_availability : engine -> Tier_model.t -> Availability.t
val tier_annual_downtime : engine -> Tier_model.t -> Duration.t

val service_availability : engine -> Tier_model.t list -> Availability.t
(** Tiers compose in series: the service is up iff every tier is up
    (independence across tiers, as the paper assumes). *)

val service_annual_downtime : engine -> Tier_model.t list -> Duration.t

val job_completion_time_of :
  downtime_fraction:float -> Tier_model.t -> job_size:float -> Duration.t
(** The analytic completion-time formula with the downtime fraction
    supplied by the caller — bitwise identical to
    {!job_completion_time} when the fraction is the engine's own
    [tier_downtime_fraction], which lets the search reuse a cached
    fraction without re-solving. Not meaningful for [Monte_carlo],
    whose completion time is simulated rather than derived from the
    fraction. Raises [Tier_model.Rejected] when the model has no
    throughput. *)

val job_completion_time :
  engine -> Tier_model.t -> job_size:float -> Duration.t
(** Expected completion time of a finite job on a single computation
    tier (paper §4.2): the failure-free compute time divided by tier
    availability and by the loss-window efficiency lw/T_lw, where the
    tier MTBF covers all failure modes of all [n] active resources.
    Without a loss window the whole remaining job is lost per failure.
    For [Monte_carlo] the simulated mean is returned. *)
