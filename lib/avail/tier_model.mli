(** The availability model of one tier (paper §4.2).

    Aved evaluates a candidate design by translating each tier into the
    parameter set the availability engines consume:

    - [n], the number of active resources;
    - [m], the minimum active resources for the tier to be up — equal to
      [n] for static sizing or tier failure scope, otherwise derived
      from the performance requirement;
    - [s], the number of spares;
    - per failure mode [i]: the failure rate, the full repair time
      [MTTR_i] (detection + repair + dependent restarts) and the
      failover time (detection + reconfiguration + startup of the
      spare's inactive components), with failover considered only when
      it beats repair. *)

module Duration = Aved_units.Duration

exception Rejected of string
(** A design that the model layer rejects on its merits — it cannot
    deliver the required throughput with the resources it has. Distinct
    from [Invalid_argument], which is reserved for malformed inputs
    (dangling references, missing mechanism settings): the search counts
    [Rejected] candidates and lets programming errors propagate. *)

type failure_class = {
  label : string;  (** e.g. ["machineA/hard"]. *)
  rate : float;  (** Failures per second of one active resource. *)
  mttr : Duration.t;
      (** Detect time + repair time + restart of the affected
          components. *)
  failover_time : Duration.t;
      (** Detect time + resource reconfiguration + startup of the
          components that are inactive in a spare. *)
  failover_considered : bool;
      (** Per the paper: only when [mttr > failover_time] and the design
          has spares. *)
  repair_mechanism : string option;
      (** Name of the availability mechanism the mode delegates repair
          to (e.g. a maintenance contract), [None] for a fixed repair
          time. Purely descriptive — engines ignore it; the explain
          layer groups downtime contributions by it. *)
}

type t = {
  tier_name : string;
  n_active : int;
  n_min : int;
  n_spare : int;
  failure_scope : Aved_model.Service.failure_scope;
  classes : failure_class list;
  loss_window : Duration.t option;
      (** Work lost per failure event, when a component defines one
          (directly or through a mechanism such as checkpointing). *)
  effective_performance : float;
      (** Deliverable throughput with [n_active] resources, after
          dividing nominal performance by all mechanism slowdowns
          (work units per hour). *)
}

val total_failure_rate : t -> float
(** Σ rates over classes — failures per second of one active resource. *)

val resource_mtbf : t -> Duration.t
(** Mean time between failures of one active resource. *)

val tier_mtbf : t -> Duration.t
(** Mean time between failures among the [n_active] resources. *)

val mean_repair_time : t -> Duration.t
(** Failure-frequency-weighted mean of the class MTTRs. *)

val build :
  infra:Aved_model.Infrastructure.t ->
  option:Aved_model.Service.resource_option ->
  design:Aved_model.Design.tier_design ->
  demand:float option ->
  t
(** Derives the model. [demand] is the tier's throughput requirement
    (needed to compute [m] under dynamic sizing; [None] only for finite
    jobs, where [m = n]). Raises {!Rejected} when the design does not
    deliver [demand] with all [n_active] resources or when [m] cannot be
    established — genuine model rejections the search counts — and
    [Invalid_argument] on malformed inputs (dangling references, missing
    mechanism settings). *)

val pp : Format.formatter -> t -> unit

val effective_performance_of :
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list ->
  n:int ->
  float
(** Nominal performance at [n] active resources divided by the product
    of the mechanism slowdowns under [settings] (work units per hour).
    Raises [Invalid_argument] when a mechanism with declared performance
    impact has no setting. *)

val minimum_actives :
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list ->
  demand:float ->
  int option
(** The smallest admissible member of the option's [nActive] range whose
    effective performance meets [demand]. *)

(** A tier model factored for the search's inner loop. For one (resource
    option, mechanism settings, spare-active set), the failure classes,
    loss window, effective-performance curve and per-resource costs are
    all independent of the candidate's resource counts; {!Skeleton.make}
    derives them once and {!Skeleton.instantiate} replays {!build}'s
    remaining arithmetic per (n, s). The instantiated model — and any
    {!Rejected} it raises — is bitwise identical to a fresh {!build} of
    the corresponding design. *)
module Skeleton : sig
  type tier = t
  type t

  val make :
    infra:Aved_model.Infrastructure.t ->
    tier_name:string ->
    option:Aved_model.Service.resource_option ->
    settings:(string * Aved_model.Mechanism.setting) list ->
    spare_active:string list ->
    t
  (** One-time derivation. Raises [Invalid_argument] on malformed inputs
      (dangling references, missing mechanism settings) — the same cases
      where {!build} would. *)

  val effective_performance : t -> n:int -> float
  (** Memoized {!effective_performance_of} at [n] active resources. *)

  val minimum_actives : t -> demand:float -> int option
  (** As the top-level {!minimum_actives}, against the memoized curve. *)

  val tier_cost : t -> n_active:int -> n_spare:int -> Aved_units.Money.t
  (** Bitwise identical to [Design.tier_cost] of the corresponding
      design. *)

  val classes : t -> spares:bool -> failure_class list
  (** The failure classes an instantiated model carries when it has
      (resp. has not) spares. Together with {!failure_scope} and the
      counts (n, m, s) these determine the deterministic engines'
      downtime fraction completely — the same factoring {!Aved_avail}'s
      global memo keys on — so callers may share downtime caches across
      skeletons whose classes and scope are equal. *)

  val failure_scope : t -> Aved_model.Service.failure_scope

  val instantiate : t -> n_active:int -> n_spare:int -> demand:float option -> tier
  (** The tier model at the given resource counts. Raises {!Rejected}
      exactly as {!build} does (same messages, same precedence). *)
end
