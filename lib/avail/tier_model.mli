(** The availability model of one tier (paper §4.2).

    Aved evaluates a candidate design by translating each tier into the
    parameter set the availability engines consume:

    - [n], the number of active resources;
    - [m], the minimum active resources for the tier to be up — equal to
      [n] for static sizing or tier failure scope, otherwise derived
      from the performance requirement;
    - [s], the number of spares;
    - per failure mode [i]: the failure rate, the full repair time
      [MTTR_i] (detection + repair + dependent restarts) and the
      failover time (detection + reconfiguration + startup of the
      spare's inactive components), with failover considered only when
      it beats repair. *)

module Duration = Aved_units.Duration

exception Rejected of string
(** A design that the model layer rejects on its merits — it cannot
    deliver the required throughput with the resources it has. Distinct
    from [Invalid_argument], which is reserved for malformed inputs
    (dangling references, missing mechanism settings): the search counts
    [Rejected] candidates and lets programming errors propagate. *)

type failure_class = {
  label : string;  (** e.g. ["machineA/hard"]. *)
  rate : float;  (** Failures per second of one active resource. *)
  mttr : Duration.t;
      (** Detect time + repair time + restart of the affected
          components. *)
  failover_time : Duration.t;
      (** Detect time + resource reconfiguration + startup of the
          components that are inactive in a spare. *)
  failover_considered : bool;
      (** Per the paper: only when [mttr > failover_time] and the design
          has spares. *)
  repair_mechanism : string option;
      (** Name of the availability mechanism the mode delegates repair
          to (e.g. a maintenance contract), [None] for a fixed repair
          time. Purely descriptive — engines ignore it; the explain
          layer groups downtime contributions by it. *)
}

type t = {
  tier_name : string;
  n_active : int;
  n_min : int;
  n_spare : int;
  failure_scope : Aved_model.Service.failure_scope;
  classes : failure_class list;
  loss_window : Duration.t option;
      (** Work lost per failure event, when a component defines one
          (directly or through a mechanism such as checkpointing). *)
  effective_performance : float;
      (** Deliverable throughput with [n_active] resources, after
          dividing nominal performance by all mechanism slowdowns
          (work units per hour). *)
}

val total_failure_rate : t -> float
(** Σ rates over classes — failures per second of one active resource. *)

val resource_mtbf : t -> Duration.t
(** Mean time between failures of one active resource. *)

val tier_mtbf : t -> Duration.t
(** Mean time between failures among the [n_active] resources. *)

val mean_repair_time : t -> Duration.t
(** Failure-frequency-weighted mean of the class MTTRs. *)

val build :
  infra:Aved_model.Infrastructure.t ->
  option:Aved_model.Service.resource_option ->
  design:Aved_model.Design.tier_design ->
  demand:float option ->
  t
(** Derives the model. [demand] is the tier's throughput requirement
    (needed to compute [m] under dynamic sizing; [None] only for finite
    jobs, where [m = n]). Raises {!Rejected} when the design does not
    deliver [demand] with all [n_active] resources or when [m] cannot be
    established — genuine model rejections the search counts — and
    [Invalid_argument] on malformed inputs (dangling references, missing
    mechanism settings). *)

val pp : Format.formatter -> t -> unit

val effective_performance_of :
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list ->
  n:int ->
  float
(** Nominal performance at [n] active resources divided by the product
    of the mechanism slowdowns under [settings] (work units per hour).
    Raises [Invalid_argument] when a mechanism with declared performance
    impact has no setting. *)

val minimum_actives :
  option:Aved_model.Service.resource_option ->
  settings:(string * Aved_model.Mechanism.setting) list ->
  demand:float ->
  int option
(** The smallest admissible member of the option's [nActive] range whose
    effective performance meets [demand]. *)
