module Duration = Aved_units.Duration
module Availability = Aved_reliability.Availability
module Ctmc = Aved_markov.Ctmc
module Service = Aved_model.Service
module Telemetry = Aved_telemetry.Telemetry

(* Classes that occupy the chain: repairs take positive time. Classes
   with zero MTTR repair instantaneously and only contribute transient
   outages (of zero unless their failover time is positive). *)
let chain_classes (model : Tier_model.t) =
  List.filter
    (fun (c : Tier_model.failure_class) -> not (Duration.is_zero c.mttr))
    model.classes

let instant_classes (model : Tier_model.t) =
  List.filter
    (fun (c : Tier_model.failure_class) -> Duration.is_zero c.mttr)
    model.classes

let binomial n k =
  let k = Stdlib.min k (n - k) in
  let rec loop acc i =
    if i > k then acc else loop (acc * (n - k + i) / i) (i + 1)
  in
  if k < 0 then 0 else loop 1 1

let num_states (model : Tier_model.t) =
  let n_total = model.n_active + model.n_spare in
  let j = List.length (chain_classes model) in
  binomial (n_total + j) j

(* All vectors of length j with sum <= total, lexicographic order. *)
let enumerate_states ~j ~total =
  let states = ref [] in
  let current = Array.make j 0 in
  let rec fill pos remaining =
    if pos = j then states := Array.copy current :: !states
    else
      for v = 0 to remaining do
        current.(pos) <- v;
        fill (pos + 1) (remaining - v)
      done
  in
  if j = 0 then [ [||] ]
  else begin
    fill 0 total;
    List.rev !states
  end

let transient_outage (c : Tier_model.failure_class) =
  Duration.seconds
    (if c.failover_considered then c.failover_time else c.mttr)

let interrupts (model : Tier_model.t) ~actives =
  match model.failure_scope with
  | Service.Tier_scope -> true
  | Service.Resource_scope -> actives = model.n_min

(* Shared state-space construction and stationary solve of the
   multi-mode chain, used by both {!downtime_fraction} and
   {!downtime_by_class}. *)
type solution = {
  states : int array array;
  classes : Tier_model.failure_class array;  (* chain classes, model order *)
  pi : float array;
  n_total : int;
}

let build_chain ~max_states (model : Tier_model.t) =
  let n_total = model.n_active + model.n_spare in
  let classes = Array.of_list (chain_classes model) in
  let j = Array.length classes in
  let size = num_states model in
  if size > max_states then
    invalid_arg
      (Printf.sprintf "Exact.downtime_fraction: %d states exceed limit %d"
         size max_states);
  let states = Array.of_list (enumerate_states ~j ~total:n_total) in
  let index = Hashtbl.create (Array.length states) in
  Array.iteri
    (fun i s -> Hashtbl.add index (Array.to_list s) i)
    states;
  let lookup s = Hashtbl.find index (Array.to_list s) in
  let failed s = Array.fold_left ( + ) 0 s in
  let actives_of s = Stdlib.min model.n_active (n_total - failed s) in
  let chain = Ctmc.create (Array.length states) in
  Array.iteri
    (fun src s ->
      let f = failed s in
      let a = actives_of s in
      Array.iteri
        (fun i (c : Tier_model.failure_class) ->
          (* Failure of class i by one of the active resources. *)
          if a > 0 && f < n_total then begin
            let rate = float_of_int a *. c.rate in
            let target = Array.copy s in
            target.(i) <- target.(i) + 1;
            Ctmc.add_transition chain ~src ~dst:(lookup target) ~rate
          end;
          (* Repair of one failed class-i resource. *)
          if s.(i) > 0 then begin
            let rate = float_of_int s.(i) /. Duration.seconds c.mttr in
            let target = Array.copy s in
            target.(i) <- target.(i) - 1;
            Ctmc.add_transition chain ~src ~dst:(lookup target) ~rate
          end)
        classes)
    states;
  (states, classes, chain, n_total)

let chain ?(max_states = 20000) (model : Tier_model.t) =
  let _, _, chain, _ = build_chain ~max_states model in
  chain

(* ----- skeleton-cached solving ----- *)

(* The transition STRUCTURE of the multi-mode chain depends only on
   (j, n_total): a failure transition exists iff the state has room for
   one more failed resource (n_active ≥ 1 always, so the active count
   min(n_active, n_total − f) is positive exactly when f < n_total), and
   a repair transition iff the class has a failed resource. Only the
   RATES carry the model parameters. So the state enumeration, the index
   and the transition list are cached per (j, n_total) — and with them a
   {!Ctmc.Solver} whose compiled sparse structure is updated in place
   and re-solved warm-started when the next model reuses the shape. *)
type skeleton_transition = {
  src : int;
  dst : int;
  cls : int;
  is_repair : bool;
  mult : int; (* repairs: the class's failed count in [src] *)
  failed : int; (* failures: total failed resources in [src] *)
}

type skeleton = {
  states : int array array;
  skeleton_transitions : skeleton_transition array;
  mutable solver : Ctmc.Solver.t option;
}

let fresh_solves = Atomic.make 0
let incremental_solves = Atomic.make 0
let tm_fresh = Telemetry.Counter.make "avail.exact.solve.fresh"
let tm_incremental = Telemetry.Counter.make "avail.exact.solve.incremental"

type solver_counters = { fresh : int; incremental : int }

let solver_counters () =
  {
    fresh = Atomic.get fresh_solves;
    incremental = Atomic.get incremental_solves;
  }

let skeleton_cache_key :
    ((int * int, skeleton) Hashtbl.t) Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let reset_solver_cache () =
  Hashtbl.reset (Domain.DLS.get skeleton_cache_key);
  Atomic.set fresh_solves 0;
  Atomic.set incremental_solves 0

let build_skeleton ~j ~n_total =
  let states = Array.of_list (enumerate_states ~j ~total:n_total) in
  let index = Hashtbl.create (Array.length states) in
  Array.iteri (fun i s -> Hashtbl.add index (Array.to_list s) i) states;
  let lookup s = Hashtbl.find index (Array.to_list s) in
  let transitions = ref [] in
  Array.iteri
    (fun src s ->
      let f = Array.fold_left ( + ) 0 s in
      for i = 0 to j - 1 do
        if f < n_total then begin
          let target = Array.copy s in
          target.(i) <- target.(i) + 1;
          transitions :=
            {
              src;
              dst = lookup target;
              cls = i;
              is_repair = false;
              mult = 0;
              failed = f;
            }
            :: !transitions
        end;
        if s.(i) > 0 then begin
          let target = Array.copy s in
          target.(i) <- target.(i) - 1;
          transitions :=
            {
              src;
              dst = lookup target;
              cls = i;
              is_repair = true;
              mult = s.(i);
              failed = f;
            }
            :: !transitions
        end
      done)
    states;
  {
    states;
    skeleton_transitions = Array.of_list (List.rev !transitions);
    solver = None;
  }

let solve ~max_states (model : Tier_model.t) =
  let n_total = model.n_active + model.n_spare in
  let classes = Array.of_list (chain_classes model) in
  let j = Array.length classes in
  let size = num_states model in
  if size > max_states then
    invalid_arg
      (Printf.sprintf "Exact.downtime_fraction: %d states exceed limit %d"
         size max_states);
  let cache = Domain.DLS.get skeleton_cache_key in
  let entry =
    match Hashtbl.find_opt cache (j, n_total) with
    | Some e -> e
    | None ->
        let e = build_skeleton ~j ~n_total in
        Hashtbl.add cache (j, n_total) e;
        e
  in
  (* Same arithmetic as [build_chain]: a failure fires from each of the
     min(n_active, n_total − f) active resources; a repair per failed
     resource of the class. *)
  let rate_of tr =
    let c = classes.(tr.cls) in
    if tr.is_repair then float_of_int tr.mult /. Duration.seconds c.mttr
    else
      float_of_int (Stdlib.min model.n_active (n_total - tr.failed)) *. c.rate
  in
  let pi =
    match entry.solver with
    | Some solver ->
        Array.iter
          (fun tr ->
            Ctmc.Solver.update_rate solver ~src:tr.src ~dst:tr.dst
              ~rate:(rate_of tr))
          entry.skeleton_transitions;
        Atomic.incr incremental_solves;
        if Telemetry.enabled () then Telemetry.Counter.incr tm_incremental;
        Ctmc.Solver.solve solver
    | None ->
        let chain = Ctmc.create (Array.length entry.states) in
        Array.iter
          (fun tr ->
            Ctmc.add_transition chain ~src:tr.src ~dst:tr.dst
              ~rate:(rate_of tr))
          entry.skeleton_transitions;
        let solver = Ctmc.Solver.create chain in
        entry.solver <- Some solver;
        Atomic.incr fresh_solves;
        if Telemetry.enabled () then Telemetry.Counter.incr tm_fresh;
        Ctmc.Solver.solve solver
  in
  { states = entry.states; classes; pi; n_total }

let downtime_fraction ?(max_states = 20000) (model : Tier_model.t) =
  let { states; classes; pi; n_total } = solve ~max_states model in
  let failed s = Array.fold_left ( + ) 0 s in
  let actives_of s = Stdlib.min model.n_active (n_total - failed s) in
  let chain_down = ref 0. in
  let transient = ref 0. in
  Array.iteri
    (fun i s ->
      let operational = n_total - failed s in
      if operational < model.n_min then chain_down := !chain_down +. pi.(i)
      else begin
        let a = actives_of s in
        if a > 0 && interrupts model ~actives:a then begin
          (* Chain classes: a failure that lands in another up state. *)
          Array.iter
            (fun (c : Tier_model.failure_class) ->
              if operational - 1 >= model.n_min then
                transient :=
                  !transient
                  +. (pi.(i) *. float_of_int a *. c.rate *. transient_outage c))
            classes;
          (* Instantly repaired classes never leave the state. *)
          List.iter
            (fun (c : Tier_model.failure_class) ->
              transient :=
                !transient
                +. (pi.(i) *. float_of_int a *. c.rate *. transient_outage c))
            (instant_classes model)
        end
      end)
    states;
  Float.min 1. (!chain_down +. !transient)

(* Attribution of the downtime to the failure classes, from the same
   stationary solve. Down-state mass is attributed to the classes whose
   failed resources occupy the state, proportionally to their failed
   counts — exact, unlike Engine A's first-order split. Transients are
   per class by construction. Rescaled like {!Analytic.downtime_by_class}
   when the raw sum exceeds the cap of 1. *)
let downtime_by_class ?(max_states = 20000) (model : Tier_model.t) =
  let { states; classes; pi; n_total } = solve ~max_states model in
  let failed s = Array.fold_left ( + ) 0 s in
  let actives_of s = Stdlib.min model.n_active (n_total - failed s) in
  let all = Array.of_list model.classes in
  let contrib = Array.make (Array.length all) 0. in
  (* Positional maps into [model.classes] (labels need not be unique). *)
  let indexed = List.mapi (fun i c -> (i, c)) model.classes in
  let chain_pos =
    List.filter_map
      (fun (i, (c : Tier_model.failure_class)) ->
        if Duration.is_zero c.mttr then None else Some i)
      indexed
    |> Array.of_list
  in
  let instant_pos =
    List.filter_map
      (fun (i, (c : Tier_model.failure_class)) ->
        if Duration.is_zero c.mttr then Some i else None)
      indexed
    |> Array.of_list
  in
  Array.iteri
    (fun i s ->
      let operational = n_total - failed s in
      if operational < model.n_min then begin
        let f = float_of_int (failed s) in
        if f > 0. then
          Array.iteri
            (fun k count ->
              if count > 0 then
                contrib.(chain_pos.(k)) <-
                  contrib.(chain_pos.(k))
                  +. (pi.(i) *. float_of_int count /. f))
            s
      end
      else begin
        let a = actives_of s in
        if a > 0 && interrupts model ~actives:a then begin
          Array.iteri
            (fun k (c : Tier_model.failure_class) ->
              if operational - 1 >= model.n_min then
                contrib.(chain_pos.(k)) <-
                  contrib.(chain_pos.(k))
                  +. (pi.(i) *. float_of_int a *. c.rate *. transient_outage c))
            classes;
          Array.iter
            (fun pos ->
              let c = all.(pos) in
              contrib.(pos) <-
                contrib.(pos)
                +. (pi.(i) *. float_of_int a *. c.rate *. transient_outage c))
            instant_pos
        end
      end)
    states;
  let raw_total = Array.fold_left ( +. ) 0. contrib in
  let scale = if raw_total > 1. then 1. /. raw_total else 1. in
  List.mapi
    (fun i (c : Tier_model.failure_class) ->
      (c.label, if raw_total > 1. then contrib.(i) *. scale else contrib.(i)))
    model.classes

let availability ?max_states model =
  Availability.of_fraction (1. -. downtime_fraction ?max_states model)

let annual_downtime ?max_states model =
  Duration.of_years (downtime_fraction ?max_states model)
