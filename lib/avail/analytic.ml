module Duration = Aved_units.Duration
module Availability = Aved_reliability.Availability
module Birth_death = Aved_markov.Birth_death
module Service = Aved_model.Service

let actives (model : Tier_model.t) k =
  Stdlib.min model.n_active (model.n_active + model.n_spare - k)

let chain (model : Tier_model.t) =
  let n_total = model.n_active + model.n_spare in
  let lambda = Tier_model.total_failure_rate model in
  let repair = Duration.seconds (Tier_model.mean_repair_time model) in
  if lambda <= 0. || repair <= 0. then None
  else begin
    let mu = 1. /. repair in
    let up =
      Array.init n_total (fun k -> float_of_int (actives model k) *. lambda)
    in
    let down = Array.init n_total (fun k -> float_of_int (k + 1) *. mu) in
    Some (Birth_death.create ~up ~down)
  end

let state_distribution (model : Tier_model.t) =
  match chain model with
  | Some bd -> Birth_death.stationary bd
  | None ->
      (* No failures, or instantaneous repairs: all mass at state 0. *)
      let pi = Array.make (model.n_active + model.n_spare + 1) 0. in
      pi.(0) <- 1.;
      pi

(* The [_of] variants take a precomputed stationary distribution so one
   solve can serve every contribution of an evaluation; the public
   functions below solve once and thread it through. *)
let chain_down_of (model : Tier_model.t) pi =
  let n_total = model.n_active + model.n_spare in
  let acc = ref 0. in
  for k = 0 to n_total do
    if n_total - k < model.n_min then acc := !acc +. pi.(k)
  done;
  !acc

let chain_down_fraction (model : Tier_model.t) =
  chain_down_of model (state_distribution model)

(* The per-event outage of a failure the chain does not see as a down
   state: the failover time when a spare takes over, or the full repair
   time when in-place repair is quicker (paper §4.2: failover only when
   MTTR exceeds it). *)
let transient_outage (c : Tier_model.failure_class) =
  Duration.seconds
    (if c.failover_considered then c.failover_time else c.mttr)

(* Σ over states of π_k times the number of serving resources, restricted
   to states where a failure visibly interrupts service yet lands in
   another up state. Multiplying by a class's rate × outage gives that
   class's transient downtime fraction. *)
let transient_weight_of (model : Tier_model.t) pi =
  let n_total = model.n_active + model.n_spare in
  let acc = ref 0. in
  for k = 0 to n_total - 1 do
    let a = actives model k in
    let next_up = n_total - k - 1 >= model.n_min in
    if a > 0 && next_up then begin
      let interrupts =
        match model.failure_scope with
        | Service.Tier_scope -> true
        | Service.Resource_scope -> a = model.n_min
      in
      if interrupts then acc := !acc +. (pi.(k) *. float_of_int a)
    end
  done;
  !acc

let transient_weight (model : Tier_model.t) =
  transient_weight_of model (state_distribution model)

let outage_rate_sum (model : Tier_model.t) =
  List.fold_left
    (fun acc c -> acc +. (c.Tier_model.rate *. transient_outage c))
    0. model.classes

let transient_down_fraction (model : Tier_model.t) =
  transient_weight model *. outage_rate_sum model

let downtime_fraction model =
  let pi = state_distribution model in
  Float.min 1.
    (chain_down_of model pi
    +. (transient_weight_of model pi *. outage_rate_sum model))

let availability model =
  Availability.of_fraction (1. -. downtime_fraction model)

let annual_downtime model = Duration.of_years (downtime_fraction model)

let mean_failed_resources (model : Tier_model.t) =
  match chain model with
  | None -> 0.
  | Some bd -> Birth_death.expected_reward bd ~reward:float_of_int

(* When the raw sum exceeds 1 the reported fraction is capped, so the
   contributions are rescaled by the same factor to keep them summing
   to {!downtime_fraction}; below the cap they are returned as computed
   (scaling by exactly 1.0 preserves the bits). *)
let downtime_by_class (model : Tier_model.t) =
  let pi = state_distribution model in
  let weight = transient_weight_of model pi in
  let chain_down = chain_down_of model pi in
  let first_order (c : Tier_model.failure_class) =
    c.rate *. Duration.seconds c.mttr
  in
  let first_order_total =
    List.fold_left (fun acc c -> acc +. first_order c) 0. model.classes
  in
  let raw =
    List.map
      (fun (c : Tier_model.failure_class) ->
        let transient = weight *. c.rate *. transient_outage c in
        let chain_share =
          if first_order_total <= 0. then 0.
          else chain_down *. first_order c /. first_order_total
        in
        (c.label, transient +. chain_share))
      model.classes
  in
  let raw_total = chain_down +. (weight *. outage_rate_sum model) in
  if raw_total > 1. then
    List.map (fun (label, f) -> (label, f /. raw_total)) raw
  else raw
