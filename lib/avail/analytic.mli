(** Engine A: the paper's "simplified Markov model", in closed form.

    The tier is a birth–death chain on the number of failed resources
    k ∈ [0, N], N = n + s. In state k, min(n, N−k) resources are active
    (inactive spares do not fail), each failing at the aggregate rate
    Σλᵢ; each failed resource repairs independently at the aggregate
    rate 1/R̄, R̄ the failure-frequency-weighted mean MTTR. The tier is
    down when fewer than m resources are operational.

    Two downtime contributions are summed:
    - chain mass of the down states (multiple concurrent failures
      exhausting spares and extras), and
    - failover/restart transients: failures that the chain absorbs as
      "still up" but which visibly interrupt service — from a state
      with exactly m serving resources under resource failure scope, or
      from any up state under tier failure scope. Each such event costs
      the failover time when failover is considered for the mode, or
      the mode's full MTTR otherwise. *)

val chain : Tier_model.t -> Aved_markov.Birth_death.t option
(** The underlying birth–death chain on the number of failed resources;
    [None] when the tier has no failures or only instantaneous repairs
    (all probability then sits in state 0). *)

val state_distribution : Tier_model.t -> float array
(** Stationary distribution over the number of failed resources
    (indices 0..n+s). *)

val chain_down_fraction : Tier_model.t -> float
(** Stationary probability that fewer than m resources are operational. *)

val transient_down_fraction : Tier_model.t -> float
(** Long-run fraction of time lost to failover/restart transients. *)

val downtime_fraction : Tier_model.t -> float
(** Sum of the two contributions, capped at 1. *)

val availability : Tier_model.t -> Aved_reliability.Availability.t
val annual_downtime : Tier_model.t -> Aved_units.Duration.t

val downtime_by_class : Tier_model.t -> (string * float) list
(** Attribution of {!downtime_fraction} to the failure classes, labeled
    as in the model, in model order. Transient contributions are exact
    per class; the chain's down-state mass is attributed in proportion
    to each class's unavailability product λᵢ·MTTRᵢ (its first-order
    share). When the raw sum exceeds the cap of 1, contributions are
    rescaled proportionally. Sums to {!downtime_fraction}. *)

val mean_failed_resources : Tier_model.t -> float
(** Stationary expectation of the number of failed resources (the
    chain's occupancy) — 0 when the tier has no failures. *)
