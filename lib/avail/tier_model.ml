module Duration = Aved_units.Duration
module Model = Aved_model
module Perf_function = Aved_perf.Perf_function

exception Rejected of string

let reject fmt = Printf.ksprintf (fun msg -> raise (Rejected msg)) fmt

type failure_class = {
  label : string;
  rate : float;
  mttr : Duration.t;
  failover_time : Duration.t;
  failover_considered : bool;
  repair_mechanism : string option;
}

type t = {
  tier_name : string;
  n_active : int;
  n_min : int;
  n_spare : int;
  failure_scope : Model.Service.failure_scope;
  classes : failure_class list;
  loss_window : Duration.t option;
  effective_performance : float;
}

let total_failure_rate t =
  List.fold_left (fun acc c -> acc +. c.rate) 0. t.classes

let resource_mtbf t =
  let rate = total_failure_rate t in
  if rate <= 0. then invalid_arg "Tier_model.resource_mtbf: no failures"
  else Duration.of_seconds (1. /. rate)

let tier_mtbf t =
  Duration.scale (1. /. float_of_int t.n_active) (resource_mtbf t)

let mean_repair_time t =
  let rate = total_failure_rate t in
  if rate <= 0. then Duration.zero
  else
    Duration.of_seconds
      (List.fold_left
         (fun acc c -> acc +. (c.rate *. Duration.seconds c.mttr))
         0. t.classes
      /. rate)

let slowdown_product ~(option : Model.Service.resource_option) ~settings ~n =
  List.fold_left
    (fun acc (mech_name, impact) ->
      match List.assoc_opt mech_name settings with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Tier_model: no setting for mechanism %s affecting resource %s"
               mech_name option.Model.Service.resource)
      | Some setting -> acc *. Model.Mech_impact.eval impact ~setting ~n)
    1. option.mech_performance

let effective_performance_of ~option ~settings ~n =
  let nominal = Perf_function.eval option.Model.Service.performance ~n in
  nominal /. slowdown_product ~option ~settings ~n

let minimum_actives ~(option : Model.Service.resource_option) ~settings ~demand
    =
  List.find_opt
    (fun n -> n > 0 && effective_performance_of ~option ~settings ~n >= demand)
    (Model.Int_range.to_list option.n_active)

let effective_perf ~option ~(design : Model.Design.tier_design) ~n =
  effective_performance_of ~option ~settings:design.mechanism_settings ~n

let compute_n_min ~(option : Model.Service.resource_option) ~design
    ~demand =
  match (option.sizing, option.failure_scope) with
  | Model.Service.Static, _ | _, Model.Service.Tier_scope ->
      design.Model.Design.n_active
  | Model.Service.Dynamic, Model.Service.Resource_scope -> (
      match demand with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Tier_model: tier %s needs a throughput requirement to derive m"
               design.Model.Design.tier_name)
      | Some demand ->
          let n_active = design.Model.Design.n_active in
          let rec search k =
            if k > n_active then
              reject "Tier_model: tier %s cannot deliver %g with %d resources"
                design.tier_name demand n_active
            else if effective_perf ~option ~design ~n:k >= demand then k
            else search (k + 1)
          in
          search 1)

let repair_time ~infra ~settings ~tier_name (fm : Model.Component.failure_mode)
    =
  match fm.repair with
  | Model.Component.Fixed_repair d -> d
  | Model.Component.Repair_by_mechanism mech_name -> (
      let mech = Model.Infrastructure.mechanism_exn infra mech_name in
      match List.assoc_opt mech_name settings with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Tier_model: design %s lacks a setting for mechanism %s"
               tier_name mech_name)
      | Some setting -> (
          match Model.Mechanism.mttr_of mech setting with
          | Some d -> d
          | None ->
              invalid_arg
                (Printf.sprintf "Tier_model: mechanism %s provides no mttr"
                   mech_name)))

let component_loss_window ~infra ~settings ~tier_name (c : Model.Component.t) =
  match c.loss_window with
  | Model.Component.No_loss_window -> None
  | Model.Component.Fixed_loss_window d -> Some d
  | Model.Component.Loss_window_by_mechanism mech_name -> (
      let mech = Model.Infrastructure.mechanism_exn infra mech_name in
      match List.assoc_opt mech_name settings with
      | None ->
          invalid_arg
            (Printf.sprintf
               "Tier_model: design %s lacks a setting for mechanism %s"
               tier_name mech_name)
      | Some setting -> Model.Mechanism.loss_window_of mech setting)

(* The failure classes of a resource under fixed mechanism settings and
   spare-active set. Everything here is independent of the resource
   counts except [failover_considered], which flips with the presence of
   spares — hence the [has_spares] parameter, letting the skeleton cache
   both variants. *)
let classes_of ~infra ~(resource : Model.Resource.t) ~settings ~tier_name
    ~spare_active ~has_spares =
  (* Components inactive in a spare, whose startup makes up failover time. *)
  let inactive_in_spare =
    List.filter
      (fun c -> not (List.mem c spare_active))
      (Model.Resource.component_names resource)
  in
  let failover_base =
    Duration.add resource.reconfig_time
      (Model.Resource.startup_time_of resource inactive_in_spare)
  in
  List.concat_map
    (fun (element : Model.Resource.element) ->
      let c = Model.Infrastructure.component_exn infra element.component in
      List.map
        (fun (fm : Model.Component.failure_mode) ->
          let repair = repair_time ~infra ~settings ~tier_name fm in
          let restart = Model.Resource.restart_time resource element.component in
          let mttr = Duration.add fm.detect_time (Duration.add repair restart) in
          let failover_time = Duration.add fm.detect_time failover_base in
          {
            label = element.component ^ "/" ^ fm.mode_name;
            rate = 1. /. Duration.seconds fm.mtbf;
            mttr;
            failover_time;
            failover_considered =
              has_spares && Duration.compare mttr failover_time > 0;
            repair_mechanism =
              (match fm.repair with
              | Model.Component.Fixed_repair _ -> None
              | Model.Component.Repair_by_mechanism mech -> Some mech);
          })
        c.failure_modes)
    resource.elements

let loss_window_of ~infra ~resource ~settings ~tier_name =
  List.fold_left
    (fun acc c ->
      match (acc, component_loss_window ~infra ~settings ~tier_name c) with
      | None, lw | lw, None -> lw
      | Some a, Some b -> Some (Duration.max a b))
    None
    (Model.Infrastructure.resource_components infra resource)

let build ~infra ~(option : Model.Service.resource_option)
    ~(design : Model.Design.tier_design) ~demand =
  if not (String.equal option.resource design.resource) then
    invalid_arg
      (Printf.sprintf "Tier_model: option is for %s, design uses %s"
         option.resource design.resource);
  let resource = Model.Infrastructure.resource_exn infra design.resource in
  let n_active = design.n_active in
  let n_min = compute_n_min ~option ~design ~demand in
  let classes =
    classes_of ~infra ~resource ~settings:design.mechanism_settings
      ~tier_name:design.tier_name ~spare_active:design.spare_active_components
      ~has_spares:(design.n_spare > 0)
  in
  let loss_window =
    loss_window_of ~infra ~resource ~settings:design.mechanism_settings
      ~tier_name:design.tier_name
  in
  let effective_performance =
    effective_perf ~option ~design ~n:n_active
  in
  (match demand with
  | Some d when effective_performance < d ->
      reject "Tier_model: tier %s delivers %g < required %g with %d resources"
        design.tier_name effective_performance d n_active
  | Some _ | None -> ());
  {
    tier_name = design.tier_name;
    n_active;
    n_min;
    n_spare = design.n_spare;
    failure_scope = option.failure_scope;
    classes;
    loss_window;
    effective_performance;
  }

(* A tier model factored by what actually varies inside the inner search
   loop. For one (option, mechanism settings, spare-active set) the
   failure classes, loss window, per-resource costs and the effective
   performance curve are all fixed; only the resource counts (n, s) and
   the derived m change per candidate. [make] does the expensive
   derivations once; [instantiate] replays [build]'s arithmetic on the
   cached pieces — same operations in the same order, so the resulting
   model is bitwise identical to a fresh [build], including the
   [Rejected] messages. *)
module Skeleton = struct
  module Money = Aved_units.Money

  type tier = t

  (* What [instantiate]'s linear scan for the minimum m has established
     about a demand so far: either the smallest count that meets it —
     minimal over ALL counts, since the scan always starts at 1 — or
     that no count up to the recorded bound does. *)
  type dynamic_min = Found of int | Exhausted_below of int

  type t = {
    tier_name : string;
    option : Model.Service.resource_option;
    settings : (string * Model.Mechanism.setting) list;
    candidates : int list; (* the option's nActive range, ascending *)
    eff : (int, float) Hashtbl.t; (* n -> effective performance *)
    n_min : (float, int option) Hashtbl.t; (* demand -> minimum actives *)
    n_min_dynamic : (float, dynamic_min) Hashtbl.t;
        (* demand -> progress of [instantiate]'s m-derivation, which
           scans every count from 1 (not just the option's range). *)
    classes_spare : failure_class list;
    classes_nospare : failure_class list;
    loss_window : Duration.t option;
    active_cost : Money.t; (* annual cost of one active resource *)
    spare_cost : Money.t; (* annual cost of one spare resource *)
  }

  let make ~infra ~tier_name ~(option : Model.Service.resource_option)
      ~settings ~spare_active =
    let resource = Model.Infrastructure.resource_exn infra option.resource in
    let active_cost, spare_cost =
      Model.Design.resource_costs infra ~tier_name ~resource:option.resource
        ~mechanism_settings:settings ~spare_active_components:spare_active
    in
    {
      tier_name;
      option;
      settings;
      candidates = Model.Int_range.to_list option.n_active;
      eff = Hashtbl.create 8;
      n_min = Hashtbl.create 8;
      n_min_dynamic = Hashtbl.create 8;
      classes_spare =
        classes_of ~infra ~resource ~settings ~tier_name ~spare_active
          ~has_spares:true;
      classes_nospare =
        classes_of ~infra ~resource ~settings ~tier_name ~spare_active
          ~has_spares:false;
      loss_window = loss_window_of ~infra ~resource ~settings ~tier_name;
      active_cost;
      spare_cost;
    }

  let effective_performance skel ~n =
    match Hashtbl.find_opt skel.eff n with
    | Some v -> v
    | None ->
        let v =
          effective_performance_of ~option:skel.option ~settings:skel.settings
            ~n
        in
        Hashtbl.add skel.eff n v;
        v

  let minimum_actives skel ~demand =
    match Hashtbl.find_opt skel.n_min demand with
    | Some answer -> answer
    | None ->
        let answer =
          List.find_opt
            (fun n -> n > 0 && effective_performance skel ~n >= demand)
            skel.candidates
        in
        Hashtbl.add skel.n_min demand answer;
        answer

  let tier_cost skel ~n_active ~n_spare =
    Money.add
      (Money.scale (float_of_int n_active) skel.active_cost)
      (Money.scale (float_of_int n_spare) skel.spare_cost)

  let classes skel ~spares =
    if spares then skel.classes_spare else skel.classes_nospare

  let failure_scope skel = skel.option.Model.Service.failure_scope

  let instantiate skel ~n_active ~n_spare ~demand : tier =
    let n_min =
      match (skel.option.sizing, skel.option.failure_scope) with
      | Model.Service.Static, _ | _, Model.Service.Tier_scope -> n_active
      | Model.Service.Dynamic, Model.Service.Resource_scope -> (
          match demand with
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Tier_model: tier %s needs a throughput requirement to \
                    derive m"
                   skel.tier_name)
          | Some demand -> (
              let reject_at_bound () =
                reject "Tier_model: tier %s cannot deliver %g with %d resources"
                  skel.tier_name demand n_active
              in
              let rec search k =
                if k > n_active then begin
                  Hashtbl.replace skel.n_min_dynamic demand
                    (Exhausted_below n_active);
                  reject_at_bound ()
                end
                else if effective_performance skel ~n:k >= demand then begin
                  Hashtbl.replace skel.n_min_dynamic demand (Found k);
                  k
                end
                else search (k + 1)
              in
              (* The scan is monotone in k, so earlier answers transfer:
                 a [Found] below the current bound is THE minimum, a
                 [Found] above it or an exhausted prefix covering the
                 bound means rejection, and a shorter exhausted prefix
                 lets the scan resume where it stopped. Skipped
                 re-evaluations are memoized pure lookups, so the
                 outcome — including the rejection message, which quotes
                 the current bound — is bitwise unchanged. *)
              match Hashtbl.find_opt skel.n_min_dynamic demand with
              | Some (Found k) when k <= n_active -> k
              | Some (Found _) -> reject_at_bound ()
              | Some (Exhausted_below bound) ->
                  if n_active <= bound then reject_at_bound ()
                  else search (bound + 1)
              | None -> search 1))
    in
    let effective_performance = effective_performance skel ~n:n_active in
    (match demand with
    | Some d when effective_performance < d ->
        reject
          "Tier_model: tier %s delivers %g < required %g with %d resources"
          skel.tier_name effective_performance d n_active
    | Some _ | None -> ());
    {
      tier_name = skel.tier_name;
      n_active;
      n_min;
      n_spare;
      failure_scope = skel.option.failure_scope;
      classes = (if n_spare > 0 then skel.classes_spare else skel.classes_nospare);
      loss_window = skel.loss_window;
      effective_performance;
    }
end

let pp ppf t =
  Format.fprintf ppf
    "@[<v 2>tier %s: n=%d m=%d s=%d perf=%g scope=%s" t.tier_name t.n_active
    t.n_min t.n_spare t.effective_performance
    (match t.failure_scope with
    | Model.Service.Resource_scope -> "resource"
    | Model.Service.Tier_scope -> "tier");
  List.iter
    (fun c ->
      Format.fprintf ppf "@,%s: rate=%.3e/s mttr=%a failover=%a%s" c.label
        c.rate Duration.pp c.mttr Duration.pp c.failover_time
        (if c.failover_considered then " (failover)" else ""))
    t.classes;
  (match t.loss_window with
  | Some lw -> Format.fprintf ppf "@,loss window: %a" Duration.pp lw
  | None -> ());
  Format.fprintf ppf "@]"
